"""Fig 9 — cost of the socket-dedication vCPU migrations per application."""

from repro.experiments import fig09

from conftest import emit


def test_fig09_migration_overhead(benchmark):
    result = benchmark.pedantic(
        fig09.run, kwargs=dict(work_instructions=1.0e9), rounds=1, iterations=1
    )
    emit(fig09.format_report(result))
    # Not all VMs are impacted equally; the memory-intensive applications
    # (milc, lbm) suffer the most, up to ~12% in the paper.
    assert result.degradation["milc"] > result.degradation["bzip"]
    assert result.degradation["lbm"] > result.degradation["bzip"]
    assert all(0 <= d < 15 for d in result.degradation.values())
