"""Fig 2 — LLC misses per tick of v2_rep (alone / alt / parallel / both)."""

from repro.experiments import fig02

from conftest import emit


def test_fig02_llcm_timeline(benchmark):
    result = benchmark.pedantic(
        fig02.run, kwargs=dict(num_ticks=21), rounds=1, iterations=1
    )
    emit(fig02.format_report(result))
    alone = result.misses["alone"]
    alt = result.misses["alternative"]
    par = result.misses["parallel"]
    # Alone: data loading only in the first tick.
    assert alone[0] > 10_000 and max(alone[3:]) < alone[0] * 0.05
    # Alternative: the zigzag (reload at the first tick of each slice).
    assert any(m > 10_000 for m in alt[3:]) and any(m < 1_000 for m in alt[3:])
    # Parallel: persistently high miss rate.
    assert min(par) > 50_000
