"""Fig 3 — degradation grows with the disruptor's computing capacity."""

from repro.experiments import fig03

from conftest import emit


def test_fig03_cpu_lever(benchmark):
    result = benchmark.pedantic(
        fig03.run,
        kwargs=dict(caps=(0, 20, 40, 60, 80, 100), warmup_ticks=25,
                    measure_ticks=90),
        rounds=1,
        iterations=1,
    )
    emit(fig03.format_report(result))
    for vsen, series in result.degradation.items():
        assert series[0] < 1.0, vsen
        assert fig03.is_monotone_increasing(series), (vsen, series)
        assert series[-1] > 10.0, vsen
        # The paper's linearity claim, quantified.
        assert fig03.linearity_r_squared(result, vsen) > 0.95, vsen
