"""Table 2 — experiment VM catalog (vsen1..3 / vdis1..3)."""

from repro.experiments import tables

from conftest import emit


def test_table2_vm_catalog(benchmark):
    result = benchmark.pedantic(tables.run_table2, rounds=3, iterations=1)
    report = tables.format_table2(result)
    emit(report)
    assert result.mapping["vsen1"] == "gcc"
    assert result.mapping["vdis2"] == "blockie"
    assert len(result.mapping) == 6
