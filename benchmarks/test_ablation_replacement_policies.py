"""Ablation — LLC replacement policies under a scan attack.

The related-work policies (BIP/DIP/PDP) exist precisely to keep a reusable
hot set resident while a streaming scan flows through.  This ablation runs
the same hot-set+scan interleaving through the faithful set-associative
simulator under each policy and reports the hot set's hit ratio —
quantifying how much of Kyoto's problem better hardware policies could
absorb (and how much remains for the scheduler).
"""

import pytest

from repro.analysis.reporting import format_table
from repro.cachesim.replacement import make_policy
from repro.cachesim.setassoc import SetAssociativeCache
from repro.hardware.specs import CacheSpec, KIB

from conftest import emit

POLICIES = ("lru", "random", "bip", "dip", "pdp")


def hot_set_survival(policy_name: str) -> float:
    """Hit ratio of a 64-line hot set interleaved with a long scan."""
    cache = SetAssociativeCache(
        CacheSpec("LLC", 32 * KIB, 8), make_policy(policy_name)
    )
    hot = [i * 64 for i in range(64)]
    scan_base = 1 << 24
    for _ in range(20):  # warm the hot set
        for address in hot:
            cache.access(address, owner=1)
    hits = 0
    accesses = 0
    scan_cursor = 0
    for _ in range(60):
        for address in hot:
            hits += cache.access(address, owner=1).hit
            accesses += 1
        for _ in range(1024):  # the scan: 2x the cache per round
            cache.access(scan_base + scan_cursor * 64, owner=2)
            scan_cursor += 1
    return hits / accesses


def run_ablation():
    return {policy: hot_set_survival(policy) for policy in POLICIES}


def test_ablation_replacement_policies(benchmark):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    emit(
        format_table(
            ["policy", "hot-set hit ratio under scan"],
            [[p, results[p]] for p in POLICIES],
            title="Ablation: replacement policies vs a streaming scan",
        )
    )
    # Scan-resistant insertion policies protect the hot set better than
    # LRU (the thrashing-prone baseline the paper's clouds run on).
    assert results["bip"] > results["lru"]
    assert results["dip"] > results["lru"]
    assert results["pdp"] >= results["lru"]
    # And every policy keeps the ratio in a sane range.
    assert all(0.0 <= r <= 1.0 for r in results.values())
