"""Fig 12 — KS4Xen vs XCS execution time across scheduling periods."""

from repro.experiments import fig12

from conftest import emit


def test_fig12_overhead(benchmark):
    result = benchmark.pedantic(
        fig12.run,
        kwargs=dict(slices_ms=(1, 3, 5, 10, 15, 20, 30),
                    work_instructions=2.0e9),
        rounds=1,
        iterations=1,
    )
    emit(fig12.format_report(result))
    # Both schedulers lead the VMs to the same performance level: the
    # monitoring system introduces no measurable overhead.
    assert result.max_overhead_percent < 2.0
