"""Ablation — occupancy model vs the faithful set-associative simulator.

The machine simulation runs on the analytical mean-field occupancy model;
the McSim replay path runs on the faithful line-by-line simulator.  This
ablation cross-validates them: two synthetic applications with different
working sets share a small LLC in *both* substrates, and their
steady-state occupancy shares must agree.
"""

import itertools

import pytest

from repro.analysis.reporting import format_table
from repro.cachesim.occupancy import LlcOccupancyDomain
from repro.cachesim.perfmodel import CacheBehavior, hit_probability
from repro.cachesim.setassoc import SetAssociativeCache
from repro.hardware.specs import CacheSpec, KIB
from repro.workloads.tracegen import TraceConfig, generate_trace

from conftest import emit

#: A small LLC keeps the faithful simulation fast: 64 KiB = 1024 lines.
CACHE = CacheSpec("LLC", 64 * KIB, 8, shared=True)


def behaviors():
    a = CacheBehavior(wss_lines=700, lapki=100, base_cpi=0.8,
                      locality_theta=1.0)
    b = CacheBehavior(wss_lines=900, lapki=100, base_cpi=0.8,
                      locality_theta=1.0)
    return a, b


def faithful_shares(num_accesses=120_000):
    """Interleave two synthetic traces through the real simulator."""
    a, b = behaviors()
    cache = SetAssociativeCache(CACHE)
    trace_a = generate_trace(a, num_accesses,
                             TraceConfig(seed=1, base_address=0))
    trace_b = generate_trace(b, num_accesses,
                             TraceConfig(seed=2, base_address=1 << 28))
    for addr_a, addr_b in zip(trace_a, trace_b):
        cache.access(addr_a, owner=1)
        cache.access(addr_b, owner=2)
    total = cache.spec.num_lines
    return (
        cache.occupancy_of(1) / total,
        cache.occupancy_of(2) / total,
    )


def analytical_shares(iterations=400):
    """Iterate the occupancy model's relax to its fixed point."""
    a, b = behaviors()
    domain = LlcOccupancyDomain(CACHE.num_lines)
    for _ in range(iterations):
        miss_a = 100 * (1 - hit_probability(a, domain.occupancy_of(1)))
        miss_b = 100 * (1 - hit_probability(b, domain.occupancy_of(2)))
        domain.relax(
            {1: miss_a, 2: miss_b},
            {1: a.footprint_cap_lines, 2: b.footprint_cap_lines},
        )
    total = domain.total_lines
    return domain.occupancy_of(1) / total, domain.occupancy_of(2) / total


def run_ablation():
    return {"faithful": faithful_shares(), "analytical": analytical_shares()}


def test_ablation_model_crossvalidation(benchmark):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    rows = [
        [name, share_a, share_b]
        for name, (share_a, share_b) in results.items()
    ]
    emit(
        format_table(
            ["substrate", "owner A share", "owner B share"],
            rows,
            title="Ablation: occupancy model vs set-associative simulator",
        )
    )
    fa, fb = results["faithful"]
    aa, ab = results["analytical"]
    # Both substrates agree on the qualitative split (B's bigger working
    # set wins more cache) and on the shares within a coarse tolerance.
    assert fb > fa and ab > aa
    assert aa == pytest.approx(fa, abs=0.12)
    assert ab == pytest.approx(fb, abs=0.12)
