"""Fig 1 — LLC contention impact matrix (3 rep x 3 dis x 3 situations)."""

from repro.experiments import fig01

from conftest import emit


def test_fig01_contention_matrix(benchmark):
    result = benchmark.pedantic(
        fig01.run, kwargs=dict(warmup_ticks=25, measure_ticks=90),
        rounds=1, iterations=1,
    )
    emit(fig01.format_report(result))
    # Paper claims: C1 agnostic; C2/C3 severely hit; parallel >> alternative.
    assert result.of(1, 3, "parallel") < 2.0
    assert result.of(2, 2, "parallel") > 50.0
    assert result.of(2, 2, "parallel") > result.of(2, 2, "alternative")
    assert result.of(3, 3, "parallel") > 15.0
