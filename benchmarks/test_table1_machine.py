"""Table 1 — experimental machine (regenerated from the model)."""

from repro.experiments import tables

from conftest import emit


def test_table1_machine(benchmark):
    result = benchmark.pedantic(tables.run_table1, rounds=3, iterations=1)
    report = tables.format_table1(result)
    emit(report)
    assert "8096 MB" in report
    assert "10 MB, 20-way" in report
    assert "4 Cores/socket" in report
