"""Fig 10 — llc_cap_act isolated vs not, for the skip-isolation cases."""

from repro.experiments import fig10

from conftest import emit


def test_fig10_isolation_skip(benchmark):
    result = benchmark.pedantic(
        fig10.run, kwargs=dict(warmup_ticks=30, sample_ticks=6),
        rounds=1, iterations=1,
    )
    emit(fig10.format_report(result))
    # Low-miss vCPU: difference almost nil.
    assert result.case("hmmer").absolute_gap < 10_000
    # Quiet co-runners: difference almost nil.
    assert result.case("bzip").absolute_gap < 5_000
    # Disruptive co-runners: isolation genuinely matters.
    assert result.case("bzip-vs-disruptors").relative_gap_percent > 50.0
