"""Ablation — the pollution-quota bank size (quota_max_factor).

DESIGN.md calls out the banked-quota bound as a design choice: a larger
bank lets a bursty VM prepay longer pollution bursts; a smaller bank
punishes sooner and more often.  This ablation sweeps the factor and
reports the disruptor's punishment count, its duty cycle and the victim's
performance.
"""

import pytest

from repro.analysis.reporting import format_table
from repro.core.ks4xen import KS4Xen
from repro.hypervisor.system import VirtualizedSystem
from repro.hypervisor.vm import VmConfig
from repro.workloads.profiles import application_workload

from conftest import emit

FACTORS = (1.0, 2.0, 3.0, 6.0, 12.0)


def run_factor(factor: float):
    scheduler = KS4Xen(quota_max_factor=factor)
    system = VirtualizedSystem(scheduler)
    sen = system.create_vm(
        VmConfig(name="sen", workload=application_workload("gcc"),
                 llc_cap=250_000.0, pinned_cores=[0])
    )
    dis = system.create_vm(
        VmConfig(name="dis", workload=application_workload("lbm"),
                 llc_cap=250_000.0, pinned_cores=[1])
    )
    ran = [0]
    gid = dis.vcpus[0].gid
    system.add_tick_observer(
        lambda s, t: ran.__setitem__(0, ran[0] + (gid in s.last_tick_cycles))
    )
    system.run_ticks(30)
    sen.reset_metrics()
    system.run_ticks(200)
    return {
        "punishments": scheduler.kyoto.punishments(dis),
        "duty": ran[0] / 230,
        "victim_ipc": sen.vcpus[0].ipc,
    }


def run_ablation():
    return {factor: run_factor(factor) for factor in FACTORS}


def test_ablation_quota_factor(benchmark):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    emit(
        format_table(
            ["quota_max_factor", "# punishments", "disruptor duty",
             "victim IPC"],
            [
                [f, results[f]["punishments"], results[f]["duty"],
                 results[f]["victim_ipc"]]
                for f in FACTORS
            ],
            title="Ablation: pollution-quota bank size",
        )
    )
    # Smaller banks punish at least as often...
    assert results[1.0]["punishments"] >= results[12.0]["punishments"]
    # ...and are stricter: refill clipping at a small bank lowers the
    # polluter's achievable duty cycle.
    assert results[1.0]["duty"] <= results[12.0]["duty"] + 0.02
    # The victim is protected at every factor.
    assert all(results[f]["victim_ipc"] > 0.3 for f in FACTORS)
