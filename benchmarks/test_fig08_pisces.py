"""Fig 8 — Kyoto vs Pisces: execution time alone vs colocated."""

from repro.experiments import fig08

from conftest import emit


def test_fig08_pisces(benchmark):
    result = benchmark.pedantic(
        fig08.run, kwargs=dict(work_instructions=2.0e9), rounds=1, iterations=1
    )
    emit(fig08.format_report(result))
    # Pisces alone does not ensure predictability under LLC sharing
    # (paper: ~24% difference)...
    assert result.pisces_interference_percent > 10.0
    # ...while KS4Pisces restores most of it.
    assert (
        result.ks4pisces_interference_percent
        < result.pisces_interference_percent * 0.7
    )
