"""Benchmark harness configuration.

Each benchmark regenerates one of the paper's tables/figures, prints the
reproduced rows/series (run pytest with ``-s`` to see them) and asserts
the headline claim, so a green benchmark run is simultaneously a timing
run and a reproduction check.
"""

from __future__ import annotations

import sys


def emit(report: str) -> None:
    """Print a figure/table report so it survives pytest capture on -s."""
    sys.stdout.write("\n" + report + "\n")
