"""Fig 5 — KS4Xen effectiveness: predictability, punishments, timelines."""

from repro.experiments import fig05

from conftest import emit


def test_fig05_effectiveness(benchmark):
    result = benchmark.pedantic(
        fig05.run, kwargs=dict(warmup_ticks=30, measure_ticks=200),
        rounds=1, iterations=1,
    )
    emit(fig05.format_report(result))
    for vdis in result.normalized_perf:
        # vsen1's performance is almost kept, and better than under XCS.
        assert result.normalized_perf[vdis] > 0.85
        assert result.normalized_perf[vdis] > result.normalized_perf_xcs[vdis]
        pun_sen, pun_dis = result.punishments[vdis]
        assert pun_sen == 0 and pun_dis > 10
    # Bottom plots: the quota zigzag and the CPU deprivation.
    assert min(result.timeline.quota) < 0 < max(result.timeline.quota)
    ks_duty = sum(result.timeline.running_ks4xen) / len(
        result.timeline.running_ks4xen
    )
    assert ks_duty < 0.8
