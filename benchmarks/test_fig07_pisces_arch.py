"""Fig 7 — Pisces architecture audit (dedicated cores, shared LLC)."""

from repro.experiments import fig07

from conftest import emit


def test_fig07_pisces_arch(benchmark):
    result = benchmark.pedantic(
        fig07.run, kwargs=dict(num_ticks=60), rounds=1, iterations=1
    )
    emit(fig07.format_report(result))
    assert result.cores_disjoint
    assert all(d == 1.0 for d in result.duty_cycle.values())
    assert result.llc_shared
