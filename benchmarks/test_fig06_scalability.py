"""Fig 6 — KS4Xen scalability with 1..15 colocated disturbers."""

from repro.experiments import fig06

from conftest import emit


def test_fig06_scalability(benchmark):
    result = benchmark.pedantic(
        fig06.run,
        kwargs=dict(counts=(1, 2, 4, 6, 8, 10, 13, 14, 15),
                    warmup_ticks=25, measure_ticks=120),
        rounds=1,
        iterations=1,
    )
    emit(fig06.format_report(result))
    # vsen1's performance is kept whatever the number of disturbers.
    assert all(p > 0.8 for p in result.normalized_perf)
    # No collapse as the count grows.
    assert result.normalized_perf[-1] > result.normalized_perf[0] - 0.2
