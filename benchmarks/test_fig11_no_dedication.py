"""Fig 11 — equation-1 values with vs without socket dedication."""

from repro.experiments import fig11

from conftest import emit


def test_fig11_no_dedication(benchmark):
    result = benchmark.pedantic(
        fig11.run, kwargs=dict(warmup_ticks=25, measure_ticks=90),
        rounds=1, iterations=1,
    )
    emit(fig11.format_report(result))
    # The two orderings agree strongly: dedication can often be avoided.
    assert result.tau > 0.7
    # Quiet applications measure identically either way.
    for app in ("astar", "bzip", "xalan"):
        assert abs(result.shared[app] - result.dedicated[app]) < (
            0.05 * result.dedicated[app] + 1000
        )
