"""Ablation — the monitoring period.

Section 3.3 computes llc_cap_act "periodically (e.g. each 100 million
instructions)".  This ablation sweeps how often KS4Xen samples the PMCs
and debits the quota (in ticks) and reports enforcement quality: a slower
monitor reacts later, letting pollution bursts through, but costs fewer
samples.
"""

import pytest

from repro.analysis.reporting import format_table
from repro.core.ks4xen import KS4Xen
from repro.hypervisor.system import VirtualizedSystem
from repro.hypervisor.vm import VmConfig
from repro.workloads.profiles import application_workload

from conftest import emit

PERIODS = (1, 2, 3, 6, 12)


def run_period(period: int):
    scheduler = KS4Xen(monitor_period_ticks=period)
    system = VirtualizedSystem(scheduler)
    sen = system.create_vm(
        VmConfig(name="sen", workload=application_workload("gcc"),
                 llc_cap=250_000.0, pinned_cores=[0])
    )
    dis = system.create_vm(
        VmConfig(name="dis", workload=application_workload("blockie"),
                 llc_cap=250_000.0, pinned_cores=[1])
    )
    system.run_ticks(30)
    sen.reset_metrics()
    system.run_ticks(240)
    account = scheduler.kyoto.account_of(dis)
    return {
        "victim_ipc": sen.vcpus[0].ipc,
        "samples": account.samples,
        "punishments": account.punishments,
    }


def run_ablation():
    return {period: run_period(period) for period in PERIODS}


def test_ablation_monitor_period(benchmark):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    emit(
        format_table(
            ["monitor period (ticks)", "victim IPC", "# samples",
             "# punishments"],
            [
                [p, results[p]["victim_ipc"], results[p]["samples"],
                 results[p]["punishments"]]
                for p in PERIODS
            ],
            title="Ablation: monitoring period",
        )
    )
    # Sampling cost scales down with the period...
    assert results[12]["samples"] < results[1]["samples"] / 8
    # ...while enforcement keeps working at every period.
    assert all(results[p]["punishments"] > 0 for p in PERIODS)
    ipcs = [results[p]["victim_ipc"] for p in PERIODS]
    assert max(ipcs) - min(ipcs) < 0.15 * max(ipcs)
