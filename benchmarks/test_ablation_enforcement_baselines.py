"""Ablation — Kyoto vs the related-work alternatives.

The paper's positioning (Section 6): cache partitioning needs hardware or
rigid colouring; placement is NP-hard and needs application knowledge;
Kyoto is pay-per-use.  This ablation runs the same sensitive-vs-disruptor
colocation under every approach implemented in this repository and
reports the victim's protection and the approach's cost dimension.
"""

import pytest

from repro.analysis.metrics import normalized_performance
from repro.analysis.reporting import format_table
from repro.core.ks4xen import KS4Xen
from repro.core.memguard import MemGuardScheduler
from repro.hypervisor.system import VirtualizedSystem
from repro.hypervisor.vm import VmConfig
from repro.partitioning.static import apply_page_coloring
from repro.partitioning.ucp import UcpController
from repro.schedulers.credit import CreditScheduler
from repro.workloads.profiles import application_workload

from conftest import emit

VICTIM_APP = "omnetpp"
DISRUPTOR_APP = "lbm"


def run_setup(label):
    if label == "kyoto (KS4Xen)":
        scheduler = KS4Xen()
    elif label == "memguard":
        scheduler = MemGuardScheduler()
    else:
        scheduler = CreditScheduler()
    system = VirtualizedSystem(scheduler)
    llc_cap = 250_000.0 if label in ("kyoto (KS4Xen)", "memguard") else None
    victim = system.create_vm(
        VmConfig(name="victim", workload=application_workload(VICTIM_APP),
                 llc_cap=llc_cap, pinned_cores=[0])
    )
    disruptor = system.create_vm(
        VmConfig(name="disruptor",
                 workload=application_workload(DISRUPTOR_APP),
                 llc_cap=llc_cap, pinned_cores=[1])
    )
    if label == "page coloring":
        apply_page_coloring(system, {victim: 110_000})
    elif label == "ucp":
        UcpController(system, period_ticks=6)
    system.run_ticks(30)
    victim.reset_metrics()
    disruptor.reset_metrics()
    system.run_ticks(150)
    # The disruptor's cost metric is throughput (instructions retired in
    # the window), not IPC: Kyoto's lever parks it, so it retires less
    # even though its IPC-while-running barely moves.
    return victim.vcpus[0].ipc, disruptor.instructions_retired


def run_ablation():
    # Victim solo baseline.
    solo_system = VirtualizedSystem(CreditScheduler())
    solo = solo_system.create_vm(
        VmConfig(name="solo", workload=application_workload(VICTIM_APP),
                 pinned_cores=[0])
    )
    solo_system.run_ticks(30)
    solo.reset_metrics()
    solo_system.run_ticks(150)
    baseline = solo.vcpus[0].ipc

    labels = ["none (XCS)", "page coloring", "ucp", "memguard",
              "kyoto (KS4Xen)"]
    results = {}
    for label in labels:
        victim_ipc, disruptor_throughput = run_setup(label)
        results[label] = {
            "victim": normalized_performance(baseline, victim_ipc),
            "disruptor_throughput": disruptor_throughput,
        }
    return results


def test_ablation_enforcement_baselines(benchmark):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    emit(
        format_table(
            ["approach", "victim normalized perf",
             "disruptor throughput (instr)"],
            [
                [label, data["victim"], data["disruptor_throughput"]]
                for label, data in results.items()
            ],
            title="Ablation: enforcement approaches vs the same colocation",
        )
    )
    unprotected = results["none (XCS)"]["victim"]
    # Every protection mechanism beats doing nothing...
    for label in ("page coloring", "ucp", "memguard", "kyoto (KS4Xen)"):
        assert results[label]["victim"] > unprotected, label
    # ...and the partitioning schemes protect without slowing the
    # disruptor's CPU, while Kyoto charges the polluter the CPU lever.
    assert (
        results["kyoto (KS4Xen)"]["disruptor_throughput"]
        < 0.9 * results["page coloring"]["disruptor_throughput"]
    )
