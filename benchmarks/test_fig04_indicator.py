"""Fig 4 — equation 1 vs LLCM as the llc_cap indicator (o1/o2/o3)."""

from repro.experiments import fig04
from repro.workloads.profiles import (
    PAPER_ORDER_EQUATION1,
    PAPER_ORDER_LLCM,
    PAPER_ORDER_REAL,
)

from conftest import emit


def test_fig04_indicator(benchmark):
    result = benchmark.pedantic(
        fig04.run, kwargs=dict(warmup_ticks=20, measure_ticks=60),
        rounds=1, iterations=1,
    )
    emit(fig04.format_report(result))
    cmp = result.comparison
    # The three published orderings are reproduced exactly.
    assert cmp.real_order == PAPER_ORDER_REAL
    assert cmp.llcm_order == PAPER_ORDER_LLCM
    assert cmp.equation1_order == PAPER_ORDER_EQUATION1
    # And the paper's conclusion holds: equation 1 tracks reality better.
    assert cmp.equation1_wins
    assert cmp.tau_equation1 > cmp.tau_llcm
