#!/usr/bin/env python3
"""Pay-per-use pollution billing: charging the LLC like any resource.

The paper's economic thesis is that cache utilisation should be billed in
the pay-per-use spirit of the cloud.  This example runs a mixed tenant
population for ten simulated seconds under two regimes and prints the
provider's invoices:

* **metering only (XCS)** — tenants pollute freely and the meter bills
  their overage; the sensitive tenant also pays in *performance*.
* **metering + enforcement (KS4Xen)** — polluters are held to their
  permits, overage (and the victim's degradation) largely disappears:
  what remains is the flat permit price each tenant chose up front.
"""

from repro.analysis.reporting import format_table
from repro.core.billing import PollutionBiller, PricingPlan
from repro.core.ks4xen import KS4Xen
from repro.hypervisor.system import VirtualizedSystem
from repro.hypervisor.vm import VmConfig
from repro.schedulers.credit import CreditScheduler
from repro.workloads.profiles import application_workload

TENANTS = [
    ("analytics", "soplex", 250_000.0, 0),
    ("render-farm", "lbm", 100_000.0, 1),
    ("ci-runner", "blockie", 100_000.0, 2),
    ("web-tier", "hmmer", 50_000.0, 3),
]


def run_regime(scheduler):
    system = VirtualizedSystem(scheduler)
    plan = PricingPlan(
        permit_price_per_kmiss_hour=0.02, overage_price_per_gmiss=0.50
    )
    biller = PollutionBiller(system, plan)
    for name, app, permit, core in TENANTS:
        system.create_vm(
            VmConfig(
                name=name,
                workload=application_workload(app),
                llc_cap=permit,
                pinned_cores=[core],
            )
        )
    system.run_msec(10_000)
    return biller.invoices()


def print_invoices(title, invoices) -> None:
    rows = [
        [
            inv.vm_name,
            inv.booked_llc_cap,
            inv.total_misses / 1e9,
            inv.overage_misses / 1e9,
            inv.permit_cost,
            inv.overage_cost,
            inv.total_cost,
        ]
        for inv in invoices
    ]
    print(
        format_table(
            ["tenant", "permit (miss/ms)", "metered (G-miss)",
             "overage (G-miss)", "permit $", "overage $", "total $"],
            rows,
            title=title,
        )
    )
    print()


def main() -> None:
    print_invoices(
        "Regime 1: metering only (XCS) — 10 simulated seconds",
        run_regime(CreditScheduler()),
    )
    print_invoices(
        "Regime 2: metering + enforcement (KS4Xen)",
        run_regime(KS4Xen()),
    )
    print(
        "Enforcement turns surprise overage bills into the flat, "
        "predictable permit price — and protects the tenants who paid "
        "for low pollution neighbourhoods."
    )


if __name__ == "__main__":
    main()
