#!/usr/bin/env python3
"""Cache-aware placement vs Kyoto (the related-work comparison).

The first family of LLC-contention solutions places VMs so polluters and
sensitive VMs never share a socket.  The paper's critique: placement is
NP-hard, requires knowing what runs inside VMs, and stops working the
moment the cluster is too full to segregate.  Kyoto instead *prices* the
shared cache, working at any packing density.

This example schedules a fleet of eight VMs (four sensitive, four
disruptive) onto two 4-core hosts under three placement policies, then
re-runs the *worst* placement with KS4Xen enabled — showing that permits
recover what clever placement achieves, without needing the cluster
slack or the application knowledge.
"""

from repro.analysis.reporting import format_table
from repro.core.ks4xen import KS4Xen
from repro.placement import (
    VmDescriptor,
    balance_pollution_placement,
    evaluate_placement,
    round_robin_placement,
    segregate_placement,
)

#: Pollution values are each application's solo equation-1 level (Fig 4).
FLEET = [
    VmDescriptor("web-1", "gcc", 130_000, sensitive=True),
    VmDescriptor("web-2", "omnetpp", 110_000, sensitive=True),
    VmDescriptor("solver-1", "soplex", 232_000, sensitive=True),
    VmDescriptor("solver-2", "omnetpp", 110_000, sensitive=True),
    VmDescriptor("batch-1", "lbm", 419_000),
    VmDescriptor("batch-2", "blockie", 400_000),
    VmDescriptor("batch-3", "mcf", 260_000),
    VmDescriptor("batch-4", "milc", 268_000),
]


def main() -> None:
    placements = {
        "round robin": round_robin_placement(FLEET, 2),
        "balance pollution": balance_pollution_placement(FLEET, 2),
        "segregate": segregate_placement(FLEET, 2),
    }
    rows = []
    worst_label, worst_eval = None, None
    for label, placement in placements.items():
        evaluation = evaluate_placement(placement)
        rows.append(
            [
                label,
                evaluation.mean_sensitive_degradation,
                evaluation.max_degradation,
            ]
        )
        if worst_eval is None or (
            evaluation.mean_sensitive_degradation
            > worst_eval.mean_sensitive_degradation
        ):
            worst_label, worst_eval = label, evaluation

    # The paper's answer: keep the bad placement, add permits.
    kyoto_eval = evaluate_placement(
        placements[worst_label],
        scheduler_factory=KS4Xen,
        llc_cap_of=lambda d: 250_000.0 if d.sensitive else 100_000.0,
    )
    rows.append(
        [
            f"{worst_label} + Kyoto",
            kyoto_eval.mean_sensitive_degradation,
            kyoto_eval.max_degradation,
        ]
    )
    print(
        format_table(
            ["strategy", "mean sensitive degradation %", "max degradation %"],
            rows,
            title="Eight VMs on two 4-core hosts",
        )
    )
    print(
        "\nSegregation works only while the cluster has slack; Kyoto "
        "recovers sensitive-VM performance on the worst placement by "
        "making polluters pay — no application knowledge, no bin-packing."
    )


if __name__ == "__main__":
    main()
