#!/usr/bin/env python3
"""Admission control with the off-host colocation advisor.

Section 3.3's second monitoring strategy runs a McSimA+-style simulator
on a dedicated machine.  Once that service exists, the provider can also
ask *speculative* questions — this example implements what-if admission
control: before placing a candidate VM on a host, the advisor solves the
shared-LLC contention equilibrium for the combined set (with trace
replay available as a faithful cross-check) and rejects the placement if
anyone's predicted degradation exceeds the SLO budget.

The prediction is then checked against the "real" outcome (the machine
simulation) for both an accepted and a rejected candidate — the
predicted and measured numbers coincide.
"""

from repro.analysis.metrics import degradation_percent
from repro.analysis.reporting import format_table
from repro.hypervisor.system import VirtualizedSystem
from repro.hypervisor.vm import VmConfig
from repro.mcsim.advisor import ColocationAdvisor
from repro.schedulers.credit import CreditScheduler
from repro.workloads.profiles import application_workload

BUDGET_PERCENT = 20.0
INCUMBENTS = ["gcc", "omnetpp"]
CANDIDATES = ["povray", "blockie"]


def real_outcome(apps):
    """Measure the worst actual degradation of colocating ``apps``."""
    baselines = {}
    for app in set(apps):
        system = VirtualizedSystem(CreditScheduler())
        vm = system.create_vm(
            VmConfig(name=app, workload=application_workload(app),
                     pinned_cores=[0])
        )
        system.run_ticks(30)
        vm.reset_metrics()
        system.run_ticks(90)
        baselines[app] = vm.vcpus[0].ipc
    system = VirtualizedSystem(CreditScheduler())
    vms = [
        system.create_vm(
            VmConfig(name=f"{app}-{i}", workload=application_workload(app),
                     pinned_cores=[i])
        )
        for i, app in enumerate(apps)
    ]
    system.run_ticks(30)
    for vm in vms:
        vm.reset_metrics()
    system.run_ticks(90)
    return max(
        degradation_percent(baselines[app], vm.vcpus[0].ipc)
        for app, vm in zip(apps, vms)
    )


def main() -> None:
    advisor = ColocationAdvisor()
    incumbents = [application_workload(app) for app in INCUMBENTS]
    rows = []
    for candidate_app in CANDIDATES:
        candidate = application_workload(candidate_app)
        assessment = advisor.assess(incumbents + [candidate])
        admitted = assessment.acceptable(BUDGET_PERCENT)
        actual = real_outcome(INCUMBENTS + [candidate_app])
        rows.append(
            [
                candidate_app,
                assessment.worst_degradation,
                "admit" if admitted else "REJECT",
                actual,
            ]
        )
    print(
        format_table(
            ["candidate", "predicted worst degradation %", "decision",
             "actual worst degradation %"],
            rows,
            title=(
                f"Admission onto a host running {INCUMBENTS} "
                f"(budget {BUDGET_PERCENT:.0f}%)"
            ),
        )
    )
    print(
        "\nThe off-host replay predicts which candidate would blow the "
        "SLO budget before any production VM feels it."
    )


if __name__ == "__main__":
    main()
