#!/usr/bin/env python3
"""The attribution problem and Kyoto's three monitoring strategies.

"A VM should not be punished for the pollution of another VM" — but the
PMCs of a shared LLC measure the *contended* miss rate, which includes
reload misses caused by co-runners.  This example measures one quiet-ish
VM (bzip) colocated with three disruptors using:

* the direct per-vCPU PMCs (perfctr) — contaminated by contention,
* socket dedication — intrinsic, but it perturbs the migrated vCPUs,
* McSimA+-style trace replay on a side machine — intrinsic and free.

Run it to see why Section 3.3 needs more than raw counters.
"""

from repro import VirtualizedSystem, VmConfig, application_workload
from repro.analysis.reporting import format_table
from repro.core.monitor import (
    DirectPmcMonitor,
    McSimReplayMonitor,
    SocketDedicationSampler,
)
from repro.hardware.specs import numa_machine
from repro.mcsim.service import ReplayService
from repro.schedulers.credit import CreditScheduler

TARGET_APP = "bzip"
DISRUPTORS = ["lbm", "blockie", "mcf"]


def build_host():
    system = VirtualizedSystem(CreditScheduler(), numa_machine())
    target = system.create_vm(
        VmConfig(
            name="target",
            workload=application_workload(TARGET_APP),
            pinned_cores=[0],
        )
    )
    for i, app in enumerate(DISRUPTORS):
        system.create_vm(
            VmConfig(
                name=f"dis-{app}",
                workload=application_workload(app),
                pinned_cores=[1 + i],
            )
        )
    system.run_msec(300)
    return system, target


def main() -> None:
    # Intrinsic reference: the target alone on the machine.
    solo_system = VirtualizedSystem(CreditScheduler(), numa_machine())
    solo_vm = solo_system.create_vm(
        VmConfig(name="solo", workload=application_workload(TARGET_APP),
                 pinned_cores=[0])
    )
    solo_monitor = DirectPmcMonitor(solo_system)
    solo_system.run_msec(300)
    solo_monitor.sample(solo_vm)
    solo_system.run_msec(100)
    intrinsic = solo_monitor.sample(solo_vm)

    # Strategy 1: direct PMCs under contention.
    system, target = build_host()
    direct = DirectPmcMonitor(system)
    direct.sample(target)
    system.run_msec(100)
    contended = direct.sample(target)

    # Strategy 2: socket dedication (migrate everyone else away).
    system, target = build_host()
    sampler = SocketDedicationSampler(system)
    dedicated = sampler.sample(target, sample_ticks=10)

    # Strategy 3: McSim replay on the side machine.
    system, target = build_host()
    replay = McSimReplayMonitor(system, ReplayService())
    replay.sample(target)
    system.run_msec(100)
    replayed = replay.sample(target)

    rows = [
        ["intrinsic (solo run)", intrinsic, "-"],
        ["direct PMCs, contended", contended,
         f"{100 * (contended / intrinsic - 1):+.0f}%"],
        ["socket dedication", dedicated,
         f"{100 * (dedicated / intrinsic - 1):+.0f}%"],
        ["mcsim replay", replayed,
         f"{100 * (replayed / intrinsic - 1):+.0f}%"],
    ]
    print(
        format_table(
            ["strategy", "measured llc_cap_act (miss/ms)", "error vs intrinsic"],
            rows,
            title=f"Measuring {TARGET_APP}'s pollution among {DISRUPTORS}",
        )
    )
    print(
        "\nDirect PMCs punish the victim for its attackers' evictions; "
        "socket dedication recovers the intrinsic rate at the price of "
        "migrations (Fig 9); replay recovers it off-host for free."
    )


if __name__ == "__main__":
    main()
