#!/usr/bin/env python3
"""Instance-type sizing: how a provider picks llc_cap (paper Section 5).

The paper's answer to "how does the user choose llc_cap?": the provider
attaches a pollution permit to each bookable instance type, proportional
to its memory-per-vCPU ratio — memory-optimised (R3) instances book large
permits, compute-optimised (C4) instances small ones.

This example walks the full provider-side flow:

1. derive each catalog instance type's llc_cap,
2. admit a multi-tenant host: an R3 tenant running a memory-hungry solver
   next to C4 tenants running a streaming job,
3. show that enforcement follows the booked permits: the C4 tenant
   running a polluting workload gets punished into its small permit while
   the R3 tenant consumes its large one freely.
"""

from repro import KS4Xen, VirtualizedSystem, VmConfig, application_workload
from repro.analysis.reporting import format_table
from repro.core.instances import CATALOG, instance, llc_cap_for


def print_catalog() -> None:
    rows = [
        [t.name, t.vcpus, t.memory_gib, t.family, llc_cap_for(t)]
        for t in sorted(CATALOG.values(), key=lambda t: (t.family, t.vcpus))
    ]
    print(
        format_table(
            ["instance", "vCPUs", "memory (GiB)", "family", "llc_cap (miss/ms)"],
            rows,
            title="Instance catalog with derived pollution permits",
        )
    )


def main() -> None:
    print_catalog()

    r3 = instance("r3.large")
    c4 = instance("c4.large")
    system = VirtualizedSystem(KS4Xen())
    hpc_tenant = system.create_vm(
        VmConfig(
            name="tenant-r3",
            workload=application_workload("soplex"),
            llc_cap=llc_cap_for(r3),
            pinned_cores=[0],
        )
    )
    noisy_tenant = system.create_vm(
        VmConfig(
            name="tenant-c4",
            workload=application_workload("lbm"),
            llc_cap=llc_cap_for(c4),
            pinned_cores=[1],
        )
    )
    system.run_msec(2_000)

    kyoto = system.scheduler.kyoto
    rows = [
        [
            vm.name,
            vm.llc_cap,
            kyoto.account_of(vm).mean_measured,
            kyoto.punishments(vm),
        ]
        for vm in (hpc_tenant, noisy_tenant)
    ]
    print()
    print(
        format_table(
            ["tenant", "booked llc_cap", "mean measured", "# punishments"],
            rows,
            title="Two seconds of multi-tenant enforcement",
        )
    )
    print(
        "\nThe C4 tenant booked a small permit (cheap instance) but runs a "
        "polluting workload: Kyoto duty-cycles it. The R3 tenant paid for "
        "its pollution up front and runs unimpeded."
    )


if __name__ == "__main__":
    main()
