#!/usr/bin/env python3
"""Quickstart: pollution permits in 30 lines.

Boots the paper's machine (Table 1) under KS4Xen, starts a sensitive VM
(gcc) and a disruptive VM (lbm) — both booking the paper's 250k-misses/ms
pollution permit — runs one simulated second, and shows the "polluters
pay" principle in action: the polluter is repeatedly punished (deprived of
the processor) while the sensitive VM keeps its performance.
"""

from repro import (
    CreditScheduler,
    KS4Xen,
    VirtualizedSystem,
    VmConfig,
    application_workload,
    normalized_performance,
)


def measure(scheduler):
    """One simulated second of gcc vs lbm under the given scheduler."""
    system = VirtualizedSystem(scheduler)
    sensitive = system.create_vm(
        VmConfig(
            name="vsen1",
            workload=application_workload("gcc"),
            llc_cap=250_000,  # the pollution permit (misses/ms)
            pinned_cores=[0],
        )
    )
    disruptor = system.create_vm(
        VmConfig(
            name="vdis1",
            workload=application_workload("lbm"),
            llc_cap=250_000,
            pinned_cores=[1],
        )
    )
    system.run_msec(300)  # warm up
    sensitive.reset_metrics()
    system.run_msec(1_000)
    return system, sensitive, disruptor


def main() -> None:
    # Baseline: gcc running alone.
    solo = VirtualizedSystem(CreditScheduler())
    alone = solo.create_vm(
        VmConfig(name="solo", workload=application_workload("gcc"),
                 pinned_cores=[0])
    )
    solo.run_msec(300)
    alone.reset_metrics()
    solo.run_msec(1_000)

    for scheduler in (CreditScheduler(), KS4Xen()):
        system, sensitive, disruptor = measure(scheduler)
        perf = normalized_performance(alone.ipc, sensitive.ipc)
        line = f"{scheduler.name:8s}: vsen1 normalized perf = {perf:.3f}"
        if isinstance(scheduler, KS4Xen):
            line += (
                f", punishments: vsen1={scheduler.kyoto.punishments(sensitive)}"
                f" vdis1={scheduler.kyoto.punishments(disruptor)}"
            )
        print(line)
    print(
        "\nKS4Xen keeps the sensitive VM near its solo performance by "
        "depriving the polluter of the processor whenever its measured "
        "pollution (equation 1) exceeds the booked llc_cap."
    )


if __name__ == "__main__":
    main()
