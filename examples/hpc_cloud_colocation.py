#!/usr/bin/env python3
"""HPC cloud colocation: the paper's motivating scenario.

An HPC user runs a cache-sensitive solver (soplex, the paper's vsen3) in
an IaaS cloud.  The provider colocates it with other tenants' VMs — a
streaming job (lbm), a contention kernel (blockie) and a graph workload
(mcf).  We measure the solver's performance predictability across four
platforms:

* plain Xen (XCS)                  — no cache isolation at all,
* Xen + Kyoto (KS4Xen)             — pollution permits enforced,
* Pisces co-kernel                 — dedicated cores, but a shared LLC,
* Pisces + Kyoto (KS4Pisces)       — co-kernel plus pollution permits.

The output reproduces the paper's headline: only the Kyoto-enabled
platforms keep the HPC application's performance predictable.
"""

from repro import (
    CreditScheduler,
    KS4Pisces,
    KS4Xen,
    PiscesCoKernel,
    VirtualizedSystem,
    VmConfig,
    application_workload,
)
from repro.analysis.metrics import SeriesStats, normalized_performance
from repro.analysis.reporting import format_table

TENANTS = [("lbm", 1), ("blockie", 2), ("mcf", 3)]
#: Solver books the paper's large permit; tenants book the small Fig 6 one.
SOLVER_PERMIT = 250_000.0
TENANT_PERMIT = 50_000.0


def run_platform(scheduler_factory, kyoto: bool):
    """Sample the solver's per-100ms IPC while tenants come and go.

    Real clouds are unpredictable because the *neighbour set changes*:
    each 100 ms window a different subset of tenants is active, so a
    platform without cache isolation shows large window-to-window swings.
    """
    scheduler = scheduler_factory()
    system = VirtualizedSystem(scheduler)
    solver = system.create_vm(
        VmConfig(
            name="hpc-solver",
            workload=application_workload("soplex"),
            llc_cap=SOLVER_PERMIT if kyoto else None,
            pinned_cores=[0],
        )
    )
    tenants = [
        system.create_vm(
            VmConfig(
                name=f"tenant-{app}",
                workload=application_workload(app),
                llc_cap=TENANT_PERMIT if kyoto else None,
                pinned_cores=[core],
            )
        )
        for app, core in TENANTS
    ]
    # Tenant activity schedule: which tenants run in each 100ms window.
    activity = [
        (True, False, False),
        (True, True, False),
        (True, True, True),
        (False, True, True),
        (False, False, True),
        (False, False, False),
        (True, False, True),
        (True, True, True),
        (False, True, False),
        (True, True, True),
    ]
    system.run_msec(300)
    samples = []
    for window in activity:
        for tenant, active in zip(tenants, window):
            tenant.vcpus[0].paused = not active
        solver.reset_metrics()
        system.run_msec(100)
        samples.append(solver.ipc)
    return samples


def main() -> None:
    # Solo baseline on an otherwise idle host.
    solo_system = VirtualizedSystem(CreditScheduler())
    solo = solo_system.create_vm(
        VmConfig(name="solo", workload=application_workload("soplex"),
                 pinned_cores=[0])
    )
    solo_system.run_msec(300)
    solo.reset_metrics()
    solo_system.run_msec(500)
    baseline = solo.ipc

    platforms = [
        ("XCS (plain Xen)", CreditScheduler, False),
        ("KS4Xen", KS4Xen, True),
        ("Pisces", PiscesCoKernel, False),
        ("KS4Pisces", KS4Pisces, True),
    ]
    rows = []
    for label, factory, kyoto in platforms:
        samples = run_platform(factory, kyoto)
        stats = SeriesStats.of(samples)
        rows.append(
            [
                label,
                normalized_performance(baseline, stats.mean),
                stats.spread_percent,
            ]
        )
    print(
        format_table(
            ["platform", "normalized solver perf", "variation (%)"],
            rows,
            title="HPC solver (soplex) colocated with three noisy tenants",
        )
    )
    print(
        "\nKyoto-enabled platforms keep the solver close to its solo "
        "performance; without permits the shared LLC makes it both slow "
        "and unpredictable."
    )


if __name__ == "__main__":
    main()
