#!/usr/bin/env python3
"""HPC cloud colocation: the paper's motivating scenario.

An HPC user runs a cache-sensitive solver (soplex, the paper's vsen3) in
an IaaS cloud.  The provider colocates it with other tenants' VMs — a
streaming job (lbm), a contention kernel (blockie) and a graph workload
(mcf).  We measure the solver's performance predictability across four
platforms:

* plain Xen (XCS)                  — no cache isolation at all,
* Xen + Kyoto (KS4Xen)             — pollution permits enforced,
* Pisces co-kernel                 — dedicated cores, but a shared LLC,
* Pisces + Kyoto (KS4Pisces)       — co-kernel plus pollution permits.

The fleet (VMs, permits, pinning) is not hard-coded here: it loads from
``examples/scenarios/hpc_colocation.toml`` and this script only varies
the *platform* — the scheduler kind, and whether permits apply.  The
output reproduces the paper's headline: only the Kyoto-enabled
platforms keep the HPC application's performance predictable.
"""

import pathlib
from dataclasses import replace

from repro.analysis.metrics import SeriesStats, normalized_performance
from repro.analysis.reporting import format_table
from repro.scenario import load_scenario, materialize, solo_baseline_ipc

FLEET_TOML = pathlib.Path(__file__).parent / "scenarios" / "hpc_colocation.toml"

#: (label, scheduler kind, permits enforced) per platform.
PLATFORMS = [
    ("XCS (plain Xen)", "xcs", False),
    ("KS4Xen", "ks4xen", True),
    ("Pisces", "pisces", False),
    ("KS4Pisces", "ks4pisces", True),
]


def platform_spec(fleet, scheduler_kind: str, kyoto: bool):
    """The fleet spec re-targeted at one platform.

    Non-Kyoto platforms drop the permits (``llc_cap = None``) — there is
    no enforcement to book them with.
    """
    vms = fleet.vms if kyoto else tuple(
        replace(vm, llc_cap=None) for vm in fleet.vms
    )
    return replace(
        fleet,
        name=f"{fleet.name}-{scheduler_kind}",
        scheduler=replace(fleet.scheduler, kind=scheduler_kind),
        vms=vms,
    )


def run_platform(fleet, scheduler_kind: str, kyoto: bool):
    """Sample the solver's per-100ms IPC while tenants come and go.

    Real clouds are unpredictable because the *neighbour set changes*:
    each 100 ms window a different subset of tenants is active, so a
    platform without cache isolation shows large window-to-window swings.
    """
    built = materialize(platform_spec(fleet, scheduler_kind, kyoto))
    system = built.system
    solver = built.vm("hpc-solver")
    tenants = [vm for name, vm in built.vms.items() if name != "hpc-solver"]
    # Tenant activity schedule: which tenants run in each 100ms window.
    activity = [
        (True, False, False),
        (True, True, False),
        (True, True, True),
        (False, True, True),
        (False, False, True),
        (False, False, False),
        (True, False, True),
        (True, True, True),
        (False, True, False),
        (True, True, True),
    ]
    system.run_msec(300)
    samples = []
    for window in activity:
        for tenant, active in zip(tenants, window):
            tenant.vcpus[0].paused = not active
        solver.reset_metrics()
        system.run_msec(100)
        samples.append(solver.ipc)
    return samples


def main() -> None:
    fleet = load_scenario(str(FLEET_TOML))
    # Solo baseline on an otherwise idle host (300ms warmup, 500ms measure).
    baseline = solo_baseline_ipc(
        replace(fleet, protocol=replace(fleet.protocol, warmup_ticks=30,
                                        measure_ticks=50))
    )

    rows = []
    for label, scheduler_kind, kyoto in PLATFORMS:
        samples = run_platform(fleet, scheduler_kind, kyoto)
        stats = SeriesStats.of(samples)
        rows.append(
            [
                label,
                normalized_performance(baseline, stats.mean),
                stats.spread_percent,
            ]
        )
    print(
        format_table(
            ["platform", "normalized solver perf", "variation (%)"],
            rows,
            title="HPC solver (soplex) colocated with three noisy tenants",
        )
    )
    print(
        "\nKyoto-enabled platforms keep the solver close to its solo "
        "performance; without permits the shared LLC makes it both slow "
        "and unpredictable."
    )


if __name__ == "__main__":
    main()
