"""Setup shim.

Keeps ``pip install -e .`` working on environments whose setuptools/pip
lack PEP 660 editable-wheel support (no ``wheel`` package available); all
real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
