"""Table-driven tests for every kyotolint rule.

Each case is a minimal snippet that must (or must not) trigger exactly
the rule under test; pragma and baseline behaviour get their own cases.
"""

from __future__ import annotations

import json

import pytest

from repro.lint import (
    Baseline,
    clear_cache,
    exit_code,
    format_json,
    format_text,
    lint_file,
    lint_paths,
    lint_source,
)

#: (case id, rule id expected, snippet, should_fire)
RULE_CASES = [
    # -- D001: bare random module functions --------------------------------
    (
        "d001-module-call",
        "D001",
        "import random\nx = random.random()\n",
        True,
    ),
    (
        "d001-aliased-module",
        "D001",
        "import random as rnd\nx = rnd.randint(0, 3)\n",
        True,
    ),
    (
        "d001-from-import",
        "D001",
        "from random import choice\nx = choice([1, 2])\n",
        True,
    ),
    (
        "d001-instance-method-ok",
        "D001",
        "import random\nr = None\n\n\ndef f(rng):\n    return rng.random()\n",
        False,
    ),
    (
        "d001-unrelated-module-ok",
        "D001",
        "import numpy.random as npr\nx = npr.random()\n",
        False,
    ),
    # -- D002: raw random.Random construction ------------------------------
    (
        "d002-direct",
        "D002",
        "import random\nr = random.Random(42)\n",
        True,
    ),
    (
        "d002-from-import",
        "D002",
        "from random import Random\nr = Random(42)\n",
        True,
    ),
    (
        "d002-injected-ok",
        "D002",
        "def f(rng=None):\n    return rng\n",
        False,
    ),
    # -- D003: wall clock ---------------------------------------------------
    (
        "d003-time-time",
        "D003",
        "import time\nt = time.time()\n",
        True,
    ),
    (
        "d003-perf-counter-from-import",
        "D003",
        "from time import perf_counter\nt = perf_counter()\n",
        True,
    ),
    (
        "d003-datetime-now",
        "D003",
        "import datetime\nd = datetime.datetime.now()\n",
        True,
    ),
    (
        "d003-datetime-from-import",
        "D003",
        "from datetime import datetime\nd = datetime.utcnow()\n",
        True,
    ),
    (
        "d003-sleep-ok",
        "D003",
        "import time\ntime.sleep(0.1)\n",
        False,
    ),
    # -- D004: set iteration ------------------------------------------------
    (
        "d004-for-set-call",
        "D004",
        "for x in set([3, 1, 2]):\n    print(x)\n",
        True,
    ),
    (
        "d004-set-literal",
        "D004",
        "for x in {3, 1, 2}:\n    print(x)\n",
        True,
    ),
    (
        "d004-set-union",
        "D004",
        "a = {1}\nfor x in set(a) | set([2]):\n    print(x)\n",
        True,
    ),
    (
        "d004-comprehension",
        "D004",
        "xs = [x for x in set([1, 2])]\n",
        True,
    ),
    (
        "d004-sorted-ok",
        "D004",
        "for x in sorted(set([3, 1, 2])):\n    print(x)\n",
        False,
    ),
    (
        "d004-membership-ok",
        "D004",
        "seen = set([1, 2])\nif 1 in seen:\n    print(1)\n",
        False,
    ),
    # -- U001: mixed unit suffixes ------------------------------------------
    (
        "u001-add",
        "U001",
        "total = freq_khz + delay_usec\n",
        True,
    ),
    (
        "u001-sub-attr",
        "U001",
        "d = obj.period_ticks - obj.window_cycles\n",
        True,
    ),
    (
        "u001-compare",
        "U001",
        "flag = budget_ms < spent_ticks\n",
        True,
    ),
    (
        "u001-same-unit-ok",
        "U001",
        "total = start_usec + delta_usec\n",
        False,
    ),
    (
        "u001-multiply-ok",
        "U001",
        "cycles = tick_usec * freq_khz\n",
        False,
    ),
    (
        "u001-conversion-call-ok",
        "U001",
        "total = usec_to_cycles(tick_usec, freq) + cost_cycles\n",
        False,
    ),
    (
        "u001-no-suffix-ok",
        "U001",
        "total = alpha + beta\n",
        False,
    ),
    # -- U002: float equality -----------------------------------------------
    (
        "u002-eq-fractional",
        "U002",
        "ok = value == 0.3\n",
        True,
    ),
    (
        "u002-neq-fractional",
        "U002",
        "ok = value != 0.1\n",
        True,
    ),
    (
        "u002-whole-float-ok",
        "U002",
        "ok = value == 0.0\n",
        False,
    ),
    (
        "u002-less-than-ok",
        "U002",
        "ok = value < 0.3\n",
        False,
    ),
    # -- U003: unit flow through assignment chains --------------------------
    (
        "u003-direct-suffix-assign",
        "U003",
        "freq_ms = clock_khz\n",
        True,
    ),
    (
        "u003-chain-assign",
        "U003",
        "elapsed = end_usec\nbudget_ms = elapsed\n",
        True,
    ),
    (
        "u003-chain-arithmetic",
        "U003",
        "elapsed = end_usec\ntotal = elapsed + window_ms\n",
        True,
    ),
    (
        "u003-inside-function",
        "U003",
        "def f(end_usec, window_ms):\n"
        "    elapsed = end_usec\n"
        "    return elapsed + window_ms\n",
        True,
    ),
    (
        "u003-conversion-call-ok",
        "U003",
        "budget_ms = usec_to_ms(end_usec)\n",
        False,
    ),
    (
        "u003-conflicting-reassignment-ok",
        "U003",
        "a = end_usec\na = window_ms\nb_ms = a\n",
        False,
    ),
    (
        "u003-same-unit-ok",
        "U003",
        "elapsed = end_usec\ntotal_usec = elapsed\n",
        False,
    ),
    # -- H001: mutable defaults ---------------------------------------------
    (
        "h001-list",
        "H001",
        "def f(acc=[]):\n    return acc\n",
        True,
    ),
    (
        "h001-dict-call",
        "H001",
        "def f(table=dict()):\n    return table\n",
        True,
    ),
    (
        "h001-kwonly-set",
        "H001",
        "def f(*, seen={1}):\n    return seen\n",
        True,
    ),
    (
        "h001-none-ok",
        "H001",
        "def f(acc=None):\n    return acc or []\n",
        False,
    ),
    (
        "h001-tuple-ok",
        "H001",
        "def f(dims=(1, 2)):\n    return dims\n",
        False,
    ),
    # -- H002: swallowed exceptions -----------------------------------------
    (
        "h002-bare",
        "H002",
        "try:\n    x = 1\nexcept:\n    pass\n",
        True,
    ),
    (
        "h002-broad",
        "H002",
        "try:\n    x = 1\nexcept Exception:\n    pass\n",
        True,
    ),
    (
        "h002-narrow-ok",
        "H002",
        "try:\n    x = 1\nexcept KeyError:\n    pass\n",
        False,
    ),
    (
        "h002-handled-ok",
        "H002",
        "try:\n    x = 1\nexcept Exception:\n    x = 0\n",
        False,
    ),
]


@pytest.mark.parametrize(
    "rule_id,snippet,should_fire",
    [case[1:] for case in RULE_CASES],
    ids=[case[0] for case in RULE_CASES],
)
def test_rule_table(rule_id, snippet, should_fire):
    findings = lint_source(snippet, path="repro/example.py")
    fired = [f.rule_id for f in findings if f.rule_id == rule_id]
    if should_fire:
        assert fired, f"expected {rule_id} on:\n{snippet}"
    else:
        assert not fired, f"unexpected {rule_id} on:\n{snippet}: {findings}"


# -- allowlists ---------------------------------------------------------------


def test_d002_allowed_inside_rng_module():
    source = "import random\nr = random.Random(7)\n"
    assert lint_source(source, path="src/repro/simulation/rng.py") == []


def test_d003_allowed_inside_util_module():
    source = "import time\n\n\ndef wall_clock():\n    return time.time()\n"
    assert lint_source(source, path="src/repro/util.py") == []


# -- pragmas ------------------------------------------------------------------


def test_same_line_pragma_suppresses():
    source = "import random\nx = random.random()  # kyotolint: disable=D001\n"
    assert lint_source(source, path="repro/example.py") == []


def test_pragma_only_suppresses_listed_rule():
    source = "import random\nx = random.Random(1)  # kyotolint: disable=D001\n"
    findings = lint_source(source, path="repro/example.py")
    assert [f.rule_id for f in findings] == ["D002"]


def test_pragma_disable_all_on_line():
    source = "import random\nx = random.random()  # kyotolint: disable=all\n"
    assert lint_source(source, path="repro/example.py") == []


def test_file_level_pragma():
    source = (
        "# kyotolint: disable-file=U002\n"
        "a = x == 0.1\n"
        "b = y != 0.7\n"
    )
    assert lint_source(source, path="repro/example.py") == []


def test_pragma_on_continuation_line_covers_the_construct():
    source = (
        "total = (\n"
        "    freq_khz\n"
        "    + delay_usec  # kyotolint: disable=U001\n"
        ")\n"
    )
    assert lint_source(source, path="repro/example.py") == []


def test_disable_and_disable_file_share_a_line():
    source = (
        "import random\n"
        "x = random.random()"
        "  # kyotolint: disable=D001  # kyotolint: disable-file=U002\n"
        "a = y == 0.3\n"
    )
    assert lint_source(source, path="repro/example.py") == []


def test_disable_file_then_disable_on_same_line():
    source = (
        "import random\n"
        "x = random.random()"
        "  # kyotolint: disable-file=U002  # kyotolint: disable=D001\n"
        "a = y == 0.3\n"
    )
    assert lint_source(source, path="repro/example.py") == []


# -- baseline -----------------------------------------------------------------


def test_baseline_demotes_to_warning(tmp_path):
    source = "import random\nx = random.random()\n"
    findings = lint_source(source, path="repro/example.py")
    assert exit_code(findings) == 1

    baseline = Baseline.from_findings(findings)
    path = tmp_path / "baseline.json"
    baseline.save(str(path))

    reloaded = Baseline.load(str(path))
    fresh = lint_source(source, path="repro/example.py")
    reloaded.apply(fresh)
    assert all(f.baselined and f.severity == "warning" for f in fresh)
    assert exit_code(fresh) == 0


def test_new_violation_fails_despite_baseline(tmp_path):
    old = lint_source(
        "import random\nx = random.random()\n", path="repro/example.py"
    )
    path = tmp_path / "baseline.json"
    Baseline.from_findings(old).save(str(path))

    grown = lint_source(
        "import random\nx = random.random()\nimport time\nt = time.time()\n",
        path="repro/example.py",
    )
    Baseline.load(str(path)).apply(grown)
    failing = [f for f in grown if not f.baselined]
    assert [f.rule_id for f in failing] == ["D003"]
    assert exit_code(grown) == 1


def test_missing_baseline_file_is_empty(tmp_path):
    assert len(Baseline.load(str(tmp_path / "nope.json"))) == 0


def test_baseline_saves_version_2_with_line_hashes(tmp_path):
    findings = lint_source(
        "import random\nx = random.random()\n", path="repro/example.py"
    )
    path = tmp_path / "baseline.json"
    Baseline.from_findings(findings).save(str(path))
    payload = json.loads(path.read_text())
    assert payload["version"] == 2
    (entry,) = payload["entries"]
    assert entry["rule"] == "D001"
    assert len(entry["line_hash"]) == 12


def test_baseline_rematches_within_the_line_window(tmp_path):
    source = "import random\nx = random.random()\n"
    path = tmp_path / "baseline.json"
    Baseline.from_findings(
        lint_source(source, path="repro/example.py")
    ).save(str(path))

    # Three unrelated lines added above shift the finding but keep its
    # content; the hash anchor re-matches it inside the window.
    shifted = "# a\n# b\n# c\n" + source
    fresh = lint_source(shifted, path="repro/example.py")
    Baseline.load(str(path)).apply(fresh)
    assert all(f.baselined for f in fresh)
    assert exit_code(fresh) == 0


def test_baseline_does_not_rematch_beyond_the_window(tmp_path):
    source = "import random\nx = random.random()\n"
    path = tmp_path / "baseline.json"
    Baseline.from_findings(
        lint_source(source, path="repro/example.py")
    ).save(str(path))

    shifted = "# pad\n" * 25 + source
    fresh = lint_source(shifted, path="repro/example.py")
    Baseline.load(str(path)).apply(fresh)
    assert not any(f.baselined for f in fresh)
    assert exit_code(fresh) == 1


def test_version_1_baseline_still_loads(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(
        json.dumps(
            {
                "version": 1,
                "entries": [
                    {"path": "repro/example.py", "rule": "D001", "line": 2}
                ],
            }
        )
    )
    findings = lint_source(
        "import random\nx = random.random()\n", path="repro/example.py"
    )
    Baseline.load(str(path)).apply(findings)
    assert all(f.baselined for f in findings)


# -- reports / plumbing -------------------------------------------------------


def test_json_report_schema():
    findings = lint_source(
        "import random\nx = random.random()\n", path="repro/example.py"
    )
    payload = json.loads(format_json(findings))
    assert payload["tool"] == "kyotolint"
    assert payload["summary"]["total"] == 1
    assert payload["summary"]["by_rule"] == {"D001": 1}
    (entry,) = payload["findings"]
    assert entry["rule"] == "D001"
    assert entry["path"] == "repro/example.py"
    assert entry["line"] == 2


def test_text_report_mentions_location_and_summary():
    findings = lint_source(
        "import random\nx = random.random()\n", path="repro/example.py"
    )
    text = format_text(findings)
    assert "repro/example.py:2" in text
    assert "1 failing" in text


def test_syntax_error_reported_not_raised():
    findings = lint_source("def broken(:\n", path="repro/example.py")
    assert [f.rule_id for f in findings] == ["E999"]
    assert exit_code(findings) == 1


def test_lint_file_cache_hit(tmp_path):
    clear_cache()
    target = tmp_path / "scratch.py"
    target.write_text("import random\nx = random.random()\n")
    first = lint_file(str(target))
    second = lint_file(str(target))
    assert [f.rule_id for f in first] == ["D001"]
    assert [f.to_dict() for f in first] == [f.to_dict() for f in second]
    # Changing the content invalidates the cache entry.
    target.write_text("x = 1\n")
    assert lint_file(str(target)) == []


def test_lint_paths_recurses_directories(tmp_path):
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "bad.py").write_text(
        "import random\nx = random.random()\n"
    )
    (tmp_path / "pkg" / "good.py").write_text("x = 1\n")
    findings = lint_paths([str(tmp_path)])
    assert [f.rule_id for f in findings] == ["D001"]
