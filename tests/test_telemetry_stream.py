"""Tests for the streaming telemetry sink (repro.telemetry.stream/1).

The load-bearing properties:

* round trip — a stream read back equals what the recorder saw, at full
  resolution, even when the in-memory reservoir decimated or retired;
* crash safety — truncating the stream at *any* byte yields a valid
  prefix (hypothesis sweeps the cut point), never garbage;
* retire-time flush — ``compact_retired_series`` with a sink attached
  flushes the doomed series to disk first and counts it (and without a
  sink keeps the old destructive behavior).
"""

import json
import os
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.telemetry import (
    RETIRED_SERIES_COUNTER,
    RETIRED_SERIES_STREAMED_COUNTER,
    STREAM_SCHEMA,
    MetricsRecorder,
    StreamError,
    StreamingSink,
    is_stream_dir,
    read_stream,
    recording,
)
from repro.telemetry.stream import chunk_filename, stream_chunks


def _write_demo_stream(directory, *, batch_points=4, max_chunk_bytes=4096):
    """A small multi-chunk stream; returns the recorder that fed it."""
    sink = StreamingSink(
        directory, batch_points=batch_points, max_chunk_bytes=max_chunk_bytes
    )
    recorder = MetricsRecorder(sink=sink)
    for tick in range(50):
        recorder.record("sys.llc", tick, float(tick * 100))
        if tick % 2 == 0:
            recorder.record("kyoto.quota.vm1", tick, float(-tick))
    recorder.inc("kyoto.punishments", 7.0)
    recorder.gauge("sim.final_tick", 49.0)
    sink.close(recorder)
    return recorder


class TestSinkValidation:
    def test_rejects_tiny_chunks(self, tmp_path):
        with pytest.raises(StreamError):
            StreamingSink(str(tmp_path / "s"), max_chunk_bytes=100)

    def test_rejects_nonpositive_batch(self, tmp_path):
        with pytest.raises(StreamError):
            StreamingSink(str(tmp_path / "s"), batch_points=0)

    def test_refuses_existing_stream(self, tmp_path):
        directory = str(tmp_path / "s")
        _write_demo_stream(directory)
        with pytest.raises(StreamError):
            StreamingSink(directory)

    def test_closed_sink_rejects_writes(self, tmp_path):
        sink = StreamingSink(str(tmp_path / "s"))
        sink.close()
        with pytest.raises(StreamError):
            sink.append("a", 0, 1.0)
        with pytest.raises(StreamError):
            sink.flush_series("a")
        with pytest.raises(StreamError):
            sink.flush()

    def test_close_is_idempotent(self, tmp_path):
        sink = StreamingSink(str(tmp_path / "s"))
        sink.append("a", 0, 1.0)
        sink.close()
        sink.close()
        data = read_stream(str(tmp_path / "s"))
        assert data.series["a"].ticks == [0]

    def test_context_manager_closes(self, tmp_path):
        with StreamingSink(str(tmp_path / "s")) as sink:
            sink.append("a", 1, 2.0)
        assert sink.closed
        assert read_stream(str(tmp_path / "s")).finalized


class TestRoundTrip:
    def test_stream_matches_recorder(self, tmp_path):
        directory = str(tmp_path / "s")
        recorder = _write_demo_stream(directory)
        data = read_stream(directory)
        assert data.clean and data.finalized
        assert data.series_names() == ["kyoto.quota.vm1", "sys.llc"]
        llc = recorder.series("sys.llc")
        assert data.series["sys.llc"].ticks == llc.ticks
        assert data.series["sys.llc"].values == llc.values
        assert data.counters == recorder.counters
        assert data.gauges == recorder.gauges

    def test_full_resolution_survives_reservoir_decimation(self, tmp_path):
        directory = str(tmp_path / "s")
        sink = StreamingSink(directory, batch_points=8)
        recorder = MetricsRecorder(max_series_points=4, sink=sink)
        for tick in range(64):
            recorder.record("x", tick, float(tick))
        sink.close(recorder)
        assert len(recorder.series("x").ticks) <= 4  # reservoir decimated
        data = read_stream(directory)
        assert data.series["x"].ticks == list(range(64))  # stream did not

    def test_chunks_roll_and_reassemble(self, tmp_path):
        directory = str(tmp_path / "s")
        sink = StreamingSink(directory, batch_points=1, max_chunk_bytes=4096)
        recorder = MetricsRecorder(sink=sink)
        for tick in range(300):
            recorder.record("sys.metric.with.a.long.name", tick, tick * 1.5)
        sink.close(recorder)
        assert sink.chunks_rolled > 1
        assert os.path.isfile(os.path.join(directory, chunk_filename(1)))
        data = read_stream(directory)
        assert data.chunks_read == sink.chunks_rolled
        series = data.series["sys.metric.with.a.long.name"]
        assert series.ticks == list(range(300))
        assert series.values == [tick * 1.5 for tick in range(300)]

    def test_streams_are_byte_identical_across_runs(self, tmp_path):
        a, b = str(tmp_path / "a"), str(tmp_path / "b")
        _write_demo_stream(a)
        _write_demo_stream(b)
        for path_a, path_b in zip(stream_chunks(a), stream_chunks(b)):
            with open(path_a, "rb") as fa, open(path_b, "rb") as fb:
                assert fa.read() == fb.read()

    def test_recording_context_attaches_and_closes(self, tmp_path):
        directory = str(tmp_path / "s")
        sink = StreamingSink(directory)
        recorder = MetricsRecorder()
        with recording(recorder, sink=sink) as active:
            active.record("x", 0, 1.0)
            active.inc("c", 2.0)
        assert sink.closed
        assert recorder.sink is None
        data = read_stream(directory)
        assert data.series["x"].values == [1.0]
        assert data.counters == {"c": 2.0}

    def test_recording_refuses_second_sink(self, tmp_path):
        first = StreamingSink(str(tmp_path / "a"))
        second = StreamingSink(str(tmp_path / "b"))
        recorder = MetricsRecorder(sink=first)
        with pytest.raises(ValueError):
            with recording(recorder, sink=second):
                pass  # pragma: no cover


class TestRetiredSeriesFlush:
    def _recorder(self, sink):
        recorder = MetricsRecorder(sink=sink)
        # batch_points larger than the run: points stay buffered in the
        # sink, so only the retire-time flush can save them.
        for tick in range(6):
            recorder.record("kyoto.quota.vm1", tick, float(tick))
            recorder.record("kyoto.quota.vm12", tick, float(-tick))
        return recorder

    def test_with_sink_flushes_then_counts_both(self, tmp_path):
        directory = str(tmp_path / "s")
        sink = StreamingSink(directory, batch_points=512)
        recorder = self._recorder(sink)
        assert recorder.compact_retired_series("kyoto.quota.vm1") == 1
        assert recorder.series("kyoto.quota.vm1") is None
        assert recorder.series("kyoto.quota.vm12") is not None  # dot boundary
        assert recorder.counters[RETIRED_SERIES_COUNTER] == 1.0
        assert recorder.counters[RETIRED_SERIES_STREAMED_COUNTER] == 1.0
        sink.close(recorder)
        data = read_stream(directory)
        assert data.series["kyoto.quota.vm1"].ticks == list(range(6))

    def test_without_sink_keeps_destructive_behavior(self):
        recorder = MetricsRecorder()
        for tick in range(6):
            recorder.record("kyoto.quota.vm1", tick, float(tick))
        assert recorder.compact_retired_series("kyoto.quota.vm1") == 1
        assert recorder.series("kyoto.quota.vm1") is None
        assert recorder.counters[RETIRED_SERIES_COUNTER] == 1.0
        assert RETIRED_SERIES_STREAMED_COUNTER not in recorder.counters


# -- crash safety -------------------------------------------------------------


def _demo_stream_bytes():
    """The demo stream's chunk bytes and its full per-series content."""
    with tempfile.TemporaryDirectory() as scratch:
        directory = os.path.join(scratch, "s")
        _write_demo_stream(directory)
        chunks = []
        for path in stream_chunks(directory):
            with open(path, "rb") as handle:
                chunks.append((os.path.basename(path), handle.read()))
        data = read_stream(directory)
        full = {
            name: list(zip(series.ticks, series.values))
            for name, series in data.series.items()
        }
    return chunks, full


_DEMO_CHUNKS, _DEMO_FULL = _demo_stream_bytes()
_LAST_CHUNK_LEN = len(_DEMO_CHUNKS[-1][1])


class TestTruncationSafety:
    @given(cut=st.integers(min_value=0, max_value=_LAST_CHUNK_LEN))
    @settings(max_examples=60, deadline=None)
    def test_truncate_last_chunk_at_any_byte_yields_valid_prefix(self, cut):
        with tempfile.TemporaryDirectory() as scratch:
            for name, blob in _DEMO_CHUNKS[:-1]:
                with open(os.path.join(scratch, name), "wb") as handle:
                    handle.write(blob)
            last_name, last_blob = _DEMO_CHUNKS[-1]
            with open(os.path.join(scratch, last_name), "wb") as handle:
                handle.write(last_blob[:cut])
            data = read_stream(scratch)
            for name, series in data.series.items():
                recovered = list(zip(series.ticks, series.values))
                assert recovered == _DEMO_FULL[name][: len(recovered)]
            if cut >= _LAST_CHUNK_LEN - 1:
                # Every record is a JSON object, so no strict prefix of a
                # line parses — except cutting only the trailing newline,
                # which leaves the final record complete and readable.
                assert data.clean and data.finalized
            else:
                assert not data.finalized

    def test_crash_mid_chunk_recovers_prefix_and_flags_tear(self, tmp_path):
        directory = str(tmp_path / "s")
        _write_demo_stream(directory)
        path = stream_chunks(directory)[-1]
        blob = open(path, "rb").read()
        # Cut in the middle of the final record's line.
        with open(path, "wb") as handle:
            handle.write(blob[: len(blob) - 10])
        data = read_stream(directory)
        assert not data.clean
        assert not data.finalized
        for name, series in data.series.items():
            recovered = list(zip(series.ticks, series.values))
            assert recovered == _DEMO_FULL[name][: len(recovered)]

    def test_torn_middle_chunk_stops_the_read_entirely(self, tmp_path):
        directory = str(tmp_path / "s")
        sink = StreamingSink(directory, batch_points=1, max_chunk_bytes=4096)
        recorder = MetricsRecorder(sink=sink)
        for tick in range(300):
            recorder.record("sys.metric.with.a.long.name", tick, 1.0)
        sink.close(recorder)
        chunks = stream_chunks(directory)
        assert len(chunks) >= 3
        with open(chunks[1], "a", encoding="utf-8") as handle:
            handle.write('{"torn...')
        data = read_stream(directory)
        assert not data.clean
        assert data.chunks_read == 2  # chunk 0 + the torn chunk's prefix
        assert not data.finalized

    def test_wrong_schema_header_rejected(self, tmp_path):
        directory = str(tmp_path / "s")
        os.makedirs(directory)
        with open(
            os.path.join(directory, chunk_filename(0)), "w", encoding="utf-8"
        ) as handle:
            handle.write(
                json.dumps(
                    {"event": "header", "schema": "other/1", "chunk": 0}
                )
                + "\n"
            )
        data = read_stream(directory)
        assert not data.clean
        assert data.chunks_read == 0

    def test_chunk_index_gap_ends_the_read(self, tmp_path):
        directory = str(tmp_path / "s")
        sink = StreamingSink(directory, batch_points=1, max_chunk_bytes=4096)
        recorder = MetricsRecorder(sink=sink)
        for tick in range(300):
            recorder.record("sys.metric.with.a.long.name", tick, 1.0)
        sink.close(recorder)
        chunks = stream_chunks(directory)
        assert len(chunks) >= 3
        os.unlink(chunks[1])
        data = read_stream(directory)
        assert not data.clean
        assert data.chunks_read == 1

    def test_missing_directory_and_empty_stream_raise(self, tmp_path):
        with pytest.raises(StreamError):
            read_stream(str(tmp_path / "nope"))
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(StreamError):
            read_stream(str(empty))

    def test_is_stream_dir(self, tmp_path):
        assert not is_stream_dir(str(tmp_path))
        directory = str(tmp_path / "s")
        _write_demo_stream(directory)
        assert is_stream_dir(directory)

    def test_header_carries_schema(self, tmp_path):
        directory = str(tmp_path / "s")
        _write_demo_stream(directory)
        with open(stream_chunks(directory)[0], encoding="utf-8") as handle:
            header = json.loads(handle.readline())
        assert header == {"event": "header", "schema": STREAM_SCHEMA, "chunk": 0}

    def test_unknown_events_are_skipped_forward_compatibly(self, tmp_path):
        directory = str(tmp_path / "s")
        os.makedirs(directory)
        lines = [
            {"event": "header", "schema": STREAM_SCHEMA, "chunk": 0},
            {"event": "hologram", "payload": 42},
            {"event": "points", "series": "x", "ticks": [1], "values": [2.0]},
            {"event": "final"},
        ]
        with open(
            os.path.join(directory, chunk_filename(0)), "w", encoding="utf-8"
        ) as handle:
            for line in lines:
                handle.write(json.dumps(line) + "\n")
        data = read_stream(directory)
        assert data.clean and data.finalized
        assert data.series["x"].ticks == [1]
