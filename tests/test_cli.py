"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import EXPERIMENTS, build_parser, list_experiments, run_experiments


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command(self):
        args = build_parser().parse_args(["run", "fig05", "table1"])
        assert args.experiments == ["fig05", "table1"]
        assert args.jobs == 1
        assert args.json_dir is None

    def test_run_command_jobs_and_json(self):
        args = build_parser().parse_args(
            ["run", "fig02", "--jobs", "4", "--json", "out"]
        )
        assert args.jobs == 4
        assert args.json_dir == "out"

    def test_campaign_command(self):
        args = build_parser().parse_args(
            ["campaign", "artifacts", "--output", "summary.json"]
        )
        assert args.command == "campaign"
        assert args.artifact_dir == "artifacts"
        assert args.output == "summary.json"

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestListing:
    def test_all_figures_and_tables_present(self):
        expected = {f"fig{i:02d}" for i in range(1, 13)} | {"table1", "table2"}
        # ``chaos`` is runnable by name but not part of ``run all``.
        assert set(EXPERIMENTS) == expected | {"chaos"}

    def test_listing_mentions_everything(self):
        text = list_experiments()
        for name in EXPERIMENTS:
            assert name in text


class TestRunning:
    def test_run_table1(self):
        out = io.StringIO()
        code = run_experiments(["table1"], out=out)
        assert code == 0
        assert "8096 MB" in out.getvalue()

    def test_run_multiple(self):
        out = io.StringIO()
        code = run_experiments(["table1", "table2"], out=out)
        assert code == 0
        assert "vdis2" in out.getvalue()

    def test_unknown_experiment(self):
        out = io.StringIO()
        code = run_experiments(["fig99"], out=out)
        assert code == 2
        assert "unknown experiment" in out.getvalue()

    def test_run_fig07(self):
        out = io.StringIO()
        assert run_experiments(["fig07"], out=out) == 0
        assert "Pisces" in out.getvalue()
