"""Materializer: specs build the same systems the drivers used to."""

import pytest

from repro import CreditScheduler, KS4Pisces, KS4Xen, PiscesCoKernel
from repro.core.resilient import ResilientMonitor
from repro.scenario import (
    FaultsSpec,
    MachineSpecChoice,
    MigrationSpec,
    MonitorSpec,
    ProtocolSpec,
    ScenarioError,
    ScenarioSpec,
    SchedulerChoice,
    VmSpec,
    WorkloadSpec,
    materialize,
    run_spec,
    solo_baseline_ipc,
)


def _vm(name="v", app="gcc", **kwargs):
    return VmSpec(name=name, workload=WorkloadSpec(app=app), **kwargs)


class TestMaterialize:
    def test_scheduler_kinds(self):
        for kind, cls in (
            ("xcs", CreditScheduler),
            ("ks4xen", KS4Xen),
            ("pisces", PiscesCoKernel),
            ("ks4pisces", KS4Pisces),
        ):
            built = materialize(
                ScenarioSpec(
                    name="s", scheduler=SchedulerChoice(kind=kind), vms=(_vm(),)
                )
            )
            assert isinstance(built.scheduler, cls), kind

    def test_kyoto_property_none_without_engine(self):
        built = materialize(ScenarioSpec(name="s", vms=(_vm(),)))
        assert built.kyoto is None

    def test_counted_vm_expands_with_round_robin_pinning(self):
        built = materialize(
            ScenarioSpec(
                name="s",
                vms=(_vm("d", count=3, pinned_cores=(1,)),),
            )
        )
        assert list(built.vms) == ["d-0", "d-1", "d-2"]
        total = built.system.machine.total_cores
        pins = [vm.vcpus[0].pinned_core for vm in built.vms.values()]
        assert pins == [(1 + i) % total for i in range(3)]

    def test_target_follows_protocol(self):
        built = materialize(
            ScenarioSpec(
                name="s",
                vms=(_vm("a"), _vm("b", pinned_cores=(1,))),
                protocol=ProtocolSpec(target_vm="b"),
            )
        )
        assert built.target.name == "b"

    def test_unknown_vm_lookup_is_an_error(self):
        built = materialize(ScenarioSpec(name="s", vms=(_vm("a"),)))
        with pytest.raises(KeyError):
            built.vm("ghost")

    def test_resilient_monitor_and_faults_wired_to_engine(self):
        built = materialize(
            ScenarioSpec(
                name="s",
                machine=MachineSpecChoice(preset="numa"),
                scheduler=SchedulerChoice(kind="ks4xen"),
                monitor=MonitorSpec(strategy="resilient", retries=2),
                faults=FaultsSpec(uniform_rate=0.5),
                vms=(_vm(llc_cap=250000.0),),
            )
        )
        try:
            assert isinstance(built.monitor, ResilientMonitor)
            assert built.kyoto is not None
            assert built.kyoto.monitor is built.monitor
            assert built.fault_plan is not None
        finally:
            built.uninstall_faults()

    def test_migration_spec_builds_migrator(self):
        built = materialize(
            ScenarioSpec(
                name="s",
                machine=MachineSpecChoice(preset="numa"),
                vms=(_vm(memory_node=0, pinned_cores=(0,)),),
                migration=MigrationSpec(remote_core=4, period_ticks=5),
            )
        )
        assert built.migrator is not None
        built.system.run_ticks(30)
        assert built.migrator.migrations > 0

    def test_validation_runs_before_building(self):
        with pytest.raises(ScenarioError):
            materialize(ScenarioSpec(name="", vms=()))


class TestRunSpec:
    def test_measure_report_mentions_target_ipc(self):
        report = run_spec(
            ScenarioSpec(
                name="s",
                vms=(_vm(),),
                protocol=ProtocolSpec(warmup_ticks=2, measure_ticks=4),
            )
        )
        assert "ipc" in report
        assert "v" in report

    def test_solo_baseline_footer(self):
        report = run_spec(
            ScenarioSpec(
                name="s",
                vms=(_vm("a"), _vm("b", app="lbm", pinned_cores=(1,))),
                protocol=ProtocolSpec(
                    warmup_ticks=2,
                    measure_ticks=4,
                    target_vm="a",
                    solo_baseline=True,
                ),
            )
        )
        assert "solo ipc" in report
        assert "normalized perf" in report

    def test_execution_time_requires_finite_target(self):
        with pytest.raises(ScenarioError, match="total_instructions"):
            run_spec(
                ScenarioSpec(
                    name="s",
                    vms=(_vm(),),
                    protocol=ProtocolSpec(mode="execution_time"),
                )
            )

    def test_execution_time_report(self):
        report = run_spec(
            ScenarioSpec(
                name="s",
                vms=(
                    VmSpec(
                        name="w",
                        workload=WorkloadSpec(
                            app="povray", total_instructions=1e8
                        ),
                        pinned_cores=(0,),
                    ),
                ),
                protocol=ProtocolSpec(mode="execution_time"),
            )
        )
        assert "execution_time_sec" in report

    def test_solo_baseline_ipc_strips_the_fleet(self):
        spec = ScenarioSpec(
            name="s",
            scheduler=SchedulerChoice(kind="ks4xen"),
            vms=(_vm("a", llc_cap=250000.0), _vm("b", app="lbm", pinned_cores=(1,))),
            faults=FaultsSpec(uniform_rate=1.0),
            protocol=ProtocolSpec(warmup_ticks=2, measure_ticks=4, target_vm="a"),
        )
        solo = solo_baseline_ipc(spec)
        assert solo > 0
