"""The churn-driven service mode (docs/service.md).

Covers the whole stack the service rides on: the churn generator's
determinism and distributions, admission policies, the service loop's
admit/run/retire cycle and summary, the hypervisor's dynamic-lifecycle
primitives (``admit_vm`` / ``retire_vm`` / ``vm_by_name``), telemetry
compaction at retire, Kyoto settlement at retire, the ``[service]``
scenario wiring, and the ``repro serve`` CLI.
"""

from __future__ import annotations

import argparse
import io
import json
import random

import pytest

from repro.cli import build_parser, run_serve
from repro.core.engine import KyotoEngine
from repro.hypervisor.system import HypervisorError, VirtualizedSystem
from repro.hypervisor.vm import VmConfig
from repro.scenario import ScenarioError, from_dict, loads_json, materialize
from repro.schedulers.credit import CreditScheduler
from repro.service import (
    CapacityCapAdmission,
    ChurnGenerator,
    NaiveAdmission,
    PermitBudgetAdmission,
    SERVICE_SCHEMA,
    ServiceLoop,
    VmTemplate,
)
from repro.telemetry import (
    RETIRED_SERIES_COUNTER,
    MetricsRecorder,
    recording,
)
from repro.workloads.base import Workload
from repro.workloads.profiles import application_workload

from conftest import make_vm


def _generator(seed=7, **kwargs):
    return ChurnGenerator(
        random.Random(seed), random.Random(seed + 1), **kwargs
    )


def _template(name="tpl", app="gcc", **kwargs):
    return VmTemplate(
        name=name, make_workload=lambda: application_workload(app), **kwargs
    )


# -- churn generator ----------------------------------------------------------

class TestChurnGenerator:
    def test_deterministic_given_seeds(self):
        draws = [
            (
                [_generator().arrivals_at(t) for t in range(200)],
                [_generator().draw_lifetime_ticks() for _ in range(50)],
            )
            for _ in range(2)
        ]
        assert draws[0] == draws[1]

    def test_poisson_mean_tracks_rate(self):
        gen = _generator(rate_per_tick=0.5)
        total = sum(gen.arrivals_at(t) for t in range(20_000))
        assert total == pytest.approx(10_000, rel=0.05)

    def test_zero_rate_produces_nothing(self):
        gen = _generator(rate_per_tick=0.0)
        assert all(gen.arrivals_at(t) == 0 for t in range(100))

    def test_bursts_add_batches(self):
        quiet = _generator(rate_per_tick=0.0)
        bursty = _generator(
            process="bursty",
            rate_per_tick=0.0,
            burst_probability=0.2,
            burst_size=5,
        )
        counts = [bursty.arrivals_at(t) for t in range(5_000)]
        assert all(quiet.arrivals_at(t) == 0 for t in range(100))
        assert set(counts) == {0, 5}
        burst_rate = sum(1 for c in counts if c) / len(counts)
        assert burst_rate == pytest.approx(0.2, rel=0.2)

    def test_diurnal_modulation_swings_the_rate(self):
        gen = _generator(
            rate_per_tick=0.1,
            diurnal_amplitude=1.0,
            diurnal_period_ticks=1_000,
        )
        assert gen.rate_at(0) == pytest.approx(0.1)
        assert gen.rate_at(250) == pytest.approx(0.2)  # peak of sin
        assert gen.rate_at(750) == pytest.approx(0.0, abs=1e-12)  # trough

    def test_lifetime_means(self):
        n = 20_000
        exp = _generator(lifetime_kind="exponential", lifetime_mean_ticks=500.0)
        logn = _generator(
            lifetime_kind="lognormal",
            lifetime_mean_ticks=500.0,
            lifetime_sigma=0.8,
        )
        fixed = _generator(lifetime_kind="fixed", lifetime_mean_ticks=500.0)
        for gen in (exp, logn):
            mean = sum(gen.draw_lifetime_ticks() for _ in range(n)) / n
            assert mean == pytest.approx(500.0, rel=0.1)
        assert fixed.draw_lifetime_ticks() == 500

    def test_lifetimes_floored_at_one_tick(self):
        gen = _generator(lifetime_kind="fixed", lifetime_mean_ticks=0.001)
        assert gen.draw_lifetime_ticks() == 1

    @pytest.mark.parametrize(
        "bad",
        [
            {"process": "weibull"},
            {"lifetime_kind": "pareto"},
            {"rate_per_tick": -0.1},
            {"burst_probability": 1.5},
            {"burst_size": 0},
            {"diurnal_amplitude": 2.0},
            {"diurnal_amplitude": 0.5, "diurnal_period_ticks": 0},
            {"lifetime_mean_ticks": 0.0},
            {"lifetime_kind": "lognormal", "lifetime_sigma": 0.0},
        ],
    )
    def test_rejects_bad_parameters(self, bad):
        with pytest.raises(ValueError):
            _generator(**bad)


# -- admission ----------------------------------------------------------------

class TestAdmission:
    def test_naive_admits_everything(self):
        system = VirtualizedSystem(CreditScheduler())
        config = _template().config("vm")
        assert NaiveAdmission().admits(system, config)

    def test_capacity_counts_live_vcpus(self):
        system = VirtualizedSystem(CreditScheduler())
        policy = CapacityCapAdmission(max_vcpus=2)
        assert policy.admits(system, _template(num_vcpus=2).config("a"))
        make_vm(system, "a")
        assert policy.admits(system, _template().config("b"))
        assert not policy.admits(system, _template(num_vcpus=2).config("c"))
        vm = make_vm(system, "b", core=1)
        assert not policy.admits(system, _template().config("d"))
        system.retire_vm(vm)  # capacity frees up at retire
        assert policy.admits(system, _template().config("d"))

    def test_permit_budget_counts_booked_caps(self):
        system = VirtualizedSystem(CreditScheduler())
        policy = PermitBudgetAdmission(llc_budget=500_000.0)
        make_vm(system, "a", llc_cap=250_000.0)
        assert policy.admits(
            system, _template(llc_cap=250_000.0).config("b")
        )
        make_vm(system, "b", core=1, llc_cap=250_000.0)
        assert not policy.admits(
            system, _template(llc_cap=1.0).config("c")
        )
        # Unmanaged VMs consume no budget.
        assert policy.admits(system, _template().config("c"))

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            CapacityCapAdmission(max_vcpus=0)
        with pytest.raises(ValueError):
            PermitBudgetAdmission(llc_budget=0.0)


# -- hypervisor lifecycle -----------------------------------------------------

class TestDynamicLifecycle:
    def test_admit_assigns_monotonic_ids(self):
        system = VirtualizedSystem(CreditScheduler())
        a = make_vm(system, "a")
        b = system.admit_vm(_template().config("b"))
        system.retire_vm(a)
        c = system.admit_vm(_template().config("c"))
        assert (a.vm_id, b.vm_id, c.vm_id) == (0, 1, 2)
        # gids are never reused either: a stale reference cannot alias.
        assert c.vcpus[0].gid > b.vcpus[0].gid > a.vcpus[0].gid

    def test_duplicate_name_rejected_until_retired(self):
        system = VirtualizedSystem(CreditScheduler())
        vm = make_vm(system, "dup")
        with pytest.raises(HypervisorError, match="named 'dup'"):
            system.admit_vm(_template().config("dup"))
        system.retire_vm(vm)
        system.admit_vm(_template().config("dup"))  # name free again

    def test_vm_by_name_lookup(self):
        system = VirtualizedSystem(CreditScheduler())
        vm = make_vm(system, "target")
        assert system.vm_by_name("target") is vm
        with pytest.raises(HypervisorError, match="no VM named 'ghost'"):
            system.vm_by_name("ghost")
        system.retire_vm(vm)
        with pytest.raises(HypervisorError, match="no VM named 'target'"):
            system.vm_by_name("target")

    def test_retire_unknown_vm_rejected(self):
        system = VirtualizedSystem(CreditScheduler())
        vm = make_vm(system, "once")
        system.retire_vm(vm)
        with pytest.raises(HypervisorError):
            system.retire_vm(vm)

    def test_retire_mid_run_releases_everything(self):
        recorder = MetricsRecorder()
        with recording(recorder):
            system = VirtualizedSystem(CreditScheduler())
        doomed = make_vm(system, "doomed", app="lbm", core=0)
        keeper = make_vm(system, "keeper", app="gcc", core=1)
        system.run_ticks(10)
        gid = doomed.vcpus[0].gid
        assert system.occupancy_of(doomed.vcpus[0]) > 0.0
        system.retire_vm(doomed)
        for domain in system.llc_domains:
            assert domain.occupancy_of(gid) == 0.0
        assert doomed not in system.vms
        assert all(vcpu.gid != gid for vcpu in system.vcpus)
        assert gid not in system.scheduler._vcpu_by_gid
        system.run_ticks(10)  # the survivor keeps running fine
        assert keeper.vcpus[0].cycles_run > 0
        assert recorder.counters["service.vms_retired"] == 1.0

    def test_retired_vcpu_never_dispatched_again(self):
        system = VirtualizedSystem(CreditScheduler())
        vm = make_vm(system, "gone")  # pinned to core 0
        system.run_ticks(3)
        system.retire_vm(vm)
        dispatched = []
        system.add_tick_observer(
            lambda s, tick: dispatched.extend(
                core.running.gid
                for core in s.machine.cores
                if core.running is not None
            )
        )
        system.run_ticks(5)
        assert vm.vcpus[0].gid not in dispatched

    def test_run_until_finished_names_offending_workloads(self):
        system = VirtualizedSystem(CreditScheduler())
        make_vm(system, "infinite", app="gcc")
        with pytest.raises(HypervisorError) as err:
            system.run_until_finished()
        assert "infinite" in str(err.value)
        assert "Workload" in str(err.value)

    def test_run_until_finished_empty_system_message(self):
        system = VirtualizedSystem(CreditScheduler())
        with pytest.raises(HypervisorError, match="no VMs"):
            system.run_until_finished()


# -- telemetry compaction -----------------------------------------------------

class TestRetiredSeriesCompaction:
    def test_retire_compacts_per_vm_series(self):
        recorder = MetricsRecorder()
        with recording(recorder):
            system = VirtualizedSystem(CreditScheduler())
        recorder.record("kyoto.quota.doomed", 0, 1.0)
        recorder.record("kyoto.quota.doomed.raw", 0, 1.0)
        recorder.record("kyoto.quota.doomed2", 0, 1.0)
        vm = make_vm(system, "doomed")
        system.retire_vm(vm)
        assert recorder.series("kyoto.quota.doomed") is None
        assert recorder.series("kyoto.quota.doomed.raw") is None
        # Dot-boundary matching: "doomed2" is a different VM's series.
        assert recorder.series("kyoto.quota.doomed2") is not None
        assert recorder.counters[RETIRED_SERIES_COUNTER] == 2.0

    def test_compaction_counter_absent_when_nothing_recorded(self):
        recorder = MetricsRecorder()
        with recording(recorder):
            system = VirtualizedSystem(CreditScheduler())
        system.retire_vm(make_vm(system, "quiet"))
        assert RETIRED_SERIES_COUNTER not in recorder.counters


# -- Kyoto settlement ---------------------------------------------------------

class TestKyotoSettlementAtRetire:
    def test_retire_debits_final_sample(self):
        recorder = MetricsRecorder()
        with recording(recorder):
            system = VirtualizedSystem(CreditScheduler())
            engine = KyotoEngine(system)
        vm = make_vm(system, "managed", app="lbm", llc_cap=1_000.0)
        account = engine.register_vm(vm)
        system.run_ticks(5)
        debited_before = account.total_debited
        engine.retire_vm(vm)
        assert account.total_debited > debited_before  # final debit landed
        assert engine.account_of(vm) is None
        assert recorder.counters["kyoto.settlement_debits"] == 1.0
        assert recorder.counters["kyoto.accounts_retired"] == 1.0

    def test_retire_never_ran_vm_skips_debit(self):
        recorder = MetricsRecorder()
        with recording(recorder):
            system = VirtualizedSystem(CreditScheduler())
            engine = KyotoEngine(system)
        vm = make_vm(system, "idle", llc_cap=1_000.0)
        account = engine.register_vm(vm)
        engine.retire_vm(vm)
        assert account.total_debited == 0.0  # untouched
        assert "kyoto.settlement_debits" not in recorder.counters

    def test_unmanaged_vm_retires_cleanly(self):
        system = VirtualizedSystem(CreditScheduler())
        engine = KyotoEngine(system)
        vm = make_vm(system, "besteffort")
        engine.retire_vm(vm)  # no account, no error

    def test_system_retire_settles_via_scheduler_hook(self):
        """KS4-style schedulers expose ``.kyoto``; retire_vm settles
        through them without scheduler-specific code."""
        recorder = MetricsRecorder()
        with recording(recorder):
            system = VirtualizedSystem(CreditScheduler())
            engine = KyotoEngine(system)
        system.scheduler.kyoto = engine
        vm = make_vm(system, "managed", app="lbm", llc_cap=1_000.0)
        engine.register_vm(vm)
        system.run_ticks(5)
        system.retire_vm(vm)
        assert recorder.counters["kyoto.accounts_retired"] == 1.0


# -- the service loop ---------------------------------------------------------

def _loop(system, *, rate=0.05, templates=None, admission=None, **kwargs):
    churn = ChurnGenerator(
        random.Random(3),
        random.Random(4),
        rate_per_tick=rate,
        lifetime_kind="fixed",
        lifetime_mean_ticks=kwargs.pop("lifetime", 50.0),
    )
    return ServiceLoop(
        system,
        churn,
        admission if admission is not None else NaiveAdmission(),
        templates if templates is not None else [_template()],
        random.Random(5),
        **kwargs,
    )


class TestServiceLoop:
    def test_soak_admits_and_retires(self):
        system = VirtualizedSystem(CreditScheduler())
        loop = _loop(system)
        summary = loop.run(2_000)
        assert summary["schema"] == SERVICE_SCHEMA
        assert summary["ticks_run"] == 2_000
        assert summary["admitted"] > 0
        assert summary["retired"] > 0
        assert summary["final_live_vms"] == 0  # drained
        assert summary["admitted"] == (
            summary["retired"] + summary["drained"]
        )

    def test_drain_disabled_leaves_fleet_live(self):
        system = VirtualizedSystem(CreditScheduler())
        loop = _loop(system, drain_at_end=False)
        summary = loop.run(1_000)
        assert summary["final_live_vms"] == len(system.vms)
        assert summary["final_live_vm_names"] == sorted(
            vm.name for vm in system.vms
        )

    def test_fixed_lifetimes_respected(self):
        system = VirtualizedSystem(CreditScheduler())
        loop = _loop(system, rate=0.2, lifetime=10.0, drain_at_end=False)
        loop.run(500)
        # No VM outlives its fixed 10-tick lease by a full cycle.
        for vm in system.vms:
            assert loop._expiry[vm.vm_id] > system.tick_index - 1

    def test_rejections_counted_not_admitted(self):
        recorder = MetricsRecorder()
        with recording(recorder):
            system = VirtualizedSystem(CreditScheduler())
        loop = _loop(
            system,
            rate=0.5,
            lifetime=1_000.0,
            admission=CapacityCapAdmission(max_vcpus=2),
        )
        summary = loop.run(300)
        assert summary["rejected"] > 0
        assert summary["peak_live_vms"] <= 2
        assert recorder.counters["service.vms_rejected"] == summary["rejected"]

    def test_finished_workloads_retire_early(self):
        system = VirtualizedSystem(CreditScheduler())
        tiny = VmTemplate(
            name="tiny",
            make_workload=lambda: Workload(
                name="tiny",
                behavior=application_workload("gcc").behavior,
                total_instructions=1e6,
            ),
        )
        loop = _loop(system, rate=0.05, lifetime=100_000.0, templates=[tiny])
        summary = loop.run(1_500)
        assert summary["retired"] > 0  # finished, not expired

    def test_stop_when_idle_ends_early(self):
        system = VirtualizedSystem(CreditScheduler())
        loop = _loop(system, rate=0.0, stop_when_idle=True)
        summary = loop.run(10_000)
        assert summary["ticks_run"] == 0  # empty + quiescent at tick 0

    def test_static_fleet_churns_alongside(self):
        system = VirtualizedSystem(CreditScheduler())
        static = make_vm(system, "static")
        loop = _loop(system, rate=0.05)
        loop.run(500)
        assert static not in system.vms  # drained with everyone else

    def test_template_mix_draws_from_injected_stream(self):
        system = VirtualizedSystem(CreditScheduler())
        loop = _loop(
            system,
            rate=0.2,
            templates=[_template("alpha"), _template("beta", app="lbm")],
            drain_at_end=False,
        )
        loop.run(400)
        prefixes = {vm.name.split("-s")[0] for vm in system.vms}
        assert prefixes <= {"alpha", "beta"}

    def test_bounded_memory_over_long_soak(self):
        """The leak check: a soak's recorder state is bounded by the
        *live* fleet, not by every VM that ever existed."""
        recorder = MetricsRecorder(max_series_points=128)
        with recording(recorder):
            system = VirtualizedSystem(CreditScheduler())
            engine = KyotoEngine(system)
        system.scheduler.kyoto = engine

        def observe(s, tick):
            for vm in s.vms:
                recorder.record(f"kyoto.quota.{vm.name}", tick, 1.0)

        system.add_tick_observer(observe)
        loop = _loop(system, rate=0.1, lifetime=20.0)
        summary = loop.run(2_000)
        assert summary["admitted"] > 50
        per_vm = [
            name
            for name in recorder.series_names()
            if name.startswith("kyoto.quota.")
        ]
        assert len(per_vm) == 0  # every retired VM's series compacted
        assert (
            recorder.counters[RETIRED_SERIES_COUNTER]
            == summary["retired"] + summary["drained"]
        )

    def test_run_rejects_negative_ticks(self):
        system = VirtualizedSystem(CreditScheduler())
        with pytest.raises(ValueError):
            _loop(system).run(-1)

    def test_needs_templates(self):
        system = VirtualizedSystem(CreditScheduler())
        with pytest.raises(ValueError):
            _loop(system, templates=[])


# -- scenario wiring ----------------------------------------------------------

SERVICE_DOC = {
    "name": "svc",
    "scheduler": {"kind": "ks4xen"},
    "service": {
        "arrivals": {"rate_per_tick": 0.05},
        "lifetime": {"kind": "fixed", "mean_ticks": 40.0},
        "admission": {"policy": "capacity", "max_vcpus": 3},
        "templates": [
            {
                "name": "web",
                "llc_cap": 250000.0,
                "workload": {"app": "gcc"},
            }
        ],
    },
}


class TestServiceScenario:
    def test_service_only_scenario_is_valid(self):
        spec = from_dict(SERVICE_DOC)
        assert spec.service is not None
        assert spec.service.admission.policy == "capacity"

    def test_materialize_builds_service_loop(self):
        built = materialize(from_dict(SERVICE_DOC))
        assert built.service is not None
        assert isinstance(built.service.admission, CapacityCapAdmission)
        summary = built.service.run(300)
        assert summary["admitted"] > 0
        assert summary["peak_live_vms"] <= 3

    def test_materialized_service_is_deterministic(self):
        run1 = materialize(from_dict(SERVICE_DOC)).service.run(400)
        run2 = materialize(from_dict(SERVICE_DOC)).service.run(400)
        assert run1 == run2

    def test_unknown_service_keys_rejected(self):
        doc = json.loads(json.dumps(SERVICE_DOC))
        doc["service"]["arrivals"]["ratez"] = 1.0
        with pytest.raises(ScenarioError, match="ratez"):
            from_dict(doc)

    def test_cross_field_admission_validation(self):
        doc = json.loads(json.dumps(SERVICE_DOC))
        doc["service"]["admission"] = {"policy": "naive", "max_vcpus": 4}
        with pytest.raises(ScenarioError, match="max_vcpus"):
            from_dict(doc)

    def test_service_only_migration_rejected(self):
        doc = json.loads(json.dumps(SERVICE_DOC))
        doc["migration"] = {"home_core": 0, "remote_core": 1}
        with pytest.raises(ScenarioError, match="migration"):
            from_dict(doc)

    def test_empty_templates_rejected(self):
        doc = json.loads(json.dumps(SERVICE_DOC))
        doc["service"]["templates"] = []
        with pytest.raises(ScenarioError, match="template"):
            from_dict(doc)

    def test_json_round_trip(self):
        spec = from_dict(SERVICE_DOC)
        from repro.scenario import dumps_json

        assert loads_json(dumps_json(spec)) == spec


# -- CLI ----------------------------------------------------------------------

class TestServeCli:
    def _args(self, tmp_path, **overrides):
        spec_file = tmp_path / "svc.json"
        spec_file.write_text(json.dumps(SERVICE_DOC))
        defaults = dict(
            spec=str(spec_file),
            ticks=200,
            json_dir=None,
            stop_when_idle=False,
            stream_dir=None,
        )
        defaults.update(overrides)
        return argparse.Namespace(**defaults)

    def test_serve_runs_and_writes_summary(self, tmp_path):
        out = io.StringIO()
        args = self._args(tmp_path, json_dir=str(tmp_path / "out"))
        assert run_serve(args, out=out) == 0
        artifact = tmp_path / "out" / "svc.service.json"
        summary = json.loads(artifact.read_text())
        assert summary["schema"] == SERVICE_SCHEMA
        assert summary["scenario"] == "svc"
        assert summary["ticks_run"] == 200
        assert "admitted" in out.getvalue()

    def test_serve_rejects_service_less_scenario(self, tmp_path):
        spec_file = tmp_path / "static.json"
        doc = {
            "name": "static",
            "vms": [{"name": "a", "workload": {"app": "gcc"}}],
        }
        spec_file.write_text(json.dumps(doc))
        args = self._args(tmp_path, spec=str(spec_file))
        assert run_serve(args, out=io.StringIO()) == 2

    def test_serve_rejects_negative_ticks(self, tmp_path):
        args = self._args(tmp_path, ticks=-5)
        assert run_serve(args, out=io.StringIO()) == 2

    def test_parser_wires_serve(self):
        args = build_parser().parse_args(
            ["serve", "spec.toml", "--ticks", "50", "--json", "out"]
        )
        assert args.command == "serve"
        assert args.ticks == 50
        assert args.json_dir == "out"
