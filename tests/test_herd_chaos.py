"""Chaos validation: SIGKILL the orchestrator mid-run, resume, compare.

The herd's central invariant (ISSUE 8 acceptance): a campaign killed
mid-run and resumed from its journal produces a merged summary
*equivalent* — byte-identical after :func:`normalized_for_comparison`
strips wall times and attempt bookkeeping — to an uninterrupted run of
the same campaign.  The grid mixes every behavior class: fast real
experiments, a sleeper (kill window), a flaky point that crashes once
then succeeds, and a poison point that is quarantined in both histories.
"""

import io
import json
import multiprocessing
import os
import signal
import time

import pytest

from repro import herd
from repro.experiments.registry import REGISTRY, ExperimentSpec
from repro.herd.journal import journal_path, replay_journal
from repro.herd.merge import normalized_for_comparison, summary_path
from repro.util import wall_clock

#: Campaign order mixes quick wins (kill trigger) with slow/poison tail.
GRID = ["table1", "sleepy", "flaky", "poison", "table2"]

#: max_attempts=3 absorbs one orphaned attempt (the kill) on any point
#: while still letting the flaky point's crash-then-succeed arc finish.
CONFIG = herd.HerdConfig(
    jobs=2,
    timeout_sec=30.0,
    max_attempts=3,
    backoff=herd.BackoffPolicy(
        base_delay_sec=0.05, multiplier=2.0, max_delay_sec=0.2
    ),
    seed=11,
)


def _sleepy():
    time.sleep(0.4)
    return "slept\n"


def _flaky():
    marker = os.environ["HERD_TEST_MARKER"]
    if not os.path.exists(marker):
        with open(marker, "w", encoding="utf-8"):
            pass
        os._exit(5)
    return "flaky report\n"


def _poison():
    os._exit(7)


@pytest.fixture
def chaos_registry(monkeypatch):
    monkeypatch.setitem(
        REGISTRY, "sleepy", ExperimentSpec("sleepy", "naps briefly", _sleepy)
    )
    monkeypatch.setitem(
        REGISTRY, "flaky", ExperimentSpec("flaky", "crashes once", _flaky)
    )
    monkeypatch.setitem(
        REGISTRY, "poison", ExperimentSpec("poison", "always exits 7", _poison)
    )


def _run_orchestrator_child(json_dir, marker_path):
    """Child entry: a whole campaign run, fodder for SIGKILL."""
    os.environ["HERD_TEST_MARKER"] = marker_path
    with open(os.devnull, "w", encoding="utf-8") as sink:
        herd.run_herd(GRID, json_dir, CONFIG, out=sink)


def _reference_run(json_dir, marker_path, monkeypatch):
    monkeypatch.setenv("HERD_TEST_MARKER", marker_path)
    out = io.StringIO()
    code = herd.run_herd(GRID, json_dir, CONFIG, out=out)
    assert code == 1  # the poison point quarantines
    return _load_summary(json_dir)


def _load_summary(json_dir):
    with open(summary_path(json_dir), "r", encoding="utf-8") as handle:
        return json.load(handle)


def _wait_for_first_done(json_dir, timeout=30.0):
    """Poll the journal until some point completes, mid-campaign."""
    path = journal_path(json_dir)
    deadline = wall_clock() + timeout
    while wall_clock() < deadline:
        if os.path.isfile(path):
            with open(path, "r", encoding="utf-8") as handle:
                if '"event":"done"' in handle.read():
                    return
        time.sleep(0.01)
    raise AssertionError("campaign never completed a first point")


class TestKillAndResume:
    def test_kill_resume_matches_uninterrupted_run(
        self, chaos_registry, tmp_path, monkeypatch
    ):
        ref_dir = str(tmp_path / "reference")
        chaos_dir = str(tmp_path / "chaos")
        reference = _reference_run(
            ref_dir, str(tmp_path / "marker-ref"), monkeypatch
        )

        # Chaos run: same grid in a subprocess, SIGKILLed right after
        # its first point completes.
        chaos_marker = str(tmp_path / "marker-chaos")
        # C002 analog (test-side): the child inherits the patched
        # registry via fork; nothing else is shared.
        orchestrator = multiprocessing.Process(
            target=_run_orchestrator_child, args=(chaos_dir, chaos_marker)
        )
        orchestrator.start()
        _wait_for_first_done(chaos_dir)
        os.kill(orchestrator.pid, signal.SIGKILL)
        orchestrator.join()
        assert orchestrator.exitcode == -signal.SIGKILL

        # The journal replays to a consistent mid-campaign state: at
        # least one point done, not all of them concluded.
        state = replay_journal(journal_path(chaos_dir))
        assert state.counts()["done"] >= 1
        assert state.counts()["done"] + state.counts()["failed"] < len(GRID)

        # Resume finishes the campaign from the journal.
        monkeypatch.setenv("HERD_TEST_MARKER", chaos_marker)
        out = io.StringIO()
        code = herd.resume_herd(chaos_dir, out=out)
        assert code == 1  # poison quarantined here too
        resumed = _load_summary(chaos_dir)

        # Completed points were skipped, not re-run.
        assert "already done" in out.getvalue()
        assert resumed["herd"]["resumes"] >= 1

        # The merged documents agree modulo wall times / attempt counts.
        assert normalized_for_comparison(resumed) == (
            normalized_for_comparison(reference)
        )
        # And the invariant is meaningful: both quarantined the poison
        # point and completed everything else.
        assert resumed["herd"]["quarantined"] == ["poison"]
        statuses = {
            p["name"]: p["status"] for p in resumed["herd"]["points"]
        }
        assert statuses == {
            "table1": "done",
            "sleepy": "done",
            "flaky": "done",
            "poison": "quarantined",
            "table2": "done",
        }

    def test_repeated_resume_is_idempotent(
        self, chaos_registry, tmp_path, monkeypatch
    ):
        """Kill, resume to completion, resume again: still converged."""
        ref_dir = str(tmp_path / "reference")
        chaos_dir = str(tmp_path / "chaos")
        reference = _reference_run(
            ref_dir, str(tmp_path / "marker-ref"), monkeypatch
        )
        chaos_marker = str(tmp_path / "marker-chaos")
        orchestrator = multiprocessing.Process(
            target=_run_orchestrator_child, args=(chaos_dir, chaos_marker)
        )
        orchestrator.start()
        _wait_for_first_done(chaos_dir)
        os.kill(orchestrator.pid, signal.SIGKILL)
        orchestrator.join()

        monkeypatch.setenv("HERD_TEST_MARKER", chaos_marker)
        with open(os.devnull, "w", encoding="utf-8") as sink:
            herd.resume_herd(chaos_dir, out=sink)
        final = herd.resume_herd(chaos_dir, out=io.StringIO())
        assert final == 1
        resumed = _load_summary(chaos_dir)
        assert normalized_for_comparison(resumed) == (
            normalized_for_comparison(reference)
        )
