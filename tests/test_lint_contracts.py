"""Runtime invariant-contract tests.

Contracts default to *on* under pytest, so these tests double-check both
the toggling logic and that the wired-in invariants actually trip when a
component misbehaves.
"""

from __future__ import annotations

import pytest

from repro.core.engine import KyotoEngine
from repro.core.monitor import PollutionMonitor
from repro.core.pollution import PollutionAccount
from repro.hardware.specs import paper_machine
from repro.hypervisor.system import VirtualizedSystem
from repro.hypervisor.vm import VmConfig
from repro.lint.contracts import (
    ContractViolation,
    InvariantChecker,
    check,
    contracts_enabled,
    invariant,
    set_contracts_enabled,
)
from repro.cachesim.occupancy import LlcOccupancyDomain
from repro.schedulers.credit import CreditScheduler
from repro.simulation.engine import Engine
from repro.workloads.profiles import application_workload


@pytest.fixture(autouse=True)
def _restore_contract_toggle():
    yield
    set_contracts_enabled(None)


def test_contracts_enabled_under_pytest():
    assert contracts_enabled()


def test_env_var_override(monkeypatch):
    monkeypatch.setenv("KYOTO_CONTRACTS", "0")
    assert not contracts_enabled()
    monkeypatch.setenv("KYOTO_CONTRACTS", "1")
    assert contracts_enabled()


def test_programmatic_override_wins(monkeypatch):
    monkeypatch.setenv("KYOTO_CONTRACTS", "1")
    set_contracts_enabled(False)
    assert not contracts_enabled()
    check(False, "never-raises-when-disabled")


def test_check_raises_with_name_and_detail():
    with pytest.raises(ContractViolation) as excinfo:
        check(False, "occupancy-conservation", "1.5 shares")
    assert "occupancy-conservation" in str(excinfo.value)
    assert "1.5 shares" in str(excinfo.value)


def test_invariant_checker_counts_evaluations():
    checker = InvariantChecker("Thing")
    checker.require(True, "holds")
    checker.require(True, "holds")
    assert checker.evaluated("holds") == 2
    with pytest.raises(ContractViolation) as excinfo:
        checker.require(False, "breaks", "detail")
    assert "Thing.breaks" in str(excinfo.value)
    assert checker.violations == [("breaks", "detail")]


def test_invariant_decorator_postcondition():
    class Tank:
        def __init__(self):
            self.level = 0

        @invariant(lambda self: self.level <= 10, name="level-cap")
        def fill(self, amount):
            self.level += amount
            return self.level

    tank = Tank()
    assert tank.fill(5) == 5
    with pytest.raises(ContractViolation, match="level-cap"):
        tank.fill(50)


def test_invariant_decorator_disabled_is_free():
    set_contracts_enabled(False)

    class Tank:
        def __init__(self):
            self.level = 0

        @invariant(lambda self: self.level <= 10, name="level-cap")
        def fill(self, amount):
            self.level += amount

    tank = Tank()
    tank.fill(50)  # no raise when contracts are off
    assert tank.level == 50


# -- wired-in invariants ------------------------------------------------------


class _NegativeMonitor(PollutionMonitor):
    """A broken monitor that attributes negative pollution."""

    name = "negative"

    def sample(self, vm):
        return -1.0


def _system_with_vm():
    system = VirtualizedSystem(CreditScheduler(), paper_machine())
    vm = system.create_vm(
        VmConfig(
            name="vm",
            workload=application_workload("gcc"),
            pinned_cores=[0],
            llc_cap=100_000,
        )
    )
    return system, vm


def test_kyoto_engine_absorbs_negative_sample():
    # The engine degrades to its EWMA estimate instead of crashing on a
    # lying monitor (docs/faults.md); the non-negative-sample contract
    # still guards the sanitised value it debits.
    system, vm = _system_with_vm()
    engine = KyotoEngine(system, monitor=_NegativeMonitor(system))
    engine.register_vm(vm)
    system.run_ticks(1)  # only VMs that executed in the period are sampled
    engine.on_tick_end(0)  # must not raise
    assert engine.implausible_samples == 1
    assert engine.estimated_debits == 1
    assert engine.invariants.evaluated("non-negative-sample") == 1


def test_kyoto_engine_quota_cap_invariant_runs():
    system, vm = _system_with_vm()
    engine = KyotoEngine(system)
    engine.register_vm(vm)
    engine.on_accounting(0)
    assert engine.invariants.evaluated("quota-cap") == 1


def test_pollution_account_refill_invariant():
    account = PollutionAccount(llc_cap=1000.0)
    account.refill(ticks=100)  # saturates at quota_max, must not raise
    assert account.quota == account.quota_max
    # NaN corruption sails through min()-clamping; the contract catches it.
    account.llc_cap = float("nan")
    with pytest.raises(ContractViolation, match="quota-cap"):
        account.refill(ticks=1)


def test_simulation_engine_clock_monotonic_contract():
    engine = Engine()
    fired = []
    engine.schedule(5, lambda: fired.append("a"))
    engine.run_until(10)
    assert fired == ["a"]
    assert engine.invariants.evaluated("clock-monotonic") == 1


def test_occupancy_conservation_contract_trips_on_corruption():
    domain = LlcOccupancyDomain(total_lines=100)
    domain.insert(owner=1, n_lines=50.0)
    # Corrupt the internal state beyond capacity, then mutate again.
    domain._occupancy[2] = 500.0
    with pytest.raises(ContractViolation, match="occupancy-conservation"):
        domain.insert(owner=1, n_lines=1.0)


def test_full_simulation_run_passes_contracts():
    """A normal Kyoto run end-to-end with contracts force-enabled."""
    set_contracts_enabled(True)
    from repro.core.ks4xen import KS4Xen

    system = VirtualizedSystem(KS4Xen(), paper_machine())
    system.create_vm(
        VmConfig(
            name="vsen",
            workload=application_workload("gcc"),
            pinned_cores=[0],
            llc_cap=250_000,
        )
    )
    system.create_vm(
        VmConfig(
            name="vdis",
            workload=application_workload("lbm"),
            pinned_cores=[1],
            llc_cap=250_000,
        )
    )
    system.run_msec(200)
    kyoto = system.scheduler.kyoto
    assert kyoto.invariants.evaluated("quota-cap") > 0
    assert not kyoto.invariants.violations
