"""Tests for interactive workloads, blocking, and BOOST priority."""

import pytest

from repro.cachesim.perfmodel import CacheBehavior
from repro.core.ks4xen import KS4Xen
from repro.hypervisor.system import VirtualizedSystem
from repro.hypervisor.vm import VmConfig
from repro.schedulers.credit import CreditScheduler
from repro.workloads.interactive import InteractiveWorkload, web_tier_workload
from repro.workloads.profiles import application_workload

from conftest import make_vm


def burst_behavior():
    return CacheBehavior(wss_lines=1000, lapki=5.0, base_cpi=0.5)


class TestWorkloadDefinition:
    def test_validation(self):
        with pytest.raises(ValueError):
            InteractiveWorkload("x", burst_behavior(), 0, 100)
        with pytest.raises(ValueError):
            InteractiveWorkload("x", burst_behavior(), 100, -1)

    def test_block_boundaries(self):
        w = InteractiveWorkload("x", burst_behavior(), 1000, 100)
        assert w.next_block_boundary(0) == 1000
        assert w.next_block_boundary(999) == 1000
        assert w.next_block_boundary(1000) == 2000
        assert w.next_block_boundary(2500) == 3000

    def test_web_tier_helper(self):
        w = web_tier_workload()
        assert w.think_usec == 20_000
        assert w.burst_instructions == 5e6


class TestBlockingExecution:
    def test_interactive_vm_idles_between_bursts(self):
        system = VirtualizedSystem(CreditScheduler())
        vm = system.create_vm(
            VmConfig(
                name="web",
                workload=InteractiveWorkload(
                    "web", burst_behavior(),
                    burst_instructions=5e6, think_usec=30_000,
                ),
                pinned_cores=[0],
            )
        )
        ran = [0]
        gid = vm.vcpus[0].gid
        system.add_tick_observer(
            lambda s, t: ran.__setitem__(0, ran[0] + (gid in s.last_tick_cycles))
        )
        system.run_ticks(60)
        duty = ran[0] / 60
        # 5M instructions is a fraction of one tick; then 3 ticks blocked.
        assert duty < 0.5
        assert vm.instructions_retired > 0

    def test_burst_size_respected(self):
        system = VirtualizedSystem(CreditScheduler())
        vm = system.create_vm(
            VmConfig(
                name="web",
                workload=InteractiveWorkload(
                    "web", burst_behavior(), 5e6, 30_000
                ),
                pinned_cores=[0],
            )
        )
        system.run_ticks(1)
        # Exactly one burst retired before blocking.
        assert vm.instructions_retired == pytest.approx(5e6)
        assert vm.vcpus[0].blocked_until_usec is not None

    def test_wakes_after_think_time(self):
        system = VirtualizedSystem(CreditScheduler())
        vm = system.create_vm(
            VmConfig(
                name="web",
                workload=InteractiveWorkload(
                    "web", burst_behavior(), 5e6, 15_000
                ),
                pinned_cores=[0],
            )
        )
        system.run_ticks(1)  # burst, then block until 15ms
        system.run_ticks(2)  # wakes at tick starting 20ms
        assert vm.instructions_retired > 5e6


class TestBoost:
    def test_woken_vcpu_preempts_cpu_hog(self):
        """With BOOST, an interactive VM gets serviced promptly even when
        a CPU hog shares its core."""
        system = VirtualizedSystem(CreditScheduler())
        web = system.create_vm(
            VmConfig(
                name="web",
                workload=InteractiveWorkload(
                    "web", burst_behavior(), 5e6, 25_000
                ),
                pinned_cores=[0],
            )
        )
        make_vm(system, "hog", app="povray", core=0)
        system.run_ticks(120)
        # The interactive VM completes ~1 burst per (service + think)
        # cycle; with BOOST it never waits a full 30ms slice behind the
        # hog, so it fits many bursts into the window.
        bursts = web.instructions_retired / 5e6
        assert bursts >= 20

    def test_boost_does_not_starve_the_hog(self):
        system = VirtualizedSystem(CreditScheduler())
        system.create_vm(
            VmConfig(
                name="web",
                workload=InteractiveWorkload(
                    "web", burst_behavior(), 5e6, 25_000
                ),
                pinned_cores=[0],
            )
        )
        hog = make_vm(system, "hog", app="povray", core=0)
        system.run_ticks(120)
        solo = VirtualizedSystem(CreditScheduler())
        solo_hog = make_vm(solo, "hog", app="povray", core=0)
        solo.run_ticks(120)
        # The hog keeps the vast majority of the core.
        assert hog.instructions_retired > 0.7 * solo_hog.instructions_retired

    def test_kyoto_spares_quiet_interactive_vms(self):
        """An interactive VM pollutes almost nothing: Kyoto never
        punishes it even with a small permit."""
        system = VirtualizedSystem(KS4Xen())
        web = system.create_vm(
            VmConfig(
                name="web",
                workload=web_tier_workload(),
                llc_cap=50_000.0,
                pinned_cores=[0],
            )
        )
        make_vm(system, "dis", app="lbm", core=1, llc_cap=250_000.0)
        system.run_ticks(120)
        assert system.scheduler.kyoto.punishments(web) == 0
