"""T001 fixture: metrics recorded under their canonical names."""


def record_sample(recorder):
    recorder.inc("kyoto.samples")
    recorder.gauge("kyoto.load", 0.5)
