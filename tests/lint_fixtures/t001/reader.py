"""T001 fixture: one typo'd read, one kind-mismatched read, one clean."""


def sample_total(recorder):
    return recorder.counters["kyoto.sample"]


def load_now(recorder):
    return recorder.counters.get("kyoto.load")


def ok_total(recorder):
    return recorder.counters["kyoto.samples"]
