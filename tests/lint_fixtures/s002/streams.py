"""S002 fixture: one dynamic stream name, one omitted stream name."""

from repro.simulation.rng import seeded_stream


def dynamic(host_rng, name):
    return host_rng.stream(name)


def omitted(seed):
    return seeded_stream(seed)
