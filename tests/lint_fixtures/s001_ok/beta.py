"""S001 negative fixture: every module uses a distinct stream name."""


def delay(host_rng):
    return host_rng.stream("beta-dwell").random() * 2.0
