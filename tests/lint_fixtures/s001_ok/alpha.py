"""S001 negative fixture: every module uses a distinct stream name."""


def perturb(host_rng, value):
    return value + host_rng.stream("alpha-jitter").random()
