"""T002 fixture: this module owns the copyfam schema constant."""

COPY_SCHEMA = "repro.copyfam/3"
