"""T002 fixture: hardcodes a literal that owner.py owns as a constant."""


def tag():
    return {"schema": "repro.copyfam/3"}
