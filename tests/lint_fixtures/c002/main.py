"""C002 fixture: fan-out whose entry transitively mutates a global."""

import multiprocessing

from .state import run


def fan_out(items):
    with multiprocessing.Pool(2) as pool:
        return list(pool.imap(run, items))
