"""C002 fixture: the worker entry point mutates module-global state."""

_COUNTS = {}


def bump(name):
    _COUNTS[name] = _COUNTS.get(name, 0) + 1


def run(item):
    bump(item)
    return item
