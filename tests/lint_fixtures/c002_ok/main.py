"""C002 negative fixture: the worker entry point is pure."""

import multiprocessing


def run(item):
    return item * 2


def fan_out(items):
    with multiprocessing.Pool(2) as pool:
        return list(pool.imap(run, items))
