"""C001 fixture: unpicklable payloads shipped to worker processes."""

import multiprocessing


def fan_out(items):
    with multiprocessing.Pool(2) as pool:
        return list(pool.imap(lambda item: item + 1, items))


def spawn_nested():
    def helper():
        return 1

    proc = multiprocessing.Process(target=helper)
    proc.start()
    return proc
