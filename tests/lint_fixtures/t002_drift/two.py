"""T002 fixture: this module hardcodes version 2 of the same family."""


def tag():
    return {"schema": "repro.fixturefam/2"}
