"""T002 fixture: this module pins version 1 of the fixture family."""

FIXTURE_SCHEMA = "repro.fixturefam/1"
