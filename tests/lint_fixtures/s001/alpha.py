"""S001 fixture: derives the same literal stream name as beta.py."""


def perturb(host_rng, value):
    return value + host_rng.stream("shared-jitter").random()
