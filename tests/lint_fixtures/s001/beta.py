"""S001 fixture: derives the same literal stream name as alpha.py."""


def delay(host_rng):
    return host_rng.stream("shared-jitter").random() * 2.0
