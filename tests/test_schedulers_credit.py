"""Tests for the Xen credit scheduler (XCS)."""

import pytest

from repro.hypervisor.system import VirtualizedSystem
from repro.hypervisor.vm import VmConfig
from repro.schedulers.credit import CREDITS_PER_TICK, CreditScheduler, Priority
from repro.workloads.interactive import web_tier_workload
from repro.workloads.profiles import application_workload

from conftest import make_vm


def duty_cycle(system, vm, ticks=60):
    ran = [0]
    gid = vm.vcpus[0].gid
    system.add_tick_observer(
        lambda s, t: ran.__setitem__(0, ran[0] + (gid in s.last_tick_cycles))
    )
    system.run_ticks(ticks)
    return ran[0] / ticks


class TestSoloVm:
    def test_runs_continuously(self, xcs_system):
        vm = make_vm(xcs_system)
        assert duty_cycle(xcs_system, vm) == 1.0

    def test_account_created(self, xcs_system):
        vm = make_vm(xcs_system)
        account = xcs_system.scheduler.account(vm.vcpus[0])
        assert account.weight == 256
        assert account.cap_percent is None


class TestFairSharing:
    def test_equal_weights_split_evenly(self, xcs_system):
        a = make_vm(xcs_system, "a", core=0)
        make_vm(xcs_system, "b", core=0)
        share = duty_cycle(xcs_system, a, ticks=90)
        assert share == pytest.approx(0.5, abs=0.1)

    def test_weights_bias_the_split(self, xcs_system):
        heavy = xcs_system.create_vm(
            VmConfig(
                name="heavy",
                workload=application_workload("povray"),
                weight=768,
                pinned_cores=[0],
            )
        )
        make_vm(xcs_system, "light", app="povray", core=0)
        share = duty_cycle(xcs_system, heavy, ticks=120)
        assert share > 0.6

    def test_three_way_share(self, xcs_system):
        vms = [make_vm(xcs_system, f"v{i}", app="povray", core=0) for i in range(3)]
        shares = []
        for vm in vms:
            system = VirtualizedSystem(CreditScheduler())
            clones = [make_vm(system, f"v{i}", app="povray", core=0) for i in range(3)]
            shares.append(duty_cycle(system, clones[vms.index(vm)], ticks=90))
        for share in shares:
            assert share == pytest.approx(1 / 3, abs=0.12)

    def test_slice_granularity_rotation(self, xcs_system):
        """A vCPU keeps the core for a whole 30ms slice before rotating
        (three consecutive ticks), reproducing the paper's Fig 2 pattern."""
        a = make_vm(xcs_system, "a", core=0)
        make_vm(xcs_system, "b", core=0)
        timeline = []
        gid = a.vcpus[0].gid
        xcs_system.add_tick_observer(
            lambda s, t: timeline.append(gid in s.last_tick_cycles)
        )
        xcs_system.run_ticks(18)
        # Expect runs of exactly 3 (one slice) alternating.
        runs = []
        current, count = timeline[0], 0
        for state in timeline:
            if state == current:
                count += 1
            else:
                runs.append(count)
                current, count = state, 1
        assert all(r == 3 for r in runs[:-1])


class TestCaps:
    @pytest.mark.parametrize("cap,expected", [(30, 0.3), (60, 0.6)])
    def test_cap_limits_duty_cycle(self, xcs_system, cap, expected):
        vm = xcs_system.create_vm(
            VmConfig(
                name="capped",
                workload=application_workload("povray"),
                cap_percent=cap,
                pinned_cores=[0],
            )
        )
        assert duty_cycle(xcs_system, vm, ticks=100) == pytest.approx(
            expected, abs=0.07
        )

    def test_capped_vm_parked_even_on_idle_machine(self, xcs_system):
        """A cap is a hard limit: no work conservation for capped VMs."""
        vm = xcs_system.create_vm(
            VmConfig(
                name="capped",
                workload=application_workload("povray"),
                cap_percent=50,
                pinned_cores=[0],
            )
        )
        share = duty_cycle(xcs_system, vm, ticks=100)
        assert share < 0.65

    def test_uncapped_over_vcpu_work_conserves(self, xcs_system):
        """Without a cap, an OVER vCPU still runs when the core is idle."""
        vm = make_vm(xcs_system, "solo", app="povray", core=0)
        assert duty_cycle(xcs_system, vm, ticks=60) == 1.0


class TestPriorities:
    def test_priority_follows_credits(self, xcs_system):
        vm = make_vm(xcs_system)
        account = xcs_system.scheduler.account(vm.vcpus[0])
        account.credits = 10
        assert account.priority is Priority.UNDER
        account.credits = 0
        assert account.priority is Priority.OVER

    def test_credits_bounded(self, xcs_system):
        vm = make_vm(xcs_system)
        xcs_system.run_ticks(60)
        account = xcs_system.scheduler.account(vm.vcpus[0])
        bound = CREDITS_PER_TICK * xcs_system.ticks_per_slice
        assert -bound <= account.credits <= bound

    def test_replacement_occupant_starts_fresh_stint(self, xcs_system):
        """A mid-slice occupant change (block, preemption, steal) must not
        charge the new occupant for its predecessor's ticks.

        Regression test: the stint counter used to be per-core only, so a
        replacement inherited the old occupant's tick count and was
        rotated to the back of the round-robin order after a short,
        unfairly truncated slice.
        """
        a = make_vm(xcs_system, "a", app="povray", core=0)
        b = make_vm(xcs_system, "b", app="povray", core=0)
        c = make_vm(xcs_system, "c", app="povray", core=0)
        ga, gb, gc = (vm.vcpus[0].gid for vm in (a, b, c))
        sched = xcs_system.scheduler
        core = xcs_system.machine.core(0)
        # A occupies the core for two of its three slice ticks...
        xcs_system.context_switch(core, a.vcpus[0])
        sched.on_tick_end(0)
        sched.on_tick_end(1)
        assert sched._stint[0] == 2
        assert sched._stint_gid[0] == ga
        # ... then B replaces it mid-slice.  B's stint starts at 1; with
        # the per-core counter it would hit ticks_per_slice immediately
        # and rotate B to the back after a single tick.
        xcs_system.context_switch(core, None)
        xcs_system.context_switch(core, b.vcpus[0])
        sched.on_tick_end(2)
        assert sched._stint[0] == 1
        assert sched._stint_gid[0] == gb
        assert sched._rr_order[0] == [ga, gb, gc]

    def test_idle_tick_resets_stint(self, xcs_system):
        a = make_vm(xcs_system, "a", app="povray", core=0)
        sched = xcs_system.scheduler
        core = xcs_system.machine.core(0)
        xcs_system.context_switch(core, a.vcpus[0])
        sched.on_tick_end(0)
        assert sched._stint[0] == 1
        xcs_system.context_switch(core, None)
        sched.on_tick_end(1)
        assert sched._stint[0] == 0
        assert sched._stint_gid[0] is None

    def test_blocking_interactive_vcpu_keeps_hogs_fair(self, xcs_system):
        """An interactive vCPU blocking mid-slice hands its core to a
        CPU hog; the hog's slice accounting starts fresh, so the two
        hogs keep splitting the leftover time evenly."""
        xcs_system.create_vm(
            VmConfig(
                name="web",
                workload=web_tier_workload(),
                pinned_cores=[0],
            )
        )
        hog_a = make_vm(xcs_system, "hog_a", app="povray", core=0)
        hog_b = make_vm(xcs_system, "hog_b", app="povray", core=0)
        web = xcs_system.vm_by_name("web")
        xcs_system.run_ticks(300)
        # The interactive VM completed several burst/think cycles, i.e.
        # it blocked mid-slice and was re-serviced repeatedly...
        assert web.instructions_retired > 3 * web_tier_workload().burst_instructions
        # ... and the hogs stay fair despite the repeated mid-slice
        # occupant changes the blocking causes.
        ratio = hog_a.instructions_retired / hog_b.instructions_retired
        assert ratio == pytest.approx(1.0, abs=0.15)

    def test_finished_vcpu_releases_core(self, xcs_system):
        finite = xcs_system.create_vm(
            VmConfig(
                name="short",
                workload=application_workload("povray", total_instructions=1e6),
                pinned_cores=[0],
            )
        )
        other = make_vm(xcs_system, "long", app="povray", core=0)
        xcs_system.run_ticks(100)
        assert finite.finished
        # The survivor gets the whole core afterwards.
        start = other.instructions_retired
        xcs_system.run_ticks(30)
        gained = other.instructions_retired - start
        solo = VirtualizedSystem(CreditScheduler())
        solo_vm = make_vm(solo, app="povray", core=0)
        solo.run_ticks(30)
        assert gained == pytest.approx(solo_vm.instructions_retired, rel=0.1)
