"""Property-based tests (hypothesis) on core data structures/invariants."""

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.analysis.kendall import kendall_tau, ranking_from_scores
from repro.cachesim.occupancy import LlcOccupancyDomain, waterfill_allocation
from repro.cachesim.perfmodel import (
    CacheBehavior,
    cycles_per_instruction,
    execute_step,
    hit_probability,
)
from repro.cachesim.setassoc import SetAssociativeCache
from repro.core.equation import llc_cap_act
from repro.core.pollution import PollutionAccount
from repro.hardware.latency import PAPER_LATENCIES
from repro.hardware.specs import CacheSpec, KIB
from repro.pmc.counters import COUNTER_MASK, delta


# -- strategies ---------------------------------------------------------------

behaviors = st.builds(
    CacheBehavior,
    wss_lines=st.floats(min_value=1, max_value=1e7),
    lapki=st.floats(min_value=0, max_value=1000),
    base_cpi=st.floats(min_value=0.1, max_value=5),
    locality_theta=st.floats(min_value=0.1, max_value=4),
    stream_fraction=st.floats(min_value=0, max_value=1),
    mlp=st.floats(min_value=1, max_value=64),
)

pressure_maps = st.dictionaries(
    st.integers(min_value=0, max_value=8),
    st.floats(min_value=0, max_value=1e6),
    min_size=1,
    max_size=6,
)


class TestHitProbabilityProperties:
    @given(behaviors, st.floats(min_value=0, max_value=2e7))
    def test_bounded(self, behavior, occ):
        p = hit_probability(behavior, occ)
        assert 0.0 <= p <= 1.0

    @given(behaviors, st.floats(min_value=0, max_value=1e7),
           st.floats(min_value=0, max_value=1e7))
    def test_monotone_in_occupancy(self, behavior, occ_a, occ_b):
        lo, hi = sorted((occ_a, occ_b))
        assert hit_probability(behavior, lo) <= hit_probability(behavior, hi) + 1e-12

    @given(behaviors, st.floats(min_value=0, max_value=1e7))
    def test_streaming_caps_hits(self, behavior, occ):
        # (The lapki == 0 case is a degenerate "no LLC traffic" shortcut.)
        assume(behavior.lapki > 0)
        assert hit_probability(behavior, occ) <= 1.0 - behavior.stream_fraction + 1e-12


class TestCpiProperties:
    @given(behaviors, st.floats(min_value=0, max_value=1))
    def test_cpi_at_least_base(self, behavior, hit):
        cpi = cycles_per_instruction(behavior, hit, PAPER_LATENCIES)
        assert cpi >= behavior.base_cpi - 1e-12

    @given(behaviors, st.floats(min_value=0, max_value=1),
           st.floats(min_value=0, max_value=1))
    def test_more_hits_never_slower(self, behavior, hit_a, hit_b):
        lo, hi = sorted((hit_a, hit_b))
        slow = cycles_per_instruction(behavior, lo, PAPER_LATENCIES)
        fast = cycles_per_instruction(behavior, hi, PAPER_LATENCIES)
        assert fast <= slow + 1e-9

    @given(behaviors, st.floats(min_value=0, max_value=1e7),
           st.integers(min_value=0, max_value=10_000_000))
    def test_execute_step_conservation(self, behavior, occ, cycles):
        result = execute_step(behavior, occ, cycles, PAPER_LATENCIES)
        assert result.instructions >= 0
        assert 0 <= result.llc_misses <= result.llc_accesses + 1e-9
        assert result.cycles == cycles


class TestOccupancyProperties:
    @given(pressure_maps)
    @settings(max_examples=60)
    def test_relax_conserves_capacity(self, pressures):
        domain = LlcOccupancyDomain(100_000)
        caps = {owner: 200_000.0 for owner in pressures}
        for _ in range(10):
            domain.relax(pressures, caps)
            assert domain.used_lines <= 100_000 + 1e-6
            assert all(occ >= 0 for occ in domain.snapshot().values())

    @given(pressure_maps)
    @settings(max_examples=60)
    def test_waterfill_respects_caps_and_capacity(self, pressures):
        caps = {owner: (owner + 1) * 10_000.0 for owner in pressures}
        alloc = waterfill_allocation(100_000, pressures, caps)
        assert sum(alloc.values()) <= 100_000 + 1e-6
        for owner, amount in alloc.items():
            assert amount <= caps.get(owner, float("inf")) + 1e-9
            assert amount >= 0

    @given(st.floats(min_value=1, max_value=1e6),
           st.floats(min_value=0, max_value=1e6))
    def test_insert_never_overflows(self, capacity, amount):
        domain = LlcOccupancyDomain(capacity)
        domain.insert(1, amount)
        assert domain.used_lines <= capacity + 1e-6


class TestCacheProperties:
    @given(st.lists(st.integers(min_value=0, max_value=1 << 20), min_size=1,
                    max_size=300))
    @settings(max_examples=40)
    def test_accesses_partition_into_hits_and_misses(self, addresses):
        cache = SetAssociativeCache(CacheSpec("T", 1 * KIB, 2))
        for address in addresses:
            cache.access(address)
        stats = cache.stats.total
        assert stats.hits + stats.misses == stats.accesses == len(addresses)

    @given(st.lists(st.integers(min_value=0, max_value=1 << 20), min_size=1,
                    max_size=300))
    @settings(max_examples=40)
    def test_residency_bounded_by_capacity(self, addresses):
        cache = SetAssociativeCache(CacheSpec("T", 1 * KIB, 2))
        for address in addresses:
            cache.access(address)
        assert cache.resident_lines() <= cache.spec.num_lines

    @given(st.lists(st.integers(min_value=0, max_value=1 << 14), min_size=1,
                    max_size=200))
    @settings(max_examples=40)
    def test_immediate_rereference_always_hits(self, addresses):
        cache = SetAssociativeCache(CacheSpec("T", 1 * KIB, 2))
        for address in addresses:
            cache.access(address)
            assert cache.access(address).hit is True


class TestPollutionProperties:
    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1,
                    max_size=100),
           st.floats(min_value=1, max_value=1e6))
    def test_quota_never_exceeds_max(self, debits, llc_cap):
        account = PollutionAccount(llc_cap=llc_cap)
        for debit in debits:
            account.debit(debit)
            account.refill(ticks=3)
            assert account.quota <= account.quota_max + 1e-9

    @given(st.lists(st.floats(min_value=0, max_value=1e6), max_size=100),
           st.floats(min_value=1, max_value=1e6))
    def test_punishments_monotone_nondecreasing(self, debits, llc_cap):
        account = PollutionAccount(llc_cap=llc_cap)
        previous = 0
        for debit in debits:
            account.debit(debit)
            assert account.punishments >= previous
            previous = account.punishments

    @given(st.floats(min_value=1, max_value=1e6),
           st.floats(min_value=0, max_value=0.99))
    def test_compliant_rate_never_punished(self, llc_cap, fraction):
        account = PollutionAccount(llc_cap=llc_cap)
        for _ in range(50):
            account.debit(llc_cap * fraction)
            account.refill(ticks=1)
        assert account.punishments == 0


class TestEquationProperties:
    @given(st.floats(min_value=0, max_value=1e12),
           st.floats(min_value=1, max_value=1e12))
    def test_nonnegative(self, misses, cycles):
        assert llc_cap_act(misses, cycles, 2_800_000) >= 0

    @given(st.floats(min_value=1e-6, max_value=1e9),
           st.floats(min_value=1, max_value=1e12),
           st.floats(min_value=1.0, max_value=10.0))
    def test_scale_invariance(self, misses, cycles, k):
        """Scaling misses and cycles together leaves the rate unchanged."""
        base = llc_cap_act(misses, cycles, 2_800_000)
        scaled = llc_cap_act(misses * k, cycles * k, 2_800_000)
        assert math.isclose(base, scaled, rel_tol=1e-9, abs_tol=1e-12)


class TestPmcProperties:
    @given(st.integers(min_value=0, max_value=COUNTER_MASK),
           st.integers(min_value=0, max_value=COUNTER_MASK))
    def test_delta_inverts_wrapping_addition(self, start, increment):
        later = (start + increment) & COUNTER_MASK
        assert delta(start, later) == increment


class TestPlacementProperties:
    fleets = st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=1e6),  # pollution
            st.booleans(),                          # sensitive
        ),
        min_size=1,
        max_size=8,
    )

    @staticmethod
    def _descriptors(raw):
        from repro.placement.algorithms import VmDescriptor

        return [
            VmDescriptor(f"vm{i}", "gcc", pollution, sensitive)
            for i, (pollution, sensitive) in enumerate(raw)
        ]

    @given(fleets)
    @settings(max_examples=60)
    def test_balance_meets_lpt_approximation_bound(self, raw):
        """Greedy longest-processing-time respects its classical 4/3
        guarantee against the makespan lower bound."""
        from repro.placement.algorithms import balance_pollution_placement

        vms = self._descriptors(raw)
        balanced = balance_pollution_placement(vms, 2, cores_per_host=8)
        total = sum(vm.pollution for vm in vms)
        biggest = max(vm.pollution for vm in vms)
        optimal_lower_bound = max(total / 2, biggest)
        assert (
            balanced.max_host_pollution
            <= 4 / 3 * optimal_lower_bound + 1e-6
        )

    @given(fleets)
    @settings(max_examples=60)
    def test_every_vm_placed_exactly_once(self, raw):
        from repro.placement.algorithms import balance_pollution_placement

        vms = self._descriptors(raw)
        placement = balance_pollution_placement(vms, 3, cores_per_host=8)
        placed = [
            vm.name
            for host_vms in placement.assignments.values()
            for vm in host_vms
        ]
        assert sorted(placed) == sorted(vm.name for vm in vms)


class TestKendallProperties:
    @given(st.permutations(list("abcdefg")))
    def test_self_correlation_is_one(self, order):
        assert kendall_tau(order, order) == 1.0

    @given(st.permutations(list("abcdefg")))
    def test_reverse_is_minus_one(self, order):
        assert kendall_tau(order, list(reversed(order))) == -1.0

    @given(st.permutations(list("abcdef")), st.permutations(list("abcdef")))
    def test_bounded_and_symmetric(self, a, b):
        tau = kendall_tau(a, b)
        assert -1.0 <= tau <= 1.0
        assert tau == kendall_tau(b, a)

    @given(st.dictionaries(st.text(min_size=1, max_size=3),
                           st.floats(allow_nan=False, allow_infinity=False),
                           min_size=2, max_size=8))
    def test_ranking_is_a_permutation(self, scores):
        order = ranking_from_scores(scores)
        assert sorted(order) == sorted(scores)
