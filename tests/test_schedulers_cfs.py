"""Tests for the CFS-style fair scheduler."""

import pytest

from repro.hypervisor.system import VirtualizedSystem
from repro.hypervisor.vm import VmConfig
from repro.schedulers.cfs import CfsScheduler, NICE0_WEIGHT
from repro.workloads.profiles import application_workload

from conftest import make_vm


def cfs_system():
    return VirtualizedSystem(CfsScheduler())


def duty_cycle(system, vm, ticks=90):
    ran = [0]
    gid = vm.vcpus[0].gid
    system.add_tick_observer(
        lambda s, t: ran.__setitem__(0, ran[0] + (gid in s.last_tick_cycles))
    )
    system.run_ticks(ticks)
    return ran[0] / ticks


class TestFairness:
    def test_solo_vm_runs_continuously(self):
        system = cfs_system()
        vm = make_vm(system, app="povray")
        assert duty_cycle(system, vm) == 1.0

    def test_equal_weights_split_evenly(self):
        system = cfs_system()
        a = make_vm(system, "a", app="povray", core=0)
        make_vm(system, "b", app="povray", core=0)
        assert duty_cycle(system, a) == pytest.approx(0.5, abs=0.07)

    def test_weighted_split(self):
        system = cfs_system()
        heavy = system.create_vm(
            VmConfig(
                name="heavy",
                workload=application_workload("povray"),
                weight=512,  # 2x default
                pinned_cores=[0],
            )
        )
        make_vm(system, "light", app="povray", core=0)
        assert duty_cycle(system, heavy, ticks=120) == pytest.approx(2 / 3, abs=0.1)

    def test_vruntime_advances_only_when_running(self):
        system = cfs_system()
        a = make_vm(system, "a", app="povray", core=0)
        b = make_vm(system, "b", app="povray", core=0)
        system.run_ticks(30)
        va = system.scheduler.account(a.vcpus[0]).vruntime
        vb = system.scheduler.account(b.vcpus[0]).vruntime
        assert va > 0 and vb > 0
        # Fairness: vruntimes stay close.
        assert va == pytest.approx(vb, rel=0.25)

    def test_latecomer_starts_at_min_vruntime(self):
        system = cfs_system()
        a = make_vm(system, "a", app="povray", core=0)
        system.run_ticks(30)
        b = make_vm(system, "b", app="povray", core=0)
        account = system.scheduler.account(b.vcpus[0])
        assert account.vruntime == pytest.approx(
            system.scheduler.account(a.vcpus[0]).vruntime
        )

    def test_weight_derived_from_vm_config(self):
        system = cfs_system()
        vm = system.create_vm(
            VmConfig(
                name="w",
                workload=application_workload("gcc"),
                weight=512,
                pinned_cores=[0],
            )
        )
        assert system.scheduler.account(vm.vcpus[0]).weight == 2 * NICE0_WEIGHT
