"""Tests for workloads: base, profiles, micro benchmark, trace generation."""

import pytest

from repro.cachesim.perfmodel import solo_ipc
from repro.hardware.latency import PAPER_LATENCIES
from repro.hardware.specs import paper_machine
from repro.workloads.base import LINE_BYTES, Workload, WorkloadProgress, bytes_to_lines
from repro.workloads.micro import (
    CacheFitCategory,
    category_pairs,
    classify_working_set,
    micro_workload,
    pointer_chase_behavior,
)
from repro.workloads.profiles import (
    DISRUPTIVE_APPS,
    FIG4_APPLICATIONS,
    SENSITIVE_APPS,
    application_behavior,
    application_names,
    application_workload,
    vm_application,
    vm_workload,
)
from repro.workloads.tracegen import (
    TraceConfig,
    generate_trace,
    pointer_chain_addresses,
    walk_pointer_chain,
)


class TestWorkloadBase:
    def test_bytes_to_lines(self):
        assert bytes_to_lines(6400) == 100

    def test_finite_copy(self):
        w = application_workload("gcc")
        finite = w.finite(1e9)
        assert finite.total_instructions == 1e9
        assert w.total_instructions is None
        assert finite.behavior is w.behavior

    def test_invalid_total_instructions(self):
        with pytest.raises(ValueError):
            application_workload("gcc", total_instructions=0)

    def test_progress_endless_never_done(self):
        progress = WorkloadProgress(application_workload("gcc"))
        progress.advance(1e12)
        assert progress.done is False
        assert progress.remaining_instructions == float("inf")

    def test_progress_finite_completes(self):
        progress = WorkloadProgress(application_workload("gcc", 100))
        progress.advance(60)
        assert progress.done is False
        assert progress.remaining_instructions == 40
        progress.advance(40)
        assert progress.done is True

    def test_progress_negative_rejected(self):
        progress = WorkloadProgress(application_workload("gcc"))
        with pytest.raises(ValueError):
            progress.advance(-1)


class TestProfiles:
    def test_all_fig4_apps_exist(self):
        for app in FIG4_APPLICATIONS:
            assert application_behavior(app) is not None

    def test_unknown_app_rejected(self):
        with pytest.raises(ValueError):
            application_behavior("doom")

    def test_table2_mapping(self):
        assert vm_application("vsen1") == "gcc"
        assert vm_application("vsen2") == "omnetpp"
        assert vm_application("vsen3") == "soplex"
        assert vm_application("vdis1") == "lbm"
        assert vm_application("vdis2") == "blockie"
        assert vm_application("vdis3") == "mcf"

    def test_unknown_vm_rejected(self):
        with pytest.raises(ValueError):
            vm_application("vdis9")

    def test_vm_workload_builds(self):
        w = vm_workload("vdis1", total_instructions=1e6)
        assert w.name == "lbm"
        assert w.total_instructions == 1e6

    def test_names_sorted_and_complete(self):
        names = application_names()
        assert names == sorted(names)
        assert set(FIG4_APPLICATIONS) <= set(names)
        assert {"hmmer", "povray"} <= set(names)

    def test_disruptors_out_pollute_plain_sensitives(self):
        """Every disruptor's warm solo pollution rate clearly exceeds the
        gcc/omnetpp sensitives'.  (soplex, the paper's most aggressive
        sensitive VM, sits just below mcf — exactly its Fig 4 position.)"""
        def rate(app):
            b = application_behavior(app)
            ipc = solo_ipc(b, PAPER_LATENCIES)
            # misses per kilo-instruction when warm * ipc ~ pollution
            from repro.cachesim.perfmodel import hit_probability
            cap = min(b.wss_lines, 163_840)
            mpki = b.lapki * (1 - hit_probability(b, cap))
            return mpki * ipc

        plain_sensitives = max(rate("gcc"), rate("omnetpp"))
        best_disruptor = min(rate(a) for a in DISRUPTIVE_APPS.values())
        assert best_disruptor > 2 * plain_sensitives

    def test_quiet_apps_are_quiet(self):
        assert application_behavior("hmmer").lapki < 5
        assert application_behavior("povray").lapki < 5


class TestMicroBenchmark:
    def test_classification_c1(self):
        socket = paper_machine().sockets[0]
        assert classify_working_set(100 * 1024, socket) is CacheFitCategory.C1_FITS_ILC

    def test_classification_c2(self):
        socket = paper_machine().sockets[0]
        assert classify_working_set(5 << 20, socket) is CacheFitCategory.C2_FITS_LLC

    def test_classification_c3(self):
        socket = paper_machine().sockets[0]
        assert classify_working_set(50 << 20, socket) is CacheFitCategory.C3_EXCEEDS_LLC

    def test_classification_boundary_llc(self):
        socket = paper_machine().sockets[0]
        assert (
            classify_working_set(socket.llc.size_bytes, socket)
            is CacheFitCategory.C2_FITS_LLC
        )

    def test_invalid_wss_rejected(self):
        with pytest.raises(ValueError):
            classify_working_set(0, paper_machine().sockets[0])

    def test_c1_produces_no_llc_traffic(self):
        assert pointer_chase_behavior(100 * 1024).lapki == 0.0

    def test_c2_c3_produce_llc_traffic(self):
        assert pointer_chase_behavior(5 << 20).lapki > 0
        assert pointer_chase_behavior(50 << 20).lapki > 0

    def test_disruptive_variant_has_more_mlp(self):
        rep = pointer_chase_behavior(5 << 20)
        dis = pointer_chase_behavior(5 << 20, disruptive=True)
        assert dis.mlp > rep.mlp

    def test_category_pairs_cover_all(self):
        pairs = category_pairs()
        assert set(pairs) == set(CacheFitCategory)

    def test_pair_sizes_in_category(self):
        socket = paper_machine().sockets[0]
        for category, pair in category_pairs().items():
            assert classify_working_set(pair.representative_bytes, socket) is category
            assert classify_working_set(pair.disruptive_bytes, socket) is category

    def test_micro_workload_name(self):
        assert micro_workload(6 << 20).name == "micro-6MB"
        assert micro_workload(6 << 20, disruptive=True).name == "micro-6MB-dis"


class TestTraceGen:
    def test_length(self):
        b = application_behavior("gcc")
        trace = list(generate_trace(b, 1000))
        assert len(trace) == 1000

    def test_deterministic(self):
        b = application_behavior("gcc")
        a = list(generate_trace(b, 500, TraceConfig(seed=1)))
        c = list(generate_trace(b, 500, TraceConfig(seed=1)))
        assert a == c

    def test_seed_changes_trace(self):
        b = application_behavior("gcc")
        a = list(generate_trace(b, 500, TraceConfig(seed=1)))
        c = list(generate_trace(b, 500, TraceConfig(seed=2)))
        assert a != c

    def test_line_aligned(self):
        b = application_behavior("gcc")
        assert all(a % LINE_BYTES == 0 for a in generate_trace(b, 200))

    def test_streaming_app_generates_fresh_lines(self):
        b = application_behavior("lbm")  # stream_fraction 0.92
        trace = list(generate_trace(b, 2000))
        # Most addresses should be unique (streamed once).
        assert len(set(trace)) > 0.8 * len(trace)

    def test_reuse_app_revisits_lines(self):
        b = application_behavior("bzip")  # small working set, mostly reuse
        trace = list(generate_trace(b, 100_000))
        assert len(set(trace)) < 0.75 * len(trace)

    def test_negative_count_rejected(self):
        b = application_behavior("gcc")
        with pytest.raises(ValueError):
            list(generate_trace(b, -1))

    def test_invalid_hot_fraction(self):
        with pytest.raises(ValueError):
            TraceConfig(hot_fraction=0.0)

    def test_pointer_chain_visits_every_line_once(self):
        chain = pointer_chain_addresses(64 * 100)
        assert len(chain) == 100
        assert len(set(chain)) == 100

    def test_pointer_chain_deterministic(self):
        assert pointer_chain_addresses(6400, seed=5) == pointer_chain_addresses(
            6400, seed=5
        )

    def test_walk_laps(self):
        chain = pointer_chain_addresses(640)
        walked = list(walk_pointer_chain(chain, 3))
        assert len(walked) == 30
        assert walked[:10] == walked[10:20]

    def test_walk_negative_laps_rejected(self):
        with pytest.raises(ValueError):
            list(walk_pointer_chain([0], -1))
