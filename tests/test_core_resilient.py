"""Tests for the resilience layer: plausibility guard, circuit breaker,
failover chain, and the engine's graceful degradation on monitor failure."""

import math

import pytest

from repro.core.engine import KyotoEngine
from repro.core.equation import is_plausible_rate, max_plausible_rate
from repro.core.monitor import (
    MonitorError,
    PollutionMonitor,
    SocketDedicationMonitor,
    SocketDedicationSampler,
)
from repro.core.resilient import CircuitBreaker, ResilientMonitor
from repro.hypervisor.migration import PeriodicMigrator
from repro.hypervisor.system import HypervisorError, VirtualizedSystem
from repro.schedulers.credit import CreditScheduler
from repro.telemetry import MetricsRecorder

from conftest import make_vm


def plain_system(**kwargs):
    return VirtualizedSystem(CreditScheduler(), **kwargs)


class ScriptedMonitor(PollutionMonitor):
    """Plays back a script of values; a MonitorError instance raises."""

    name = "scripted"

    def __init__(self, system, script):
        super().__init__(system)
        self.script = list(script)
        self.calls = 0

    def sample(self, vm):
        item = self.script[min(self.calls, len(self.script) - 1)]
        self.calls += 1
        if isinstance(item, MonitorError):
            raise item
        return item


class TestPlausibility:
    def test_ceiling_is_one_miss_per_cycle(self):
        assert max_plausible_rate(2_800_000) == 2_800_000.0
        assert max_plausible_rate(2_800_000, num_vcpus=2) == 5_600_000.0

    def test_ceiling_validation(self):
        with pytest.raises(ValueError):
            max_plausible_rate(0)
        with pytest.raises(ValueError):
            max_plausible_rate(2_800_000, num_vcpus=0)

    def test_rejects_non_finite_and_negative(self):
        assert not is_plausible_rate(float("nan"))
        assert not is_plausible_rate(float("inf"))
        assert not is_plausible_rate(-1.0)
        assert is_plausible_rate(0.0)

    def test_rejects_above_ceiling(self):
        assert is_plausible_rate(100.0, ceiling=2_800_000.0)
        assert not is_plausible_rate(2_800_001.0, ceiling=2_800_000.0)

    def test_rejects_spikes_relative_to_last_good(self):
        assert is_plausible_rate(400.0, last_good=100.0, spike_factor=50.0)
        assert not is_plausible_rate(
            5_001.0, last_good=100.0, spike_factor=50.0
        )

    def test_spike_guard_inactive_without_history(self):
        assert is_plausible_rate(1e6, last_good=None, spike_factor=50.0)
        assert is_plausible_rate(1e6, last_good=0.0, spike_factor=50.0)

    def test_spike_factor_validation(self):
        with pytest.raises(ValueError):
            is_plausible_rate(1.0, last_good=1.0, spike_factor=1.0)


class TestCircuitBreaker:
    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker("x", failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker("x", cooldown_ticks=0)
        with pytest.raises(ValueError):
            CircuitBreaker("x", cooldown_ticks=10, max_cooldown_ticks=5)

    def test_opens_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker("x", failure_threshold=3, cooldown_ticks=10)
        breaker.record_failure(0)
        breaker.record_failure(1)
        assert breaker.state == "closed"
        breaker.record_failure(2)
        assert breaker.state == "open"
        assert breaker.opens == 1
        assert not breaker.allow(3)
        assert breaker.allow(12)  # cooldown expired: half-open trial

    def test_success_resets_failure_streak(self):
        breaker = CircuitBreaker("x", failure_threshold=2)
        breaker.record_failure(0)
        breaker.record_success(1)
        breaker.record_failure(2)
        assert breaker.state == "closed"

    def test_half_open_success_closes_and_resets_backoff(self):
        breaker = CircuitBreaker("x", failure_threshold=1, cooldown_ticks=10)
        breaker.record_failure(0)  # open until 10
        breaker.record_success(10)
        assert breaker.state == "closed"
        assert breaker.closes == 1
        breaker.record_failure(20)  # re-open: cooldown back at 10
        assert not breaker.allow(29)
        assert breaker.allow(30)

    def test_failed_trial_doubles_cooldown_up_to_cap(self):
        breaker = CircuitBreaker(
            "x", failure_threshold=1, cooldown_ticks=10, max_cooldown_ticks=30
        )
        breaker.record_failure(0)   # open until 10
        breaker.record_failure(10)  # failed trial: cooldown 20, until 30
        assert not breaker.allow(29)
        breaker.record_failure(30)  # cooldown 40 -> capped at 30, until 60
        assert not breaker.allow(59)
        assert breaker.allow(60)


class TestResilientMonitor:
    def test_needs_a_chain(self):
        with pytest.raises(ValueError):
            ResilientMonitor(plain_system(), chain=[])

    def test_first_member_success_short_circuits(self):
        system = plain_system()
        vm = make_vm(system)
        first = ScriptedMonitor(system, [100.0])
        second = ScriptedMonitor(system, [999.0])
        monitor = ResilientMonitor(system, chain=[first, second])
        assert monitor.sample(vm) == 100.0
        assert second.calls == 0
        assert monitor.estimate_of(vm) == 100.0

    def test_monitor_error_fails_over(self):
        system = plain_system()
        vm = make_vm(system)
        broken = ScriptedMonitor(system, [MonitorError("down")])
        backup = ScriptedMonitor(system, [70.0])
        monitor = ResilientMonitor(system, chain=[broken, backup], retries=1)
        assert monitor.sample(vm) == 70.0
        assert broken.calls == 2  # first attempt + one retry
        assert monitor.retries_performed == 1
        assert monitor.failovers == 1

    def test_implausible_values_rejected_in_favor_of_next_member(self):
        system = plain_system()
        vm = make_vm(system)
        liar = ScriptedMonitor(system, [float("nan")])
        honest = ScriptedMonitor(system, [50.0])
        monitor = ResilientMonitor(system, chain=[liar, honest])
        assert monitor.sample(vm) == 50.0
        assert monitor.rejected_samples == 1

    def test_spike_rejected_after_history_established(self):
        system = plain_system()
        vm = make_vm(system)
        spiky = ScriptedMonitor(system, [100.0, 100.0 * 60, 100.0])
        backup = ScriptedMonitor(system, [80.0])
        monitor = ResilientMonitor(
            system, chain=[spiky, backup], spike_factor=50.0
        )
        assert monitor.sample(vm) == 100.0
        assert monitor.sample(vm) == 80.0  # spike rejected, failover
        assert monitor.rejected_samples == 1

    def test_exhausted_chain_returns_ewma_never_raises(self):
        system = plain_system()
        vm = make_vm(system)
        good_then_dead = ScriptedMonitor(
            system, [100.0, 200.0, MonitorError("gone")]
        )
        monitor = ResilientMonitor(
            system, chain=[good_then_dead], retries=0, ewma_alpha=0.5
        )
        monitor.sample(vm)
        monitor.sample(vm)
        assert monitor.estimate_of(vm) == pytest.approx(150.0)
        assert monitor.sample(vm) == pytest.approx(150.0)
        assert monitor.last_good_fallbacks == 1

    def test_untrained_fallback_is_zero(self):
        system = plain_system()
        vm = make_vm(system)
        dead = ScriptedMonitor(system, [MonitorError("gone")])
        monitor = ResilientMonitor(system, chain=[dead], retries=0)
        assert monitor.sample(vm) == 0.0

    def test_open_breaker_skips_member(self):
        system = plain_system()
        vm = make_vm(system)
        dead = ScriptedMonitor(system, [MonitorError("gone")])
        backup = ScriptedMonitor(system, [10.0])
        monitor = ResilientMonitor(
            system,
            chain=[dead, backup],
            retries=0,
            breaker_threshold=2,
            breaker_cooldown_ticks=1_000,
        )
        monitor.sample(vm)
        monitor.sample(vm)  # second failure opens the breaker
        calls_before = dead.calls
        monitor.sample(vm)
        assert dead.calls == calls_before  # skipped, not retried
        assert monitor.breaker_skips == 1

    def test_counters_mirrored_to_recorder(self):
        recorder = MetricsRecorder()
        system = plain_system()
        vm = make_vm(system)
        dead = ScriptedMonitor(system, [MonitorError("gone")])
        backup = ScriptedMonitor(system, [10.0])
        monitor = ResilientMonitor(
            system, chain=[dead, backup], retries=1, recorder=recorder
        )
        monitor.sample(vm)
        assert recorder.counters["resilient.retries"] == 1
        assert recorder.counters["resilient.failovers"] == 1


class TestEngineDegradation:
    def test_monitor_error_debits_estimate_not_crash(self):
        system = plain_system()
        engine = KyotoEngine(
            system, monitor=ScriptedMonitor(system, [MonitorError("down")])
        )
        vm = make_vm(system, app="lbm", llc_cap=1_000.0)
        engine.register_vm(vm)
        system.run_ticks(1)
        engine.on_tick_end(0)  # must not raise
        assert engine.monitor_failures == 1
        assert engine.estimated_debits == 1
        assert engine.account_of(vm).total_debited == 0.0  # no history yet

    def test_garbage_sample_counts_implausible_and_uses_estimate(self):
        system = plain_system()
        engine = KyotoEngine(
            system,
            monitor=ScriptedMonitor(
                system, [100.0, float("nan"), -5.0]
            ),
            estimate_alpha=1.0,
        )
        vm = make_vm(system, app="lbm", llc_cap=1_000.0)
        engine.register_vm(vm)
        for tick in range(3):
            system.run_ticks(1)
            engine.on_tick_end(tick)
        assert engine.implausible_samples == 2
        assert engine.estimated_debits == 2
        # Two failed periods each debited the EWMA estimate (100.0).
        assert engine.account_of(vm).total_debited == pytest.approx(300.0)

    def test_quota_floor_bounds_punishment(self):
        system = plain_system()
        engine = KyotoEngine(
            system,
            monitor=ScriptedMonitor(system, [1e9]),
            quota_min_factor=2.0,
        )
        vm = make_vm(system, app="lbm", llc_cap=1_000.0)
        engine.register_vm(vm)
        system.run_ticks(1)
        engine.on_tick_end(0)
        assert engine.account_of(vm).quota == -2_000.0

    def test_estimate_alpha_validation(self):
        with pytest.raises(ValueError):
            KyotoEngine(plain_system(), estimate_alpha=0.0)


class TestSocketDedicationHardening:
    def _failing_interceptor(self, fail_on_call):
        calls = {"n": 0}

        def interceptor(vcpu, core_id):
            calls["n"] += 1
            if calls["n"] == fail_on_call:
                raise HypervisorError("injected migration refusal")

        return interceptor

    def test_mid_window_failure_restores_and_raises_monitor_error(self, numa):
        system = VirtualizedSystem(CreditScheduler(), numa)
        sampled = make_vm(system, name="sampled", app="gcc", core=0)
        other = make_vm(system, name="other", app="lbm", core=1)
        sampler = SocketDedicationSampler(system)
        # First migration (other -> spill) succeeds; the window then runs;
        # the restore migration fails, stranding the vCPU.
        system.migration_interceptor = self._failing_interceptor(2)
        value = sampler.sample(sampled, sample_ticks=1)
        assert value >= 0.0
        assert sampler.restore_failures == 1

    def test_outbound_failure_surfaces_as_monitor_error(self, numa):
        system = VirtualizedSystem(CreditScheduler(), numa)
        sampled = make_vm(system, name="sampled", app="gcc", core=0)
        make_vm(system, name="other", app="lbm", core=1)
        system.migration_interceptor = self._failing_interceptor(1)
        with pytest.raises(MonitorError):
            sampler = SocketDedicationSampler(system)
            sampler.sample(sampled, sample_ticks=1)

    def test_monitor_adapter_wraps_sampler(self, numa):
        system = VirtualizedSystem(CreditScheduler(), numa)
        vm = make_vm(system, app="lbm", core=0)
        monitor = SocketDedicationMonitor(system, sample_ticks=1)
        assert monitor.sample(vm) >= 0.0
        with pytest.raises(ValueError):
            SocketDedicationMonitor(system, sample_ticks=0)


class TestPeriodicMigratorHardening:
    def test_survives_migration_failures_and_counts_them(self, numa):
        system = VirtualizedSystem(CreditScheduler(), numa)
        vm = make_vm(system, core=0)
        migrator = PeriodicMigrator(
            system, vm.vcpus[0], home_core=0, remote_core=4, period_ticks=3
        )
        fail = {"active": True}

        def interceptor(vcpu, core_id):
            if fail["active"]:
                raise HypervisorError("injected")

        system.migration_interceptor = interceptor
        system.run_ticks(6)  # two outbound attempts, both refused
        assert migrator.migration_failures == 2
        assert migrator.migrations == 0
        assert vm.vcpus[0].current_core == 0
        fail["active"] = False
        system.run_ticks(6)  # recovery: migrations resume
        assert migrator.migrations > 0
