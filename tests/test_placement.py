"""Tests for the cache-aware placement baselines."""

import pytest

from repro.placement.algorithms import (
    Placement,
    VmDescriptor,
    balance_pollution_placement,
    round_robin_placement,
    segregate_placement,
)
from repro.placement.evaluate import evaluate_placement


def fleet():
    """Two sensitive + two disruptive VMs, pollution from Fig 4 values."""
    return [
        VmDescriptor("sen-a", "omnetpp", 110_000, sensitive=True),
        VmDescriptor("sen-b", "soplex", 232_000, sensitive=True),
        VmDescriptor("dis-a", "lbm", 419_000),
        VmDescriptor("dis-b", "blockie", 400_000),
    ]


class TestDescriptors:
    def test_negative_pollution_rejected(self):
        with pytest.raises(ValueError):
            VmDescriptor("x", "gcc", -1)


class TestPlacementContainer:
    def test_assign_and_lookup(self):
        placement = Placement(2)
        vm = fleet()[0]
        placement.assign(1, vm)
        assert placement.host_of("sen-a") == 1

    def test_out_of_range_host(self):
        with pytest.raises(ValueError):
            Placement(2).assign(2, fleet()[0])

    def test_unknown_vm(self):
        with pytest.raises(KeyError):
            Placement(2).host_of("ghost")

    def test_host_pollution(self):
        placement = Placement(1)
        for vm in fleet():
            placement.assign(0, vm)
        assert placement.pollution_of_host(0) == pytest.approx(1_161_000)
        assert placement.max_host_pollution == placement.pollution_of_host(0)

    def test_capacity_validation(self):
        placement = Placement(1)
        for vm in fleet():
            placement.assign(0, vm)
        placement.validate_capacity(4)
        with pytest.raises(ValueError):
            placement.validate_capacity(3)


class TestAlgorithms:
    def test_round_robin_spreads(self):
        placement = round_robin_placement(fleet(), 2)
        assert len(placement.assignments[0]) == 2
        assert len(placement.assignments[1]) == 2

    def test_balance_reduces_max_pollution(self):
        vms = fleet()
        rr = round_robin_placement(vms, 2)
        balanced = balance_pollution_placement(vms, 2)
        assert balanced.max_host_pollution <= rr.max_host_pollution

    def test_balance_respects_capacity(self):
        vms = fleet() * 2  # 8 VMs, 2 hosts x 4 cores
        vms = [
            VmDescriptor(f"{vm.name}-{i}", vm.app, vm.pollution, vm.sensitive)
            for i, vm in enumerate(vms)
        ]
        placement = balance_pollution_placement(vms, 2, cores_per_host=4)
        placement.validate_capacity(4)

    def test_balance_overflow_rejected(self):
        with pytest.raises(ValueError):
            balance_pollution_placement(fleet(), 1, cores_per_host=3)

    def test_segregation_separates(self):
        placement = segregate_placement(fleet(), 2)
        sensitive_hosts = {placement.host_of("sen-a"), placement.host_of("sen-b")}
        disruptive_hosts = {placement.host_of("dis-a"), placement.host_of("dis-b")}
        assert sensitive_hosts.isdisjoint(disruptive_hosts)

    def test_segregation_mixes_only_when_full(self):
        vms = fleet()
        placement = segregate_placement(vms, 1, cores_per_host=4)
        assert len(placement.assignments[0]) == 4

    def test_zero_hosts_rejected(self):
        for algorithm in (round_robin_placement, balance_pollution_placement,
                          segregate_placement):
            with pytest.raises(ValueError):
                algorithm(fleet(), 0)


class TestEvaluation:
    def test_segregation_beats_round_robin_for_sensitives(self):
        """The related-work claim: cache-aware placement helps — when
        there is room to segregate."""
        vms = fleet()
        naive = evaluate_placement(round_robin_placement(vms, 2))
        aware = evaluate_placement(segregate_placement(vms, 2))
        assert (
            aware.mean_sensitive_degradation
            < naive.mean_sensitive_degradation
        )

    def test_evaluation_reports_all_vms(self):
        vms = fleet()
        result = evaluate_placement(round_robin_placement(vms, 2))
        assert set(result.degradation) == {vm.name for vm in vms}
        assert result.max_degradation >= result.mean_degradation

    def test_kyoto_composes_with_placement(self):
        """Kyoto on top of a *bad* placement still protects sensitives —
        the pay-per-use answer to NP-hard placement."""
        from repro.core.ks4xen import KS4Xen

        vms = fleet()
        packed = Placement(2)
        # Worst case: each sensitive shares a host with a disruptor.
        packed.assign(0, vms[0])
        packed.assign(0, vms[2])
        packed.assign(1, vms[1])
        packed.assign(1, vms[3])
        plain = evaluate_placement(packed)
        kyoto = evaluate_placement(
            packed,
            scheduler_factory=KS4Xen,
            llc_cap_of=lambda d: 250_000.0,
        )
        assert (
            kyoto.mean_sensitive_degradation
            < plain.mean_sensitive_degradation
        )
