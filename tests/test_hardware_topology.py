"""Tests for repro.hardware.topology and latency."""

import pytest

from repro.hardware.latency import LatencyModel
from repro.hardware.specs import numa_machine, paper_machine
from repro.hardware.topology import Machine


class TestLatencyModel:
    def test_defaults_match_paper(self):
        lat = LatencyModel()
        assert (lat.l1_cycles, lat.l2_cycles, lat.llc_cycles,
                lat.memory_cycles) == (4, 12, 45, 180)

    def test_remote_slower_than_local(self):
        lat = LatencyModel()
        assert lat.remote_memory_cycles > lat.memory_cycles

    def test_memory_cycles_for(self):
        lat = LatencyModel()
        assert lat.memory_cycles_for(remote=False) == 180
        assert lat.memory_cycles_for(remote=True) == 300

    def test_llc_miss_penalty(self):
        lat = LatencyModel()
        assert lat.llc_miss_penalty() == 135
        assert lat.llc_miss_penalty(remote=True) == 255

    def test_non_monotone_rejected(self):
        with pytest.raises(ValueError):
            LatencyModel(l1_cycles=50, l2_cycles=12)

    def test_remote_faster_than_local_rejected(self):
        with pytest.raises(ValueError):
            LatencyModel(remote_memory_cycles=100)

    def test_zero_latency_rejected(self):
        with pytest.raises(ValueError):
            LatencyModel(l1_cycles=0)


class TestMachine:
    def test_core_count(self):
        assert Machine(paper_machine()).total_cores == 4
        assert Machine(numa_machine()).total_cores == 8

    def test_core_ids_are_global(self):
        machine = Machine(numa_machine())
        assert [c.core_id for c in machine.cores] == list(range(8))

    def test_core_lookup(self):
        machine = Machine(paper_machine())
        assert machine.core(2).core_id == 2

    def test_core_lookup_invalid(self):
        with pytest.raises(ValueError):
            Machine(paper_machine()).core(99)

    def test_socket_of(self):
        machine = Machine(numa_machine())
        assert machine.socket_of(0).socket_id == 0
        assert machine.socket_of(5).socket_id == 1

    def test_cores_start_idle(self):
        machine = Machine(paper_machine())
        assert all(core.is_idle for core in machine.cores)
        assert machine.running_vcpus() == []

    def test_socket_idle_cores(self):
        machine = Machine(paper_machine())
        assert len(machine.sockets[0].idle_cores()) == 4
