"""Cross-feature composition tests.

The value of building everything in one repository: the mechanisms can be
combined — partitioning under a Kyoto scheduler, UCP on CFS, MemGuard on
a NUMA machine with migrations, phased workloads under every enforcement
discipline — and the combinations must behave sensibly together.
"""

import pytest

from repro.cachesim.perfmodel import CacheBehavior
from repro.core.ks4linux import KS4Linux
from repro.core.ks4xen import KS4Xen
from repro.core.memguard import MemGuardScheduler
from repro.hardware.specs import numa_machine
from repro.hypervisor.system import VirtualizedSystem
from repro.hypervisor.vm import VmConfig
from repro.partitioning.static import apply_page_coloring
from repro.partitioning.ucp import UcpController
from repro.schedulers.cfs import CfsScheduler
from repro.workloads.phased import Phase, PhasedWorkload
from repro.workloads.profiles import application_workload

from conftest import make_vm


class TestColoringPlusKyoto:
    def test_colored_victim_with_kyoto_disruptor(self):
        """Belt and suspenders: the victim gets a colour slice AND the
        disruptor has a permit — the victim reaches solo performance."""
        system = VirtualizedSystem(KS4Xen())
        sen = make_vm(system, "sen", app="omnetpp", core=0)
        dis = make_vm(system, "dis", app="lbm", core=1, llc_cap=100_000.0)
        apply_page_coloring(system, {sen: 110_000})
        system.run_ticks(30)
        sen.reset_metrics()
        system.run_ticks(90)
        contended_ipc = sen.vcpus[0].ipc

        solo = VirtualizedSystem(KS4Xen())
        ref = make_vm(solo, "ref", app="omnetpp", core=0)
        solo.run_ticks(30)
        ref.reset_metrics()
        solo.run_ticks(90)
        assert contended_ipc == pytest.approx(ref.vcpus[0].ipc, rel=0.05)
        # And the disruptor is still punished for its own overshoot.
        assert system.scheduler.kyoto.punishments(dis) > 0

    def test_coloring_flush_on_migration(self):
        system = VirtualizedSystem(KS4Xen(), numa_machine())
        vm = make_vm(system, "v", app="gcc", core=0)
        apply_page_coloring(system, {vm: 50_000})
        system.run_ticks(10)
        assert system.llc_domains[0].occupancy_of(vm.vcpus[0].gid) > 0
        system.migrate_vcpu(vm.vcpus[0], 4)
        assert system.llc_domains[0].occupancy_of(vm.vcpus[0].gid) == 0
        system.run_ticks(10)  # keeps running on the new socket


class TestUcpOnCfs:
    def test_ucp_with_cfs_scheduler(self):
        system = VirtualizedSystem(CfsScheduler())
        sen = make_vm(system, "sen", app="omnetpp", core=0)
        make_vm(system, "dis", app="lbm", core=1)
        controller = UcpController(system, period_ticks=6)
        system.run_ticks(60)
        assert controller.repartitions > 5
        assert sen.instructions_retired > 0

    def test_ucp_with_ks4linux(self):
        """Dynamic partitioning *and* pollution permits together."""
        system = VirtualizedSystem(KS4Linux())
        make_vm(system, "sen", app="omnetpp", core=0, llc_cap=250_000.0)
        dis = make_vm(system, "dis", app="lbm", core=1, llc_cap=250_000.0)
        UcpController(system, period_ticks=6)
        system.run_ticks(90)
        assert system.scheduler.kyoto.punishments(dis) > 0


class TestMemGuardOnNuma:
    def test_memguard_with_migration(self):
        system = VirtualizedSystem(MemGuardScheduler(), numa_machine())
        vm = make_vm(system, "v", app="lbm", core=0, llc_cap=100_000.0)
        system.run_ticks(15)
        system.migrate_vcpu(vm.vcpus[0], 4)
        system.run_ticks(15)
        budget = system.scheduler.budget_of(vm)
        assert budget.throttle_events > 0
        assert vm.vcpus[0].current_core in (4, None)


class TestPhasedUnderEveryDiscipline:
    def _bursty(self):
        quiet = CacheBehavior(wss_lines=1000, lapki=1.0, base_cpi=0.5)
        return PhasedWorkload(
            "bursty",
            [Phase(quiet, 1.0e9), Phase(application_workload("lbm").behavior, 1.0e10)],
            repeat=False,
        )

    @pytest.mark.parametrize("scheduler_cls", [KS4Xen, KS4Linux, MemGuardScheduler])
    def test_phase_change_enforced_everywhere(self, scheduler_cls):
        system = VirtualizedSystem(scheduler_cls())
        vm = system.create_vm(
            VmConfig(name="b", workload=self._bursty(), llc_cap=50_000.0,
                     pinned_cores=[0])
        )
        system.run_ticks(150)
        scheduler = system.scheduler
        if isinstance(scheduler, MemGuardScheduler):
            assert scheduler.budget_of(vm).throttle_events > 0
        else:
            assert scheduler.kyoto.punishments(vm) > 0

    def test_quiet_phase_not_pre_punished(self):
        system = VirtualizedSystem(KS4Xen())
        vm = system.create_vm(
            VmConfig(name="b", workload=self._bursty(), llc_cap=50_000.0,
                     pinned_cores=[0])
        )
        system.run_ticks(8)  # still in the quiet phase
        assert system.scheduler.kyoto.punishments(vm) == 0
