"""Sweep expansion: deterministic grids from one document."""

import pytest

from repro.scenario import ScenarioError, expand_document
from repro.scenario.sweep import apply_override

BASE = {
    "schema": "repro.scenario/1",
    "name": "smoke",
    "vms": [
        {"name": "a", "workload": {"app": "gcc"}, "llc_cap": 250000.0},
        {"name": "b", "workload": {"app": "lbm"}},
    ],
}


def _doc(**extra):
    doc = {
        "schema": BASE["schema"],
        "name": BASE["name"],
        "vms": [dict(vm, workload=dict(vm["workload"])) for vm in BASE["vms"]],
    }
    doc.update(extra)
    return doc


class TestExpansion:
    def test_sweep_free_document_is_one_unlabeled_point(self):
        points = expand_document(_doc())
        assert len(points) == 1
        label, spec = points[0]
        assert label is None
        assert spec.name == "smoke"

    def test_grid_is_cartesian_product_last_axis_fastest(self):
        points = expand_document(
            _doc(sweep={"system.seed": [0, 1], "vms.0.llc_cap": [50000.0, 250000.0]})
        )
        labels = [label for label, _ in points]
        assert labels == [
            "system.seed=0,vms.0.llc_cap=50000",
            "system.seed=0,vms.0.llc_cap=250000",
            "system.seed=1,vms.0.llc_cap=50000",
            "system.seed=1,vms.0.llc_cap=250000",
        ]
        seeds = [spec.system.seed for _, spec in points]
        caps = [spec.vms[0].llc_cap for _, spec in points]
        assert seeds == [0, 0, 1, 1]
        assert caps == [50000.0, 250000.0, 50000.0, 250000.0]

    def test_point_names_carry_the_label(self):
        points = expand_document(_doc(sweep={"system.seed": [7]}))
        assert points[0][1].name == "smoke@system.seed=7"

    def test_sweep_can_add_a_missing_section(self):
        points = expand_document(
            _doc(sweep={"faults.uniform_rate": [0.0, 0.5]})
        )
        assert [spec.faults.uniform_rate for _, spec in points] == [0.0, 0.5]

    def test_base_document_is_not_mutated(self):
        doc = _doc(sweep={"vms.0.llc_cap": [1.0, 2.0]})
        expand_document(doc)
        assert doc["vms"][0]["llc_cap"] == 250000.0


class TestSweepErrors:
    def test_empty_sweep_table_rejected(self):
        with pytest.raises(ScenarioError, match="non-empty table"):
            expand_document(_doc(sweep={}))

    def test_axis_values_must_be_a_list(self):
        with pytest.raises(ScenarioError, match="non-empty list"):
            expand_document(_doc(sweep={"system.seed": 3}))

    def test_invalid_point_reports_the_axis_value(self):
        with pytest.raises(ScenarioError, match="scheduler.kind"):
            expand_document(_doc(sweep={"scheduler.kind": ["warp-drive"]}))


class TestApplyOverride:
    def test_list_index_out_of_range(self):
        doc = _doc()
        with pytest.raises(ScenarioError, match="out of range"):
            apply_override(doc, "vms.5.llc_cap", 1.0)

    def test_list_segment_must_be_integer(self):
        doc = _doc()
        with pytest.raises(ScenarioError, match="integer segment"):
            apply_override(doc, "vms.first.llc_cap", 1.0)

    def test_cannot_descend_through_scalar(self):
        doc = _doc()
        with pytest.raises(ScenarioError, match="scalar"):
            apply_override(doc, "name.sub.key", 1.0)
