"""Tests for repro.simulation.events."""

import pytest

from repro.simulation.events import EventQueue


class TestScheduling:
    def test_empty_queue(self):
        queue = EventQueue()
        assert len(queue) == 0
        assert queue.peek_time() is None

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_schedule_and_pop(self):
        queue = EventQueue()
        fired = []
        queue.schedule(10, lambda: fired.append("a"), name="a")
        event = queue.pop()
        assert event.when_usec == 10
        event.callback()
        assert fired == ["a"]

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().schedule(-1, lambda: None)

    def test_time_ordering(self):
        queue = EventQueue()
        queue.schedule(30, lambda: None, name="late")
        queue.schedule(10, lambda: None, name="early")
        queue.schedule(20, lambda: None, name="mid")
        names = [queue.pop().name for _ in range(3)]
        assert names == ["early", "mid", "late"]

    def test_priority_breaks_time_ties(self):
        queue = EventQueue()
        queue.schedule(10, lambda: None, name="low", priority=20)
        queue.schedule(10, lambda: None, name="high", priority=1)
        assert queue.pop().name == "high"

    def test_fifo_among_equal_priority(self):
        queue = EventQueue()
        for i in range(5):
            queue.schedule(10, lambda: None, name=f"e{i}")
        names = [queue.pop().name for _ in range(5)]
        assert names == [f"e{i}" for i in range(5)]

    def test_peek_does_not_remove(self):
        queue = EventQueue()
        queue.schedule(42, lambda: None)
        assert queue.peek_time() == 42
        assert len(queue) == 1


class TestCancellation:
    def test_cancel_removes_event(self):
        queue = EventQueue()
        event = queue.schedule(10, lambda: None, name="dead")
        queue.schedule(20, lambda: None, name="alive")
        queue.cancel(event)
        assert len(queue) == 1
        assert queue.pop().name == "alive"

    def test_cancel_updates_peek(self):
        queue = EventQueue()
        event = queue.schedule(10, lambda: None)
        queue.schedule(20, lambda: None)
        queue.cancel(event)
        assert queue.peek_time() == 20

    def test_cancel_all_empties_queue(self):
        queue = EventQueue()
        events = [queue.schedule(i, lambda: None) for i in range(4)]
        for event in events:
            queue.cancel(event)
        assert len(queue) == 0
        assert queue.peek_time() is None

    def test_clear(self):
        queue = EventQueue()
        queue.schedule(1, lambda: None)
        queue.schedule(2, lambda: None)
        queue.clear()
        assert len(queue) == 0
