"""The standing lint gate: src/repro must stay kyotolint-clean.

This is the enforcement half of docs/static_analysis.md — any new
violation anywhere under ``src/repro`` that is neither pragma'd nor
baselined fails the test suite.
"""

from __future__ import annotations

import pathlib

import repro
from repro.lint import (
    Baseline,
    exit_code,
    failing_findings,
    format_text,
    lint_paths,
    lint_source,
)

REPO_ROOT = pathlib.Path(repro.__file__).resolve().parent.parent.parent
PACKAGE_DIR = pathlib.Path(repro.__file__).resolve().parent
BASELINE_PATH = REPO_ROOT / "kyotolint-baseline.json"


def test_src_repro_is_lint_clean():
    findings = lint_paths([str(PACKAGE_DIR)])
    baseline = (
        Baseline.load(str(BASELINE_PATH))
        if BASELINE_PATH.exists()
        else Baseline()
    )
    baseline.apply(findings)
    assert exit_code(findings) == 0, (
        "kyotolint violations in src/repro:\n" + format_text(findings)
    )


def test_src_repro_has_no_findings_at_all():
    """Stronger than the exit-code gate: even warn-tier findings are
    fixed or pragma'd with a justification, across both phases."""
    findings = lint_paths([str(PACKAGE_DIR)])
    assert findings == [], format_text(findings)


def test_baseline_is_empty():
    """Acceptance bar: everything is fixed or pragma'd, nothing grandfathered."""
    if BASELINE_PATH.exists():
        assert len(Baseline.load(str(BASELINE_PATH))) == 0


def test_gate_catches_injected_nondeterminism(tmp_path):
    """A scratch file with random.random() must fail the same gate logic."""
    scratch = tmp_path / "scratch.py"
    scratch.write_text("import random\nx = random.random()\n")
    findings = lint_paths([str(PACKAGE_DIR), str(tmp_path)])
    assert exit_code(findings) == 1
    assert [f.rule_id for f in failing_findings(findings)] == ["D001"]


def test_gate_checks_every_source_file():
    """The gate's file sweep sees the whole package (no silent pruning)."""
    from repro.lint import iter_python_files

    files = iter_python_files([str(PACKAGE_DIR)])
    assert len(files) > 80  # 89 modules at the time of writing; growing
    assert any(path.endswith("core/engine.py") for path in files)
    assert any(path.endswith("lint/walker.py") for path in files)


def test_tests_directory_unit_mixing_smoke():
    """U001 logic sanity on a real-repo idiom: clock conversions are clean."""
    clock_src = (PACKAGE_DIR / "simulation" / "clock.py").read_text()
    findings = lint_source(clock_src, path="repro/simulation/clock.py")
    assert findings == []
