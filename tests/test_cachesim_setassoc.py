"""Tests for the faithful set-associative cache simulator."""

import pytest

from repro.cachesim.replacement import LruPolicy, make_policy
from repro.cachesim.setassoc import NO_OWNER, SetAssociativeCache
from repro.hardware.specs import CacheSpec, KIB


def tiny_cache(size_kib=1, assoc=2, line=64, policy=None):
    """A 1 KiB 2-way cache: 8 sets of 2 ways."""
    return SetAssociativeCache(
        CacheSpec("T", size_kib * KIB, assoc, line_bytes=line), policy
    )


class TestAddressMapping:
    def test_same_line_same_slot(self):
        cache = tiny_cache()
        assert cache.index_of(0) == cache.index_of(63)

    def test_adjacent_lines_adjacent_sets(self):
        cache = tiny_cache()
        set0, _ = cache.index_of(0)
        set1, _ = cache.index_of(64)
        assert set1 == (set0 + 1) % cache.num_sets

    def test_tag_differs_across_wraps(self):
        cache = tiny_cache()
        set_a, tag_a = cache.index_of(0)
        set_b, tag_b = cache.index_of(cache.num_sets * 64)
        assert set_a == set_b
        assert tag_a != tag_b


class TestHitsAndMisses:
    def test_first_access_misses(self):
        cache = tiny_cache()
        assert cache.access(0).hit is False

    def test_second_access_hits(self):
        cache = tiny_cache()
        cache.access(0)
        assert cache.access(0).hit is True

    def test_same_line_different_byte_hits(self):
        cache = tiny_cache()
        cache.access(0)
        assert cache.access(63).hit is True

    def test_fills_all_ways_before_evicting(self):
        cache = tiny_cache(assoc=2)
        stride = cache.num_sets * 64  # same set, different tags
        cache.access(0)
        cache.access(stride)
        assert cache.access(0).hit is True
        assert cache.access(stride).hit is True

    def test_eviction_on_overflow(self):
        cache = tiny_cache(assoc=2)
        stride = cache.num_sets * 64
        cache.access(0)
        cache.access(stride)
        result = cache.access(2 * stride)  # must evict one
        assert result.hit is False
        assert result.evicted_tag is not None

    def test_lru_victim_selection(self):
        cache = tiny_cache(assoc=2)
        stride = cache.num_sets * 64
        cache.access(0)          # LRU after next access
        cache.access(stride)
        cache.access(2 * stride)  # evicts line 0 (LRU)
        assert cache.access(stride).hit is True
        assert cache.access(0).hit is False

    def test_hit_refreshes_recency(self):
        cache = tiny_cache(assoc=2)
        stride = cache.num_sets * 64
        cache.access(0)
        cache.access(stride)
        cache.access(0)           # refresh: stride is now LRU
        cache.access(2 * stride)  # evicts stride
        assert cache.access(0).hit is True

    def test_stats_counts(self):
        cache = tiny_cache()
        cache.access(0)
        cache.access(0)
        cache.access(64)
        assert cache.stats.total.accesses == 3
        assert cache.stats.total.hits == 1
        assert cache.stats.total.misses == 2

    def test_probe_does_not_disturb(self):
        cache = tiny_cache()
        cache.access(0)
        accesses_before = cache.stats.total.accesses
        assert cache.probe(0) is True
        assert cache.probe(64) is False
        assert cache.stats.total.accesses == accesses_before


class TestOwnerAttribution:
    def test_occupancy_per_owner(self):
        cache = tiny_cache()
        cache.access(0, owner=1)
        cache.access(64, owner=1)
        cache.access(128, owner=2)
        assert cache.occupancy_of(1) == 2
        assert cache.occupancy_of(2) == 1

    def test_occupancy_by_owner_map(self):
        cache = tiny_cache()
        cache.access(0, owner=1)
        cache.access(64, owner=2)
        assert cache.occupancy_by_owner() == {1: 1, 2: 1}

    def test_eviction_attribution(self):
        cache = tiny_cache(assoc=2)
        stride = cache.num_sets * 64
        cache.access(0, owner=1)
        cache.access(stride, owner=1)
        result = cache.access(2 * stride, owner=2)
        assert result.evicted_owner == 1
        assert cache.stats.owner(1).evictions_suffered == 1
        assert cache.stats.owner(2).evictions_caused == 1

    def test_hit_transfers_nothing(self):
        cache = tiny_cache()
        cache.access(0, owner=1)
        cache.access(0, owner=2)  # hit on owner 1's line
        assert cache.occupancy_of(1) == 1

    def test_flush_owner(self):
        cache = tiny_cache()
        cache.access(0, owner=1)
        cache.access(64, owner=1)
        cache.access(128, owner=2)
        dropped = cache.flush_owner(1)
        assert dropped == 2
        assert cache.occupancy_of(1) == 0
        assert cache.occupancy_of(2) == 1

    def test_flush_all(self):
        cache = tiny_cache()
        cache.access(0)
        cache.flush()
        assert cache.resident_lines() == 0
        assert cache.access(0).hit is False


class TestWorkingSetBehaviour:
    def test_working_set_fitting_cache_converges_to_all_hits(self):
        cache = tiny_cache(size_kib=1)
        addresses = [i * 64 for i in range(cache.spec.num_lines)]
        for addr in addresses:  # cold pass
            cache.access(addr)
        hits = sum(cache.access(a).hit for a in addresses)
        assert hits == len(addresses)

    def test_cyclic_overflow_thrashes_under_lru(self):
        """The classic LRU pathology: a cyclic scan one line larger than
        the cache misses on every single access."""
        cache = tiny_cache(size_kib=1, assoc=2)
        # num_sets+1 distinct tags all mapping around: simplest: scan
        # lines+num_sets lines cyclically so every set sees assoc+... use
        # 3 tags in one set with assoc 2:
        stride = cache.num_sets * 64
        addrs = [0, stride, 2 * stride]
        for _ in range(3):
            for a in addrs:
                cache.access(a)
        # steady state: all misses
        before = cache.stats.total.misses
        for a in addrs:
            assert cache.access(a).hit is False
        assert cache.stats.total.misses == before + 3
