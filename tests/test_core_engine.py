"""Direct tests of the KyotoEngine (shared by all three scheduler ports)."""

import pytest

from repro.core.engine import KyotoEngine
from repro.core.monitor import DirectPmcMonitor
from repro.hypervisor.system import VirtualizedSystem
from repro.schedulers.credit import CreditScheduler

from conftest import make_vm


def plain_system():
    return VirtualizedSystem(CreditScheduler())


class TestRegistration:
    def test_register_managed_vm(self):
        system = plain_system()
        engine = KyotoEngine(system)
        vm = make_vm(system, llc_cap=100_000.0)
        account = engine.register_vm(vm)
        assert account is not None
        assert account.llc_cap == 100_000.0

    def test_register_unmanaged_vm_returns_none(self):
        system = plain_system()
        engine = KyotoEngine(system)
        vm = make_vm(system)
        assert engine.register_vm(vm) is None
        assert engine.account_of(vm) is None

    def test_register_idempotent(self):
        system = plain_system()
        engine = KyotoEngine(system)
        vm = make_vm(system, llc_cap=100_000.0)
        first = engine.register_vm(vm)
        first.debit(50.0)
        second = engine.register_vm(vm)
        assert second is first  # re-registration keeps state

    def test_invalid_period_rejected(self):
        with pytest.raises(ValueError):
            KyotoEngine(plain_system(), monitor_period_ticks=0)


class TestAccounting:
    def test_unmanaged_vm_never_parked(self):
        system = plain_system()
        engine = KyotoEngine(system)
        vm = make_vm(system)
        assert engine.is_parked(vm) is False
        assert engine.punishments(vm) == 0
        assert engine.quota(vm) is None

    def test_monitor_period_gating(self):
        system = plain_system()
        engine = KyotoEngine(system, monitor_period_ticks=3)
        vm = make_vm(system, app="lbm", llc_cap=1.0)
        engine.register_vm(vm)
        system.run_ticks(1)
        engine.on_tick_end(0)  # (0+1) % 3 != 0 -> no sample
        assert engine.account_of(vm).samples == 0
        engine.on_tick_end(2)  # (2+1) % 3 == 0 -> samples
        assert engine.account_of(vm).samples == 1

    def test_debit_scales_with_period(self):
        """Two engines at different periods must charge the same total
        pollution for the same execution."""
        def total_debited(period):
            system = plain_system()
            engine = KyotoEngine(system, monitor_period_ticks=period)
            vm = make_vm(system, app="lbm", llc_cap=1.0)
            engine.register_vm(vm)
            for tick in range(12):
                system.run_ticks(1)
                engine.on_tick_end(tick)
            return engine.account_of(vm).total_debited

        assert total_debited(3) == pytest.approx(total_debited(1), rel=0.1)

    def test_refill_restores_quota(self):
        system = plain_system()
        engine = KyotoEngine(system)
        vm = make_vm(system, llc_cap=100.0)
        account = engine.register_vm(vm)
        account.debit(500.0)
        assert engine.is_parked(vm)
        engine.on_accounting(0)  # one slice of refill: +300
        engine.on_accounting(1)
        assert not engine.is_parked(vm)

    def test_custom_monitor_used(self):
        class ConstantMonitor(DirectPmcMonitor):
            def sample(self, vm):
                return 42.0

        system = plain_system()
        engine = KyotoEngine(system, monitor=ConstantMonitor(system))
        vm = make_vm(system, app="lbm", llc_cap=1_000.0)
        engine.register_vm(vm)
        system.run_ticks(1)  # the VM must have executed to be sampled
        engine.on_tick_end(0)
        assert engine.account_of(vm).total_debited == 42.0

    def test_idle_periods_do_not_dilute_mean_measured(self):
        """A VM that sat out a monitoring period must not be sampled: idle
        periods used to contribute zero-rate samples that dragged
        mean_measured toward zero and under-punished bursty polluters."""

        from repro.telemetry import MetricsRecorder

        class ConstantMonitor(DirectPmcMonitor):
            def sample(self, vm):
                return 100.0

        recorder = MetricsRecorder()
        system = plain_system()
        engine = KyotoEngine(
            system, monitor=ConstantMonitor(system), recorder=recorder
        )
        vm = make_vm(system, app="lbm", llc_cap=1_000_000.0)
        engine.register_vm(vm)
        for tick in range(5):  # active half
            system.run_ticks(1)
            engine.on_tick_end(tick)
        for vcpu in vm.vcpus:  # idle half
            vcpu.paused = True
        for tick in range(5, 10):
            system.run_ticks(1)
            engine.on_tick_end(tick)
        account = engine.account_of(vm)
        assert account.samples == 5
        assert account.mean_measured == pytest.approx(100.0)
        assert recorder.counters["kyoto.idle_skips"] == 5.0
