"""Tests for KS4Linux (CFS port) and the Pisces co-kernel + KS4Pisces."""

import pytest

from repro.core.ks4linux import KS4Linux
from repro.hypervisor.system import VirtualizedSystem
from repro.hypervisor.vm import VmConfig
from repro.pisces.cokernel import PiscesCoKernel, PiscesError
from repro.pisces.ks4pisces import KS4Pisces
from repro.schedulers.cfs import CfsScheduler
from repro.workloads.profiles import application_workload

from conftest import make_vm


def pair(system, llc_cap=250_000.0, sen_core=0, dis_core=1):
    sen = system.create_vm(
        VmConfig(name="sen", workload=application_workload("gcc"),
                 llc_cap=llc_cap, pinned_cores=[sen_core])
    )
    dis = system.create_vm(
        VmConfig(name="dis", workload=application_workload("lbm"),
                 llc_cap=llc_cap, pinned_cores=[dis_core])
    )
    return sen, dis


class TestKS4Linux:
    def test_polluter_throttled(self):
        system = VirtualizedSystem(KS4Linux())
        __, dis = pair(system)
        system.run_ticks(120)
        assert system.scheduler.kyoto.punishments(dis) > 5

    def test_victim_improves_over_plain_cfs(self):
        def victim_ipc(scheduler):
            system = VirtualizedSystem(scheduler)
            sen, __ = pair(system)
            system.run_ticks(30)
            sen.reset_metrics()
            system.run_ticks(120)
            return sen.vcpus[0].ipc

        assert victim_ipc(KS4Linux()) > victim_ipc(CfsScheduler()) * 1.03

    def test_throttled_vm_keeps_fair_share_when_compliant(self):
        system = VirtualizedSystem(KS4Linux())
        a = make_vm(system, "a", app="povray", core=0, llc_cap=250_000.0)
        make_vm(system, "b", app="povray", core=0, llc_cap=250_000.0)
        ran = [0]
        gid = a.vcpus[0].gid
        system.add_tick_observer(
            lambda s, t: ran.__setitem__(0, ran[0] + (gid in s.last_tick_cycles))
        )
        system.run_ticks(100)
        assert ran[0] / 100 == pytest.approx(0.5, abs=0.1)


class TestPiscesCoKernel:
    def test_enclaves_own_their_cores(self):
        system = VirtualizedSystem(PiscesCoKernel())
        vm = make_vm(system, "e1", core=0)
        enclave = system.scheduler.enclave_of(vm)
        assert enclave.cores == [0]

    def test_core_sharing_rejected(self):
        system = VirtualizedSystem(PiscesCoKernel())
        make_vm(system, "e1", core=0)
        with pytest.raises(PiscesError):
            make_vm(system, "e2", core=0)

    def test_enclave_runs_unpreempted(self):
        system = VirtualizedSystem(PiscesCoKernel())
        vm = make_vm(system, "e1", app="povray", core=0)
        ran = [0]
        gid = vm.vcpus[0].gid
        system.add_tick_observer(
            lambda s, t: ran.__setitem__(0, ran[0] + (gid in s.last_tick_cycles))
        )
        system.run_ticks(50)
        assert ran[0] == 50

    def test_enclave_of_unknown_vm_rejected(self):
        system = VirtualizedSystem(PiscesCoKernel())
        other_system = VirtualizedSystem(PiscesCoKernel())
        foreign = make_vm(other_system, "x", core=0)
        with pytest.raises(PiscesError):
            system.scheduler.enclave_of(foreign)

    def test_pisces_does_not_isolate_the_llc(self):
        """The Fig 8 premise: core dedication does not stop LLC contention."""

        def victim_ipc(colocated):
            system = VirtualizedSystem(PiscesCoKernel())
            sen = make_vm(system, "sen", app="gcc", core=0)
            if colocated:
                make_vm(system, "dis", app="lbm", core=1)
            system.run_ticks(30)
            sen.reset_metrics()
            system.run_ticks(100)
            return sen.vcpus[0].ipc

        assert victim_ipc(colocated=True) < victim_ipc(colocated=False) * 0.9

    def test_multi_vcpu_enclave_groups_cores(self):
        system = VirtualizedSystem(PiscesCoKernel())
        vm = system.create_vm(
            VmConfig(
                name="wide",
                workload=application_workload("gcc"),
                num_vcpus=2,
                pinned_cores=[0, 1],
            )
        )
        assert sorted(system.scheduler.enclave_of(vm).cores) == [0, 1]


class TestKS4Pisces:
    def test_restores_predictability(self):
        """KS4Pisces closes most of the gap Pisces leaves open."""

        def victim_ipc(scheduler_cls, colocated, llc_cap):
            system = VirtualizedSystem(scheduler_cls())
            sen = make_vm(system, "sen", app="gcc", core=0, llc_cap=llc_cap)
            if colocated:
                make_vm(system, "dis", app="lbm", core=1, llc_cap=llc_cap)
            system.run_ticks(30)
            sen.reset_metrics()
            system.run_ticks(120)
            return sen.vcpus[0].ipc

        pisces_gap = 1 - victim_ipc(PiscesCoKernel, True, None) / victim_ipc(
            PiscesCoKernel, False, None
        )
        kyoto_gap = 1 - victim_ipc(KS4Pisces, True, 250_000.0) / victim_ipc(
            KS4Pisces, False, 250_000.0
        )
        assert kyoto_gap < pisces_gap * 0.7

    def test_polluting_enclave_duty_cycled(self):
        system = VirtualizedSystem(KS4Pisces())
        __, dis = pair(system)
        ran = [0]
        gid = dis.vcpus[0].gid
        system.add_tick_observer(
            lambda s, t: ran.__setitem__(0, ran[0] + (gid in s.last_tick_cycles))
        )
        system.run_ticks(120)
        assert 0.3 < ran[0] / 120 < 0.8
