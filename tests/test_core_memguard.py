"""Tests for the MemGuard-style bandwidth-reservation baseline."""

import pytest

from repro.core.ks4xen import KS4Xen
from repro.core.memguard import BandwidthBudget, MemGuardScheduler
from repro.hypervisor.system import VirtualizedSystem
from repro.schedulers.credit import CreditScheduler

from conftest import make_vm


class TestBudget:
    def test_validation(self):
        with pytest.raises(ValueError):
            BandwidthBudget(budget_misses_per_period=-1)
        with pytest.raises(ValueError):
            BandwidthBudget(budget_misses_per_period=10).charge(-1)

    def test_throttles_on_exhaustion(self):
        budget = BandwidthBudget(budget_misses_per_period=100)
        budget.charge(60)
        assert not budget.throttled
        budget.charge(60)
        assert budget.throttled
        assert budget.throttle_events == 1

    def test_replenish_clears_throttle(self):
        budget = BandwidthBudget(budget_misses_per_period=100)
        budget.charge(200)
        budget.replenish()
        assert not budget.throttled
        assert budget.used == 0

    def test_no_carry_over(self):
        budget = BandwidthBudget(budget_misses_per_period=100)
        budget.charge(10)  # underuse
        budget.replenish()
        budget.charge(150)  # unused budget did NOT carry over
        assert budget.throttled


class TestScheduler:
    def test_reservation_from_llc_cap(self):
        system = VirtualizedSystem(MemGuardScheduler())
        vm = make_vm(system, app="lbm", llc_cap=100_000.0)
        budget = system.scheduler.budget_of(vm)
        # 100k misses/ms * 30 ms period.
        assert budget.budget_misses_per_period == pytest.approx(3_000_000)

    def test_unreserved_vm_untouched(self):
        system = VirtualizedSystem(MemGuardScheduler())
        vm = make_vm(system, app="lbm")
        system.run_ticks(30)
        assert system.scheduler.budget_of(vm) is None
        assert vm.instructions_retired > 0

    def test_overdrawing_vm_throttled(self):
        system = VirtualizedSystem(MemGuardScheduler())
        vm = make_vm(system, app="lbm", llc_cap=100_000.0)
        system.run_ticks(60)
        budget = system.scheduler.budget_of(vm)
        assert budget.throttle_events > 5

    def test_compliant_vm_never_throttled(self):
        system = VirtualizedSystem(MemGuardScheduler())
        vm = make_vm(system, app="hmmer", llc_cap=100_000.0)
        system.run_ticks(60)
        assert system.scheduler.budget_of(vm).throttle_events == 0

    def test_protects_victim_like_kyoto(self):
        def victim_ipc(scheduler):
            system = VirtualizedSystem(scheduler)
            sen = make_vm(system, "sen", app="gcc", core=0, llc_cap=250_000.0)
            make_vm(system, "dis", app="lbm", core=1, llc_cap=250_000.0)
            system.run_ticks(30)
            sen.reset_metrics()
            system.run_ticks(120)
            return sen.vcpus[0].ipc

        plain = victim_ipc(CreditScheduler())
        memguard = victim_ipc(MemGuardScheduler())
        kyoto = victim_ipc(KS4Xen())
        assert memguard > plain
        # Both disciplines land in the same protection ballpark.
        assert memguard == pytest.approx(kyoto, rel=0.15)

    def test_disciplines_differ_in_carry_over(self):
        """MemGuard forgets overshoot at each period boundary (the VM
        runs again every period); Kyoto carries the debt, so a heavy
        overdrawer is throttled harder in the long run."""
        def run(scheduler):
            system = VirtualizedSystem(scheduler)
            dis = make_vm(system, "dis", app="lbm", core=0, llc_cap=50_000.0)
            ran = [0]
            gid = dis.vcpus[0].gid
            system.add_tick_observer(
                lambda s, t: ran.__setitem__(
                    0, ran[0] + (gid in s.last_tick_cycles)
                )
            )
            system.run_ticks(30)
            return dis.llc_misses, ran[0]

        memguard_misses, memguard_ran = run(MemGuardScheduler())
        kyoto_misses, kyoto_ran = run(KS4Xen())
        # MemGuard: exactly one burst tick per 3-tick period.
        assert memguard_ran == pytest.approx(10, abs=1)
        # Kyoto's carried debt lets it run less often than MemGuard.
        assert kyoto_ran < memguard_ran
        assert kyoto_misses < memguard_misses

    def test_custom_period(self):
        system = VirtualizedSystem(MemGuardScheduler(period_ticks=6))
        vm = make_vm(system, app="lbm", llc_cap=100_000.0)
        budget = system.scheduler.budget_of(vm)
        assert budget.budget_misses_per_period == pytest.approx(6_000_000)
