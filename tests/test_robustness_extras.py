"""Tests for the fault-injecting monitor, performance jitter, the
statistics helpers and the colocation advisor."""

import dataclasses

import pytest

from repro.analysis.statistics import (
    LinearFit,
    linear_fit,
    mean_confidence_interval,
    student_t_critical,
)
from repro.core.ks4xen import KS4Xen
from repro.core.monitor import DirectPmcMonitor, FaultInjectingMonitor
from repro.hardware.specs import CacheSpec, KIB, paper_machine
from repro.hypervisor.system import VirtualizedSystem
from repro.mcsim.advisor import ColocationAdvisor
from repro.mcsim.multicore import MultiCoreReplayer
from repro.mcsim.pin import CaptureConfig
from repro.schedulers.credit import CreditScheduler
from repro.workloads.profiles import application_workload

from conftest import make_vm


class TestStatistics:
    def test_perfect_line(self):
        fit = linear_fit([0, 1, 2, 3], [1, 3, 5, 7])
        assert fit.slope == pytest.approx(2.0)
        assert fit.intercept == pytest.approx(1.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_predict(self):
        fit = LinearFit(slope=2.0, intercept=1.0, r_squared=1.0)
        assert fit.predict(10) == 21.0

    def test_constant_series(self):
        fit = linear_fit([0, 1, 2], [5, 5, 5])
        assert fit.slope == 0.0
        assert fit.r_squared == 1.0

    def test_noise_lowers_r_squared(self):
        fit = linear_fit([0, 1, 2, 3, 4], [0, 5, 1, 6, 2])
        assert fit.r_squared < 0.7

    def test_degenerate_inputs(self):
        with pytest.raises(ValueError):
            linear_fit([1], [1])
        with pytest.raises(ValueError):
            linear_fit([2, 2], [1, 3])
        with pytest.raises(ValueError):
            linear_fit([1, 2], [1])

    def test_confidence_interval(self):
        mean, low, high = mean_confidence_interval([10.0, 12.0, 8.0, 10.0])
        assert mean == pytest.approx(10.0)
        assert low < mean < high

    def test_confidence_single_sample(self):
        assert mean_confidence_interval([5.0]) == (5.0, 5.0, 5.0)

    def test_confidence_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_confidence_interval([])

    def test_default_interval_uses_student_t(self):
        # n=4 → df=3 → t=3.182, not z=1.96: the t interval is ~62% wider.
        values = [10.0, 12.0, 8.0, 10.0]
        __, t_low, t_high = mean_confidence_interval(values)
        __, z_low, z_high = mean_confidence_interval(values, z=1.96)
        assert (t_high - t_low) / (z_high - z_low) == pytest.approx(
            3.182 / 1.96, rel=1e-6
        )

    def test_explicit_z_restores_normal_interval(self):
        # The documented escape hatch: z=1.96 is the pre-fix behavior.
        values = [3.0, 5.0, 7.0, 5.0]
        mean, low, high = mean_confidence_interval(values, z=1.96)
        import math

        se = math.sqrt((sum((v - 5.0) ** 2 for v in values) / 3) / 4)
        assert mean == pytest.approx(5.0)
        assert high - mean == pytest.approx(1.96 * se)

    def test_t_table_pins(self):
        assert student_t_critical(1) == pytest.approx(12.706)
        assert student_t_critical(3) == pytest.approx(3.182)
        assert student_t_critical(30) == pytest.approx(2.042)
        assert student_t_critical(10, confidence=0.99) == pytest.approx(3.169)
        assert student_t_critical(5, confidence=0.90) == pytest.approx(2.015)

    def test_t_tail_approximation_is_tight_and_monotone(self):
        # Cornish-Fisher beyond the table: close to the true quantile
        # (t(40)=2.021, t(60)=2.000, t(120)=1.980) and approaching z.
        assert student_t_critical(40) == pytest.approx(2.021, abs=1e-3)
        assert student_t_critical(60) == pytest.approx(2.000, abs=1e-3)
        assert student_t_critical(120) == pytest.approx(1.980, abs=1e-3)
        assert student_t_critical(10**6) == pytest.approx(1.96, abs=1e-3)
        previous = student_t_critical(31)
        for df in (40, 60, 120, 1000):
            current = student_t_critical(df)
            assert current < previous
            previous = current

    def test_t_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            student_t_critical(0)
        with pytest.raises(ValueError):
            student_t_critical(5, confidence=0.42)


class TestFaultInjectingMonitor:
    def test_validation(self):
        system = VirtualizedSystem(CreditScheduler())
        inner = DirectPmcMonitor(system)
        with pytest.raises(ValueError):
            FaultInjectingMonitor(inner, drop_every=-1)
        with pytest.raises(ValueError):
            FaultInjectingMonitor(inner, noise_fraction=1.0)

    def test_dropped_samples_counted(self):
        system = VirtualizedSystem(CreditScheduler())
        vm = make_vm(system, app="lbm")
        monitor = FaultInjectingMonitor(DirectPmcMonitor(system), drop_every=2)
        system.run_ticks(5)
        values = [monitor.sample(vm) for _ in range(4)]
        assert monitor.dropped == 2
        assert values[1] == 0.0 and values[3] == 0.0

    def test_enforcement_survives_sample_loss(self):
        """Losing every third sample under-charges the polluter but the
        engine still punishes it and never wedges."""
        scheduler = KS4Xen()
        system = VirtualizedSystem(scheduler)
        scheduler.kyoto.monitor = FaultInjectingMonitor(
            scheduler.kyoto.monitor, drop_every=3
        )
        make_vm(system, "sen", app="gcc", core=0, llc_cap=250_000.0)
        dis = make_vm(system, "dis", app="lbm", core=1, llc_cap=250_000.0)
        system.run_ticks(150)
        assert scheduler.kyoto.punishments(dis) > 5

    def test_enforcement_survives_noise(self):
        scheduler = KS4Xen()
        system = VirtualizedSystem(scheduler)
        scheduler.kyoto.monitor = FaultInjectingMonitor(
            scheduler.kyoto.monitor, noise_fraction=0.3, seed=5
        )
        make_vm(system, "sen", app="gcc", core=0, llc_cap=250_000.0)
        dis = make_vm(system, "dis", app="lbm", core=1, llc_cap=250_000.0)
        system.run_ticks(150)
        assert scheduler.kyoto.punishments(dis) > 5
        assert scheduler.kyoto.punishments(system.vm_by_name("sen")) == 0


class TestPerfJitter:
    def test_validation(self):
        with pytest.raises(ValueError):
            VirtualizedSystem(CreditScheduler(), perf_jitter_fraction=1.0)

    def test_zero_jitter_bit_exact(self):
        def run():
            system = VirtualizedSystem(CreditScheduler())
            vm = make_vm(system, app="gcc")
            system.run_ticks(20)
            return vm.instructions_retired

        assert run() == run()

    def test_jitter_reproducible_per_seed(self):
        def run(seed):
            system = VirtualizedSystem(
                CreditScheduler(), perf_jitter_fraction=0.05, seed=seed
            )
            vm = make_vm(system, app="gcc")
            system.run_ticks(20)
            return vm.instructions_retired

        assert run(1) == run(1)
        assert run(1) != run(2)

    def test_jitter_mean_preserving(self):
        def run(jitter):
            system = VirtualizedSystem(
                CreditScheduler(), perf_jitter_fraction=jitter, seed=3
            )
            vm = make_vm(system, app="gcc")
            system.run_ticks(60)
            return vm.instructions_retired

        assert run(0.05) == pytest.approx(run(0.0), rel=0.02)


class TestColocationAdvisor:
    @pytest.fixture(scope="class")
    def advisor(self):
        return ColocationAdvisor(
            capture_config=CaptureConfig(sample_accesses=12_000)
        )

    def test_quiet_pair_acceptable(self, advisor):
        assessment = advisor.assess(
            [application_workload("hmmer"), application_workload("povray")]
        )
        assert assessment.worst_degradation < 5.0
        assert assessment.acceptable(15.0)

    def test_disruptor_flagged(self, advisor):
        assessment = advisor.assess(
            [application_workload("omnetpp"), application_workload("lbm")]
        )
        # The sensitive workload's predicted degradation is substantial
        # and far larger than the streaming disruptor's.
        assert assessment.predicted_degradation["omnetpp"] > 10.0
        assert (
            assessment.predicted_degradation["omnetpp"]
            > assessment.predicted_degradation["lbm"] + 5.0
        )

    def test_prediction_matches_machine_model(self, advisor):
        """The analytical prediction must land near the machine
        simulation's measured degradation (same underlying model)."""
        from repro.hypervisor.system import VirtualizedSystem
        from repro.hypervisor.vm import VmConfig
        from repro.schedulers.credit import CreditScheduler

        assessment = advisor.assess(
            [application_workload("omnetpp"), application_workload("lbm")]
        )

        def measured():
            solo = VirtualizedSystem(CreditScheduler())
            ref = solo.create_vm(
                VmConfig(name="ref", workload=application_workload("omnetpp"),
                         pinned_cores=[0])
            )
            solo.run_ticks(30)
            ref.reset_metrics()
            solo.run_ticks(90)
            base = ref.vcpus[0].ipc
            system = VirtualizedSystem(CreditScheduler())
            sen = system.create_vm(
                VmConfig(name="sen", workload=application_workload("omnetpp"),
                         pinned_cores=[0])
            )
            system.create_vm(
                VmConfig(name="dis", workload=application_workload("lbm"),
                         pinned_cores=[1])
            )
            system.run_ticks(30)
            sen.reset_metrics()
            system.run_ticks(90)
            return 100.0 * (1 - sen.vcpus[0].ipc / base)

        assert assessment.predicted_degradation["omnetpp"] == pytest.approx(
            measured(), abs=8.0
        )

    def test_pollution_prediction_ordering(self, advisor):
        assessment = advisor.assess(
            [application_workload("gcc"), application_workload("lbm")]
        )
        assert (
            assessment.predicted_pollution["lbm"]
            > assessment.predicted_pollution["gcc"]
        )

    def test_admit_respects_budget(self, advisor):
        quiet = [application_workload("hmmer")]
        assert advisor.admit(quiet, application_workload("povray"), 15.0)
        sensitive = [application_workload("omnetpp")]
        assert not advisor.admit(
            sensitive, application_workload("blockie"), 15.0
        )

    def test_cross_check_confirms_pressure_ordering(self, advisor):
        reports = advisor.cross_check(
            [application_workload("hmmer"), application_workload("lbm")]
        )
        assert (
            reports["lbm"].misses_per_kinst
            > reports["hmmer"].misses_per_kinst
        )

    def test_duplicate_names_rejected(self, advisor):
        w = application_workload("gcc")
        with pytest.raises(ValueError):
            advisor.assess([w, w])

    def test_empty_rejected(self, advisor):
        with pytest.raises(ValueError):
            advisor.assess([])
