"""Tests for the calibration audit — the reproduction's tripwire."""

import pytest

from repro.analysis.calibration import (
    SOLO_TARGETS,
    CalibrationReport,
    format_calibration,
    run_calibration,
)
from repro.analysis.aggressiveness import CampaignConfig
from repro.workloads.profiles import FIG4_APPLICATIONS


@pytest.fixture(scope="module")
def report():
    return run_calibration(CampaignConfig(warmup_ticks=20, measure_ticks=60))


class TestCalibration:
    def test_targets_cover_all_apps(self):
        assert set(SOLO_TARGETS) == set(FIG4_APPLICATIONS)

    def test_all_apps_measured(self, report):
        assert {e.app for e in report.entries} == set(FIG4_APPLICATIONS)

    def test_llcm_ordering_holds(self, report):
        assert report.llcm_order_ok

    def test_equation1_ordering_holds(self, report):
        assert report.equation1_order_ok

    def test_errors_within_tolerance(self, report):
        """Measured solo indicators sit within 10% of their targets."""
        assert report.max_error_percent < 10.0

    def test_entry_lookup(self, report):
        assert report.entry("lbm").measured.equation1 > 300_000
        with pytest.raises(KeyError):
            report.entry("doom")

    def test_report_renders(self, report):
        text = format_calibration(report)
        assert "calibration" in text.lower()
        assert "lbm" in text
