"""Tests for the analysis package: Kendall tau, metrics, reporting."""

import pytest

from repro.analysis.kendall import kendall_tau, ranking_from_scores
from repro.analysis.metrics import (
    SeriesStats,
    degradation_percent,
    normalized_performance,
    slowdown_percent,
)
from repro.analysis.reporting import format_cell, format_series, format_table


class TestKendallTau:
    def test_identical_orderings(self):
        assert kendall_tau(["a", "b", "c"], ["a", "b", "c"]) == 1.0

    def test_reversed_orderings(self):
        assert kendall_tau(["a", "b", "c"], ["c", "b", "a"]) == -1.0

    def test_one_swap(self):
        # 1 discordant pair of 6 -> (5-1)/6.
        tau = kendall_tau(["a", "b", "c", "d"], ["b", "a", "c", "d"])
        assert tau == pytest.approx(4 / 6)

    def test_paper_orderings(self):
        """tau(o1,o3) > tau(o1,o2): the paper's Section 4.2 conclusion
        follows from its own published orderings."""
        o1 = ["blockie", "lbm", "mcf", "soplex", "milc",
              "omnetpp", "gcc", "xalan", "astar", "bzip"]
        o2 = ["milc", "lbm", "soplex", "mcf", "blockie",
              "gcc", "omnetpp", "xalan", "astar", "bzip"]
        o3 = ["lbm", "blockie", "milc", "mcf", "soplex",
              "gcc", "omnetpp", "xalan", "astar", "bzip"]
        assert kendall_tau(o1, o3) > kendall_tau(o1, o2)
        assert kendall_tau(o1, o2) == pytest.approx(0.6)
        assert kendall_tau(o1, o3) == pytest.approx(0.822, abs=0.001)

    def test_mismatched_items_rejected(self):
        with pytest.raises(ValueError):
            kendall_tau(["a", "b"], ["a", "c"])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            kendall_tau(["a"], ["a", "b"])

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            kendall_tau(["a"], ["a"])

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            kendall_tau(["a", "a"], ["a", "b"])

    def test_symmetry(self):
        a = ["w", "x", "y", "z"]
        b = ["x", "w", "z", "y"]
        assert kendall_tau(a, b) == kendall_tau(b, a)


class TestRanking:
    def test_descending_by_default(self):
        assert ranking_from_scores({"a": 1.0, "b": 3.0, "c": 2.0}) == [
            "b", "c", "a"
        ]

    def test_ascending(self):
        assert ranking_from_scores(
            {"a": 1.0, "b": 3.0}, descending=False
        ) == ["a", "b"]

    def test_deterministic_tie_break(self):
        assert ranking_from_scores({"b": 1.0, "a": 1.0}) == ["a", "b"]


class TestMetrics:
    def test_degradation_zero_when_equal(self):
        assert degradation_percent(2.0, 2.0) == 0.0

    def test_degradation_half_speed(self):
        assert degradation_percent(2.0, 1.0) == 50.0

    def test_degradation_clamped_at_zero(self):
        assert degradation_percent(2.0, 3.0) == 0.0

    def test_degradation_invalid_baseline(self):
        with pytest.raises(ValueError):
            degradation_percent(0.0, 1.0)

    def test_normalized_performance(self):
        assert normalized_performance(2.0, 1.5) == 0.75

    def test_slowdown(self):
        assert slowdown_percent(10.0, 12.0) == pytest.approx(20.0)

    def test_slowdown_clamped(self):
        assert slowdown_percent(10.0, 9.0) == 0.0

    def test_series_stats(self):
        stats = SeriesStats.of([1.0, 2.0, 3.0])
        assert stats.mean == 2.0
        assert stats.minimum == 1.0
        assert stats.maximum == 3.0
        assert stats.stddev == pytest.approx((2 / 3) ** 0.5)
        assert stats.spread_percent == 100.0

    def test_series_stats_empty_rejected(self):
        with pytest.raises(ValueError):
            SeriesStats.of([])


class TestReporting:
    def test_format_cell_types(self):
        assert format_cell("x") == "x"
        assert format_cell(12) == "12"
        assert format_cell(0.0) == "0"
        assert format_cell(3.14159) == "3.142"
        assert format_cell(42.5) == "42.5"
        assert format_cell(1234567.0) == "1,234,567"

    def test_table_alignment(self):
        table = format_table(["name", "v"], [["a", 1], ["bbbb", 22]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert len(set(len(line.rstrip()) for line in lines[2:])) <= 2

    def test_table_title(self):
        table = format_table(["c"], [[1]], title="T")
        assert table.splitlines()[0] == "T"

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_series(self):
        out = format_series("s", [1, 2], [10.0, 20.0])
        assert "s" in out and "10" in out

    def test_series_length_mismatch(self):
        with pytest.raises(ValueError):
            format_series("s", [1], [1, 2])
