"""Tests for the CSV figure-data export."""

import csv
import os

import pytest

from repro.experiments import export, fig02, fig03, fig06, tables


class TestWriteCsv:
    def test_writes_headers_and_rows(self, tmp_path):
        path = str(tmp_path / "out.csv")
        export.write_csv(path, ["a", "b"], [[1, 2], [3, 4]])
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert rows == [["a", "b"], ["1", "2"], ["3", "4"]]

    def test_creates_directories(self, tmp_path):
        path = str(tmp_path / "deep" / "dir" / "out.csv")
        export.write_csv(path, ["x"], [[1]])
        assert os.path.exists(path)


class TestFigureExports:
    def test_fig02_export(self, tmp_path):
        result = fig02.run(num_ticks=6)
        path = str(tmp_path / "fig02.csv")
        export.export_fig02(result, path)
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["tick_ms", "alone", "alternative", "parallel",
                           "alter+para"]
        assert len(rows) == 7
        assert rows[1][0] == "10"

    def test_fig03_export(self, tmp_path):
        result = fig03.run(caps=(0, 100), warmup_ticks=10, measure_ticks=30)
        path = str(tmp_path / "fig03.csv")
        export.export_fig03(result, path)
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert rows[0][0] == "vdis1_cap_percent"
        assert len(rows) == 3  # header + two cap points

    def test_fig06_export(self, tmp_path):
        result = fig06.run(counts=(1, 2), warmup_ticks=10, measure_ticks=30)
        path = str(tmp_path / "fig06.csv")
        export.export_fig06(result, path)
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert len(rows) == 3
        assert float(rows[1][1]) > 0
