"""Tests for the repro.bench harness: runner, comparison gate, CLI."""

import io
import json

import pytest

from repro import bench
from repro.bench.compare import (
    BenchCompareError,
    compare_documents,
    format_comparisons,
    load_baseline,
)
from repro.bench.registry import benchmark_names, benchmarks_named
from repro.bench.runner import (
    BENCH_SCHEMA,
    Benchmark,
    BenchmarkError,
    results_document,
    run_benchmark,
)
from repro.cli import build_parser, run_bench


def counting_benchmark(checks=None):
    """A trivial benchmark that counts setup calls and replays checks."""
    setups = []
    values = list(checks) if checks is not None else None

    def setup():
        setups.append(1)
        return len(setups)

    def body(payload):
        if values is not None:
            return values.pop(0)
        return 42

    return Benchmark(
        name="counting",
        description="test fixture",
        setup=setup,
        body=body,
    ), setups


class TestRunner:
    def test_fresh_setup_per_run(self):
        benchmark, setups = counting_benchmark()
        result = run_benchmark(benchmark, warmup=2, repeats=3)
        assert len(setups) == 5  # warmups included
        assert len(result.samples_sec) == 3
        assert result.check == 42

    def test_nondeterministic_check_raises(self):
        benchmark, _ = counting_benchmark(checks=[1, 1, 2])
        with pytest.raises(BenchmarkError, match="nondeterministic"):
            run_benchmark(benchmark, warmup=1, repeats=2)

    def test_invalid_discipline_rejected(self):
        benchmark, _ = counting_benchmark()
        with pytest.raises(BenchmarkError):
            run_benchmark(benchmark, warmup=-1, repeats=1)
        with pytest.raises(BenchmarkError):
            run_benchmark(benchmark, warmup=0, repeats=0)

    def test_document_shape(self):
        benchmark, _ = counting_benchmark()
        result = run_benchmark(benchmark, warmup=0, repeats=2)
        document = results_document([result], warmup=0, repeats=2)
        assert document["schema"] == BENCH_SCHEMA
        assert document["config"] == {"warmup": 0, "repeats": 2}
        assert "platform" in document["machine"]
        (entry,) = document["results"]
        assert entry["name"] == "counting"
        assert entry["check"] == 42
        assert len(entry["samples_sec"]) == 2

    def test_everything_but_timings_is_deterministic(self):
        """Two runs of a real benchmark agree on all non-timing fields."""
        (benchmark,) = benchmarks_named(["campaign_fanout"])
        documents = []
        for _ in range(2):
            result = run_benchmark(benchmark, warmup=0, repeats=1)
            documents.append(results_document([result], warmup=0, repeats=1))
        for document in documents:
            for entry in document["results"]:
                for key in ("samples_sec", "median_sec", "min_sec", "max_sec"):
                    entry.pop(key)
        assert documents[0] == documents[1]


class TestRegistry:
    def test_names_unique_and_ordered(self):
        names = benchmark_names()
        assert len(names) == len(set(names))
        assert "tick_loop_8vcpu" in names
        assert "exec_time_protocol" in names

    def test_subset_resolution_preserves_request_order(self):
        subset = benchmarks_named(["occupancy_relax", "tick_loop_2vcpu"])
        assert [b.name for b in subset] == ["occupancy_relax", "tick_loop_2vcpu"]

    def test_unknown_names_listed(self):
        with pytest.raises(KeyError, match="nope"):
            benchmarks_named(["nope", "tick_loop_2vcpu"])

    def test_tick_loop_check_is_simulation_exact(self):
        """The benchmark check doubles as a golden: fresh systems agree."""
        (benchmark,) = benchmarks_named(["scenario_materialize"])
        assert benchmark.body(benchmark.setup()) == benchmark.body(
            benchmark.setup()
        )


def document_with(medians):
    return {
        "schema": BENCH_SCHEMA,
        "results": [
            {"name": name, "median_sec": median}
            for name, median in medians.items()
        ],
    }


class TestCompare:
    def test_within_tolerance_ok(self):
        comparisons = compare_documents(
            document_with({"a": 0.11}), document_with({"a": 0.10}), 20.0
        )
        (comparison,) = comparisons
        assert not comparison.regressed
        assert comparison.speedup == pytest.approx(0.10 / 0.11)

    def test_beyond_tolerance_regresses(self):
        (comparison,) = compare_documents(
            document_with({"a": 0.15}), document_with({"a": 0.10}), 20.0
        )
        assert comparison.regressed

    def test_missing_baseline_entry_never_regresses(self):
        (comparison,) = compare_documents(
            document_with({"new": 9.9}), document_with({"old": 0.1}), 0.0
        )
        assert not comparison.in_baseline
        assert not comparison.regressed
        assert comparison.speedup is None

    def test_negative_tolerance_rejected(self):
        with pytest.raises(BenchCompareError):
            compare_documents(document_with({}), document_with({}), -1.0)

    def test_load_baseline_schema_checked(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "something/else"}))
        with pytest.raises(BenchCompareError, match="not a"):
            load_baseline(str(bad))
        with pytest.raises(BenchCompareError, match="cannot read"):
            load_baseline(str(tmp_path / "missing.json"))

    def test_format_mentions_regressions(self):
        comparisons = compare_documents(
            document_with({"a": 0.30, "b": 0.05}),
            document_with({"a": 0.10, "b": 0.10}),
            25.0,
        )
        text = format_comparisons(comparisons, 25.0)
        assert "REGRESSED" in text
        assert "1 benchmark(s) regressed" in text

    def test_annotate_embeds_before_after(self):
        document = document_with({"a": 0.05})
        comparisons = compare_documents(
            document, document_with({"a": 0.10}), 10.0
        )
        bench.compare.annotate_document(comparisons=comparisons,
                                        document=document,
                                        baseline_path="BASE.json")
        entry = document["results"][0]
        assert entry["baseline_median_sec"] == 0.1
        assert entry["speedup"] == 2.0
        assert document["baseline"] == "BASE.json"


class TestCli:
    def run(self, *argv):
        args = build_parser().parse_args(["bench", *argv])
        out = io.StringIO()
        code = run_bench(args, out=out)
        return code, out.getvalue()

    def test_list(self):
        code, text = self.run("--list")
        assert code == 0
        for name in benchmark_names():
            assert name in text

    def test_run_writes_document(self, tmp_path):
        path = tmp_path / "out.json"
        code, text = self.run(
            "campaign_fanout", "--repeats", "1", "--warmup", "0",
            "--json", str(path),
        )
        assert code == 0
        document = json.loads(path.read_text())
        assert document["schema"] == BENCH_SCHEMA
        assert [e["name"] for e in document["results"]] == ["campaign_fanout"]

    def test_unknown_benchmark_is_usage_error(self):
        code, _ = self.run("no_such_benchmark")
        assert code == 2

    def test_unreadable_baseline_is_usage_error(self, tmp_path):
        code, _ = self.run(
            "campaign_fanout", "--compare", str(tmp_path / "missing.json")
        )
        assert code == 2

    def test_regression_exits_nonzero(self, tmp_path):
        baseline = tmp_path / "base.json"
        baseline.write_text(
            json.dumps(document_with({"campaign_fanout": 1e-9}))
        )
        code, text = self.run(
            "campaign_fanout", "--repeats", "1", "--warmup", "0",
            "--compare", str(baseline), "--tolerance", "0",
        )
        assert code == 1
        assert "REGRESSED" in text

    def test_generous_baseline_passes(self, tmp_path):
        baseline = tmp_path / "base.json"
        baseline.write_text(
            json.dumps(document_with({"campaign_fanout": 1e6}))
        )
        code, text = self.run(
            "campaign_fanout", "--repeats", "1", "--warmup", "0",
            "--compare", str(baseline), "--tolerance", "10",
        )
        assert code == 0
        assert "no regressions" in text
