"""Tests for the multi-level cache hierarchy."""

import pytest

from repro.cachesim.hierarchy import CacheHierarchy, ServiceLevel
from repro.cachesim.replacement import make_policy
from repro.cachesim.setassoc import SetAssociativeCache
from repro.hardware.specs import paper_machine


def hierarchy(llc=None):
    machine = paper_machine()
    return CacheHierarchy(machine.sockets[0], machine.latency, llc=llc)


class TestServiceLevels:
    def test_cold_access_goes_to_memory(self):
        h = hierarchy()
        outcome = h.access(0)
        assert outcome.level is ServiceLevel.MEMORY
        assert outcome.llc_miss is True
        assert outcome.cycles == 180

    def test_second_access_hits_l1(self):
        h = hierarchy()
        h.access(0)
        outcome = h.access(0)
        assert outcome.level is ServiceLevel.L1
        assert outcome.cycles == 4
        assert outcome.llc_miss is False

    def test_l2_hit_after_l1_eviction(self):
        h = hierarchy()
        # Fill one L1 set beyond its associativity but inside L2.
        l1_stride = h.l1.num_sets * 64
        addresses = [i * l1_stride for i in range(h.l1.assoc + 1)]
        for addr in addresses:
            h.access(addr)
        outcome = h.access(addresses[0])
        assert outcome.level is ServiceLevel.L2
        assert outcome.cycles == 12

    def test_llc_hit_after_l2_eviction(self):
        h = hierarchy()
        l2_stride = h.l2.num_sets * 64
        addresses = [i * l2_stride for i in range(h.l2.assoc + 1)]
        for addr in addresses:
            h.access(addr)
        outcome = h.access(addresses[0])
        assert outcome.level is ServiceLevel.LLC
        assert outcome.cycles == 45

    def test_remote_memory_latency(self):
        h = hierarchy()
        outcome = h.access(0, remote_memory=True)
        assert outcome.cycles == 300

    def test_level_counting(self):
        h = hierarchy()
        h.access(0)
        h.access(0)
        h.access(64)
        assert h.level_counts[ServiceLevel.MEMORY] == 2
        assert h.level_counts[ServiceLevel.L1] == 1
        assert h.llc_misses == 2

    def test_reset_counts_preserves_contents(self):
        h = hierarchy()
        h.access(0)
        h.reset_counts()
        assert h.llc_misses == 0
        assert h.access(0).level is ServiceLevel.L1


class TestSharedLlc:
    def test_two_hierarchies_share_one_llc(self):
        machine = paper_machine()
        llc = SetAssociativeCache(machine.sockets[0].llc, make_policy("lru"))
        core_a = CacheHierarchy(machine.sockets[0], machine.latency, llc=llc)
        core_b = CacheHierarchy(machine.sockets[0], machine.latency, llc=llc)
        core_a.access(0, owner=1)
        # Core B misses its private caches but hits the shared LLC.
        outcome = core_b.access(0, owner=2)
        assert outcome.level is ServiceLevel.LLC

    def test_private_l1_not_shared(self):
        machine = paper_machine()
        llc = SetAssociativeCache(machine.sockets[0].llc, make_policy("lru"))
        core_a = CacheHierarchy(machine.sockets[0], machine.latency, llc=llc)
        core_b = CacheHierarchy(machine.sockets[0], machine.latency, llc=llc)
        core_a.access(0)
        assert core_b.l1.probe(0) is False
