"""Guard against implicit-Optional annotations under src/repro.

PEP 484 dropped the implicit-Optional convention: ``def f(x: int = None)``
is simply a wrong annotation, and a type checker (CI runs mypy with
``no_implicit_optional``) rejects it.  This AST sweep enforces the same
rule inside the container so the gate also runs where mypy is not
installed.
"""

import ast
import pathlib

SRC = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"


def _is_none_default(node):
    return isinstance(node, ast.Constant) and node.value is None


def _annotation_allows_none(annotation) -> bool:
    text = ast.unparse(annotation)
    return "Optional" in text or "None" in text or "Any" in text


def _implicit_optional_args(func):
    """Yield arg names of ``func`` annotated without Optional but defaulting
    to None."""
    args = func.args
    positional = list(args.posonlyargs) + list(args.args)
    defaults = list(args.defaults)
    for arg, default in zip(positional[len(positional) - len(defaults):], defaults):
        if (
            _is_none_default(default)
            and arg.annotation is not None
            and not _annotation_allows_none(arg.annotation)
        ):
            yield arg.arg
    for arg, default in zip(args.kwonlyargs, args.kw_defaults):
        if (
            default is not None
            and _is_none_default(default)
            and arg.annotation is not None
            and not _annotation_allows_none(arg.annotation)
        ):
            yield arg.arg


def test_no_implicit_optional_annotations():
    offenders = []
    for path in sorted(SRC.rglob("*.py")):
        tree = ast.parse(path.read_text(), filename=str(path))
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for arg_name in _implicit_optional_args(node):
                    offenders.append(
                        f"{path.relative_to(SRC.parent.parent)}:{node.lineno} "
                        f"{node.name}({arg_name}: ... = None)"
                    )
    assert not offenders, (
        "implicit-Optional annotations (add Optional[...] to the type):\n"
        + "\n".join(offenders)
    )


def test_sweep_actually_detects_offenders():
    """Self-check: the sweep flags the pattern it exists to catch."""
    tree = ast.parse("def f(x: int = None, *, y: str = None, z=None): pass")
    func = tree.body[0]
    assert list(_implicit_optional_args(func)) == ["x", "y"]
