"""Failure-injection tests: counter wrap, mid-sampling migration,
starvation, and other hostile conditions the mechanisms must survive."""

import pytest

from repro.core.ks4xen import KS4Xen
from repro.core.monitor import DirectPmcMonitor, SocketDedicationSampler
from repro.hardware.specs import numa_machine
from repro.hypervisor.system import HypervisorError, VirtualizedSystem
from repro.hypervisor.vm import VmConfig
from repro.pmc.counters import COUNTER_MASK, PmcEvent
from repro.schedulers.credit import CreditScheduler
from repro.workloads.profiles import application_workload

from conftest import make_vm


class TestCounterWrap:
    def test_monitoring_survives_counter_wrap(self):
        """Pre-load the core counters near the 48-bit wrap point; the
        perfctr deltas (and thus Kyoto's debits) must stay correct."""
        system = VirtualizedSystem(KS4Xen())
        vm = make_vm(system, app="lbm", llc_cap=250_000.0)
        for bank in system.core_counters.values():
            for event in PmcEvent:
                bank.write(event, COUNTER_MASK - 1000)
        system.run_ticks(30)
        account = system.scheduler.kyoto.account_of(vm)
        # Measured rates are sane (~ the calibrated lbm level), not the
        # astronomical garbage a naive subtraction would produce.
        assert account.mean_measured < 1e7

    def test_truth_metrics_unaffected_by_wrap(self):
        system = VirtualizedSystem(CreditScheduler())
        vm = make_vm(system, app="gcc")
        for bank in system.core_counters.values():
            bank.write(PmcEvent.LLC_MISSES, COUNTER_MASK - 5)
        system.run_ticks(10)
        assert vm.instructions_retired > 0


class TestMigrationDuringSampling:
    def test_sampler_restores_world_even_with_parked_vcpus(self):
        system = VirtualizedSystem(KS4Xen(), numa_machine())
        target = make_vm(system, "t", app="bzip", core=0)
        noisy = make_vm(system, "n", app="lbm", core=1, llc_cap=50_000.0)
        system.run_ticks(30)  # noisy is now being punished on and off
        sampler = SocketDedicationSampler(system)
        sampler.sample(target, sample_ticks=3)
        assert noisy.vcpus[0].pinned_core == 1

    def test_migrating_a_running_vcpu_is_safe(self):
        system = VirtualizedSystem(CreditScheduler(), numa_machine())
        vm = make_vm(system, core=0)
        system.run_ticks(5)
        assert vm.vcpus[0].is_running
        system.migrate_vcpu(vm.vcpus[0], 4)
        system.run_ticks(5)
        assert vm.vcpus[0].current_core == 4

    def test_double_placement_rejected(self):
        system = VirtualizedSystem(CreditScheduler())
        vm = system.create_vm(
            VmConfig(
                name="wide",
                workload=application_workload("gcc"),
                num_vcpus=2,
                pinned_cores=[0, 1],
            )
        )
        system.run_ticks(1)
        with pytest.raises(HypervisorError):
            system.context_switch(system.machine.core(2), vm.vcpus[0])


class TestStarvation:
    def test_parked_polluter_not_starved_forever(self):
        """Even a heavy polluter with a tiny permit makes *some* progress
        (quota refills guarantee eventual UNDER)."""
        system = VirtualizedSystem(KS4Xen())
        dis = make_vm(system, "dis", app="lbm", core=0, llc_cap=10_000.0)
        system.run_ticks(100)
        first = dis.instructions_retired
        system.run_ticks(100)
        assert dis.instructions_retired > first

    def test_all_vms_progress_under_oversubscription(self):
        system = VirtualizedSystem(CreditScheduler())
        vms = [
            make_vm(system, f"v{i}", app="povray", core=i % 4) for i in range(12)
        ]
        system.run_ticks(120)
        assert all(vm.instructions_retired > 0 for vm in vms)

    def test_paused_vcpu_consumes_nothing(self):
        system = VirtualizedSystem(CreditScheduler())
        vm = make_vm(system)
        vm.vcpus[0].paused = True
        system.run_ticks(10)
        assert vm.instructions_retired == 0
        vm.vcpus[0].paused = False
        system.run_ticks(10)
        assert vm.instructions_retired > 0


class TestDegenerateConfigs:
    def test_zero_llc_cap_vm_survives(self):
        system = VirtualizedSystem(KS4Xen())
        vm = make_vm(system, llc_cap=0.0)
        system.run_ticks(30)  # must not raise
        # gcc misses > 0, permit 0: permanently parked after warm-up.
        assert system.scheduler.kyoto.punishments(vm) >= 1

    def test_empty_system_ticks(self):
        system = VirtualizedSystem(KS4Xen())
        system.run_ticks(10)
        assert system.tick_index == 10

    def test_more_vms_than_cores_with_kyoto(self):
        system = VirtualizedSystem(KS4Xen())
        for i in range(8):
            make_vm(system, f"v{i}", app="gcc", core=i % 4, llc_cap=250_000.0)
        system.run_ticks(60)  # must not raise

    def test_monitor_on_never_scheduled_vm(self):
        system = VirtualizedSystem(CreditScheduler())
        vm = make_vm(system, "idle", core=0)
        vm.vcpus[0].paused = True
        monitor = DirectPmcMonitor(system)
        assert monitor.sample(vm) == 0.0
