"""Tests for the Kyoto monitoring strategies."""

import pytest

from repro.core.monitor import (
    DirectPmcMonitor,
    IsolationPolicy,
    McSimReplayMonitor,
    SocketDedicationSampler,
)
from repro.hardware.specs import numa_machine, paper_machine
from repro.hypervisor.system import VirtualizedSystem
from repro.mcsim.service import ReplayService
from repro.schedulers.credit import CreditScheduler
from repro.workloads.profiles import application_behavior

from conftest import make_vm


def system_on(machine=None):
    return VirtualizedSystem(
        CreditScheduler(), machine if machine is not None else paper_machine()
    )


class TestDirectPmcMonitor:
    def test_measures_solo_rate(self):
        system = system_on()
        vm = make_vm(system, app="lbm")
        monitor = DirectPmcMonitor(system)
        system.run_ticks(30)
        monitor.sample(vm)  # reset window
        system.run_ticks(10)
        rate = monitor.sample(vm)
        assert rate == pytest.approx(420_000, rel=0.15)

    def test_idle_vm_measures_zero(self):
        system = system_on()
        vm = make_vm(system)
        monitor = DirectPmcMonitor(system)
        assert monitor.sample(vm) == 0.0

    def test_contended_measurement_inflated(self):
        """The attribution problem: a sensitive VM's measured rate under
        contention overstates its intrinsic pollution."""

        def measured(colocated):
            system = system_on()
            vm = make_vm(system, "gcc", app="gcc", core=0)
            if colocated:
                make_vm(system, "dis", app="lbm", core=1)
            monitor = DirectPmcMonitor(system)
            system.run_ticks(30)
            monitor.sample(vm)
            system.run_ticks(20)
            return monitor.sample(vm)

        assert measured(True) > measured(False) * 1.02

    def test_scales_with_vcpus(self):
        from repro.hypervisor.vm import VmConfig
        from repro.workloads.profiles import application_workload

        system = system_on()
        vm = system.create_vm(
            VmConfig(
                name="smp",
                workload=application_workload("gcc"),
                num_vcpus=2,
                pinned_cores=[0, 1],
            )
        )
        monitor = DirectPmcMonitor(system)
        system.run_ticks(20)
        monitor.sample(vm)
        system.run_ticks(10)
        two_vcpu_rate = monitor.sample(vm)
        assert two_vcpu_rate > 0

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            DirectPmcMonitor(system_on(), sampling_cost_cycles=-1)


class TestSocketDedication:
    def test_needs_two_sockets(self):
        with pytest.raises(ValueError):
            SocketDedicationSampler(system_on())

    def test_isolated_sample_close_to_intrinsic(self):
        system = system_on(numa_machine())
        vm = make_vm(system, "bzip", app="bzip", core=0)
        make_vm(system, "dis1", app="lbm", core=1)
        make_vm(system, "dis2", app="blockie", core=2)
        system.run_ticks(30)
        sampler = SocketDedicationSampler(system)
        isolated = sampler.sample(vm, sample_ticks=6)
        # bzip solo equation-1 rate is ~20k.
        assert isolated == pytest.approx(20_000, rel=0.4)

    def test_contended_sample_diverges(self):
        system = system_on(numa_machine())
        vm = make_vm(system, "bzip", app="bzip", core=0)
        make_vm(system, "dis1", app="lbm", core=1)
        make_vm(system, "dis2", app="blockie", core=2)
        system.run_ticks(30)
        sampler = SocketDedicationSampler(system)
        contended = sampler._contended_sample(vm, 6)
        isolated = sampler.sample(vm, sample_ticks=6)
        assert contended > isolated * 1.5

    def test_migrations_are_restored(self):
        system = system_on(numa_machine())
        vm = make_vm(system, "bzip", app="bzip", core=0)
        dis = make_vm(system, "dis1", app="lbm", core=1)
        system.run_ticks(10)
        sampler = SocketDedicationSampler(system)
        sampler.sample(vm, sample_ticks=3)
        assert dis.vcpus[0].pinned_core == 1
        assert sampler.migrations_performed == 2  # out and back

    def test_invalid_sample_ticks(self):
        system = system_on(numa_machine())
        vm = make_vm(system, core=0)
        sampler = SocketDedicationSampler(system)
        with pytest.raises(ValueError):
            sampler.sample(vm, sample_ticks=0)


class TestIsolationPolicy:
    def test_quiet_vcpu_needs_no_isolation(self):
        system = system_on(numa_machine())
        vm = make_vm(system, "hmmer", app="hmmer", core=0)
        make_vm(system, "dis", app="lbm", core=1)
        system.run_ticks(10)
        policy = IsolationPolicy(system)
        assert policy.should_isolate(vm) is False

    def test_quiet_corunners_need_no_isolation(self):
        system = system_on(numa_machine())
        vm = make_vm(system, "bzip", app="bzip", core=0)
        make_vm(system, "quiet", app="hmmer", core=1)
        system.run_ticks(10)
        policy = IsolationPolicy(system)
        assert policy.should_isolate(vm) is False

    def test_noisy_corunners_require_isolation(self):
        system = system_on(numa_machine())
        vm = make_vm(system, "bzip", app="bzip", core=0)
        make_vm(system, "dis", app="lbm", core=1)
        system.run_ticks(10)
        policy = IsolationPolicy(system)
        assert policy.should_isolate(vm) is True

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            IsolationPolicy(system_on(), low_pollution_threshold=-1)

    def test_sampler_honours_policy(self):
        system = system_on(numa_machine())
        vm = make_vm(system, "hmmer", app="hmmer", core=0)
        make_vm(system, "dis", app="lbm", core=1)
        system.run_ticks(10)
        sampler = SocketDedicationSampler(
            system, isolation_policy=IsolationPolicy(system)
        )
        sampler.sample(vm, sample_ticks=3)
        assert sampler.migrations_performed == 0


class TestMcSimReplayMonitor:
    def test_immune_to_contention_contamination(self):
        """The key property of the replay path: unlike the direct PMC
        measurement, its estimate barely moves when disruptors join —
        the miss *ratio* comes from the isolated replay, not from the
        contended shared LLC."""

        def measure(monitor_factory, colocated):
            system = system_on()
            vm = make_vm(system, "bzip", app="bzip", core=0)
            if colocated:
                make_vm(system, "dis1", app="lbm", core=1)
                make_vm(system, "dis2", app="blockie", core=2)
            monitor = monitor_factory(system)
            system.run_ticks(30)
            monitor.sample(vm)
            system.run_ticks(10)
            return monitor.sample(vm)

        def replay_factory(s):
            return McSimReplayMonitor(s, ReplayService())
        replay_inflation = measure(replay_factory, True) / measure(
            replay_factory, False
        )
        direct_inflation = measure(DirectPmcMonitor, True) / measure(
            DirectPmcMonitor, False
        )
        assert direct_inflation > 1.5  # contamination is real
        assert replay_inflation < 1.2  # and the replay path avoids it

    def test_idle_vm_measures_zero(self):
        system = system_on()
        vm = make_vm(system)
        monitor = McSimReplayMonitor(system, ReplayService())
        assert monitor.sample(vm) == 0.0

    def test_no_production_machine_perturbation(self):
        """Replay happens off-host: the measured VM's progress must not
        depend on how often the replay service is consulted."""

        def run(with_monitor):
            system = system_on()
            vm = make_vm(system, app="gcc")
            monitor = McSimReplayMonitor(system, ReplayService())
            for _ in range(20):
                system.run_ticks(1)
                if with_monitor:
                    monitor.sample(vm)
            return vm.instructions_retired

        assert run(True) == pytest.approx(run(False), rel=1e-6)
