"""Whole-program (phase 2) rule tests over multi-module fixtures.

Each fixture directory under ``tests/lint_fixtures/`` is a tiny
multi-module program exercising exactly one S/C/T rule family; linting
the directory runs both phases, so these tests cover the fact join and
the call graph as well as the rules themselves.
"""

from __future__ import annotations

import pathlib

from repro.lint import exit_code, lint_paths

FIXTURES = pathlib.Path(__file__).parent / "lint_fixtures"


def rule_findings(fixture: str, rule_id: str):
    findings = lint_paths([str(FIXTURES / fixture)])
    return [f for f in findings if f.rule_id == rule_id]


# -- S001 / S002: RNG stream provenance --------------------------------------


def test_s001_fires_on_duplicate_stream_names_across_modules():
    findings = rule_findings("s001", "S001")
    assert len(findings) == 2
    assert {f.path.rsplit("/", 1)[-1] for f in findings} == {
        "alpha.py",
        "beta.py",
    }
    assert all(f.severity == "error" for f in findings)
    assert all("shared-jitter" in f.message for f in findings)
    assert exit_code(findings) == 1


def test_s001_silent_for_distinct_stream_names():
    assert rule_findings("s001_ok", "S001") == []


def test_s002_warns_on_dynamic_and_omitted_names():
    findings = rule_findings("s002", "S002")
    assert len(findings) == 2
    assert all(f.severity == "warning" for f in findings)
    messages = " | ".join(f.message for f in findings)
    assert "dynamic expression" in messages
    assert "without a name" in messages
    # Warn tier reports but never gates.
    assert exit_code(findings) == 0


# -- C001 / C002: multiprocessing fan-out -------------------------------------


def test_c001_fires_on_lambda_and_nested_function_payloads():
    findings = rule_findings("c001", "C001")
    assert len(findings) == 2
    messages = " | ".join(f.message for f in findings)
    assert "lambda" in messages
    assert "helper" in messages
    assert all(f.severity == "error" for f in findings)


def test_c001_silent_for_module_level_worker():
    assert rule_findings("c002", "C001") == []
    assert rule_findings("c002_ok", "C001") == []


def test_c002_traces_mutation_through_the_cross_module_call_graph():
    findings = rule_findings("c002", "C002")
    assert len(findings) == 1
    (finding,) = findings
    assert finding.path.endswith("main.py")
    assert finding.severity == "warning"
    assert "_COUNTS" in finding.message
    assert "run -> bump" in finding.message


def test_c002_silent_for_pure_worker():
    assert rule_findings("c002_ok", "C002") == []


# -- T001 / T002: telemetry name flow and schema drift ------------------------


def test_t001_flags_typo_and_kind_mismatch_but_not_clean_read():
    findings = rule_findings("t001", "T001")
    assert len(findings) == 2
    by_message = sorted(f.message for f in findings)
    assert any("never recorded" in m for m in by_message)
    assert any("kind mismatch" in m for m in by_message)
    assert all(f.path.endswith("reader.py") for f in findings)


def test_t002_version_drift_is_an_error_at_every_site():
    findings = rule_findings("t002_drift", "T002")
    assert len(findings) == 2
    assert all(f.severity == "error" for f in findings)
    assert all("[1, 2]" in f.message for f in findings)


def test_t002_hardcoded_copy_of_owned_constant_warns():
    findings = rule_findings("t002_copy", "T002")
    assert len(findings) == 1
    (finding,) = findings
    assert finding.severity == "warning"
    assert finding.path.endswith("user.py")
    assert "COPY_SCHEMA" in finding.message


# -- phase-2 plumbing ---------------------------------------------------------


def test_program_findings_respect_pragmas(tmp_path):
    (tmp_path / "a.py").write_text(
        'def f(host_rng):\n    return host_rng.stream("dup")\n'
    )
    (tmp_path / "b.py").write_text(
        "def g(host_rng):\n"
        '    return host_rng.stream("dup")  # kyotolint: disable=S001\n'
    )
    findings = [
        f for f in lint_paths([str(tmp_path)]) if f.rule_id == "S001"
    ]
    assert len(findings) == 1
    assert findings[0].path.endswith("a.py")


def test_program_findings_carry_line_hashes():
    findings = rule_findings("s001", "S001")
    assert all(f.source_hash for f in findings)
