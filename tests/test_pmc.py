"""Tests for the PMC model and the perfctr-style virtualisation."""

import pytest

from repro.pmc.counters import (
    COUNTER_MASK,
    CoreCounters,
    HardwareCounter,
    PmcEvent,
    delta,
)
from repro.pmc.perfctr import PerfctrError, PerfctrVirtualizer


class TestHardwareCounter:
    def test_starts_at_zero(self):
        assert HardwareCounter(PmcEvent.LLC_MISSES).read() == 0

    def test_add(self):
        counter = HardwareCounter(PmcEvent.LLC_MISSES)
        counter.add(5)
        counter.add(7)
        assert counter.read() == 12

    def test_negative_add_rejected(self):
        with pytest.raises(ValueError):
            HardwareCounter(PmcEvent.LLC_MISSES).add(-1)

    def test_wraps_at_48_bits(self):
        counter = HardwareCounter(PmcEvent.LLC_MISSES)
        counter.write(COUNTER_MASK)
        counter.add(2)
        assert counter.read() == 1

    def test_write_masks(self):
        counter = HardwareCounter(PmcEvent.LLC_MISSES)
        counter.write(COUNTER_MASK + 10)
        assert counter.read() == 9


class TestDelta:
    def test_simple(self):
        assert delta(40, 100) == 60

    def test_wrap_aware(self):
        assert delta(COUNTER_MASK - 4, 5) == 10

    def test_zero(self):
        assert delta(7, 7) == 0


class TestCoreCounters:
    def test_independent_events(self):
        bank = CoreCounters(0)
        bank.add(PmcEvent.LLC_MISSES, 3)
        bank.add(PmcEvent.INSTRUCTIONS_RETIRED, 100)
        assert bank.read(PmcEvent.LLC_MISSES) == 3
        assert bank.read(PmcEvent.INSTRUCTIONS_RETIRED) == 100
        assert bank.read(PmcEvent.UNHALTED_CORE_CYCLES) == 0

    def test_read_all(self):
        bank = CoreCounters(0)
        bank.add(PmcEvent.LLC_MISSES, 3)
        snapshot = bank.read_all()
        assert snapshot[PmcEvent.LLC_MISSES] == 3
        assert len(snapshot) == len(PmcEvent)


class TestPerfctr:
    def setup_method(self):
        self.cores = {0: CoreCounters(0), 1: CoreCounters(1)}
        self.virt = PerfctrVirtualizer(self.cores)

    def test_attributes_deltas_to_vcpu(self):
        self.virt.context_switch_in(7, 0)
        self.cores[0].add(PmcEvent.LLC_MISSES, 50)
        deltas = self.virt.context_switch_out(7)
        assert deltas[PmcEvent.LLC_MISSES] == 50
        assert self.virt.account(7).read(PmcEvent.LLC_MISSES) == 50

    def test_only_own_window_counted(self):
        self.cores[0].add(PmcEvent.LLC_MISSES, 999)  # before switch-in
        self.virt.context_switch_in(7, 0)
        self.cores[0].add(PmcEvent.LLC_MISSES, 10)
        deltas = self.virt.context_switch_out(7)
        assert deltas[PmcEvent.LLC_MISSES] == 10

    def test_two_vcpus_interleaved_on_one_core(self):
        self.virt.context_switch_in(1, 0)
        self.cores[0].add(PmcEvent.LLC_MISSES, 5)
        self.virt.context_switch_out(1)
        self.virt.context_switch_in(2, 0)
        self.cores[0].add(PmcEvent.LLC_MISSES, 7)
        self.virt.context_switch_out(2)
        assert self.virt.account(1).read(PmcEvent.LLC_MISSES) == 5
        assert self.virt.account(2).read(PmcEvent.LLC_MISSES) == 7

    def test_double_switch_in_rejected(self):
        self.virt.context_switch_in(1, 0)
        with pytest.raises(PerfctrError):
            self.virt.context_switch_in(1, 1)

    def test_switch_out_without_in_rejected(self):
        with pytest.raises(PerfctrError):
            self.virt.context_switch_out(1)

    def test_accumulates_across_stints(self):
        for i in range(3):
            self.virt.context_switch_in(1, 0)
            self.cores[0].add(PmcEvent.LLC_MISSES, 10)
            self.virt.context_switch_out(1)
        assert self.virt.account(1).read(PmcEvent.LLC_MISSES) == 30

    def test_counter_wrap_handled(self):
        self.cores[0].add(PmcEvent.LLC_MISSES, COUNTER_MASK - 3)
        self.virt.context_switch_in(1, 0)
        self.cores[0].add(PmcEvent.LLC_MISSES, 10)  # wraps
        deltas = self.virt.context_switch_out(1)
        assert deltas[PmcEvent.LLC_MISSES] == 10

    def test_sample_returns_delta_since_last_sample(self):
        self.virt.context_switch_in(1, 0)
        self.cores[0].add(PmcEvent.LLC_MISSES, 10)
        first = self.virt.sample(1)
        self.cores[0].add(PmcEvent.LLC_MISSES, 4)
        second = self.virt.sample(1)
        assert first[PmcEvent.LLC_MISSES] == 10
        assert second[PmcEvent.LLC_MISSES] == 4

    def test_sample_of_descheduled_vcpu(self):
        self.virt.context_switch_in(1, 0)
        self.cores[0].add(PmcEvent.LLC_MISSES, 10)
        self.virt.context_switch_out(1)
        assert self.virt.sample(1)[PmcEvent.LLC_MISSES] == 10
        assert self.virt.sample(1)[PmcEvent.LLC_MISSES] == 0

    def test_flush_running_keeps_vcpu_switched_in(self):
        self.virt.context_switch_in(1, 0)
        self.cores[0].add(PmcEvent.LLC_MISSES, 3)
        self.virt.flush_running(1)
        assert self.virt.is_running(1)
        self.cores[0].add(PmcEvent.LLC_MISSES, 2)
        self.virt.context_switch_out(1)
        assert self.virt.account(1).read(PmcEvent.LLC_MISSES) == 5

    def test_flush_running_noop_when_descheduled(self):
        self.virt.flush_running(42)  # must not raise
