"""Tests for the replacement policies (LRU, random, BIP, DIP, PDP)."""

import pytest

from repro.cachesim.replacement import (
    BipPolicy,
    DipPolicy,
    LruPolicy,
    ProtectingDistancePolicy,
    RandomPolicy,
    make_policy,
)
from repro.cachesim.setassoc import SetAssociativeCache
from repro.hardware.specs import CacheSpec, KIB


def cache_with(policy, size_kib=1, assoc=4):
    return SetAssociativeCache(
        CacheSpec("T", size_kib * KIB, assoc), policy
    )


class TestFactory:
    @pytest.mark.parametrize("name", ["lru", "random", "bip", "dip", "pdp"])
    def test_known_policies(self, name):
        assert make_policy(name).name == name

    def test_case_insensitive(self):
        assert make_policy("LRU").name == "lru"

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_policy("plru")

    def test_kwargs_forwarded(self):
        policy = make_policy("bip", epsilon=0.5)
        assert policy.epsilon == 0.5


class TestLru:
    def test_evicts_least_recent(self):
        cache = cache_with(LruPolicy(), assoc=2)
        stride = cache.num_sets * 64
        cache.access(0)
        cache.access(stride)
        cache.access(0)  # refresh
        cache.access(2 * stride)
        assert cache.probe(0)
        assert not cache.probe(stride)


class TestRandom:
    def test_reproducible(self):
        trace = [i * 64 * 17 for i in range(500)]
        a = cache_with(RandomPolicy(seed=1))
        b = cache_with(RandomPolicy(seed=1))
        for addr in trace:
            a.access(addr)
            b.access(addr)
        assert a.stats.total.misses == b.stats.total.misses

    def test_seed_changes_behaviour(self):
        import random as _random

        rng = _random.Random(99)
        # Working set twice the cache size, with reuse: victim choice matters.
        trace = [rng.randrange(32) * 64 for _ in range(2000)]
        a = cache_with(RandomPolicy(seed=1), size_kib=1, assoc=2)
        b = cache_with(RandomPolicy(seed=2), size_kib=1, assoc=2)
        for addr in trace:
            a.access(addr)
            b.access(addr)
        # Different victim choices almost surely give different hit counts.
        assert a.stats.total.hits != b.stats.total.hits


class TestBip:
    def test_epsilon_validation(self):
        with pytest.raises(ValueError):
            BipPolicy(epsilon=1.5)

    def test_resists_scan_better_than_lru(self):
        """A hot set + a big streaming scan: BIP should keep more of the
        hot set resident than LRU does."""

        def run(policy):
            cache = cache_with(policy, size_kib=4, assoc=4)
            hot = [i * 64 for i in range(32)]
            scan = [(1 << 20) + i * 64 for i in range(4096)]
            for _ in range(20):
                for h in hot:
                    cache.access(h)
            hits = 0
            scan_i = 0
            for _ in range(40):
                for h in hot:
                    hits += cache.access(h).hit
                for _ in range(64):
                    cache.access(scan[scan_i % len(scan)])
                    scan_i += 1
            return hits

        assert run(BipPolicy(epsilon=1 / 32, seed=3)) > run(LruPolicy())


class TestDip:
    def test_set_roles_assigned(self):
        cache = cache_with(DipPolicy(), size_kib=8, assoc=4)
        roles = cache.policy._roles
        assert roles.count(DipPolicy.LEADER_LRU) >= 1
        assert roles.count(DipPolicy.LEADER_BIP) >= 1
        assert roles.count(DipPolicy.FOLLOWER) > 0

    def test_functions_as_cache(self):
        cache = cache_with(DipPolicy(), size_kib=4)
        cache.access(0)
        assert cache.access(0).hit

    def test_psel_moves_on_leader_misses(self):
        policy = DipPolicy(psel_bits=4, leaders_per_kind=1)
        policy.assign_set_roles(16)
        lru_leader = policy._roles.index(DipPolicy.LEADER_LRU)
        start = policy._psel
        policy.record_miss(lru_leader)
        assert policy._psel == start + 1


class TestPdp:
    def test_validation(self):
        with pytest.raises(ValueError):
            ProtectingDistancePolicy(protecting_distance=0)

    def test_protects_recent_lines(self):
        cache = cache_with(ProtectingDistancePolicy(protecting_distance=16),
                           assoc=2)
        stride = cache.num_sets * 64
        cache.access(0)
        cache.access(stride)
        # Immediately conflicting access: both resident lines are still
        # protected, so the policy falls back to evicting the LRU.
        result = cache.access(2 * stride)
        assert result.hit is False
        assert cache.resident_lines() >= 2

    def test_unprotected_evicted_first(self):
        policy = ProtectingDistancePolicy(protecting_distance=2)
        cache = cache_with(policy, assoc=2)
        stride = cache.num_sets * 64
        cache.access(0)
        cache.access(stride)
        # Burn down line 0's protection by hitting the other line.
        cache.access(stride)
        cache.access(stride)
        cache.access(2 * stride)  # line 0 unprotected -> victim
        assert cache.probe(stride)
        assert not cache.probe(0)
