"""Tests for the cache-partitioning baselines (page coloring, UCP)."""

import pytest

from repro.cachesim.perfmodel import CacheBehavior
from repro.hypervisor.system import VirtualizedSystem
from repro.hypervisor.vm import VmConfig
from repro.partitioning.static import PartitionedLlcDomain, apply_page_coloring
from repro.partitioning.ucp import UcpController, marginal_utility_allocation
from repro.schedulers.credit import CreditScheduler
from repro.workloads.profiles import application_behavior, application_workload

from conftest import make_vm


class TestPartitionedDomain:
    def test_validation(self):
        with pytest.raises(ValueError):
            PartitionedLlcDomain(0, {})
        with pytest.raises(ValueError):
            PartitionedLlcDomain(100, {1: 200})
        with pytest.raises(ValueError):
            PartitionedLlcDomain(100, {1: 0})

    def test_private_partition_isolated(self):
        domain = PartitionedLlcDomain(1000, {1: 400, 2: 400})
        for _ in range(50):
            domain.relax({1: 50.0, 2: 500.0}, {1: 400, 2: 4000})
        # Owner 2's massive pressure cannot evict owner 1's slice.
        assert domain.occupancy_of(1) == pytest.approx(400, rel=0.05)
        assert domain.occupancy_of(2) <= 400 + 1e-6

    def test_unallocated_owners_share_remainder(self):
        domain = PartitionedLlcDomain(1000, {1: 600})
        for _ in range(50):
            domain.relax({2: 100.0, 3: 100.0}, {2: 4000, 3: 4000})
        assert domain.occupancy_of(2) + domain.occupancy_of(3) <= 400 + 1e-6

    def test_no_shared_partition_rejects_strangers(self):
        domain = PartitionedLlcDomain(1000, {1: 1000})
        with pytest.raises(ValueError):
            domain.relax({2: 10.0}, {2: 100})

    def test_flush_owner(self):
        domain = PartitionedLlcDomain(1000, {1: 400})
        domain.relax({1: 100.0}, {1: 400})
        assert domain.flush_owner(1) > 0
        assert domain.occupancy_of(1) == 0

    def test_snapshot_and_usage(self):
        domain = PartitionedLlcDomain(1000, {1: 400})
        domain.relax({1: 100.0, 2: 50.0}, {1: 400, 2: 100})
        snap = domain.snapshot()
        assert snap[1] > 0 and snap[2] > 0
        assert domain.used_lines == pytest.approx(sum(snap.values()))
        assert domain.free_lines == pytest.approx(1000 - domain.used_lines)


class TestPageColoringOnSystem:
    def test_coloring_protects_sensitive_vm(self):
        """Reserving most of the LLC for the sensitive VM removes the
        disruptor's influence — partitioning works, at the cost of
        rigidity (the paper's related-work trade-off)."""

        def victim_ipc(colored):
            system = VirtualizedSystem(CreditScheduler())
            sen = make_vm(system, "sen", app="omnetpp", core=0)
            make_vm(system, "dis", app="lbm", core=1)
            if colored:
                apply_page_coloring(system, {sen: 110_000})
            system.run_ticks(30)
            sen.reset_metrics()
            system.run_ticks(90)
            return sen.vcpus[0].ipc

        assert victim_ipc(True) > victim_ipc(False) * 1.1

    def test_coloring_hurts_when_undersized(self):
        """A too-small colour allocation caps the VM below its solo
        performance even with no co-runner — the rigidity cost."""

        def solo_ipc(colored_lines):
            system = VirtualizedSystem(CreditScheduler())
            vm = make_vm(system, "v", app="omnetpp", core=0)
            if colored_lines:
                apply_page_coloring(system, {vm: colored_lines})
            system.run_ticks(30)
            vm.reset_metrics()
            system.run_ticks(60)
            return vm.vcpus[0].ipc

        assert solo_ipc(20_000) < solo_ipc(None) * 0.9


class TestMarginalUtility:
    def test_validation(self):
        with pytest.raises(ValueError):
            marginal_utility_allocation(0, {}, {})
        with pytest.raises(ValueError):
            marginal_utility_allocation(100, {}, {}, granularity=0)

    def test_zero_rate_owner_gets_nothing(self):
        behaviors = {1: application_behavior("gcc"), 2: application_behavior("gcc")}
        alloc = marginal_utility_allocation(
            100_000, behaviors, {1: 100.0, 2: 0.0}
        )
        assert alloc.get(2, 0.0) == 0.0
        assert alloc[1] > 0

    def test_respects_footprint_caps(self):
        small = CacheBehavior(wss_lines=1000, lapki=100, base_cpi=0.5)
        behaviors = {1: small}
        alloc = marginal_utility_allocation(100_000, behaviors, {1: 100.0},
                                            granularity=100)
        assert alloc[1] <= 1000 + 100_000 / 100  # cap + one chunk

    def test_total_bounded(self):
        behaviors = {
            i: application_behavior(app)
            for i, app in enumerate(["gcc", "omnetpp", "soplex"])
        }
        rates = {i: 100.0 * (i + 1) for i in behaviors}
        alloc = marginal_utility_allocation(163_840, behaviors, rates)
        assert sum(alloc.values()) <= 163_840 + 1e-6

    def test_reuse_heavy_beats_streaming(self):
        """UCP's point: give cache to whoever converts it into hits."""
        behaviors = {
            1: application_behavior("omnetpp"),  # reuse-heavy
            2: application_behavior("lbm"),      # streaming
        }
        rates = {1: 100_000.0, 2: 100_000.0}
        alloc = marginal_utility_allocation(163_840, behaviors, rates)
        assert alloc.get(1, 0) > alloc.get(2, 0)


class TestUcpController:
    def test_validation(self):
        system = VirtualizedSystem(CreditScheduler())
        with pytest.raises(ValueError):
            UcpController(system, period_ticks=0)

    def test_repartitions_periodically(self):
        system = VirtualizedSystem(CreditScheduler())
        make_vm(system, "a", app="omnetpp", core=0)
        make_vm(system, "b", app="lbm", core=1)
        controller = UcpController(system, period_ticks=10)
        system.run_ticks(35)
        assert controller.repartitions == 3
        assert controller.last_allocation

    def test_ucp_protects_reuse_heavy_vm(self):
        def victim_ipc(with_ucp):
            system = VirtualizedSystem(CreditScheduler())
            sen = make_vm(system, "sen", app="omnetpp", core=0)
            make_vm(system, "dis", app="lbm", core=1)
            if with_ucp:
                UcpController(system, period_ticks=6)
            system.run_ticks(30)
            sen.reset_metrics()
            system.run_ticks(90)
            return sen.vcpus[0].ipc

        assert victim_ipc(True) > victim_ipc(False) * 1.05
