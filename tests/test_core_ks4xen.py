"""Tests for KS4Xen — the Kyoto credit scheduler."""

import pytest

from repro.core.ks4xen import KS4Xen
from repro.hypervisor.system import VirtualizedSystem
from repro.hypervisor.vm import VmConfig
from repro.schedulers.credit import CreditScheduler
from repro.workloads.profiles import application_workload

from conftest import make_vm


def ks4xen_system(**kwargs):
    return VirtualizedSystem(KS4Xen(**kwargs))


def gcc_lbm_pair(system, llc_cap=250_000.0):
    sen = system.create_vm(
        VmConfig(
            name="vsen1",
            workload=application_workload("gcc"),
            llc_cap=llc_cap,
            pinned_cores=[0],
        )
    )
    dis = system.create_vm(
        VmConfig(
            name="vdis1",
            workload=application_workload("lbm"),
            llc_cap=llc_cap,
            pinned_cores=[1],
        )
    )
    return sen, dis


class TestRegistration:
    def test_vm_with_llc_cap_gets_account(self):
        system = ks4xen_system()
        vm = make_vm(system, llc_cap=100_000.0)
        assert system.scheduler.kyoto.account_of(vm) is not None

    def test_vm_without_llc_cap_unmanaged(self):
        system = ks4xen_system()
        vm = make_vm(system)
        assert system.scheduler.kyoto.account_of(vm) is None
        assert system.scheduler.kyoto.is_parked(vm) is False


class TestEnforcement:
    def test_polluter_gets_punished(self):
        system = ks4xen_system()
        __, dis = gcc_lbm_pair(system)
        system.run_ticks(120)
        assert system.scheduler.kyoto.punishments(dis) > 5

    def test_quiet_vm_never_punished(self):
        system = ks4xen_system()
        sen, __ = gcc_lbm_pair(system)
        system.run_ticks(120)
        assert system.scheduler.kyoto.punishments(sen) == 0

    def test_polluter_duty_cycle_reduced(self):
        system = ks4xen_system()
        __, dis = gcc_lbm_pair(system)
        ran = [0]
        gid = dis.vcpus[0].gid
        system.add_tick_observer(
            lambda s, t: ran.__setitem__(0, ran[0] + (gid in s.last_tick_cycles))
        )
        system.run_ticks(150)
        duty = ran[0] / 150
        # lbm pollutes at ~420k against a 250k permit: duty ~ 0.6.
        assert 0.4 < duty < 0.75

    def test_victim_performance_improves_over_xcs(self):
        def victim_ipc(scheduler):
            system = VirtualizedSystem(scheduler)
            sen, __ = gcc_lbm_pair(system)
            system.run_ticks(30)
            sen.reset_metrics()
            system.run_ticks(150)
            return sen.vcpus[0].ipc

        assert victim_ipc(KS4Xen()) > victim_ipc(CreditScheduler()) * 1.03

    def test_unmanaged_vms_behave_like_xcs(self):
        """KS4Xen without permits must degrade to plain XCS behaviour."""

        def victim_ipc(scheduler):
            system = VirtualizedSystem(scheduler)
            sen = make_vm(system, "sen", app="gcc", core=0)
            make_vm(system, "dis", app="lbm", core=1)
            system.run_ticks(30)
            sen.reset_metrics()
            system.run_ticks(100)
            return sen.vcpus[0].ipc

        assert victim_ipc(KS4Xen()) == pytest.approx(
            victim_ipc(CreditScheduler()), rel=0.02
        )

    def test_generous_permit_never_punishes(self):
        system = ks4xen_system()
        __, dis = gcc_lbm_pair(system, llc_cap=5_000_000.0)
        system.run_ticks(120)
        assert system.scheduler.kyoto.punishments(dis) == 0

    def test_zero_permit_parks_polluter_almost_always(self):
        system = ks4xen_system()
        sen, dis = gcc_lbm_pair(system, llc_cap=0.0)
        # gcc also has a zero permit here; use separate permits instead.
        system = ks4xen_system()
        system.create_vm(
            VmConfig(name="sen", workload=application_workload("gcc"),
                     llc_cap=250_000.0, pinned_cores=[0])
        )
        dis = system.create_vm(
            VmConfig(name="dis", workload=application_workload("lbm"),
                     llc_cap=1_000.0, pinned_cores=[1])
        )
        ran = [0]
        gid = dis.vcpus[0].gid
        system.add_tick_observer(
            lambda s, t: ran.__setitem__(0, ran[0] + (gid in s.last_tick_cycles))
        )
        system.run_ticks(200)
        assert ran[0] / 200 < 0.1

    def test_quota_oscillates_for_overdrawing_vm(self):
        system = ks4xen_system()
        __, dis = gcc_lbm_pair(system)
        quotas = []
        system.add_tick_observer(
            lambda s, t: quotas.append(s.scheduler.kyoto.quota(dis))
        )
        system.run_ticks(120)
        assert min(quotas) < 0  # overdraws
        assert max(quotas) > 0  # recovers

    def test_punished_vm_eventually_runs_again(self):
        system = ks4xen_system()
        __, dis = gcc_lbm_pair(system)
        system.run_ticks(60)
        gid = dis.vcpus[0].gid
        late_runs = [0]
        system.add_tick_observer(
            lambda s, t: late_runs.__setitem__(
                0, late_runs[0] + (gid in s.last_tick_cycles)
            )
        )
        system.run_ticks(60)
        assert late_runs[0] > 0


class TestMonitorPeriod:
    def test_longer_period_fewer_samples(self):
        def samples(period):
            system = ks4xen_system(monitor_period_ticks=period)
            __, dis = gcc_lbm_pair(system)
            system.run_ticks(90)
            return system.scheduler.kyoto.account_of(dis).samples

        # Only periods in which the VM actually executed are sampled
        # (a parked VM earns no zero-rate entries), so the count is
        # bounded by the period count and shrinks as the period grows.
        assert samples(3) <= 90 // 3
        assert samples(3) < samples(1)

    def test_invalid_period_rejected(self):
        with pytest.raises(ValueError):
            VirtualizedSystem(KS4Xen(monitor_period_ticks=0))
