"""Lossless serialization of scenario specs (property-based).

The scenario layer's core contract: any valid :class:`ScenarioSpec`
survives ``to_dict`` → ``from_dict`` and both on-disk encodings (JSON
always; TOML where ``tomllib`` exists, Python 3.11+) *losslessly* —
``==`` on the frozen dataclasses, which compares every field of every
nested spec.
"""

import dataclasses
import string

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.scenario import (  # noqa: E402
    AdmissionSpec,
    ArrivalSpec,
    FaultSiteSpec,
    FaultsSpec,
    LifetimeSpec,
    MachineSpecChoice,
    MigrationSpec,
    MonitorSpec,
    ProtocolSpec,
    ScenarioSpec,
    SchedulerChoice,
    ServiceSpec,
    ServiceTemplateSpec,
    SystemSpec,
    TelemetrySpec,
    VmSpec,
    WorkloadSpec,
    dumps_json,
    dumps_toml,
    from_dict,
    loads_json,
    to_dict,
)
from repro.scenario.spec import (  # noqa: E402
    CHAIN_MEMBERS,
    KNOWN_SITES,
    MACHINE_PRESETS,
    MONITOR_STRATEGIES,
    SCHEDULER_KINDS,
)

try:
    import tomllib  # noqa: F401

    HAVE_TOMLLIB = True
except ImportError:
    HAVE_TOMLLIB = False


_NAME_ALPHABET = string.ascii_lowercase + string.digits + "-_."
names = st.text(alphabet=_NAME_ALPHABET, min_size=1, max_size=12)
floats = st.floats(allow_nan=False, allow_infinity=False, width=64)
positive_floats = st.floats(
    min_value=1e-3, max_value=1e12, allow_nan=False, allow_infinity=False
)

workloads = st.one_of(
    st.builds(
        WorkloadSpec,
        kind=st.just("application"),
        app=names,
        disruptive=st.booleans(),
        total_instructions=st.none() | positive_floats,
    ),
    st.builds(
        WorkloadSpec,
        kind=st.just("micro"),
        wss_bytes=st.integers(min_value=1, max_value=1 << 30),
        disruptive=st.booleans(),
        total_instructions=st.none() | positive_floats,
    ),
)


@st.composite
def vm_specs(draw, name):
    count = draw(st.integers(min_value=1, max_value=4))
    num_vcpus = draw(st.integers(min_value=1, max_value=3))
    if count > 1:
        pinned = draw(
            st.none() | st.tuples(st.integers(min_value=0, max_value=7))
        )
    else:
        pinned = draw(
            st.none()
            | st.lists(
                st.integers(min_value=0, max_value=7),
                min_size=num_vcpus,
                max_size=num_vcpus,
            ).map(tuple)
        )
    return VmSpec(
        name=name,
        workload=draw(workloads),
        count=count,
        num_vcpus=num_vcpus,
        weight=draw(st.integers(min_value=1, max_value=1024)),
        cap_percent=draw(
            st.none()
            | st.floats(
                min_value=0,
                max_value=100 * num_vcpus,
                allow_nan=False,
                allow_infinity=False,
            )
        ),
        llc_cap=draw(
            st.none()
            | st.floats(
                min_value=0, max_value=1e7, allow_nan=False, allow_infinity=False
            )
        ),
        memory_node=draw(st.integers(min_value=0, max_value=1)),
        pinned_cores=pinned,
    )


@st.composite
def scheduler_choices(draw):
    kind = draw(st.sampled_from(SCHEDULER_KINDS))
    return SchedulerChoice(
        kind=kind,
        quota_max_factor=draw(positive_floats),
        monitor_period_ticks=draw(st.integers(min_value=1, max_value=10)),
        quota_min_factor=(
            draw(st.none() | positive_floats) if kind == "ks4xen" else None
        ),
    )


monitors = st.builds(
    MonitorSpec,
    strategy=st.sampled_from(MONITOR_STRATEGIES),
    sample_ticks=st.integers(min_value=1, max_value=10),
    chain=st.lists(
        st.sampled_from(CHAIN_MEMBERS), min_size=1, max_size=4
    ).map(tuple),
    retries=st.integers(min_value=0, max_value=5),
    replay_refresh_every=st.integers(min_value=1, max_value=100),
    replay_max_report_age=st.none() | st.integers(min_value=1, max_value=100),
)

fault_sites = st.builds(
    FaultSiteSpec,
    site=st.sampled_from(sorted(KNOWN_SITES)),
    probability=st.floats(
        min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False
    ),
    burst=st.integers(min_value=1, max_value=5),
    windows=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=50),
            st.integers(min_value=51, max_value=100),
        ),
        max_size=2,
    ).map(tuple),
)

faults = st.one_of(
    st.builds(
        FaultsSpec,
        uniform_rate=st.floats(
            min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False
        ),
        burst=st.integers(min_value=1, max_value=5),
        stream=names,
    ),
    st.builds(
        FaultsSpec,
        burst=st.integers(min_value=1, max_value=5),
        sites=st.lists(
            fault_sites, min_size=1, max_size=3, unique_by=lambda s: s.site
        ).map(tuple),
        stream=names,
    ),
)


@st.composite
def migrations(draw, vm_names):
    min_dwell = draw(st.integers(min_value=1, max_value=5))
    return MigrationSpec(
        home_core=draw(st.integers(min_value=0, max_value=7)),
        remote_core=draw(st.integers(min_value=0, max_value=7)),
        period_ticks=draw(st.integers(min_value=1, max_value=50)),
        min_dwell_ticks=min_dwell,
        max_dwell_ticks=draw(st.integers(min_value=min_dwell, max_value=10)),
        seed=draw(st.integers(min_value=0, max_value=100)),
        vm=draw(st.none() | st.sampled_from(vm_names)),
    )


@st.composite
def arrival_specs(draw):
    process = draw(st.sampled_from(("poisson", "bursty")))
    amplitude = draw(
        st.floats(
            min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False
        )
    )
    return ArrivalSpec(
        process=process,
        rate_per_tick=draw(
            st.floats(
                min_value=0.0,
                max_value=2.0,
                allow_nan=False,
                allow_infinity=False,
            )
        ),
        burst_probability=draw(
            st.floats(
                min_value=0.0,
                max_value=1.0,
                allow_nan=False,
                allow_infinity=False,
            )
        ),
        burst_size=draw(st.integers(min_value=1, max_value=8)),
        diurnal_amplitude=amplitude,
        diurnal_period_ticks=(
            draw(st.integers(min_value=1, max_value=10**6))
            if amplitude > 0.0
            else 0
        ),
    )


lifetime_specs = st.one_of(
    st.builds(
        LifetimeSpec,
        kind=st.sampled_from(("exponential", "fixed")),
        mean_ticks=positive_floats,
    ),
    st.builds(
        LifetimeSpec,
        kind=st.just("lognormal"),
        mean_ticks=positive_floats,
        sigma=st.floats(
            min_value=1e-3, max_value=4.0, allow_nan=False, allow_infinity=False
        ),
    ),
)

admission_specs = st.one_of(
    st.builds(AdmissionSpec, policy=st.just("naive")),
    st.builds(
        AdmissionSpec,
        policy=st.just("capacity"),
        max_vcpus=st.integers(min_value=1, max_value=64),
    ),
    st.builds(
        AdmissionSpec,
        policy=st.just("permit_budget"),
        llc_budget=positive_floats,
    ),
)


@st.composite
def service_template_specs(draw, name):
    num_vcpus = draw(st.integers(min_value=1, max_value=3))
    return ServiceTemplateSpec(
        name=name,
        workload=draw(workloads),
        num_vcpus=num_vcpus,
        weight=draw(st.integers(min_value=1, max_value=1024)),
        cap_percent=draw(
            st.none()
            | st.floats(
                min_value=0,
                max_value=100 * num_vcpus,
                allow_nan=False,
                allow_infinity=False,
            )
        ),
        llc_cap=draw(
            st.none()
            | st.floats(
                min_value=0,
                max_value=1e7,
                allow_nan=False,
                allow_infinity=False,
            )
        ),
        memory_node=draw(st.integers(min_value=0, max_value=1)),
    )


@st.composite
def service_specs(draw):
    template_names = draw(
        st.lists(names, min_size=1, max_size=3, unique=True)
    )
    return ServiceSpec(
        arrivals=draw(arrival_specs()),
        lifetime=draw(lifetime_specs),
        admission=draw(admission_specs),
        templates=tuple(
            draw(service_template_specs(name)) for name in template_names
        ),
        drain_at_end=draw(st.booleans()),
    )


systems = st.builds(
    SystemSpec,
    tick_usec=st.integers(min_value=1, max_value=100_000),
    ticks_per_slice=st.integers(min_value=1, max_value=10),
    substeps_per_tick=st.integers(min_value=1, max_value=20),
    context_switch_cost_cycles=st.integers(min_value=0, max_value=100_000),
    perf_jitter_fraction=st.floats(
        min_value=0.0,
        max_value=0.99,
        exclude_max=False,
        allow_nan=False,
        allow_infinity=False,
    ),
    seed=st.integers(min_value=0, max_value=2**31),
)

protocols = st.builds(
    ProtocolSpec,
    mode=st.just("measure"),
    warmup_ticks=st.integers(min_value=0, max_value=100),
    measure_ticks=st.integers(min_value=1, max_value=500),
    max_ticks=st.integers(min_value=1, max_value=10**6),
    solo_baseline=st.booleans(),
)


@st.composite
def scenario_specs(draw):
    vm_names = draw(
        st.lists(names, min_size=1, max_size=4, unique=True)
    )
    vms = tuple(draw(vm_specs(name)) for name in vm_names)
    first = vms[0]
    target = first.name if first.count == 1 else f"{first.name}-0"
    protocol = dataclasses.replace(
        draw(protocols), target_vm=draw(st.sampled_from([None, target]))
    )
    return ScenarioSpec(
        name=draw(names),
        description=draw(st.text(max_size=40)),
        machine=MachineSpecChoice(preset=draw(st.sampled_from(MACHINE_PRESETS))),
        scheduler=draw(scheduler_choices()),
        system=draw(systems),
        monitor=draw(monitors),
        vms=vms,
        faults=draw(st.none() | faults),
        migration=draw(st.none() | migrations(vm_names)),
        protocol=protocol,
        telemetry=draw(
            st.builds(
                TelemetrySpec,
                enabled=st.booleans(),
                series_capacity=st.integers(min_value=1, max_value=4096),
            )
        ),
        service=draw(st.none() | service_specs()),
    )


@settings(max_examples=60, deadline=None)
@given(scenario_specs())
def test_dict_roundtrip_lossless(spec):
    assert from_dict(to_dict(spec)) == spec


@settings(max_examples=60, deadline=None)
@given(scenario_specs())
def test_json_roundtrip_lossless(spec):
    assert loads_json(dumps_json(spec)) == spec


@pytest.mark.skipif(not HAVE_TOMLLIB, reason="tomllib needs Python 3.11+")
@settings(max_examples=60, deadline=None)
@given(scenario_specs())
def test_toml_roundtrip_lossless(spec):
    from repro.scenario import loads_toml

    assert loads_toml(dumps_toml(spec)) == spec


def test_minimal_document_omits_defaults():
    spec = ScenarioSpec(
        name="tiny",
        vms=(VmSpec(name="v", workload=WorkloadSpec(app="gcc")),),
    )
    doc = to_dict(spec)
    assert set(doc) == {"schema", "name", "vms"}
    assert doc["vms"] == [{"name": "v", "workload": {"app": "gcc"}}]
