"""Tests for the pin-style capture and McSimA+-style replay service."""

import pytest

from repro.mcsim.pin import CaptureConfig, PinTool
from repro.mcsim.replay import McSimReplayer
from repro.mcsim.service import ReplayService
from repro.workloads.micro import micro_workload
from repro.workloads.profiles import application_workload


class TestPinCapture:
    def test_capture_produces_records(self):
        records = PinTool().capture(application_workload("gcc"))
        assert len(records) > 1
        assert all(r.instructions > 0 for r in records)

    def test_access_volume_matches_lapki(self):
        config = CaptureConfig(sample_accesses=10_000)
        records = PinTool(config).capture(application_workload("gcc"))
        total = sum(len(r.addresses) for r in records)
        assert total == pytest.approx(10_000, rel=0.02)

    def test_cpu_bound_workload_one_empty_block(self):
        from repro.cachesim.perfmodel import CacheBehavior
        from repro.workloads.base import Workload

        silent = Workload(
            "silent", CacheBehavior(wss_lines=10, lapki=0.0, base_cpi=0.5)
        )
        records = PinTool().capture(silent)
        assert len(records) == 1
        assert records[0].addresses == ()

    def test_deterministic_capture(self):
        a = PinTool(CaptureConfig(seed=3)).capture(application_workload("gcc"))
        b = PinTool(CaptureConfig(seed=3)).capture(application_workload("gcc"))
        assert [r.addresses for r in a] == [r.addresses for r in b]

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CaptureConfig(sample_accesses=0)
        with pytest.raises(ValueError):
            CaptureConfig(block_instructions=0)


class TestReplay:
    def test_streaming_app_high_miss_ratio(self):
        records = PinTool().capture(application_workload("lbm"))
        report = McSimReplayer().replay(records)
        assert report.miss_ratio > 0.6

    def test_small_reuse_set_low_miss_ratio(self):
        records = PinTool(CaptureConfig(sample_accesses=50_000)).capture(
            application_workload("hmmer")
        )
        report = McSimReplayer().replay(records)
        assert report.misses_per_kinst < 5.0

    def test_report_fields_consistent(self):
        records = PinTool().capture(application_workload("gcc"))
        report = McSimReplayer().replay(records)
        assert report.llc_misses <= report.llc_accesses
        assert report.instructions > 0
        assert report.cycles > report.instructions * 0.5
        assert 0 < report.ipc < 4

    def test_warmup_fraction_validation(self):
        with pytest.raises(ValueError):
            McSimReplayer(warmup_fraction=1.0)

    def test_intrinsic_ranking_preserved(self):
        """Replay reproduces the key profile distinction: disruptors miss
        far more per instruction than quiet apps."""

        def mpki(app):
            records = PinTool().capture(application_workload(app))
            return McSimReplayer().replay(records).misses_per_kinst

        assert mpki("lbm") > 10 * mpki("hmmer")

    def test_empty_records(self):
        report = McSimReplayer().replay([])
        assert report.instructions == 0
        assert report.miss_ratio == 0.0
        assert report.ipc == 0.0


class TestReplayService:
    def test_caches_reports(self):
        service = ReplayService(refresh_every=10)
        from repro.hypervisor.system import VirtualizedSystem
        from repro.schedulers.credit import CreditScheduler
        from conftest import make_vm

        system = VirtualizedSystem(CreditScheduler())
        vm = make_vm(system, app="gcc")
        first = service.replay_vm(vm)
        second = service.replay_vm(vm)
        assert second is first
        assert service.stats.replays == 1
        assert service.stats.cache_hits == 1

    def test_refresh_after_expiry(self):
        service = ReplayService(refresh_every=2)
        from repro.hypervisor.system import VirtualizedSystem
        from repro.schedulers.credit import CreditScheduler
        from conftest import make_vm

        system = VirtualizedSystem(CreditScheduler())
        vm = make_vm(system, app="gcc")
        service.replay_vm(vm)
        service.replay_vm(vm)
        service.replay_vm(vm)  # age reached refresh_every -> re-replay
        assert service.stats.replays == 2

    def test_invalidate_forces_replay(self):
        service = ReplayService()
        from repro.hypervisor.system import VirtualizedSystem
        from repro.schedulers.credit import CreditScheduler
        from conftest import make_vm

        system = VirtualizedSystem(CreditScheduler())
        vm = make_vm(system, app="gcc")
        service.replay_vm(vm)
        service.invalidate(vm)
        service.replay_vm(vm)
        assert service.stats.replays == 2

    def test_invalid_refresh(self):
        with pytest.raises(ValueError):
            ReplayService(refresh_every=0)


class TestStalenessBound:
    def _vm(self):
        from repro.hypervisor.system import VirtualizedSystem
        from repro.schedulers.credit import CreditScheduler
        from conftest import make_vm

        system = VirtualizedSystem(CreditScheduler())
        return make_vm(system, app="gcc")

    def test_report_age_tracks_requests(self):
        service = ReplayService(refresh_every=10)
        vm = self._vm()
        assert service.report_age(vm) is None
        service.replay_vm(vm)
        assert service.report_age(vm) == 0
        service.replay_vm(vm)
        service.replay_vm(vm)
        assert service.report_age(vm) == 2

    def test_max_report_age_forces_refresh_before_cadence(self):
        # refresh_every would keep serving the cache for 10 requests, but
        # the staleness bound caps the report age at 2.
        service = ReplayService(refresh_every=10, max_report_age=2)
        vm = self._vm()
        service.replay_vm(vm)
        service.replay_vm(vm)  # age 1
        service.replay_vm(vm)  # age 2
        assert service.stats.replays == 1
        assert service.stats.stale_hits == 0
        service.replay_vm(vm)  # age would become 3 -> refresh
        assert service.stats.replays == 2
        assert service.stats.stale_hits == 1
        assert service.report_age(vm) == 0

    def test_no_bound_keeps_seed_behaviour(self):
        bounded = ReplayService(refresh_every=3)
        vm = self._vm()
        for __ in range(6):
            bounded.replay_vm(vm)
        assert bounded.stats.stale_hits == 0
        assert bounded.stats.replays == 2

    def test_cached_report_bypasses_accounting(self):
        service = ReplayService(refresh_every=10)
        vm = self._vm()
        assert service.cached_report(vm) is None
        report = service.replay_vm(vm)
        requests_before = service.stats.requests
        cached = service.cached_report(vm)
        assert cached is not None
        assert cached[0] is report
        assert cached[1] == 0
        assert service.stats.requests == requests_before

    def test_invalid_max_report_age(self):
        with pytest.raises(ValueError):
            ReplayService(max_report_age=0)
