"""SupervisedPool: genuine concurrency, timeouts, crash detection,
SIGTERM-ignoring children, and the deterministic backoff policy."""

import os
import signal
import time

import pytest

from repro.herd.backoff import BackoffError, BackoffPolicy
from repro.herd.pool import PoolError, SupervisedPool, stop_child
from repro.util import elapsed_since, wall_clock

#: Sleep long enough that serialized execution is unambiguous, short
#: enough that the suite stays fast.
NAP_SEC = 0.4


def _napper(payload, conn):
    time.sleep(NAP_SEC)
    conn.send(f"napped:{payload}")
    conn.close()


def _echoer(payload, conn):
    conn.send(f"echo:{payload}")
    conn.close()


def _crasher(payload, conn):
    os._exit(11)


def _sleeper_forever(payload, conn):
    time.sleep(600)


def _sigterm_ignorer(payload, conn):
    """The watchdog's worst case: a child that shrugs off terminate()."""
    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    conn.send("armored")  # handshake: the handler is installed
    time.sleep(600)


def _drain(pool, expect):
    outcomes = []
    deadline = wall_clock() + 30.0
    while len(outcomes) < expect:
        assert wall_clock() < deadline, "pool never concluded its workers"
        outcomes.extend(pool.wait(0.25))
    return outcomes


class TestConcurrency:
    def test_two_supervised_workers_overlap(self):
        """Two NAP_SEC sleepers under jobs=2 finish in ~1x NAP_SEC, not 2x."""
        start = wall_clock()
        with SupervisedPool(target=_napper, jobs=2, timeout_sec=30.0) as pool:
            pool.launch("a", "a")
            pool.launch("b", "b")
            outcomes = _drain(pool, 2)
        elapsed = elapsed_since(start)
        assert sorted(o.result for o in outcomes) == ["napped:a", "napped:b"]
        assert elapsed < 2 * NAP_SEC * 0.9, (
            f"supervised workers ran serially ({elapsed:.2f}s for two "
            f"{NAP_SEC}s jobs)"
        )

    def test_slot_accounting(self):
        with SupervisedPool(target=_echoer, jobs=2) as pool:
            assert pool.free_slots == 2
            pool.launch("x", "x")
            assert pool.active == 1
            assert pool.free_slots == 1
            _drain(pool, 1)
            assert pool.active == 0

    def test_overcommit_rejected(self):
        with SupervisedPool(target=_napper, jobs=1, timeout_sec=30.0) as pool:
            pool.launch("x", "x")
            with pytest.raises(PoolError):
                pool.launch("y", "y")
            with pytest.raises(PoolError):
                pool.launch("x", "x")
            _drain(pool, 1)

    def test_invalid_config_rejected(self):
        with pytest.raises(PoolError):
            SupervisedPool(target=_echoer, jobs=0)
        with pytest.raises(PoolError):
            SupervisedPool(target=_echoer, jobs=1, timeout_sec=0.0)
        with pytest.raises(PoolError):
            SupervisedPool(target=_echoer, jobs=1, grace_sec=-1.0)


class TestOutcomes:
    def test_result_outcome(self):
        with SupervisedPool(target=_echoer, jobs=1) as pool:
            pool.launch("k", "payload")
            (outcome,) = _drain(pool, 1)
        assert outcome.key == "k"
        assert outcome.kind == "result"
        assert outcome.result == "echo:payload"

    def test_crash_outcome_carries_exit_code(self):
        with SupervisedPool(target=_crasher, jobs=1) as pool:
            pool.launch("k", None)
            (outcome,) = _drain(pool, 1)
        assert outcome.kind == "crash"
        assert outcome.result is None
        assert outcome.exitcode == 11

    def test_timeout_outcome(self):
        start = wall_clock()
        with SupervisedPool(
            target=_sleeper_forever, jobs=1, timeout_sec=0.3, grace_sec=0.3
        ) as pool:
            pool.launch("k", None)
            (outcome,) = _drain(pool, 1)
        assert outcome.kind == "timeout"
        assert outcome.wall_time_sec >= 0.3
        assert elapsed_since(start) < 10.0

    def test_shutdown_reaps_stragglers(self):
        pool = SupervisedPool(target=_sleeper_forever, jobs=2, grace_sec=0.3)
        pool.launch("a", None)
        pool.launch("b", None)
        processes = [w.process for w in pool._running.values()]
        pool.shutdown()
        assert pool.active == 0
        assert all(not p.is_alive() for p in processes)


class TestKillEscalation:
    def test_sigterm_ignoring_child_is_sigkilled(self):
        """terminate() bounces off; the bounded grace escalates to kill()."""
        start = wall_clock()
        with SupervisedPool(
            target=_sigterm_ignorer, jobs=1, timeout_sec=0.3, grace_sec=0.4
        ) as pool:
            pool.launch("k", None)
            outcomes = _drain(pool, 1)
        elapsed = elapsed_since(start)
        (outcome,) = outcomes
        # The handshake concludes the worker as a "result"; what matters
        # is that stopping it then required the SIGKILL escalation.
        assert outcome.kind == "result"
        # The child is dead even though it ignored SIGTERM, and the
        # escalation honored the bounded grace (no 600s hang).
        assert elapsed < 10.0

    def test_stop_child_escalates_past_ignored_sigterm(self):
        import multiprocessing

        child = multiprocessing.Process(target=_sigterm_ignorer, args=(None, _NullConn()))
        child.start()
        time.sleep(0.3)  # give the handler time to install
        start = wall_clock()
        stop_child(child, grace_sec=0.4)
        assert not child.is_alive()
        assert elapsed_since(start) < 10.0
        assert child.exitcode == -signal.SIGKILL


class _NullConn:
    """Connection stand-in for children whose send we don't care about."""

    def send(self, obj):
        pass

    def close(self):
        pass


class TestBackoffPolicy:
    def test_raw_delays_exponential_and_capped(self):
        policy = BackoffPolicy(
            base_delay_sec=0.5, multiplier=2.0, max_delay_sec=3.0,
            jitter_frac=0.0,
        )
        assert [policy.raw_delay_sec(k) for k in (1, 2, 3, 4, 5)] == [
            0.5, 1.0, 2.0, 3.0, 3.0,
        ]

    def test_jitter_is_deterministic_per_point_and_attempt(self):
        policy = BackoffPolicy()
        first = policy.delay_sec(42, "p1", 1)
        assert policy.delay_sec(42, "p1", 1) == first  # pure function
        assert policy.delay_sec(42, "p1", 2) != first  # attempt matters
        assert policy.delay_sec(42, "p2", 1) != first  # point matters
        assert policy.delay_sec(43, "p1", 1) != first  # seed matters

    def test_jitter_stays_within_band(self):
        policy = BackoffPolicy(
            base_delay_sec=1.0, multiplier=1.0, max_delay_sec=1.0,
            jitter_frac=0.1,
        )
        for attempt in range(1, 50):
            delay = policy.delay_sec(0, "p", attempt)
            assert 0.9 <= delay <= 1.1

    def test_zero_jitter_is_exact(self):
        policy = BackoffPolicy(jitter_frac=0.0)
        assert policy.delay_sec(0, "p", 1) == policy.raw_delay_sec(1)

    def test_round_trips_through_journal_header_shape(self):
        policy = BackoffPolicy(
            base_delay_sec=0.05, multiplier=3.0, max_delay_sec=1.0,
            jitter_frac=0.2,
        )
        assert BackoffPolicy.from_dict(policy.to_dict()) == policy

    def test_invalid_policies_rejected(self):
        with pytest.raises(BackoffError):
            BackoffPolicy(base_delay_sec=-0.1)
        with pytest.raises(BackoffError):
            BackoffPolicy(multiplier=0.5)
        with pytest.raises(BackoffError):
            BackoffPolicy(base_delay_sec=2.0, max_delay_sec=1.0)
        with pytest.raises(BackoffError):
            BackoffPolicy(jitter_frac=1.0)
        with pytest.raises(BackoffError):
            BackoffPolicy().raw_delay_sec(0)
