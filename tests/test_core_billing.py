"""Tests for pay-per-use pollution billing."""

import pytest

from repro.core.billing import Invoice, PollutionBiller, PricingPlan
from repro.hypervisor.system import VirtualizedSystem
from repro.schedulers.credit import CreditScheduler

from conftest import make_vm


class TestPricingPlan:
    def test_negative_prices_rejected(self):
        with pytest.raises(ValueError):
            PricingPlan(permit_price_per_kmiss_hour=-1)
        with pytest.raises(ValueError):
            PricingPlan(overage_price_per_gmiss=-0.1)


class TestMetering:
    def test_misses_accumulate(self):
        system = VirtualizedSystem(CreditScheduler())
        vm = make_vm(system, app="lbm")
        biller = PollutionBiller(system)
        system.run_ticks(10)
        first = biller.misses_of(vm)
        system.run_ticks(10)
        assert biller.misses_of(vm) > first > 0

    def test_metered_hours(self):
        system = VirtualizedSystem(CreditScheduler())
        biller = PollutionBiller(system)
        system.run_ticks(360)  # 3.6 simulated seconds
        assert biller.metered_hours == pytest.approx(0.001)

    def test_reset(self):
        system = VirtualizedSystem(CreditScheduler())
        vm = make_vm(system, app="lbm")
        biller = PollutionBiller(system)
        system.run_ticks(10)
        biller.reset()
        assert biller.misses_of(vm) == 0
        assert biller.metered_hours == 0


class TestInvoices:
    def test_compliant_vm_pays_no_overage(self):
        system = VirtualizedSystem(CreditScheduler())
        vm = make_vm(system, app="hmmer", llc_cap=50_000.0)
        biller = PollutionBiller(system)
        system.run_ticks(50)
        invoice = biller.invoice(vm)
        assert invoice.overage_misses == 0
        assert invoice.overage_cost == 0
        assert invoice.permit_cost > 0

    def test_polluter_pays_overage_without_enforcement(self):
        """Under plain XCS a heavy polluter blows through its permit and
        the bill shows it — pay-per-use even without the scheduler."""
        system = VirtualizedSystem(CreditScheduler())
        vm = make_vm(system, app="lbm", llc_cap=50_000.0)
        biller = PollutionBiller(system)
        system.run_ticks(50)
        invoice = biller.invoice(vm)
        assert invoice.overage_misses > 0
        assert invoice.overage_cost > 0
        assert invoice.total_cost == pytest.approx(
            invoice.permit_cost + invoice.overage_cost
        )

    def test_enforcement_caps_the_bill(self):
        """KS4Xen keeps the same polluter near its permitted volume."""
        from repro.core.ks4xen import KS4Xen

        def overage(scheduler):
            system = VirtualizedSystem(scheduler)
            vm = make_vm(system, app="lbm", llc_cap=50_000.0)
            biller = PollutionBiller(system)
            system.run_ticks(100)
            return biller.invoice(vm).overage_misses

        assert overage(KS4Xen()) < overage(CreditScheduler()) * 0.5

    def test_unmanaged_vm_billed_pure_overage(self):
        system = VirtualizedSystem(CreditScheduler())
        vm = make_vm(system, app="lbm")  # no llc_cap booked
        biller = PollutionBiller(system)
        system.run_ticks(20)
        invoice = biller.invoice(vm)
        assert invoice.booked_llc_cap == 0
        assert invoice.permit_cost == 0
        assert invoice.overage_misses == invoice.total_misses

    def test_invoices_cover_all_vms(self):
        system = VirtualizedSystem(CreditScheduler())
        make_vm(system, "a", core=0)
        make_vm(system, "b", core=1)
        biller = PollutionBiller(system)
        system.run_ticks(5)
        assert {i.vm_name for i in biller.invoices()} == {"a", "b"}
