"""End-to-end integration tests across the whole stack."""

import pytest

from repro import (
    CfsScheduler,
    CreditScheduler,
    KS4Linux,
    KS4Pisces,
    KS4Xen,
    PiscesCoKernel,
    VirtualizedSystem,
    VmConfig,
    application_workload,
    vm_workload,
)
from repro.core.ks4rtds import KS4RTDS
from repro.core.instances import instance, llc_cap_for
from repro.core.monitor import McSimReplayMonitor
from repro.mcsim.service import ReplayService

from conftest import make_vm


ALL_KYOTO_SCHEDULERS = [KS4Xen, KS4Linux, KS4Pisces, KS4RTDS]


class TestQuickstartFlow:
    """The README quickstart must work exactly as documented."""

    def test_quickstart(self):
        system = VirtualizedSystem(KS4Xen())
        sensitive = system.create_vm(
            VmConfig(
                name="vsen1",
                workload=application_workload("gcc"),
                llc_cap=250_000,
                pinned_cores=[0],
            )
        )
        disruptor = system.create_vm(
            VmConfig(
                name="vdis1",
                workload=application_workload("lbm"),
                llc_cap=250_000,
                pinned_cores=[1],
            )
        )
        system.run_msec(1_000)
        assert sensitive.ipc > 0
        assert system.scheduler.kyoto.punishments(disruptor) > 0


class TestCrossSchedulerConsistency:
    @pytest.mark.parametrize("scheduler_cls", ALL_KYOTO_SCHEDULERS)
    def test_every_port_enforces_permits(self, scheduler_cls):
        """The paper's claim: the approach is easily implemented within
        other systems — all three ports punish the same polluter."""
        system = VirtualizedSystem(scheduler_cls())
        make_vm(system, "sen", app="gcc", core=0, llc_cap=250_000.0)
        dis = make_vm(system, "dis", app="blockie", core=1, llc_cap=250_000.0)
        system.run_ticks(120)
        assert system.scheduler.kyoto.punishments(dis) > 5

    @pytest.mark.parametrize("scheduler_cls", ALL_KYOTO_SCHEDULERS)
    def test_every_port_spares_the_compliant(self, scheduler_cls):
        system = VirtualizedSystem(scheduler_cls())
        sen = make_vm(system, "sen", app="gcc", core=0, llc_cap=250_000.0)
        make_vm(system, "dis", app="blockie", core=1, llc_cap=250_000.0)
        system.run_ticks(120)
        assert system.scheduler.kyoto.punishments(sen) == 0


class TestInstanceTypeFlow:
    """Section 5: provider derives llc_cap from the instance type."""

    def test_r3_instance_shields_against_disruptor(self):
        r3_cap = llc_cap_for(instance("r3.large"))
        c4_cap = llc_cap_for(instance("c4.large"))
        system = VirtualizedSystem(KS4Xen())
        hpc = make_vm(system, "hpc", app="soplex", core=0, llc_cap=r3_cap)
        noisy = make_vm(system, "noisy", app="lbm", core=1, llc_cap=c4_cap)
        system.run_ticks(120)
        # The C4-sized permit is small: the noisy neighbour is throttled.
        assert system.scheduler.kyoto.punishments(noisy) > (
            system.scheduler.kyoto.punishments(hpc)
        )


class TestReplayMonitorIntegration:
    def test_ks4xen_with_replay_monitor(self):
        """Full Section 3.3 pipeline: KS4Xen driven by the McSim replay
        service instead of direct PMCs."""
        service = ReplayService()
        scheduler = KS4Xen()
        system = VirtualizedSystem(scheduler)
        # Wire the replay monitor in after attach (it needs the system).
        scheduler.kyoto.monitor = McSimReplayMonitor(system, service)
        make_vm(system, "sen", app="gcc", core=0, llc_cap=250_000.0)
        dis = make_vm(system, "dis", app="lbm", core=1, llc_cap=250_000.0)
        system.run_ticks(90)
        assert scheduler.kyoto.punishments(dis) > 0
        assert service.stats.requests > 0


class TestBaselineSchedulers:
    def test_xcs_and_cfs_do_not_protect(self):
        """Without Kyoto, both baselines let the disruptor degrade the
        sensitive VM — the problem statement of Section 2."""
        for scheduler_cls in (CreditScheduler, CfsScheduler, PiscesCoKernel):
            solo = VirtualizedSystem(scheduler_cls())
            sen = make_vm(solo, "sen", app="omnetpp", core=0)
            solo.run_ticks(30)
            sen.reset_metrics()
            solo.run_ticks(60)
            baseline = sen.vcpus[0].ipc

            contended = VirtualizedSystem(scheduler_cls())
            sen2 = make_vm(contended, "sen", app="omnetpp", core=0)
            make_vm(contended, "dis", app="lbm", core=1)
            contended.run_ticks(30)
            sen2.reset_metrics()
            contended.run_ticks(60)
            assert sen2.vcpus[0].ipc < baseline * 0.9


class TestTable2Workloads:
    def test_all_experiment_vms_runnable(self):
        system = VirtualizedSystem(CreditScheduler())
        names = ["vsen1", "vsen2", "vsen3"]
        for i, name in enumerate(names):
            system.create_vm(
                VmConfig(name=name, workload=vm_workload(name),
                         pinned_cores=[i])
            )
        system.run_ticks(20)
        for name in names:
            assert system.vm_by_name(name).instructions_retired > 0


class TestDeterminism:
    def test_identical_runs_bit_identical(self):
        def run():
            system = VirtualizedSystem(KS4Xen())
            make_vm(system, "sen", app="gcc", core=0, llc_cap=250_000.0)
            dis = make_vm(system, "dis", app="lbm", core=1, llc_cap=250_000.0)
            system.run_ticks(60)
            return (
                dis.instructions_retired,
                dis.llc_misses,
                system.scheduler.kyoto.punishments(dis),
            )

        assert run() == run()
