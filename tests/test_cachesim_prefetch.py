"""Tests for the hardware prefetcher models."""

import pytest

from repro.cachesim.prefetch import (
    NextLinePrefetcher,
    PrefetchingCache,
    StridePrefetcher,
)
from repro.cachesim.setassoc import SetAssociativeCache
from repro.hardware.specs import CacheSpec, KIB


def cache(size_kib=8, assoc=4):
    return SetAssociativeCache(CacheSpec("T", size_kib * KIB, assoc))


class TestNextLine:
    def test_validation(self):
        with pytest.raises(ValueError):
            NextLinePrefetcher(cache(), degree=0)

    def test_sequential_stream_mostly_hits(self):
        c = cache()
        front = PrefetchingCache(c, NextLinePrefetcher(c, degree=4))
        hits = 0
        for i in range(200):
            hits += front.access(i * 64).hit
        # Without prefetch every access would miss; with next-line most hit.
        assert hits > 120

    def test_useful_prefetches_counted(self):
        c = cache()
        prefetcher = NextLinePrefetcher(c, degree=2)
        front = PrefetchingCache(c, prefetcher)
        for i in range(50):
            front.access(i * 64)
        assert prefetcher.stats.issued > 0
        assert prefetcher.stats.useful > 0
        assert 0.0 <= prefetcher.stats.accuracy <= 1.0

    def test_random_stream_low_accuracy(self):
        import random as _random

        rng = _random.Random(7)
        c = cache()
        prefetcher = NextLinePrefetcher(c, degree=2)
        front = PrefetchingCache(c, prefetcher)
        for _ in range(300):
            front.access(rng.randrange(1 << 16) * 64)
        assert prefetcher.stats.accuracy < 0.4

    def test_prefetched_lines_carry_owner(self):
        c = cache()
        front = PrefetchingCache(c, NextLinePrefetcher(c, degree=2))
        front.access(0, owner=7)
        # The prefetched neighbours belong to owner 7 too.
        assert c.occupancy_of(7) == 3


class TestStride:
    def test_detects_constant_stride(self):
        c = cache()
        prefetcher = StridePrefetcher(c, degree=2)
        front = PrefetchingCache(c, prefetcher)
        hits = 0
        for i in range(100):
            hits += front.access(i * 4 * 64).hit  # stride of 4 lines
        assert prefetcher.stats.issued > 0
        assert hits > 50

    def test_no_prefetch_without_pattern(self):
        import random as _random

        rng = _random.Random(3)
        c = cache()
        prefetcher = StridePrefetcher(c, degree=2)
        front = PrefetchingCache(c, prefetcher)
        for _ in range(100):
            front.access(rng.randrange(1 << 18) * 64)
        # Random deltas rarely repeat: hardly any prefetches fire.
        assert prefetcher.stats.issued < 30

    def test_mismatched_cache_rejected(self):
        a, b = cache(), cache()
        with pytest.raises(ValueError):
            PrefetchingCache(a, NextLinePrefetcher(b))
