"""Tests for the experiment drivers (shortened parameters for speed).

Each test asserts the *paper's qualitative claim* for its figure — these
are the reproduction's acceptance tests.
"""

import pytest

from repro.experiments import (
    fig01,
    fig02,
    fig03,
    fig05,
    fig06,
    fig07,
    fig08,
    fig09,
    fig10,
    fig11,
    fig12,
    tables,
)


class TestFig01:
    @pytest.fixture(scope="class")
    def result(self):
        return fig01.run(warmup_ticks=20, measure_ticks=60)

    def test_c1_representative_agnostic(self, result):
        """C1's working set never touches the LLC: no degradation at all."""
        for dis in (1, 2, 3):
            for mode in fig01.MODES:
                assert result.of(1, dis, mode) < 2.0

    def test_c1_disruptor_harmless(self, result):
        for rep in (1, 2, 3):
            for mode in fig01.MODES:
                assert result.of(rep, 1, mode) < 2.0

    def test_c2_severely_hurt_in_parallel(self, result):
        assert result.of(2, 2, "parallel") > 50.0
        assert result.of(2, 3, "parallel") > 50.0

    def test_parallel_worse_than_alternative_for_c2(self, result):
        assert result.of(2, 2, "parallel") > 2 * result.of(2, 2, "alternative")

    def test_c3_hurt_by_big_disruptors(self, result):
        assert result.of(3, 3, "parallel") > 15.0

    def test_combined_at_least_parallel(self, result):
        for rep in (2, 3):
            for dis in (2, 3):
                assert (
                    result.of(rep, dis, "combined")
                    >= result.of(rep, dis, "parallel") - 3.0
                )

    def test_report_renders(self, result):
        report = fig01.format_report(result)
        assert "Fig 1" in report and "v2_rep" in report


class TestFig02:
    @pytest.fixture(scope="class")
    def result(self):
        return fig02.run(num_ticks=21)

    def test_alone_only_first_tick_misses(self, result):
        alone = result.misses["alone"]
        assert alone[0] > 10_000
        assert all(m < alone[0] * 0.05 for m in alone[3:])

    def test_alternative_zigzag(self, result):
        """Reload burst at the first tick of each slice the VM runs."""
        alt = result.misses["alternative"]
        bursts = [m for m in alt[3:] if m > 10_000]
        quiets = [m for m in alt[3:] if m < 1_000]
        assert bursts and quiets

    def test_parallel_sustained_misses(self, result):
        par = result.misses["parallel"]
        assert all(m > 50_000 for m in par)

    def test_parallel_worst_overall(self, result):
        assert sum(result.misses["parallel"]) > sum(result.misses["alternative"])
        assert sum(result.misses["parallel"]) > sum(result.misses["alone"])

    def test_report_renders(self, result):
        assert "Fig 2" in fig02.format_report(result)


class TestFig03:
    @pytest.fixture(scope="class")
    def result(self):
        return fig03.run(caps=(0, 25, 50, 75, 100), warmup_ticks=20,
                         measure_ticks=60)

    def test_zero_power_zero_degradation(self, result):
        for series in result.degradation.values():
            assert series[0] < 1.0

    def test_monotone_increase(self, result):
        for vsen, series in result.degradation.items():
            assert fig03.is_monotone_increasing(series), (vsen, series)

    def test_full_power_significant(self, result):
        for series in result.degradation.values():
            assert series[-1] > 10.0

    def test_roughly_linear(self, result):
        """Midpoint close to half the endpoint (the paper's linearity)."""
        for series in result.degradation.values():
            midpoint = series[2]
            assert midpoint == pytest.approx(series[-1] / 2, rel=0.5)

    def test_report_renders(self, result):
        assert "Fig 3" in fig03.format_report(result)


class TestFig05:
    @pytest.fixture(scope="class")
    def result(self):
        return fig05.run(warmup_ticks=20, measure_ticks=120)

    def test_performance_almost_kept(self, result):
        for vdis, perf in result.normalized_perf.items():
            assert perf > 0.85, (vdis, perf)

    def test_ks4xen_beats_xcs(self, result):
        for vdis in result.normalized_perf:
            assert (
                result.normalized_perf[vdis]
                > result.normalized_perf_xcs[vdis]
            )

    def test_disruptors_punished_more_than_sensitive(self, result):
        for vdis, (pun_sen, pun_dis) in result.punishments.items():
            assert pun_dis > 10 * max(pun_sen, 1) or pun_sen == 0

    def test_sensitive_never_punished(self, result):
        assert all(p[0] == 0 for p in result.punishments.values())

    def test_timeline_quota_oscillates(self, result):
        assert min(result.timeline.quota) < 0
        assert max(result.timeline.quota) > 0

    def test_timeline_ks4xen_deprives_cpu(self, result):
        ks_duty = sum(result.timeline.running_ks4xen) / len(
            result.timeline.running_ks4xen
        )
        xcs_duty = sum(result.timeline.running_xcs) / len(
            result.timeline.running_xcs
        )
        assert xcs_duty > 0.95
        assert ks_duty < 0.8

    def test_report_renders(self, result):
        assert "Fig 5" in fig05.format_report(result)


class TestFig06:
    @pytest.fixture(scope="class")
    def result(self):
        return fig06.run(counts=(1, 4, 8, 15), warmup_ticks=20,
                         measure_ticks=90)

    def test_performance_kept_at_scale(self, result):
        assert all(p > 0.8 for p in result.normalized_perf)

    def test_no_collapse_with_count(self, result):
        assert result.normalized_perf[-1] > result.normalized_perf[0] - 0.2

    def test_report_renders(self, result):
        assert "Fig 6" in fig06.format_report(result)


class TestFig07:
    @pytest.fixture(scope="class")
    def result(self):
        return fig07.run(num_ticks=30)

    def test_cores_disjoint(self, result):
        assert result.cores_disjoint

    def test_full_duty_cycles(self, result):
        assert all(d == 1.0 for d in result.duty_cycle.values())

    def test_llc_shared(self, result):
        assert result.llc_shared

    def test_report_renders(self, result):
        assert "Fig 7" in fig07.format_report(result)


class TestFig08:
    @pytest.fixture(scope="class")
    def result(self):
        return fig08.run(work_instructions=5e8)

    def test_pisces_loses_predictability(self, result):
        assert result.pisces_interference_percent > 10.0

    def test_ks4pisces_restores_predictability(self, result):
        assert (
            result.ks4pisces_interference_percent
            < result.pisces_interference_percent * 0.7
        )

    def test_alone_times_equal(self, result):
        assert result.exec_time["pisces-alone"] == pytest.approx(
            result.exec_time["ks4pisces-alone"], rel=0.02
        )

    def test_report_renders(self, result):
        assert "Fig 8" in fig08.format_report(result)


class TestFig09:
    @pytest.fixture(scope="class")
    def result(self):
        return fig09.run(apps=("milc", "lbm", "bzip", "omnetpp"),
                         work_instructions=4e8)

    def test_memory_bound_apps_hurt_most(self, result):
        assert result.degradation["milc"] > result.degradation["bzip"]
        assert result.degradation["lbm"] > result.degradation["bzip"]

    def test_degradation_bounded(self, result):
        assert all(0 <= d < 20 for d in result.degradation.values())

    def test_migrations_happened(self, result):
        assert all(m > 0 for m in result.migrations.values())

    def test_report_renders(self, result):
        assert "Fig 9" in fig09.format_report(result)


class TestFig10:
    @pytest.fixture(scope="class")
    def result(self):
        return fig10.run(warmup_ticks=20, sample_ticks=6)

    def test_hmmer_gap_negligible(self, result):
        """A low-LLCM vCPU measures (absolutely) the same either way."""
        case = result.case("hmmer")
        assert case.absolute_gap < 10_000

    def test_bzip_with_quiet_corunners_gap_negligible(self, result):
        case = result.case("bzip")
        assert case.absolute_gap < 5_000

    def test_bzip_with_disruptors_diverges(self, result):
        case = result.case("bzip-vs-disruptors")
        assert case.relative_gap_percent > 50.0

    def test_report_renders(self, result):
        assert "Fig 10" in fig10.format_report(result)


class TestFig11:
    @pytest.fixture(scope="class")
    def result(self):
        return fig11.run(warmup_ticks=20, measure_ticks=60)

    def test_orderings_agree(self, result):
        assert result.tau > 0.7

    def test_quiet_apps_identical_either_way(self, result):
        for app in ("astar", "bzip", "xalan"):
            assert result.shared[app] == pytest.approx(
                result.dedicated[app], rel=0.05
            )

    def test_report_renders(self, result):
        assert "Fig 11" in fig11.format_report(result)


class TestFig12:
    @pytest.fixture(scope="class")
    def result(self):
        return fig12.run(slices_ms=(1, 10, 30), work_instructions=5e8)

    def test_overhead_near_zero(self, result):
        assert result.max_overhead_percent < 2.0

    def test_curves_have_all_points(self, result):
        assert len(result.exec_time_xcs) == 3
        assert len(result.exec_time_ks4xen) == 3

    def test_report_renders(self, result):
        assert "Fig 12" in fig12.format_report(result)


class TestTables:
    def test_table1_matches_paper(self):
        result = tables.run_table1()
        text = tables.format_table1(result)
        assert "8096 MB" in text
        assert "L1 D 32 KB" in text
        assert "10 MB, 20-way" in text
        assert "4 Cores/socket" in text

    def test_table2_matches_paper(self):
        result = tables.run_table2()
        assert result.mapping == {
            "vsen1": "gcc",
            "vsen2": "omnetpp",
            "vsen3": "soplex",
            "vdis1": "lbm",
            "vdis2": "blockie",
            "vdis3": "mcf",
        }

    def test_table2_report(self):
        text = tables.format_table2(tables.run_table2())
        assert "vdis2" in text and "blockie" in text
