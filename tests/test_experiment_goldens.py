"""Per-figure equivalence: scenario-backed drivers == pre-refactor output.

``tests/goldens/experiment_goldens.json`` pins the sha256 of every
experiment's report text as produced by the drivers *before* they were
refactored onto ``repro.scenario``.  Each test here runs the refactored
driver at its default parameters and asserts the report hashes to the
same value — i.e. the refactor is byte-for-byte invisible in the
artifacts.

If a later PR *intentionally* changes an experiment's output, rerun it
and update the pinned hash in the goldens file (the new value is in the
assertion message).
"""

import hashlib
import json
import pathlib

import pytest

from repro.experiments.registry import REGISTRY

GOLDENS_PATH = pathlib.Path(__file__).parent / "goldens" / "experiment_goldens.json"

with GOLDENS_PATH.open() as _fh:
    GOLDENS = json.load(_fh)


def test_goldens_file_shape():
    assert GOLDENS["schema"] == "repro.goldens/1"
    assert set(GOLDENS["reports"]) == set(REGISTRY)


@pytest.mark.parametrize("name", sorted(GOLDENS["reports"]))
def test_report_matches_golden(name):
    report = REGISTRY[name].runner()
    digest = hashlib.sha256(report.encode("utf-8")).hexdigest()
    assert digest == GOLDENS["reports"][name], (
        f"{name} report drifted from the pre-refactor golden; "
        f"new sha256 is {digest}"
    )
