"""Tests for repro.simulation.clock."""

import pytest

from repro.simulation.clock import (
    Clock,
    USEC_PER_MSEC,
    USEC_PER_SEC,
    XEN_TICK_USEC,
    XEN_TIME_SLICE_USEC,
    cycles_to_usec,
    msec_to_usec,
    usec_to_cycles,
    usec_to_msec,
)


class TestConstants:
    def test_xen_tick_is_10ms(self):
        assert XEN_TICK_USEC == 10_000

    def test_time_slice_is_three_ticks(self):
        assert XEN_TIME_SLICE_USEC == 3 * XEN_TICK_USEC

    def test_unit_ratios(self):
        assert USEC_PER_SEC == 1000 * USEC_PER_MSEC


class TestConversions:
    def test_usec_to_msec(self):
        assert usec_to_msec(2_500) == 2.5

    def test_msec_to_usec_roundtrip(self):
        assert msec_to_usec(usec_to_msec(12_345)) == 12_345

    def test_msec_to_usec_rounds(self):
        assert msec_to_usec(0.0004) == 0
        assert msec_to_usec(0.0006) == 1

    def test_usec_to_cycles_at_2_8ghz(self):
        # 2.8 GHz = 2_800_000 kHz; 1 usec = 2800 cycles.
        assert usec_to_cycles(1, 2_800_000) == 2_800

    def test_one_tick_of_cycles(self):
        assert usec_to_cycles(XEN_TICK_USEC, 2_800_000) == 28_000_000

    def test_cycles_to_usec_inverse(self):
        cycles = usec_to_cycles(777, 2_800_000)
        assert cycles_to_usec(cycles, 2_800_000) == pytest.approx(777)


class TestClock:
    def test_starts_at_zero(self):
        assert Clock().now_usec == 0

    def test_advance(self):
        clock = Clock()
        assert clock.advance(100) == 100
        assert clock.now_usec == 100

    def test_advance_accumulates(self):
        clock = Clock()
        clock.advance(10)
        clock.advance(20)
        assert clock.now_usec == 30

    def test_advance_negative_rejected(self):
        with pytest.raises(ValueError):
            Clock().advance(-1)

    def test_advance_to(self):
        clock = Clock()
        clock.advance_to(500)
        assert clock.now_usec == 500

    def test_advance_to_backwards_rejected(self):
        clock = Clock()
        clock.advance_to(500)
        with pytest.raises(ValueError):
            clock.advance_to(499)

    def test_advance_to_same_time_ok(self):
        clock = Clock()
        clock.advance_to(500)
        clock.advance_to(500)
        assert clock.now_usec == 500

    def test_now_msec(self):
        clock = Clock()
        clock.advance(2_500)
        assert clock.now_msec == 2.5

    def test_now_sec(self):
        clock = Clock()
        clock.advance(1_500_000)
        assert clock.now_sec == 1.5

    def test_reset(self):
        clock = Clock()
        clock.advance(100)
        clock.reset()
        assert clock.now_usec == 0
