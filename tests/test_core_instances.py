"""Tests for the instance-type catalog (Section 5)."""

import pytest

from repro.core.instances import (
    CATALOG,
    InstanceType,
    catalog_by_family,
    instance,
    llc_cap_for,
)


class TestCatalog:
    def test_families_present(self):
        families = {t.family for t in CATALOG.values()}
        assert families == {"general", "compute", "memory"}

    def test_lookup(self):
        r3 = instance("r3.large")
        assert r3.vcpus == 2
        assert r3.memory_gib == 15.25

    def test_unknown_instance_rejected(self):
        with pytest.raises(ValueError):
            instance("t2.nano")

    def test_by_family_sorted(self):
        members = catalog_by_family("compute")
        assert [m.vcpus for m in members] == sorted(m.vcpus for m in members)

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError):
            catalog_by_family("gpu")

    def test_validation(self):
        with pytest.raises(ValueError):
            InstanceType("bad", 0, 1.0, "general")
        with pytest.raises(ValueError):
            InstanceType("bad", 1, 0.0, "general")


class TestLlcCapDerivation:
    def test_memory_instances_book_more_than_compute(self):
        """The paper: R3 instances get much more llc_cap than C3/C4."""
        assert llc_cap_for(instance("r3.large")) > 3 * llc_cap_for(
            instance("c4.large")
        )

    def test_proportional_to_memory_per_vcpu(self):
        r3l = instance("r3.large")
        r3xl = instance("r3.xlarge")
        # Same memory/vCPU ratio across the family -> same per-VM permit.
        assert llc_cap_for(r3l) == pytest.approx(llc_cap_for(r3xl))

    def test_r3_books_paper_scale_permit(self):
        """An r3 instance's derived permit lands near the paper's 250k."""
        assert llc_cap_for(instance("r3.large")) == pytest.approx(
            250_000, rel=0.05
        )

    def test_custom_ratio(self):
        assert llc_cap_for(instance("m4.large"), per_ratio=1000) == pytest.approx(
            4000
        )

    def test_invalid_ratio_rejected(self):
        with pytest.raises(ValueError):
            llc_cap_for(instance("m4.large"), per_ratio=0)
