"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.hardware.specs import numa_machine, paper_machine
from repro.hypervisor.system import VirtualizedSystem
from repro.hypervisor.vm import VmConfig
from repro.schedulers.credit import CreditScheduler
from repro.workloads.profiles import application_workload


@pytest.fixture
def machine():
    """The paper's single-socket machine spec."""
    return paper_machine()


@pytest.fixture
def numa():
    """The two-socket PowerEdge R420 spec."""
    return numa_machine()


@pytest.fixture
def xcs_system(machine):
    """A fresh system under the plain credit scheduler."""
    return VirtualizedSystem(CreditScheduler(), machine)


def make_vm(system, name="vm", app="gcc", core=0, **kwargs):
    """Convenience VM factory used across tests."""
    return system.create_vm(
        VmConfig(
            name=name,
            workload=application_workload(app),
            pinned_cores=[core],
            **kwargs,
        )
    )
