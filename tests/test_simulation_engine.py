"""Tests for repro.simulation.engine."""

import pytest

from repro.simulation.engine import Engine, SimulationError


class TestBasics:
    def test_starts_at_zero(self):
        assert Engine().now_usec == 0

    def test_step_advances_clock(self):
        engine = Engine()
        engine.schedule(50, lambda: None)
        assert engine.step() is True
        assert engine.now_usec == 50

    def test_step_empty_returns_false(self):
        assert Engine().step() is False

    def test_cannot_schedule_in_past(self):
        engine = Engine()
        engine.schedule(100, lambda: None)
        engine.run_until(100)
        with pytest.raises(SimulationError):
            engine.schedule(50, lambda: None)

    def test_schedule_after(self):
        engine = Engine()
        engine.schedule(100, lambda: None)
        engine.run_until(100)
        event = engine.schedule_after(30, lambda: None)
        assert event.when_usec == 130

    def test_events_fired_counter(self):
        engine = Engine()
        for i in range(3):
            engine.schedule(i * 10, lambda: None)
        engine.run_until(100)
        assert engine.events_fired == 3


class TestRunUntil:
    def test_runs_events_in_window(self):
        engine = Engine()
        fired = []
        for t in (10, 20, 30, 40):
            engine.schedule(t, lambda t=t: fired.append(t))
        engine.run_until(25)
        assert fired == [10, 20]

    def test_clock_lands_on_horizon(self):
        engine = Engine()
        engine.schedule(10, lambda: None)
        engine.run_until(100)
        assert engine.now_usec == 100

    def test_event_at_horizon_included(self):
        engine = Engine()
        fired = []
        engine.schedule(100, lambda: fired.append(1))
        engine.run_until(100)
        assert fired == [1]

    def test_horizon_before_now_raises(self):
        engine = Engine()
        engine.run_until(100)
        with pytest.raises(SimulationError):
            engine.run_until(50)

    def test_events_can_schedule_events(self):
        engine = Engine()
        fired = []

        def first():
            fired.append("first")
            engine.schedule_after(10, lambda: fired.append("second"))

        engine.schedule(10, first)
        engine.run_until(100)
        assert fired == ["first", "second"]


class TestPeriodic:
    def test_periodic_fires_repeatedly(self):
        engine = Engine()
        count = []
        engine.schedule_periodic(10, lambda: count.append(1))
        engine.run_until(55)
        assert len(count) == 5  # at 10, 20, 30, 40, 50

    def test_periodic_custom_start(self):
        engine = Engine()
        times = []
        engine.schedule_periodic(
            10, lambda: times.append(engine.now_usec), first_at_usec=0
        )
        engine.run_until(25)
        assert times == [0, 10, 20]

    def test_periodic_zero_period_rejected(self):
        with pytest.raises(ValueError):
            Engine().schedule_periodic(0, lambda: None)

    def test_cancel_pending_event(self):
        engine = Engine()
        fired = []
        event = engine.schedule(10, lambda: fired.append(1))
        engine.cancel(event)
        engine.run_until(100)
        assert fired == []

    def test_runaway_guard(self):
        engine = Engine()

        def rearm():
            engine.schedule_after(1, rearm)

        engine.schedule(0, rearm)
        with pytest.raises(SimulationError):
            engine.run_to_completion(max_events=100)
