"""Tests for the faithful multi-core co-simulation."""

import dataclasses

import pytest

from repro.hardware.specs import CacheSpec, KIB, paper_machine
from repro.mcsim.multicore import MultiCoreReplayer, co_run_workloads
from repro.mcsim.pin import CaptureConfig, PinTool
from repro.workloads.profiles import application_workload


def small_capture(app, accesses=8_000, seed=0):
    return PinTool(CaptureConfig(sample_accesses=accesses, seed=seed)).capture(
        application_workload(app)
    )


def small_llc_machine(llc_kib=512):
    """The paper machine with a shrunken LLC, so bounded trace samples
    actually contend (a 10 MB LLC swallows small captures whole)."""
    machine = paper_machine()
    socket = dataclasses.replace(
        machine.sockets[0],
        llc=CacheSpec("LLC", llc_kib * KIB, 8, shared=True),
    )
    return dataclasses.replace(machine, sockets=(socket,))


class TestCoRun:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MultiCoreReplayer().co_run({})

    def test_too_many_workloads_rejected(self):
        captures = {f"w{i}": small_capture("gcc", 500, seed=i) for i in range(5)}
        with pytest.raises(ValueError):
            MultiCoreReplayer().co_run(captures)

    def test_reports_cover_all_workloads(self):
        captures = {
            "gcc": small_capture("gcc"),
            "lbm": small_capture("lbm", seed=1),
        }
        reports = MultiCoreReplayer().co_run(captures)
        assert set(reports) == {"gcc", "lbm"}
        for report in reports.values():
            assert report.instructions > 0
            assert report.llc_misses <= report.llc_accesses

    def test_contention_raises_miss_ratio(self):
        """hmmer's tiny hot set must miss more when co-run with a
        streaming neighbour on a small shared LLC — the faithful
        simulator shows the same contention the occupancy model
        predicts."""
        machine = small_llc_machine()
        solo = MultiCoreReplayer(machine).co_run(
            {"hmmer": small_capture("hmmer", 30_000)}
        )
        pair = MultiCoreReplayer(machine).co_run(
            {
                "hmmer": small_capture("hmmer", 30_000),
                "lbm": small_capture("lbm", 30_000, seed=1),
            }
        )
        assert pair["hmmer"].miss_ratio > solo["hmmer"].miss_ratio

    def test_streaming_neighbour_dominates_occupancy(self):
        reports = MultiCoreReplayer().co_run(
            {
                "hmmer": small_capture("hmmer", 20_000),
                "lbm": small_capture("lbm", 20_000, seed=1),
            }
        )
        assert (
            reports["lbm"].llc_occupancy_lines
            > reports["hmmer"].llc_occupancy_lines
        )

    def test_unique_names_required(self):
        w = application_workload("gcc")
        with pytest.raises(ValueError):
            co_run_workloads([w, w])

    def test_co_run_workloads_end_to_end(self):
        reports = co_run_workloads(
            [application_workload("gcc"), application_workload("bzip")],
            capture_config=CaptureConfig(sample_accesses=5_000),
        )
        assert set(reports) == {"gcc", "bzip"}

    def test_warmup_fraction_validated(self):
        with pytest.raises(ValueError):
            MultiCoreReplayer(warmup_fraction=1.0)
