"""Tests for repro.telemetry: recorder, bounded series, JSON schema."""

import json

import pytest

from repro.core.ks4xen import KS4Xen
from repro.hypervisor.system import VirtualizedSystem
from repro.hypervisor.vm import VmConfig
from repro.telemetry import (
    COMPACTION_COUNTER,
    NULL_RECORDER,
    BoundedSeries,
    MetricsRecorder,
    NullRecorder,
    TELEMETRY_SCHEMA,
    TelemetrySchemaError,
    current_recorder,
    from_json_dict,
    recording,
    to_json_dict,
)
from repro.workloads.profiles import application_workload


class TestRecorderBasics:
    def test_counters_accumulate(self):
        recorder = MetricsRecorder()
        recorder.inc("a")
        recorder.inc("a", 2.5)
        assert recorder.counters["a"] == 3.5

    def test_gauges_last_write_wins(self):
        recorder = MetricsRecorder()
        recorder.gauge("g", 1.0)
        recorder.gauge("g", 7.0)
        assert recorder.gauges["g"] == 7.0

    def test_series_recorded_in_order(self):
        recorder = MetricsRecorder()
        for tick in range(5):
            recorder.record("s", tick, float(tick) * 2)
        series = recorder.series("s")
        assert series.ticks == [0, 1, 2, 3, 4]
        assert series.values == [0.0, 2.0, 4.0, 6.0, 8.0]
        assert series.dropped == 0

    def test_series_names_sorted(self):
        recorder = MetricsRecorder()
        recorder.record("zz", 0, 1.0)
        recorder.record("aa", 0, 1.0)
        assert recorder.series_names() == ["aa", "zz"]


class TestNullRecorder:
    def test_null_recorder_stores_nothing(self):
        recorder = NullRecorder()
        recorder.inc("a")
        recorder.gauge("g", 1.0)
        recorder.record("s", 0, 1.0)
        assert recorder.counters == {}
        assert recorder.gauges == {}
        assert recorder.series("s") is None
        assert recorder.enabled is False

    def test_default_ambient_recorder_is_null(self):
        assert current_recorder() is NULL_RECORDER

    def test_recording_context_swaps_and_restores(self):
        mine = MetricsRecorder()
        with recording(mine) as active:
            assert active is mine
            assert current_recorder() is mine
        assert current_recorder() is NULL_RECORDER

    def test_recording_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with recording(MetricsRecorder()):
                raise RuntimeError("boom")
        assert current_recorder() is NULL_RECORDER


class TestBoundedSeries:
    def test_bounded_never_exceeds_max_points(self):
        series = BoundedSeries("s", max_points=8)
        for tick in range(1000):
            series.append(tick, float(tick))
        assert len(series) <= 8
        assert series.offered == 1000

    def test_truncation_is_counted_not_silent(self):
        recorder = MetricsRecorder(max_series_points=4)
        for tick in range(64):
            recorder.record("s", tick, float(tick))
        series = recorder.series("s")
        assert series.dropped > 0
        assert series.dropped == series.offered - len(series)
        # ... and every compaction bumped the telemetry counter.
        assert recorder.counters[COMPACTION_COUNTER] >= 1

    def test_decimation_is_deterministic_and_spans_run(self):
        def build():
            series = BoundedSeries("s", max_points=16)
            for tick in range(500):
                series.append(tick, float(tick))
            return series

        first, second = build(), build()
        assert first.ticks == second.ticks
        assert first.values == second.values
        # Stored points are a 1-in-stride decimation starting at tick 0.
        assert first.ticks == [t for t in range(500) if t % first.stride == 0][: len(first)]

    def test_tiny_max_points_rejected(self):
        with pytest.raises(ValueError):
            BoundedSeries("s", max_points=1)


class TestJsonSchema:
    def make_recorder(self):
        recorder = MetricsRecorder(max_series_points=8)
        recorder.inc("kyoto.samples", 12)
        recorder.gauge("sys.final_tick", 99.0)
        for tick in range(20):
            recorder.record("sys.llc_misses_per_tick", tick, tick * 1.5)
        return recorder

    def test_export_declares_schema_and_truncation(self):
        data = to_json_dict(self.make_recorder())
        assert data["schema"] == TELEMETRY_SCHEMA
        series = data["series"]["sys.llc_misses_per_tick"]
        assert series["offered"] == 20
        assert series["dropped"] == series["offered"] - len(series["ticks"])
        assert series["stride"] >= 1

    def test_export_is_json_serializable(self):
        text = json.dumps(to_json_dict(self.make_recorder()))
        assert TELEMETRY_SCHEMA in text

    def test_round_trip_is_lossless(self):
        data = to_json_dict(self.make_recorder())
        assert to_json_dict(from_json_dict(data)) == data

    def test_import_rejects_wrong_schema(self):
        with pytest.raises(TelemetrySchemaError):
            from_json_dict({"schema": "something-else/9"})

    def test_import_rejects_ragged_series(self):
        data = to_json_dict(self.make_recorder())
        data["series"]["sys.llc_misses_per_tick"]["values"].pop()
        with pytest.raises(TelemetrySchemaError):
            from_json_dict(data)

    def test_import_rejects_non_dict_document(self):
        with pytest.raises(TelemetrySchemaError):
            from_json_dict(["not", "a", "dict"])

    def test_import_rejects_missing_max_series_points(self):
        data = to_json_dict(self.make_recorder())
        del data["max_series_points"]
        with pytest.raises(TelemetrySchemaError, match="max_series_points"):
            from_json_dict(data)

    def test_import_rejects_bool_max_series_points(self):
        data = to_json_dict(self.make_recorder())
        data["max_series_points"] = True
        with pytest.raises(TelemetrySchemaError, match="integer"):
            from_json_dict(data)

    def test_import_rejects_sub_minimum_max_series_points(self):
        data = to_json_dict(self.make_recorder())
        data["max_series_points"] = 1
        with pytest.raises(TelemetrySchemaError, match=">= 2"):
            from_json_dict(data)

    def test_import_rejects_series_larger_than_budget(self):
        data = to_json_dict(self.make_recorder())
        data["max_series_points"] = 2
        with pytest.raises(TelemetrySchemaError, match="stores"):
            from_json_dict(data)

    def test_import_rejects_nonsensical_stride(self):
        data = to_json_dict(self.make_recorder())
        data["series"]["sys.llc_misses_per_tick"]["stride"] = 0
        with pytest.raises(TelemetrySchemaError, match="stride"):
            from_json_dict(data)

    def test_import_rejects_offered_below_stored(self):
        data = to_json_dict(self.make_recorder())
        entry = data["series"]["sys.llc_misses_per_tick"]
        entry["offered"] = len(entry["ticks"]) - 1
        with pytest.raises(TelemetrySchemaError, match="negative"):
            from_json_dict(data)

    def test_import_rejects_non_object_series_entry(self):
        data = to_json_dict(self.make_recorder())
        data["series"]["sys.llc_misses_per_tick"] = [1, 2, 3]
        with pytest.raises(TelemetrySchemaError, match="object"):
            from_json_dict(data)


class TestSimulationIntegration:
    def run_system(self, recorder=None):
        if recorder is None:
            system = VirtualizedSystem(KS4Xen())
        else:
            system = VirtualizedSystem(KS4Xen(), recorder=recorder)
        system.create_vm(
            VmConfig(
                name="vdis1",
                workload=application_workload("lbm"),
                llc_cap=50_000.0,
                pinned_cores=[0],
            )
        )
        system.run_ticks(30)
        return system

    def test_ambient_recorder_captures_stack_metrics(self):
        recorder = MetricsRecorder()
        with recording(recorder):
            self.run_system()
        assert recorder.counters["kyoto.samples"] > 0
        assert recorder.counters["sys.context_switches"] >= 1
        assert recorder.counters["credit.credits_burned"] > 0
        misses = recorder.series("sys.llc_misses_per_tick")
        assert misses is not None and len(misses) == 30

    def test_injected_recorder_equivalent_to_ambient(self):
        ambient = MetricsRecorder()
        with recording(ambient):
            self.run_system()
        injected = MetricsRecorder()
        self.run_system(recorder=injected)
        assert to_json_dict(injected) == to_json_dict(ambient)

    def test_recording_does_not_change_results(self):
        """Telemetry is an observer: enabling it must not move results."""
        plain = self.run_system()
        recorder = MetricsRecorder()
        with recording(recorder):
            observed = self.run_system()
        assert observed.vms[0].instructions_retired == plain.vms[0].instructions_retired
        assert observed.vms[0].llc_misses == plain.vms[0].llc_misses
