"""Tests for ``repro report`` (repro.report/1) and the offline downsamplers.

The acceptance property this file pins: a report is a pure function of a
directory's *simulated* contents — two invocations over the same
artifacts render byte-identical text/JSON/CSV, wall times excluded.
"""

import io
import json
import os

import pytest

from repro.analysis.downsample import (
    DownsampleError,
    downsample_lttb,
    downsample_stride_mean,
)
from repro.analysis.report import (
    REPORT_SCHEMA,
    ReportError,
    build_report,
    ingest_sources,
    parse_axes,
    render_csv,
    render_json,
    render_text,
    run_report,
)
from repro.cli import build_parser
from repro.experiments.campaign import ARTIFACT_SCHEMA, write_artifact
from repro.herd.journal import JOURNAL_SCHEMA, JournalWriter, journal_path
from repro.service.loop import SERVICE_SCHEMA
from repro.telemetry import TELEMETRY_SCHEMA, MetricsRecorder, StreamingSink
from repro.util import atomic_write_json, atomic_write_text


# -- fixture builders ---------------------------------------------------------


def _telemetry(counters=None, series=None):
    return {
        "schema": TELEMETRY_SCHEMA,
        "max_series_points": 4096,
        "counters": counters or {},
        "gauges": {},
        "series": series or {},
    }


def _artifact(name, counters=None, series=None, ok=True, wall=1.0):
    return {
        "schema": ARTIFACT_SCHEMA,
        "name": name,
        "description": f"test artifact {name}",
        "ok": ok,
        "report": f"report body of {name}\n",
        "error": None if ok else "RuntimeError: boom",
        "traceback": None,
        "wall_time_sec": wall,
        "telemetry": _telemetry(counters, series),
    }


def _series_entry(ticks, values, dropped=0, stride=1):
    return {
        "ticks": ticks,
        "values": values,
        "offered": len(ticks) + dropped,
        "dropped": dropped,
        "stride": stride,
    }


def _sweep_dir(tmp_path, wall=1.0):
    """Three sweep points + one unswept experiment, as a campaign dir."""
    json_dir = str(tmp_path / "camp")
    for rate, burned in (("0", 100.0), ("0.5", 250.0), ("0.25", 175.0)):
        write_artifact(
            json_dir,
            _artifact(
                f"base@faults.rate={rate}",
                counters={
                    "credit.burned": burned,
                    "always.same": 5.0,
                },
                wall=wall,
            ),
        )
    write_artifact(json_dir, _artifact("solo", counters={"x": 1.0}))
    return json_dir


def _stream_dir(tmp_path, name="soak", points=40):
    directory = str(tmp_path / name)
    sink = StreamingSink(directory, batch_points=8)
    recorder = MetricsRecorder(sink=sink)
    for tick in range(points):
        recorder.record("sys.llc", tick, float(tick))
    recorder.inc("kyoto.punishments", 3.0)
    sink.close(recorder)
    return directory


def _service_dir(tmp_path):
    directory = tmp_path / "svc"
    directory.mkdir()
    summary = {
        "schema": SERVICE_SCHEMA,
        "scenario": "vm_churn",
        "arrival_process": "poisson",
        "admission_policy": "capacity",
        "ticks_run": 2000,
        "admitted": 11,
        "rejected": 39,
        "retired": 7,
        "drained": 4,
        "peak_live_vms": 4,
        "final_live_vms": 0,
        "retired_series_compactions": 11.0,
    }
    atomic_write_json(str(directory / "vm_churn.service.json"), summary)
    return str(directory)


def _herd_dir(tmp_path):
    directory = tmp_path / "herd"
    directory.mkdir()
    with JournalWriter(journal_path(str(directory))) as journal:
        journal.append(
            {
                "event": "campaign",
                "schema": JOURNAL_SCHEMA,
                "points": [
                    {"id": "p0", "name": "a"},
                    {"id": "p1", "name": "b"},
                ],
            }
        )
        journal.append({"event": "started", "point": "p0", "attempt": 1})
        journal.append({"event": "done", "point": "p0", "attempt": 1})
        journal.append({"event": "started", "point": "p1", "attempt": 1})
        journal.append(
            {"event": "quarantined", "point": "p1", "error": "poison"}
        )
    return str(directory)


# -- axes + ingestion ---------------------------------------------------------


class TestParseAxes:
    def test_plain_name_has_no_axes(self):
        assert parse_axes("fig05") == ("fig05", {})

    def test_sweep_point(self):
        base, axes = parse_axes("chaos@faults.rate=0.5,sched.kind=ks4xen")
        assert base == "chaos"
        assert axes == {"faults.rate": "0.5", "sched.kind": "ks4xen"}

    def test_malformed_suffix_treated_as_plain(self):
        assert parse_axes("weird@novalue") == ("weird@novalue", {})
        assert parse_axes("trailing@") == ("trailing@", {})


class TestIngestion:
    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(ReportError):
            ingest_sources([str(tmp_path / "nope")])

    def test_empty_directory_rejected(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(ReportError):
            ingest_sources([str(empty)])

    def test_kinds_detected(self, tmp_path):
        loaded = ingest_sources(
            [
                _sweep_dir(tmp_path),
                _stream_dir(tmp_path),
                _service_dir(tmp_path),
                _herd_dir(tmp_path),
            ]
        )
        kinds = {
            source["path"]: source["kinds"] for source in loaded["sources"]
        }
        assert kinds[str(tmp_path / "camp")] == ["artifacts"]
        assert kinds[str(tmp_path / "soak")] == ["stream"]
        assert kinds[str(tmp_path / "svc")] == ["service"]
        assert kinds[str(tmp_path / "herd")] == ["herd"]

    def test_nested_stream_dirs_found(self, tmp_path):
        json_dir = _sweep_dir(tmp_path)
        _stream_dir(tmp_path / "camp" / "streams", name="base@faults.rate=0")
        loaded = ingest_sources([json_dir])
        assert loaded["sources"][0]["kinds"] == ["artifacts", "stream"]
        assert len(loaded["streams"]) == 1


# -- document assembly --------------------------------------------------------


class TestBuildReport:
    def test_comparison_pivots_axes_and_varying_counters(self, tmp_path):
        document = build_report([_sweep_dir(tmp_path)])
        assert document["schema"] == REPORT_SCHEMA
        (comparison,) = document["comparisons"]
        assert comparison["base"] == "base"
        assert comparison["axes"] == ["faults.rate"]
        # Only the counter that varies becomes a column.
        assert comparison["metrics"] == ["credit.burned"]
        # Rows sort numerically by axis value, not lexically.
        assert [row["axes"]["faults.rate"] for row in comparison["rows"]] == [
            "0", "0.25", "0.5",
        ]
        assert [row["metrics"]["credit.burned"] for row in comparison["rows"]] == [
            100.0, 175.0, 250.0,
        ]

    def test_counter_override_wins(self, tmp_path):
        document = build_report(
            [_sweep_dir(tmp_path)], counters=["always.same", "missing.one"]
        )
        (comparison,) = document["comparisons"]
        assert comparison["metrics"] == ["always.same", "missing.one"]
        assert comparison["rows"][0]["metrics"]["missing.one"] is None

    def test_unswept_experiments_form_no_comparison(self, tmp_path):
        json_dir = str(tmp_path / "camp")
        write_artifact(json_dir, _artifact("solo", counters={"x": 1.0}))
        write_artifact(json_dir, _artifact("duo", counters={"x": 2.0}))
        document = build_report([json_dir])
        assert document["comparisons"] == []

    def test_wall_time_never_reaches_the_document(self, tmp_path):
        document = build_report([_sweep_dir(tmp_path)])
        document.pop("sources")  # source paths may legitimately contain it
        assert "wall_time" not in json.dumps(document)

    def test_service_runs_table(self, tmp_path):
        document = build_report([_service_dir(tmp_path)])
        (entry,) = document["service_runs"]
        assert entry["scenario"] == "vm_churn"
        assert entry["ticks_run"] == 2000
        assert entry["retired_series_compactions"] == 11.0

    def test_herd_section(self, tmp_path):
        document = build_report([_herd_dir(tmp_path)])
        (herd,) = document["herds"]
        assert herd["clean"]
        assert herd["counts"]["done"] == 1
        assert herd["counts"]["quarantined"] == 1
        assert herd["quarantined"] == ["b"]

    def test_stream_series_summary_and_downsampling(self, tmp_path):
        document = build_report(
            [_stream_dir(tmp_path, points=40)], max_points=8
        )
        (entry,) = document["series"]
        assert entry["kind"] == "stream"
        assert entry["points"] == 40
        assert entry["resolution"] == "full"
        assert entry["mean"] == pytest.approx(19.5)
        assert len(entry["downsampled"]["ticks"]) == 8
        assert entry["downsampled"]["method"] == "lttb"

    def test_stream_supersedes_artifact_series(self, tmp_path):
        json_dir = str(tmp_path / "camp")
        ticks = list(range(10))
        write_artifact(
            json_dir,
            _artifact(
                "soak",
                series={"sys.llc": _series_entry(ticks, [float(t) for t in ticks])},
            ),
        )
        _stream_dir(tmp_path / "camp" / "streams", name="soak", points=40)
        document = build_report([json_dir])
        (entry,) = document["series"]
        assert entry["kind"] == "stream"
        assert entry["points"] == 40

    def test_decimated_artifact_series_resolution_labelled(self, tmp_path):
        json_dir = str(tmp_path / "camp")
        write_artifact(
            json_dir,
            _artifact(
                "solo",
                series={
                    "x": _series_entry([0, 2], [1.0, 2.0], dropped=2, stride=2)
                },
            ),
        )
        document = build_report([json_dir])
        (entry,) = document["series"]
        assert entry["resolution"] == "1-in-2"

    def test_series_filter_respects_dot_boundary(self, tmp_path):
        json_dir = str(tmp_path / "camp")
        write_artifact(
            json_dir,
            _artifact(
                "solo",
                series={
                    "kyoto.quota.vm1": _series_entry([0], [1.0]),
                    "kyoto.quota2": _series_entry([0], [1.0]),
                },
            ),
        )
        document = build_report([json_dir], series_filter=["kyoto.quota"])
        names = [entry["series"] for entry in document["series"]]
        assert names == ["kyoto.quota.vm1"]

    def test_invalid_options_rejected(self, tmp_path):
        json_dir = _sweep_dir(tmp_path)
        with pytest.raises(ReportError):
            build_report([json_dir], max_points=1)
        with pytest.raises(ReportError):
            build_report([json_dir], method="fourier")

    def test_corrupt_artifacts_surface(self, tmp_path):
        json_dir = _sweep_dir(tmp_path)
        with open(
            os.path.join(json_dir, "torn.json"), "w", encoding="utf-8"
        ) as handle:
            handle.write('{"schema": "repro.artif')
        document = build_report([json_dir])
        assert document["corrupt_artifacts"] == ["torn.json"]


# -- rendering + determinism --------------------------------------------------


class TestRendering:
    def test_two_runs_render_byte_identically(self, tmp_path):
        # Different wall times — the one nondeterministic artifact field.
        first = build_report([_sweep_dir(tmp_path, wall=1.0)])
        second_dir = tmp_path / "again"
        second = build_report([_sweep_dir(second_dir, wall=9.9)])
        # Source paths differ by construction; compare everything else.
        first.pop("sources")
        second.pop("sources")
        assert render_json(first) == render_json(second)
        assert render_text(first) == render_text(second)
        assert render_csv(first) == render_csv(second)

    def test_text_contains_comparison_table(self, tmp_path):
        text = render_text(build_report([_sweep_dir(tmp_path)]))
        assert "comparison: base" in text
        assert "faults.rate" in text
        assert "credit.burned" in text

    def test_csv_quotes_reserved_characters(self):
        from repro.analysis.report import _csv_cell

        assert _csv_cell("plain") == "plain"
        assert _csv_cell('a,"b"') == '"a,""b"""'

    def test_csv_sections(self, tmp_path):
        csv = render_csv(
            build_report([_sweep_dir(tmp_path), _service_dir(tmp_path)])
        )
        assert csv.startswith("# comparison: base\n")
        assert "# service runs" in csv
        assert "# series" not in csv  # no series in these sources


class TestRunReport:
    def test_cli_happy_path_text(self, tmp_path):
        out = io.StringIO()
        assert run_report([_sweep_dir(tmp_path)], out=out) == 0
        assert "comparison: base" in out.getvalue()

    def test_cli_unusable_input_exits_2(self, tmp_path):
        assert run_report([str(tmp_path / "nope")], out=io.StringIO()) == 2

    def test_cli_damage_exits_1(self, tmp_path):
        json_dir = _sweep_dir(tmp_path)
        with open(
            os.path.join(json_dir, "torn.json"), "w", encoding="utf-8"
        ) as handle:
            handle.write("{not json")
        assert run_report([json_dir], out=io.StringIO()) == 1

    def test_cli_torn_stream_exits_1(self, tmp_path):
        directory = _stream_dir(tmp_path)
        from repro.telemetry.stream import stream_chunks

        path = stream_chunks(directory)[-1]
        blob = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(blob[:-7])
        assert run_report([directory], out=io.StringIO()) == 1

    def test_cli_output_file(self, tmp_path):
        out = io.StringIO()
        target = str(tmp_path / "deep" / "report.json")
        assert (
            run_report(
                [_sweep_dir(tmp_path)], fmt="json", output=target, out=out
            )
            == 0
        )
        document = json.loads(open(target, encoding="utf-8").read())
        assert document["schema"] == REPORT_SCHEMA
        assert "report written to" in out.getvalue()

    def test_parser_wires_report(self):
        args = build_parser().parse_args(
            [
                "report", "a", "b",
                "--format", "csv",
                "--counter", "x", "--counter", "y",
                "--series", "sys.llc",
                "--max-points", "64",
                "--downsample", "stride-mean",
                "--output", "r.csv",
            ]
        )
        assert args.command == "report"
        assert args.dirs == ["a", "b"]
        assert args.format == "csv"
        assert args.counters == ["x", "y"]
        assert args.series == ["sys.llc"]
        assert args.max_points == 64
        assert args.downsample == "stride-mean"
        assert args.output == "r.csv"


# -- downsamplers -------------------------------------------------------------


class TestDownsampleLttb:
    def test_short_series_copied_unchanged(self):
        ticks, values = [1, 2, 3], [4.0, 5.0, 6.0]
        out_ticks, out_values = downsample_lttb(ticks, values, 10)
        assert out_ticks == ticks and out_values == values
        assert out_ticks is not ticks  # a copy, not an alias

    def test_pinned_small_case_keeps_the_spike(self):
        ticks = list(range(7))
        values = [0.0, 0.0, 10.0, 0.0, 0.0, 0.0, 0.0]
        out_ticks, out_values = downsample_lttb(ticks, values, 4)
        assert out_ticks == [0, 2, 3, 6]
        assert out_values == [0.0, 10.0, 0.0, 0.0]

    def test_endpoints_always_kept_and_deterministic(self):
        ticks = list(range(1000))
        values = [float((t * 37) % 101) for t in ticks]
        first = downsample_lttb(ticks, values, 50)
        second = downsample_lttb(ticks, values, 50)
        assert first == second
        assert len(first[0]) == 50
        assert first[0][0] == 0 and first[0][-1] == 999
        # Output ticks are strictly increasing (a valid series).
        assert all(a < b for a, b in zip(first[0], first[0][1:]))

    def test_invalid_inputs_rejected(self):
        with pytest.raises(DownsampleError):
            downsample_lttb([0, 1], [1.0], 2)
        with pytest.raises(DownsampleError):
            downsample_lttb([0, 1, 2], [1.0, 2.0, 3.0], 1)


class TestDownsampleStrideMean:
    def test_short_series_copied_unchanged(self):
        out = downsample_stride_mean([1, 2], [3.0, 4.0], 5)
        assert out == ([1, 2], [3.0, 4.0])

    def test_pinned_bucket_means(self):
        ticks = list(range(10))
        values = [float(t) for t in ticks]
        assert downsample_stride_mean(ticks, values, 2) == (
            [2, 7],
            [2.0, 7.0],
        )

    def test_mean_is_preserved_on_even_buckets(self):
        ticks = list(range(100))
        values = [float((t * 13) % 7) for t in ticks]
        __, out_values = downsample_stride_mean(ticks, values, 10)
        assert sum(out_values) / len(out_values) == pytest.approx(
            sum(values) / len(values)
        )

    def test_invalid_inputs_rejected(self):
        with pytest.raises(DownsampleError):
            downsample_stride_mean([0], [1.0, 2.0], 2)
        with pytest.raises(DownsampleError):
            downsample_stride_mean([0, 1], [1.0, 2.0], 0)


# -- the atomic write helper --------------------------------------------------


class TestAtomicWrite:
    def test_creates_parents_and_writes(self, tmp_path):
        target = str(tmp_path / "a" / "b" / "f.txt")
        assert atomic_write_text(target, "hello\n") == target
        assert open(target, encoding="utf-8").read() == "hello\n"

    def test_replaces_existing_content(self, tmp_path):
        target = str(tmp_path / "f.json")
        atomic_write_json(target, {"v": 1})
        atomic_write_json(target, {"v": 2})
        assert json.loads(open(target, encoding="utf-8").read()) == {"v": 2}

    def test_no_temp_files_left_behind(self, tmp_path):
        atomic_write_text(str(tmp_path / "f.txt"), "x")
        assert sorted(os.listdir(tmp_path)) == ["f.txt"]

    def test_json_is_sorted_and_newline_terminated(self, tmp_path):
        target = str(tmp_path / "f.json")
        atomic_write_json(target, {"b": 1, "a": 2})
        text = open(target, encoding="utf-8").read()
        assert text.index('"a"') < text.index('"b"')
        assert text.endswith("\n")
