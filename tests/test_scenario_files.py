"""File-backed scenarios: registry tokens, campaign fan-out, CLI."""

import io
import json
import pathlib

import pytest

from repro import cli
from repro.cli import main
from repro.experiments import campaign
from repro.experiments.registry import (
    REGISTRY,
    expand_names,
    is_scenario_token,
    resolve,
    scenario_points,
    scenario_spec_of,
)
from repro.scenario import (
    ScenarioError,
    ScenarioSpec,
    VmSpec,
    WorkloadSpec,
    to_dict,
)

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples" / "scenarios"


def _write_json(tmp_path, doc, name="scenario.json"):
    path = tmp_path / name
    path.write_text(json.dumps(doc))
    return str(path)


def _tiny_doc(**extra):
    doc = {
        "schema": "repro.scenario/1",
        "name": "tiny",
        "vms": [{"name": "v", "workload": {"app": "gcc"}}],
        "protocol": {"warmup_ticks": 2, "measure_ticks": 4},
    }
    doc.update(extra)
    return doc


class TestTokens:
    def test_token_detection(self):
        assert is_scenario_token("examples/scenarios/x.toml")
        assert is_scenario_token("x.json#3")
        assert not is_scenario_token("fig01")
        assert not is_scenario_token("x.toml#1#2")

    def test_registry_names_still_resolve(self):
        assert resolve("fig01") is REGISTRY["fig01"]

    def test_unknown_name_raises_keyerror(self):
        with pytest.raises(KeyError):
            resolve("fig99")

    def test_resolve_file_token(self, tmp_path):
        path = _write_json(tmp_path, _tiny_doc())
        spec = resolve(path)
        assert spec.name == "tiny"
        assert spec.description == f"scenario {path}"

    def test_missing_file_raises_scenario_error(self):
        with pytest.raises(ScenarioError):
            resolve("no/such/file.json")

    def test_sweep_point_selection(self, tmp_path):
        path = _write_json(
            tmp_path, _tiny_doc(sweep={"system.seed": [0, 1, 2]})
        )
        assert scenario_spec_of(f"{path}#2").system.seed == 2
        with pytest.raises(ScenarioError, match="out of range"):
            scenario_spec_of(f"{path}#3")
        with pytest.raises(ScenarioError, match="not an integer"):
            scenario_spec_of(f"{path}#two")
        with pytest.raises(ScenarioError, match="sweep file"):
            scenario_spec_of(path)

    def test_expand_names_expands_sweep_files(self, tmp_path):
        path = _write_json(tmp_path, _tiny_doc(sweep={"system.seed": [0, 1]}))
        known, unknown = expand_names(["fig01", path])
        assert known == ["fig01", f"{path}#0", f"{path}#1"]
        assert unknown == []

    def test_expand_names_keeps_broken_files_for_run_to_report(self, tmp_path):
        path = str(tmp_path / "broken.json")
        pathlib.Path(path).write_text("{not json")
        known, unknown = expand_names([path])
        assert known == [path]
        assert unknown == []

    def test_scenario_points_token_order(self, tmp_path):
        path = _write_json(tmp_path, _tiny_doc(sweep={"system.seed": [0, 1]}))
        tokens = [token for token, _ in scenario_points(path)]
        assert tokens == [f"{path}#0", f"{path}#1"]


class TestCampaign:
    def test_run_one_scenario_token(self, tmp_path):
        path = _write_json(tmp_path, _tiny_doc())
        artifact = campaign.run_one(path)
        assert artifact["ok"], artifact["error"]
        assert artifact["name"] == "tiny"
        assert "ipc" in artifact["report"]

    def test_run_one_unloadable_file_fails_cleanly(self, tmp_path):
        path = str(tmp_path / "nope.toml")
        artifact = campaign.run_one(path)
        assert not artifact["ok"]
        assert artifact["name"] == path
        assert "ScenarioError" in artifact["error"]

    def test_campaign_mixes_registry_and_files(self, tmp_path):
        path = _write_json(tmp_path, _tiny_doc(sweep={"system.seed": [0, 1]}))
        out = io.StringIO()
        known, unknown = expand_names([path])
        assert unknown == []
        code = campaign.run_campaign(
            known, json_dir=str(tmp_path / "art"), out=out
        )
        assert code == 0
        written = sorted(p.name for p in (tmp_path / "art").iterdir())
        assert written == [
            "tiny@system.seed=0.json",
            "tiny@system.seed=1.json",
        ]
        summary = campaign.aggregate_dir(str(tmp_path / "art"))
        assert summary["num_experiments"] == 2
        assert summary["num_failed"] == 0

    def test_artifact_filename_sanitizes_paths(self):
        # A sanitized name carries a short content hash so distinct
        # tokens can never collide on the same artifact file.
        assert (
            campaign.artifact_filename("a/b.toml#1")
            == "a_b.toml_1-3f117ee6.json"
        )
        assert (
            campaign.artifact_filename("tiny@system.seed=1")
            == "tiny@system.seed=1.json"
        )


class TestCli:
    def test_run_accepts_scenario_path(self, tmp_path):
        path = _write_json(tmp_path, _tiny_doc())
        out = io.StringIO()
        assert cli.run_experiments([path], out=out) == 0
        assert "tiny" in out.getvalue()

    def test_scenario_validate_ok_and_invalid(self, tmp_path):
        good = _write_json(tmp_path, _tiny_doc(), "good.json")
        bad = _write_json(tmp_path, _tiny_doc(vms=[]), "bad.json")
        out = io.StringIO()
        assert cli.validate_scenarios([good], out=out) == 0
        assert cli.validate_scenarios([good, bad], out=out) == 2
        captured = out.getvalue()
        assert "good.json: OK" in captured
        assert "bad.json: INVALID" in captured
        assert "at least one VM" in captured

    def test_scenario_show_json_is_lossless(self, tmp_path):
        path = _write_json(tmp_path, _tiny_doc())
        out = io.StringIO()
        assert cli.show_scenario(path, "json", out=out) == 0
        shown = json.loads(out.getvalue())
        spec = ScenarioSpec(
            name="tiny",
            vms=(VmSpec(name="v", workload=WorkloadSpec(app="gcc")),),
        )
        assert shown["name"] == "tiny"
        assert shown["vms"] == to_dict(spec)["vms"]

    def test_scenario_show_toml(self, tmp_path):
        path = _write_json(tmp_path, _tiny_doc())
        out = io.StringIO()
        assert cli.show_scenario(path, "toml", out=out) == 0
        assert 'schema = "repro.scenario/1"' in out.getvalue()
        assert "[[vms]]" in out.getvalue()

    def test_scenario_list(self, tmp_path):
        _write_json(tmp_path, _tiny_doc(description="a tiny scenario"))
        _write_json(
            tmp_path, _tiny_doc(sweep={"system.seed": [0, 1]}), "sweep.json"
        )
        (tmp_path / "broken.toml").write_text("= nonsense")
        out = io.StringIO()
        assert cli.list_scenarios(str(tmp_path), out=out) == 0
        captured = out.getvalue()
        assert "a tiny scenario" in captured
        assert "[2 sweep points]" in captured
        assert "INVALID" in captured

    def test_scenario_list_missing_directory(self, tmp_path):
        assert cli.list_scenarios(str(tmp_path / "ghost")) == 2

    def test_scenario_run_writes_artifacts(self, tmp_path):
        path = _write_json(tmp_path, _tiny_doc())
        art = tmp_path / "art"
        assert main(["scenario", "run", path, "--json", str(art)]) == 0
        artifact = json.loads((art / "tiny.json").read_text())
        assert artifact["schema"] == "repro.artifact/1"
        assert artifact["ok"]


class TestCommittedExamples:
    """Every committed example stays loadable and valid."""

    @pytest.mark.parametrize(
        "path", sorted(EXAMPLES_DIR.glob("*.toml"), key=str)
    )
    def test_example_validates(self, path):
        pytest.importorskip("tomllib")
        points = scenario_points(str(path))
        assert points
        for _, spec in points:
            assert spec.schema == "repro.scenario/1"

    def test_examples_exist(self):
        assert len(list(EXAMPLES_DIR.glob("*.toml"))) >= 3
