"""Tests for the shared-LLC occupancy/contention model."""

import pytest

from repro.cachesim.occupancy import (
    LlcOccupancyDomain,
    waterfill_allocation,
)


class TestBasics:
    def test_starts_empty(self):
        domain = LlcOccupancyDomain(1000)
        assert domain.used_lines == 0
        assert domain.free_lines == 1000

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            LlcOccupancyDomain(0)

    def test_insert_into_free_space(self):
        domain = LlcOccupancyDomain(1000)
        domain.insert(1, 100)
        assert domain.occupancy_of(1) == 100
        assert domain.free_lines == 900

    def test_negative_insert_rejected(self):
        with pytest.raises(ValueError):
            LlcOccupancyDomain(1000).insert(1, -1)

    def test_share_of(self):
        domain = LlcOccupancyDomain(1000)
        domain.insert(1, 250)
        assert domain.share_of(1) == 0.25

    def test_owners_listing(self):
        domain = LlcOccupancyDomain(1000)
        domain.insert(1, 10)
        domain.insert(2, 20)
        assert sorted(domain.owners()) == [1, 2]

    def test_footprint_cap(self):
        domain = LlcOccupancyDomain(1000)
        domain.insert(1, 500, footprint_cap=200)
        assert domain.occupancy_of(1) == 200

    def test_proportional_eviction_when_full(self):
        domain = LlcOccupancyDomain(1000)
        domain.insert(1, 600)
        domain.insert(2, 400)
        domain.insert(3, 100)  # must evict 100 proportionally
        assert domain.occupancy_of(1) == pytest.approx(540)
        assert domain.occupancy_of(2) == pytest.approx(360)
        assert domain.occupancy_of(3) == pytest.approx(100)
        assert domain.used_lines == pytest.approx(1000)

    def test_evict_owner(self):
        domain = LlcOccupancyDomain(1000)
        domain.insert(1, 300)
        removed = domain.evict_owner(1, 100)
        assert removed == 100
        assert domain.occupancy_of(1) == 200

    def test_evict_more_than_held(self):
        domain = LlcOccupancyDomain(1000)
        domain.insert(1, 50)
        assert domain.evict_owner(1, 100) == 50
        assert domain.occupancy_of(1) == 0

    def test_flush_owner(self):
        domain = LlcOccupancyDomain(1000)
        domain.insert(1, 300)
        assert domain.flush_owner(1) == 300
        assert 1 not in list(domain.owners())

    def test_reset(self):
        domain = LlcOccupancyDomain(1000)
        domain.insert(1, 300)
        domain.reset()
        assert domain.used_lines == 0

    def test_snapshot_is_a_copy(self):
        domain = LlcOccupancyDomain(1000)
        domain.insert(1, 300)
        snap = domain.snapshot()
        snap[1] = 0
        assert domain.occupancy_of(1) == 300


class TestWaterfill:
    def test_proportional_when_uncapped(self):
        alloc = waterfill_allocation(100, {1: 3, 2: 1}, {})
        assert alloc[1] == pytest.approx(75)
        assert alloc[2] == pytest.approx(25)

    def test_cap_binds_and_redistributes(self):
        alloc = waterfill_allocation(100, {1: 3, 2: 1}, {1: 50})
        assert alloc[1] == 50
        assert alloc[2] == pytest.approx(50)

    def test_all_capped_leaves_free_space(self):
        alloc = waterfill_allocation(100, {1: 1, 2: 1}, {1: 20, 2: 30})
        assert alloc == {1: 20, 2: 30}

    def test_zero_pressure_excluded(self):
        alloc = waterfill_allocation(100, {1: 5, 2: 0}, {})
        assert alloc.get(2, 0.0) == 0.0
        assert alloc[1] == 100

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            waterfill_allocation(0, {1: 1}, {})

    def test_never_exceeds_capacity(self):
        alloc = waterfill_allocation(100, {1: 7, 2: 13, 3: 1}, {2: 40})
        assert sum(alloc.values()) <= 100 + 1e-9


class TestRelax:
    def test_no_insertions_no_change(self):
        domain = LlcOccupancyDomain(1000)
        domain.insert(1, 300)
        domain.relax({1: 0.0}, {1: 300})
        assert domain.occupancy_of(1) == 300

    def test_growth_bounded_by_insertions(self):
        domain = LlcOccupancyDomain(1000)
        domain.relax({1: 50.0}, {1: 800})
        assert domain.occupancy_of(1) == pytest.approx(50)

    def test_linear_reload_into_free_space(self):
        domain = LlcOccupancyDomain(1000)
        for _ in range(4):
            domain.relax({1: 100.0}, {1: 800})
        assert domain.occupancy_of(1) == pytest.approx(400)

    def test_growth_stops_at_footprint(self):
        domain = LlcOccupancyDomain(1000)
        for _ in range(10):
            domain.relax({1: 100.0}, {1: 300})
        assert domain.occupancy_of(1) == pytest.approx(300)

    def test_dead_lines_decay_first(self):
        domain = LlcOccupancyDomain(1000)
        # Owner 2 fills the cache, then stops running.
        for _ in range(20):
            domain.relax({2: 200.0}, {2: 2000})
        assert domain.occupancy_of(2) == pytest.approx(1000)
        # Owner 1 runs alone: its insertions consume owner 2's dead lines.
        domain.relax({1: 100.0}, {1: 500}, active=[1])
        assert domain.occupancy_of(1) == pytest.approx(100)
        assert domain.occupancy_of(2) == pytest.approx(900)

    def test_descheduled_owner_fully_evicted_eventually(self):
        domain = LlcOccupancyDomain(1000)
        for _ in range(20):
            domain.relax({2: 200.0}, {2: 2000})
        for _ in range(20):
            domain.relax({1: 200.0}, {1: 2000}, active=[1])
        assert domain.occupancy_of(2) == pytest.approx(0, abs=1e-6)

    def test_never_oversubscribed(self):
        domain = LlcOccupancyDomain(1000)
        for step in range(50):
            domain.relax({1: 300.0, 2: 500.0, 3: 100.0},
                         {1: 700, 2: 5000, 3: 90})
            assert domain.used_lines <= 1000 + 1e-6

    def test_contention_equilibrium_proportional(self):
        domain = LlcOccupancyDomain(1000)
        for _ in range(200):
            domain.relax({1: 300.0, 2: 100.0}, {1: 5000, 2: 5000})
        assert domain.occupancy_of(1) == pytest.approx(750, rel=0.05)
        assert domain.occupancy_of(2) == pytest.approx(250, rel=0.05)

    def test_negative_pressure_rejected(self):
        domain = LlcOccupancyDomain(1000)
        with pytest.raises(ValueError):
            domain.relax({1: -5.0}, {1: 100})

    def test_active_zero_pressure_owner_keeps_lines_without_attack(self):
        domain = LlcOccupancyDomain(1000)
        for _ in range(5):
            domain.relax({1: 100.0}, {1: 400})
        # Now fully resident and not missing: no pressure from anyone.
        domain.relax({1: 0.0}, {1: 400}, active=[1])
        assert domain.occupancy_of(1) == pytest.approx(400)
