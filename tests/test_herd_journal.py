"""Journal durability: append/scan round trips and crash recovery.

The crown property (ISSUE 8 satellite): truncating a ``repro.herd/1``
journal at *any* byte offset still recovers a consistent queue state —
replay never raises past the header, statuses stay within the vocabulary
and never regress versus the full journal.
"""

import json
import os
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.herd.journal import (
    JOURNAL_SCHEMA,
    JournalError,
    JournalWriter,
    journal_path,
    replay_journal,
    replay_records,
    scan_journal,
)

#: A realistic campaign journal: three points exercising every lifecycle
#: arm (clean done; crash -> retry -> done; crash x2 -> quarantined),
#: plus a resume marker and an in-flight attempt at the tail.
LIFECYCLE_RECORDS = [
    {
        "schema": JOURNAL_SCHEMA,
        "event": "campaign",
        "jobs": 2,
        "max_attempts": 2,
        "seed": 7,
        "points": [
            {"id": "p1", "name": "alpha", "token": "alpha"},
            {"id": "p2", "name": "beta", "token": "beta"},
            {"id": "p3", "name": "gamma", "token": "gamma"},
            {"id": "p4", "name": "delta", "token": "delta"},
        ],
    },
    {"event": "enqueued", "point": "p1", "attempt": 1},
    {"event": "enqueued", "point": "p2", "attempt": 1},
    {"event": "enqueued", "point": "p3", "attempt": 1},
    {"event": "enqueued", "point": "p4", "attempt": 1},
    {"event": "started", "point": "p1", "attempt": 1},
    {"event": "started", "point": "p2", "attempt": 1},
    {"event": "done", "point": "p1", "attempt": 1, "wall_time_sec": 0.01},
    {"event": "crash", "point": "p2", "attempt": 1, "error": "ChildCrash: x"},
    {"event": "retry", "point": "p2", "attempt": 2, "delay_sec": 0.05},
    {"event": "started", "point": "p3", "attempt": 1},
    {"event": "timeout", "point": "p3", "attempt": 1, "error": "TimeoutError: y"},
    {"event": "retry", "point": "p3", "attempt": 2, "delay_sec": 0.05},
    {"event": "resumed", "jobs": 2, "skipped_done": 1},
    {"event": "started", "point": "p2", "attempt": 2},
    {"event": "done", "point": "p2", "attempt": 2, "wall_time_sec": 0.02},
    {"event": "started", "point": "p3", "attempt": 2},
    {"event": "crash", "point": "p3", "attempt": 2, "error": "ChildCrash: x"},
    {"event": "quarantined", "point": "p3", "attempts": 2, "error": "q: x"},
    {"event": "started", "point": "p4", "attempt": 1},
]

STATUS_VOCABULARY = {
    "pending",
    "running",
    "attempt_failed",
    "retry_scheduled",
    "done",
    "failed",
    "quarantined",
}


def _write(tmp_path, records):
    path = journal_path(str(tmp_path))
    with JournalWriter(path) as writer:
        for record in records:
            writer.append(record)
    return path


class TestWriterAndScan:
    def test_round_trip_is_clean(self, tmp_path):
        path = _write(tmp_path, LIFECYCLE_RECORDS)
        records, clean = scan_journal(path)
        assert clean is True
        assert records == LIFECYCLE_RECORDS

    def test_one_record_per_line(self, tmp_path):
        path = _write(tmp_path, LIFECYCLE_RECORDS)
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        assert len(lines) == len(LIFECYCLE_RECORDS)
        assert all(json.loads(line) for line in lines)

    def test_partial_last_line_flagged_not_fatal(self, tmp_path):
        path = _write(tmp_path, LIFECYCLE_RECORDS)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"event": "done", "point"')  # torn mid-append
        records, clean = scan_journal(path)
        assert clean is False
        assert records == LIFECYCLE_RECORDS

    def test_missing_journal_raises(self, tmp_path):
        with pytest.raises(JournalError):
            scan_journal(journal_path(str(tmp_path)))

    def test_non_object_line_stops_scan(self, tmp_path):
        path = _write(tmp_path, LIFECYCLE_RECORDS[:3])
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('"just a string"\n')
        records, clean = scan_journal(path)
        assert clean is False
        assert len(records) == 3


class TestReplay:
    def test_full_lifecycle_fold(self, tmp_path):
        path = _write(tmp_path, LIFECYCLE_RECORDS)
        state = replay_journal(path)
        assert state.clean is True
        assert state.resumes == 1
        assert state.points["p1"].status == "done"
        assert state.points["p2"].status == "done"
        assert state.points["p2"].attempts_used == 2
        assert state.points["p3"].status == "quarantined"
        assert state.points["p3"].last_error == "q: x"
        # p4 was in flight when the journal ended: the attempt is spent.
        assert state.points["p4"].status == "running"
        assert state.points["p4"].attempts_used == 1
        assert state.points["p4"].history[-1]["outcome"] == "orphaned"
        counts = state.counts()
        assert counts["done"] == 2
        assert counts["quarantined"] == 1
        assert sum(counts.values()) == 4

    def test_resumable_points_in_campaign_order(self, tmp_path):
        path = _write(tmp_path, LIFECYCLE_RECORDS)
        state = replay_journal(path)
        assert [p.point_id for p in state.resumable()] == ["p4"]

    def test_empty_journal_raises(self):
        with pytest.raises(JournalError):
            replay_records([], clean=True)

    def test_wrong_header_raises(self):
        with pytest.raises(JournalError):
            replay_records([{"event": "enqueued", "point": "p1"}], clean=True)
        with pytest.raises(JournalError):
            replay_records(
                [{"event": "campaign", "schema": "repro.artifact/1"}],
                clean=True,
            )

    def test_unknown_point_ids_are_skipped(self, tmp_path):
        records = LIFECYCLE_RECORDS[:1] + [
            {"event": "done", "point": "ghost", "attempt": 1}
        ]
        state = replay_records(records, clean=True)
        assert "ghost" not in state.points


def _encode(records):
    """The exact byte stream JournalWriter appends for ``records``."""
    return "".join(
        json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        for record in records
    ).encode("utf-8")


JOURNAL_BYTES = _encode(LIFECYCLE_RECORDS)
FULL_STATE = replay_records(list(LIFECYCLE_RECORDS), clean=True)


def _replay_truncated(directory, offset):
    path = os.path.join(directory, "truncated.jsonl")
    with open(path, "wb") as handle:
        handle.write(JOURNAL_BYTES[:offset])
    records, clean = scan_journal(path)
    if not records:
        with pytest.raises(JournalError):
            replay_records(records, clean)
        return None
    return replay_records(records, clean)


class TestTruncationRecovery:
    """Any byte-truncation of a journal recovers a consistent state."""

    def test_writer_byte_stream_matches_encoding(self, tmp_path):
        path = _write(tmp_path, LIFECYCLE_RECORDS)
        with open(path, "rb") as handle:
            assert handle.read() == JOURNAL_BYTES

    @settings(max_examples=120, deadline=None)
    @given(offset=st.integers(min_value=0, max_value=len(JOURNAL_BYTES)))
    def test_any_truncation_replays_consistently(self, offset):
        with tempfile.TemporaryDirectory() as directory:
            truncated = _replay_truncated(directory, offset)
        if truncated is None:
            return  # header lost: replay refuses, loudly
        # Same grid, statuses in vocabulary, every point accounted for.
        assert set(truncated.points) == set(FULL_STATE.points)
        assert sum(truncated.counts().values()) == len(FULL_STATE.points)
        for point_id, record in truncated.points.items():
            assert record.status in STATUS_VOCABULARY
            # Prefix monotonicity: truncation never invents progress.
            assert (
                record.attempts_used
                <= FULL_STATE.points[point_id].attempts_used
            )
            if record.status == "done":
                assert FULL_STATE.points[point_id].status == "done"

    def test_every_line_boundary_exactly(self, tmp_path):
        offsets = [i for i, b in enumerate(JOURNAL_BYTES) if b == 0x0A]
        for offset in offsets:
            truncated = _replay_truncated(str(tmp_path), offset + 1)
            if truncated is not None:
                assert truncated.clean is True
