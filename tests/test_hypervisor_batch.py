"""Tests for the batched struct-of-arrays tick engine.

The engine has exactly one contract: every observable — truth metrics,
integer-carry state, per-tick metric dicts, virtualised PMC readings and
LLC occupancy trajectories — is bit-identical to the scalar reference
path (``tick_engine="scalar"``).  The property test drives random fleets
through both engines (and the numpy backend when numpy is importable)
and compares full fingerprints for equality, not approximation.

Also pins the multi-socket accounting bugfixes that shipped with the
engine: socket-correct frequency in ``truth_llc_cap``, memory-node
fallback in ``occupancy_of``, and pending context-switch penalties dying
with an idle core.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cachesim.perfmodel import CacheBehavior
from repro.hardware.latency import PAPER_LATENCIES
from repro.hardware.specs import CacheSpec, KIB, MIB, MachineSpec, SocketSpec
from repro.hypervisor.system import VirtualizedSystem
from repro.hypervisor.vm import VmConfig
from repro.partitioning.static import apply_page_coloring
from repro.pmc.counters import PmcEvent
from repro.schedulers.credit import CreditScheduler
from repro.workloads.base import Workload
from repro.workloads.interactive import InteractiveWorkload
from repro.workloads.phased import Phase, PhasedWorkload

from conftest import make_vm

try:
    import numpy  # noqa: F401

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover
    HAVE_NUMPY = False

ENGINES = ["scalar", "batch"] + (["batch-numpy"] if HAVE_NUMPY else [])


def _socket(freq_khz: int, cores: int = 4) -> SocketSpec:
    return SocketSpec(
        cores=cores,
        freq_khz=freq_khz,
        l1d=CacheSpec("L1D", 32 * KIB, 8),
        l1i=CacheSpec("L1I", 32 * KIB, 8),
        l2=CacheSpec("L2", 256 * KIB, 8),
        llc=CacheSpec("LLC", 10 * MIB, 20, shared=True),
    )


def hetero_machine() -> MachineSpec:
    """Two sockets at different frequencies (socket 1 at half speed)."""
    return MachineSpec(
        name="hetero-2s",
        sockets=(_socket(2_800_000), _socket(1_400_000)),
        memory_bytes=2 * 8_096 * MIB,
        latency=PAPER_LATENCIES,
    )


def two_socket_machine() -> MachineSpec:
    socket = _socket(2_800_000)
    return MachineSpec(
        name="homog-2s",
        sockets=(socket, socket),
        memory_bytes=2 * 8_096 * MIB,
        latency=PAPER_LATENCIES,
    )


# -- the equivalence property -------------------------------------------------

behaviors = st.builds(
    CacheBehavior,
    wss_lines=st.floats(min_value=1, max_value=1e6),
    lapki=st.floats(min_value=0, max_value=100),
    base_cpi=st.floats(min_value=0.1, max_value=5),
    locality_theta=st.floats(min_value=0.1, max_value=4),
    stream_fraction=st.floats(min_value=0, max_value=1),
    mlp=st.floats(min_value=1, max_value=64),
)

vm_specs = st.lists(
    st.tuples(
        behaviors,
        behaviors,  # second phase / unused for single-phase kinds
        st.sampled_from(["plain", "finite", "phased", "interactive"]),
        st.integers(min_value=0, max_value=1),  # memory node
        st.booleans(),  # pinned?
    ),
    min_size=2,
    max_size=6,
)


def _workload(kind: str, index: int, behavior, behavior2) -> Workload:
    if kind == "finite":
        return Workload(
            name=f"w{index}", behavior=behavior, total_instructions=3e7
        )
    if kind == "phased":
        return PhasedWorkload(
            f"w{index}",
            [Phase(behavior, 5e6), Phase(behavior2, 5e6)],
        )
    if kind == "interactive":
        return InteractiveWorkload(
            f"w{index}",
            behavior,
            burst_instructions=4e6,
            think_usec=5_000,
        )
    return Workload(name=f"w{index}", behavior=behavior)


def _fingerprint(engine, specs, substeps, jitter, seed, ticks, color=False):
    """Run a fleet on ``engine`` and capture every observable, exactly."""
    system = VirtualizedSystem(
        CreditScheduler(),
        two_socket_machine(),
        substeps_per_tick=substeps,
        perf_jitter_fraction=jitter,
        seed=seed,
        tick_engine=engine,
    )
    vms = []
    total_cores = system.machine.spec.total_cores
    for index, (behavior, behavior2, kind, node, pinned) in enumerate(specs):
        vms.append(
            system.create_vm(
                VmConfig(
                    name=f"vm{index}",
                    workload=_workload(kind, index, behavior, behavior2),
                    pinned_cores=[index % total_cores] if pinned else None,
                    memory_node=node,
                )
            )
        )
    if color:
        apply_page_coloring(
            system, {vms[0]: 20_000.0, vms[1]: 30_000.0}
        )
    trail = []

    def observe(s, tick):
        trail.append(
            (
                dict(s.last_tick_cycles),
                dict(s.last_tick_instructions),
                dict(s.last_tick_misses),
                tuple(
                    tuple(sorted(d.snapshot().items()))
                    for d in s.llc_domains
                ),
            )
        )

    system.add_tick_observer(observe)
    system.run_ticks(ticks)
    final = []
    for vm in vms:
        for vcpu in vm.vcpus:
            system.perfctr.flush_running(vcpu.gid)
            account = system.perfctr.account(vcpu.gid)
            final.append(
                (
                    vcpu.cycles_run,
                    vcpu.instructions_retired,
                    vcpu.llc_accesses,
                    vcpu.llc_misses,
                    vcpu.progress.instructions_done,
                    vcpu.progress.finished_at_usec,
                    vcpu.blocked_until_usec,
                    vcpu.batch_mirror(),
                    tuple(account.read(event) for event in PmcEvent),
                )
            )
    return trail, final


class TestEngineEquivalence:
    @settings(max_examples=12, deadline=None)
    @given(
        specs=vm_specs,
        substeps=st.sampled_from([4, 10]),
        jitter=st.sampled_from([0.0, 0.03]),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_batched_engines_bit_identical_to_scalar(
        self, specs, substeps, jitter, seed
    ):
        reference = _fingerprint("scalar", specs, substeps, jitter, seed, 40)
        for engine in ENGINES[1:]:
            assert (
                _fingerprint(engine, specs, substeps, jitter, seed, 40)
                == reference
            ), engine

    def test_phase_crossing_fleet_bit_identical(self):
        """Deterministic pin: phase transitions inside a tick (the cap-
        provenance regression of PR 5) survive the batched engines."""
        big = CacheBehavior(wss_lines=120_000.0, lapki=25.0)
        small = CacheBehavior(
            wss_lines=120_000.0,
            lapki=25.0,
            pollution_footprint_lines=2_000.0,
        )
        specs = [
            (big, small, "phased", 0, True),
            (small, big, "phased", 1, True),
            (big, big, "plain", 0, False),
            (small, small, "finite", 1, False),
        ]
        reference = _fingerprint("scalar", specs, 10, 0.0, 7, 60)
        for engine in ENGINES[1:]:
            assert _fingerprint(engine, specs, 10, 0.0, 7, 60) == reference

    def test_page_colored_domains_bit_identical(self):
        """Replacement (duck-typed) LLC domains go through the same
        relax/occupancy sequence on every engine."""
        a = CacheBehavior(wss_lines=90_000.0, lapki=30.0)
        b = CacheBehavior(wss_lines=50_000.0, lapki=15.0, stream_fraction=0.4)
        specs = [
            (a, b, "plain", 0, True),
            (b, a, "plain", 0, True),
            (a, a, "phased", 1, False),
        ]
        reference = _fingerprint(
            "scalar", specs, 10, 0.0, 3, 50, color=True
        )
        for engine in ENGINES[1:]:
            assert (
                _fingerprint(engine, specs, 10, 0.0, 3, 50, color=True)
                == reference
            )

    def test_rejects_unknown_engine(self):
        with pytest.raises(ValueError):
            VirtualizedSystem(
                CreditScheduler(), tick_engine="vectorised-maybe"
            )


# -- churn equivalence --------------------------------------------------------

churn_ops = st.lists(
    st.one_of(
        st.tuples(st.just("run"), st.integers(min_value=1, max_value=5)),
        st.tuples(
            st.just("admit"),
            behaviors,
            st.sampled_from(["plain", "finite", "interactive"]),
            st.integers(min_value=0, max_value=1),  # memory node
        ),
        st.tuples(st.just("retire"), st.integers(min_value=0, max_value=7)),
    ),
    min_size=5,
    max_size=16,
)


def _churn_fingerprint(engine, ops, seed):
    """Drive one admit/run/retire interleaving; capture every observable.

    Also asserts the churn invariants on every tick: the scheduler never
    dispatches a retired vCPU, and every LLC line is owned by a live gid
    (occupancy conservation — retirement flushed the rest).
    """
    system = VirtualizedSystem(
        CreditScheduler(),
        two_socket_machine(),
        seed=seed,
        tick_engine=engine,
    )
    trail = []
    retired_final = []

    def observe(s, tick):
        live_gids = {vcpu.gid for vcpu in s.vcpus}
        for core in s.machine.cores:
            if core.running is not None:
                assert core.running.gid in live_gids, (
                    f"retired gid {core.running.gid} dispatched on "
                    f"core {core.core_id}"
                )
        for domain in s.llc_domains:
            snap = domain.snapshot()
            held = sum(snap.values())
            assert held <= domain.total_lines * (1 + 1e-9)
            for gid, lines in snap.items():
                if lines > 0.0:
                    assert gid in live_gids, (
                        f"retired gid {gid} still owns {lines} LLC lines"
                    )
        trail.append(
            (
                dict(s.last_tick_cycles),
                dict(s.last_tick_instructions),
                dict(s.last_tick_misses),
                tuple(
                    tuple(sorted(d.snapshot().items()))
                    for d in s.llc_domains
                ),
            )
        )

    system.add_tick_observer(observe)
    admitted = 0
    for op in ops:
        if op[0] == "admit":
            _, behavior, kind, node = op
            admitted += 1
            system.admit_vm(
                VmConfig(
                    name=f"churn{admitted}",
                    workload=_workload(kind, admitted, behavior, behavior),
                    memory_node=node,
                )
            )
        elif op[0] == "retire":
            if system.vms:
                vm = system.vms[op[1] % len(system.vms)]
                vcpu = vm.vcpus[0]
                system.retire_vm(vm)
                retired_final.append(
                    (
                        vm.vm_id,
                        vcpu.gid,
                        vcpu.cycles_run,
                        vcpu.instructions_retired,
                        vcpu.llc_misses,
                        vcpu.progress.instructions_done,
                    )
                )
                for domain in system.llc_domains:
                    assert domain.occupancy_of(vcpu.gid) == 0.0
        else:
            system.run_ticks(op[1])
    final = []
    for vm in system.vms:
        for vcpu in vm.vcpus:
            system.perfctr.flush_running(vcpu.gid)
            account = system.perfctr.account(vcpu.gid)
            final.append(
                (
                    vcpu.gid,
                    vcpu.cycles_run,
                    vcpu.instructions_retired,
                    vcpu.llc_accesses,
                    vcpu.llc_misses,
                    vcpu.progress.instructions_done,
                    vcpu.batch_mirror(),
                    tuple(account.read(event) for event in PmcEvent),
                )
            )
    return trail, retired_final, final


class TestChurnEquivalence:
    @settings(max_examples=10, deadline=None)
    @given(
        ops=churn_ops,
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_engines_bit_identical_under_churn(self, ops, seed):
        """Random admit/retire interleavings leave all three engines
        bit-identical: the batched slot mirrors rebuild correctly after
        every fleet invalidation."""
        reference = _churn_fingerprint("scalar", ops, seed)
        for engine in ENGINES[1:]:
            assert _churn_fingerprint(engine, ops, seed) == reference, engine

    def test_admit_between_ticks_matches_cold_start(self):
        """Deterministic pin: a VM admitted after the batch engine primed
        produces the same trajectory on every engine."""
        behavior = CacheBehavior(wss_lines=80_000.0, lapki=20.0)
        late = CacheBehavior(wss_lines=40_000.0, lapki=8.0)
        ops = [
            ("admit", behavior, "plain", 0),
            ("run", 5),
            ("admit", late, "finite", 1),
            ("run", 5),
            ("retire", 0),
            ("run", 5),
        ]
        reference = _churn_fingerprint("scalar", ops, 11)
        for engine in ENGINES[1:]:
            assert _churn_fingerprint(engine, ops, 11) == reference, engine


# -- multi-socket accounting bugfixes -----------------------------------------

class TestSocketFrequencyAccounting:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_truth_llc_cap_uses_own_socket_frequency(self, engine):
        """Regression: cycles→ms conversion used socket 0's frequency no
        matter where the vCPU ran, halving/doubling misses/ms on
        heterogeneous machines."""
        system = VirtualizedSystem(
            CreditScheduler(), hetero_machine(), tick_engine=engine
        )
        slow_core = system.machine.spec.cores_of_socket(1)[0]
        vm = make_vm(system, app="lbm", core=slow_core, memory_node=1)
        system.run_ticks(10)
        vcpu = vm.vcpus[0]
        assert vcpu.llc_misses > 0
        slow_khz = system.machine.sockets[1].spec.freq_khz
        expected = vcpu.llc_misses / (vcpu.cycles_run / slow_khz)
        assert system.truth_llc_cap(vcpu) == expected
        # The two sockets genuinely disagree, so the old socket-0 math
        # would have produced a different rate.
        wrong = vcpu.llc_misses / (vcpu.cycles_run / system.freq_khz)
        assert system.truth_llc_cap(vcpu) != wrong

    def test_occupancy_of_unplaced_vcpu_reads_memory_node_socket(self):
        """Regression: a never-scheduled, unpinned vCPU homed on socket 1
        read socket 0's LLC domain."""
        system = VirtualizedSystem(CreditScheduler(), two_socket_machine())
        vm = system.create_vm(
            VmConfig(
                name="idle",
                workload=Workload(
                    name="w", behavior=CacheBehavior(wss_lines=1e5, lapki=10.0)
                ),
                memory_node=1,
            )
        )
        vcpu = vm.vcpus[0]
        assert vcpu.current_core is None and vcpu.pinned_core is None
        system.llc_domains[1].relax({vcpu.gid: 200.0}, {vcpu.gid: 5_000.0})
        assert system.llc_domains[0].occupancy_of(vcpu.gid) == 0.0
        expected = system.llc_domains[1].occupancy_of(vcpu.gid)
        assert expected > 0.0
        assert system.occupancy_of(vcpu) == expected


class TestPendingPenaltyIdleGap:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_penalty_cleared_when_core_goes_idle(self, engine):
        """Pinned semantics: a pending context-switch penalty dies with
        the occupant — switch→idle→switch must not charge the stale
        penalty to whoever lands on the core ticks later."""
        system = VirtualizedSystem(
            CreditScheduler(),
            ticks_per_slice=1,
            # Far larger than a slice's budget: the penalty cannot be
            # fully absorbed before the idle gap, so a leftover would be
            # observable after it.
            context_switch_cost_cycles=10**10,
            tick_engine=engine,
        )
        vm_a = make_vm(system, "a", app="gcc", core=0)
        vm_b = make_vm(system, "b", app="lbm", core=0)
        system.run_ticks(3)  # at least one preemption switch on core 0
        assert system._pending_penalty_cycles.get(0, 0) > 0
        # Park both: core 0 is observed idle during the next tick.
        vm_a.vcpus[0].paused = True
        vm_b.vcpus[0].paused = True
        system.run_ticks(1)
        assert system._pending_penalty_cycles.get(0, 0) == 0
        # The next occupant starts clean.  Its own switch-in charges one
        # fresh penalty, so after a tick of absorption the pending total
        # must sit strictly within one charge — a leaked stale penalty
        # would push it above 10**10.
        vm_b.vcpus[0].paused = False
        system.run_ticks(1)
        pending = system._pending_penalty_cycles.get(0, 0)
        assert 0 < pending <= 10**10 - system.cycles_per_tick(0) // 2
