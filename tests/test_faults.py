"""Tests for the deterministic fault-injection subsystem (repro.faults)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ks4xen import KS4Xen
from repro.core.monitor import DirectPmcMonitor, PollutionMonitor
from repro.experiments import chaos
from repro.experiments.registry import REGISTRY, experiment_names
from repro.faults import (
    KNOWN_SITES,
    SITE_MIGRATION,
    SITE_MONITOR_EXCEPTION,
    SITE_PMC_READ,
    SITE_REPLAY_SLOW,
    SITE_REPLAY_STALE,
    SITE_REPLAY_UNAVAILABLE,
    FaultPlan,
    FaultPlanError,
    FaultSpec,
    FaultyMonitor,
    FaultyReplayService,
    InjectedMigrationError,
    MigrationFaultInjector,
    MonitorFault,
    ReplayTimeoutError,
    ReplayUnavailableError,
    uniform_plan,
)
from repro.hypervisor.system import VirtualizedSystem
from repro.mcsim.service import ReplayService
from repro.pmc.counters import COUNTER_MASK
from repro.schedulers.credit import CreditScheduler
from repro.simulation.rng import seeded_stream
from repro.telemetry import MetricsRecorder, recording

from conftest import make_vm


def plain_system():
    return VirtualizedSystem(CreditScheduler())


class StubMonitor(PollutionMonitor):
    """Deterministic inner monitor for injector tests."""

    name = "stub"

    def __init__(self, system, values=(100.0,)):
        super().__init__(system)
        self._values = list(values)
        self._index = 0

    def sample(self, vm):
        value = self._values[min(self._index, len(self._values) - 1)]
        self._index += 1
        return value


class TestFaultSpec:
    def test_unknown_site_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultSpec(site="not.a.site")

    def test_probability_range_enforced(self):
        with pytest.raises(FaultPlanError):
            FaultSpec(site=SITE_PMC_READ, probability=1.5)
        with pytest.raises(FaultPlanError):
            FaultSpec(site=SITE_PMC_READ, probability=-0.1)

    def test_burst_must_be_positive(self):
        with pytest.raises(FaultPlanError):
            FaultSpec(site=SITE_PMC_READ, burst=0)

    def test_window_must_be_ordered(self):
        with pytest.raises(FaultPlanError):
            FaultSpec(site=SITE_PMC_READ, windows=((5, 5),))
        with pytest.raises(FaultPlanError):
            FaultSpec(site=SITE_PMC_READ, windows=((-1, 5),))


class TestFaultPlan:
    def test_duplicate_site_rejected(self):
        specs = [FaultSpec(site=SITE_PMC_READ), FaultSpec(site=SITE_PMC_READ)]
        with pytest.raises(FaultPlanError):
            FaultPlan(specs)

    def test_probabilistic_plan_requires_rng(self):
        with pytest.raises(FaultPlanError):
            FaultPlan([FaultSpec(site=SITE_PMC_READ, probability=0.5)])

    def test_disabled_plan_never_fires(self):
        plan = FaultPlan.disabled()
        assert not plan.enabled
        assert not any(plan.should_fire(site, 0) for site in KNOWN_SITES)
        assert plan.injected_total() == 0
        assert plan.decisions == len(KNOWN_SITES)

    def test_zero_probability_plan_is_disabled(self):
        plan = uniform_plan(0.0, None)
        assert not plan.enabled
        assert not plan.should_fire(SITE_PMC_READ, 0)

    def test_scheduled_window_always_fires_half_open(self):
        plan = FaultPlan(
            [FaultSpec(site=SITE_MIGRATION, windows=((10, 12),))]
        )
        assert not plan.should_fire(SITE_MIGRATION, 9)
        assert plan.should_fire(SITE_MIGRATION, 10)
        assert plan.should_fire(SITE_MIGRATION, 11)
        assert not plan.should_fire(SITE_MIGRATION, 12)

    def test_probability_draws_are_deterministic(self):
        def decisions(seed):
            plan = uniform_plan(0.3, seeded_stream(seed))
            return [plan.should_fire(SITE_PMC_READ, t) for t in range(50)]

        assert decisions(7) == decisions(7)
        assert decisions(7) != decisions(8)

    def test_burst_keeps_firing_after_trigger(self):
        plan = FaultPlan(
            [FaultSpec(site=SITE_PMC_READ, probability=1.0, burst=3)],
            rng=seeded_stream(0),
        )
        fired = [plan.should_fire(SITE_PMC_READ, t) for t in range(3)]
        assert fired == [True, True, True]
        # The burst consumed two follow-up decisions without rng draws:
        # only one probabilistic trigger happened.
        assert plan.injected[SITE_PMC_READ] == 3

    def test_ledger_reconciles_with_recorder(self):
        recorder = MetricsRecorder()
        plan = uniform_plan(0.5, seeded_stream(3), recorder=recorder)
        for tick in range(40):
            for site in KNOWN_SITES:
                plan.should_fire(site, tick)
        assert plan.injected_total() > 0
        for site, count in plan.injected.items():
            assert recorder.counters[f"faults.injected.{site}"] == count

    def test_unknown_site_queries_rejected(self):
        plan = FaultPlan.disabled()
        with pytest.raises(FaultPlanError):
            plan.should_fire("bogus", 0)
        with pytest.raises(FaultPlanError):
            plan.spec_of("bogus")


class TestFaultyMonitor:
    def always(self, site):
        return FaultPlan([FaultSpec(site=site, probability=1.0)],
                         rng=seeded_stream(0))

    def test_exception_site_raises_monitor_fault(self):
        system = plain_system()
        vm = make_vm(system)
        monitor = FaultyMonitor(
            StubMonitor(system), self.always(SITE_MONITOR_EXCEPTION)
        )
        with pytest.raises(MonitorFault):
            monitor.sample(vm)

    def test_pmc_corruption_cycles_stale_wrapped_garbage(self):
        system = plain_system()
        vm = make_vm(system)
        monitor = FaultyMonitor(
            StubMonitor(system, values=(100.0,)), self.always(SITE_PMC_READ)
        )
        stale = monitor.sample(vm)
        assert stale == 0.0  # no previous good value yet
        wrapped = monitor.sample(vm)
        assert wrapped == float(COUNTER_MASK)
        garbage = monitor.sample(vm)
        assert math.isnan(garbage)

    def test_clean_samples_pass_through_and_feed_stale(self):
        system = plain_system()
        vm = make_vm(system)
        plan = FaultPlan(
            [FaultSpec(site=SITE_PMC_READ, windows=((5, 100),))]
        )
        monitor = FaultyMonitor(StubMonitor(system, values=(42.0,)), plan)
        assert monitor.sample(vm) == 42.0  # tick 0: clean
        system.run_ticks(6)
        assert monitor.sample(vm) == 42.0  # stale = last clean value


class TestFaultyReplayService:
    def _setup(self, site, **kwargs):
        system = plain_system()
        vm = make_vm(system, app="gcc")
        plan = FaultPlan([FaultSpec(site=site, probability=1.0)],
                         rng=seeded_stream(0))
        service = FaultyReplayService(ReplayService(), plan, system, **kwargs)
        return system, vm, service

    def test_unavailable_raises(self):
        __, vm, service = self._setup(SITE_REPLAY_UNAVAILABLE)
        with pytest.raises(ReplayUnavailableError):
            service.replay_vm(vm)

    def test_slow_past_deadline_times_out(self):
        __, vm, service = self._setup(
            SITE_REPLAY_SLOW, latency_ticks=3, deadline_ticks=1
        )
        with pytest.raises(ReplayTimeoutError):
            service.replay_vm(vm)

    def test_slow_within_deadline_still_answers(self):
        __, vm, service = self._setup(
            SITE_REPLAY_SLOW, latency_ticks=2, deadline_ticks=3
        )
        assert service.replay_vm(vm) is not None

    def test_stale_serves_cached_report_and_counts(self):
        __, vm, service = self._setup(SITE_REPLAY_STALE)
        first = service.replay_vm(vm)  # nothing cached yet: real replay
        assert service.stats.replays == 1
        again = service.replay_vm(vm)
        assert again is first
        assert service.stats.stale_hits == 1

    def test_validation(self):
        system = plain_system()
        with pytest.raises(ValueError):
            FaultyReplayService(
                ReplayService(), FaultPlan.disabled(), system, latency_ticks=0
            )
        with pytest.raises(ValueError):
            FaultyReplayService(
                ReplayService(), FaultPlan.disabled(), system, deadline_ticks=0
            )


class TestMigrationFaultInjector:
    def test_injected_failure_leaves_vcpu_in_place(self, numa):
        system = VirtualizedSystem(CreditScheduler(), numa)
        vm = make_vm(system, core=0)
        plan = FaultPlan(
            [FaultSpec(site=SITE_MIGRATION, probability=1.0)],
            rng=seeded_stream(0),
        )
        injector = MigrationFaultInjector(system, plan)
        vcpu = vm.vcpus[0]
        before = vcpu.current_core
        with pytest.raises(InjectedMigrationError):
            system.migrate_vcpu(vcpu, 4)
        assert vcpu.current_core == before
        assert plan.injected[SITE_MIGRATION] == 1
        injector.uninstall()
        system.migrate_vcpu(vcpu, 4)  # no interceptor: succeeds

    def test_uninstall_restores_previous_interceptor(self):
        system = plain_system()
        calls = []

        def previous(vcpu, core):
            calls.append(core)

        system.migration_interceptor = previous
        injector = MigrationFaultInjector(system, FaultPlan.disabled())
        vm = make_vm(system, core=0)
        system.migrate_vcpu(vm.vcpus[0], 1)
        assert calls == [1]  # chained through
        injector.uninstall()
        assert system.migration_interceptor is previous


class TestChaosExperiment:
    def test_registered_but_not_in_all(self):
        assert "chaos" in REGISTRY
        assert "chaos" not in experiment_names()

    def test_smoke_never_crashes_and_reports(self):
        result = chaos.run(warmup_ticks=5, measure_ticks=20)
        assert [p.rate for p in result.points] == list(chaos.FAILURE_RATES)
        assert all(p.completed for p in result.points)
        quota_floor = -chaos.CHAOS_QUOTA_MIN_FACTOR * chaos.PAPER_LLC_CAP
        assert all(p.min_quota >= quota_floor - 1e-6 for p in result.points)
        high = [p for p in result.points if p.rate >= 0.5]
        assert any(p.injected_total > 0 for p in high)
        report = chaos.format_report(result)
        assert "quota bank bound" in report
        assert "CRASH" not in report


def _fault_specs():
    """Strategy: a valid list of FaultSpecs over distinct sites."""
    def build(sites, probs, bursts):
        return [
            FaultSpec(site=site, probability=prob, burst=burst)
            for site, prob, burst in zip(sites, probs, bursts)
        ]

    sites = st.lists(
        st.sampled_from(KNOWN_SITES), min_size=1, max_size=len(KNOWN_SITES),
        unique=True,
    )
    return sites.flatmap(
        lambda s: st.builds(
            build,
            st.just(s),
            st.lists(
                st.floats(min_value=0.0, max_value=1.0),
                min_size=len(s), max_size=len(s),
            ),
            st.lists(
                st.integers(min_value=1, max_value=4),
                min_size=len(s), max_size=len(s),
            ),
        )
    )


class TestFaultPlanProperties:
    @settings(max_examples=20, deadline=None)
    @given(specs=_fault_specs(), seed=st.integers(min_value=0, max_value=2**16))
    def test_engine_survives_any_plan_with_bounded_quota(self, specs, seed):
        """Under *any* fault plan the engine completes, quota respects the
        bank bound, and the telemetry ledger reconciles."""
        recorder = MetricsRecorder()
        with recording(recorder):
            scheduler = KS4Xen(quota_min_factor=2.0)
            system = VirtualizedSystem(scheduler, recorder=recorder)
            plan = FaultPlan(
                specs, rng=seeded_stream(seed), recorder=recorder
            )
            engine = scheduler.kyoto
            engine.monitor = FaultyMonitor(DirectPmcMonitor(system), plan)
            vm = make_vm(
                system, name="victim", app="lbm", core=0, llc_cap=10_000.0
            )
            make_vm(system, name="bystander", app="gcc", core=1)
            system.run_ticks(30)  # completes without raising
            account = engine.account_of(vm)
            assert account is not None
            assert account.quota >= -2.0 * 10_000.0 - 1e-9
        for site, count in plan.injected.items():
            assert recorder.counters[f"faults.injected.{site}"] == count
        assert plan.injected_total() == sum(plan.injected.values())
