"""Chunked execution-time protocol: same results, fewer Python calls."""

import pytest

from repro.scenario import (
    ProtocolSpec,
    ScenarioSpec,
    VmSpec,
    WorkloadSpec,
    budget_exhausted_message,
    execution_time_sec,
    materialize,
)


def _spec(work=2e8, name="exec"):
    return ScenarioSpec(
        name=name,
        vms=(
            VmSpec(
                name="worker",
                workload=WorkloadSpec(app="povray", total_instructions=work),
                pinned_cores=(0,),
            ),
            VmSpec(
                name="noise",
                workload=WorkloadSpec(app="lbm"),
                pinned_cores=(0,),
            ),
        ),
        protocol=ProtocolSpec(mode="execution_time", target_vm="worker"),
    )


def _reference_execution_time(system, vm, max_ticks):
    """The pre-chunking protocol: one run_ticks(1) call per tick."""
    while not vm.finished:
        if system.tick_index >= max_ticks:
            raise RuntimeError(budget_exhausted_message(system, vm, max_ticks))
        system.run_ticks(1)
    return vm.finish_time_usec / 1e6


class TestChunkedEquivalence:
    def test_identical_finish_time_and_tick(self):
        ref = materialize(_spec())
        ref_time = _reference_execution_time(
            ref.system, ref.vm("worker"), max_ticks=200_000
        )
        chunked = materialize(_spec())
        chunked_time = execution_time_sec(chunked.system, chunked.vm("worker"))
        assert chunked_time == ref_time
        # The chunked loop must stop on exactly the finish tick — an
        # overshoot would skew anything counted per tick (Fig 9's
        # migration counts ride on this).
        assert chunked.system.tick_index == ref.system.tick_index

    @pytest.mark.parametrize("chunk_ticks", [1, 7, 64, 10_000])
    def test_any_chunk_size_is_equivalent(self, chunk_ticks):
        ref = materialize(_spec())
        ref_time = _reference_execution_time(
            ref.system, ref.vm("worker"), max_ticks=200_000
        )
        built = materialize(_spec())
        assert (
            execution_time_sec(
                built.system, built.vm("worker"), chunk_ticks=chunk_ticks
            )
            == ref_time
        )

    def test_budget_exhausted_message_identical(self):
        ref = materialize(_spec(work=1e12))
        with pytest.raises(RuntimeError) as ref_err:
            _reference_execution_time(ref.system, ref.vm("worker"), max_ticks=40)
        built = materialize(_spec(work=1e12))
        with pytest.raises(RuntimeError) as chunked_err:
            execution_time_sec(built.system, built.vm("worker"), max_ticks=40)
        assert str(chunked_err.value) == str(ref_err.value)
        assert "worker did not finish within 40 ticks" in str(chunked_err.value)

    def test_chunk_ticks_must_be_positive(self):
        built = materialize(_spec())
        with pytest.raises(ValueError, match="chunk_ticks"):
            execution_time_sec(built.system, built.vm("worker"), chunk_ticks=0)


class TestRunTicksUntil:
    def test_stops_on_predicate_mid_chunk(self):
        built = materialize(_spec())
        system = built.system
        ran = system.run_ticks_until(100, lambda: system.tick_index >= 5)
        assert ran == 5
        assert system.tick_index == 5

    def test_runs_full_chunk_when_predicate_never_fires(self):
        built = materialize(_spec())
        system = built.system
        ran = system.run_ticks_until(10, lambda: False)
        assert ran == 10
        assert system.tick_index == 10
