"""Tests for the occupancy→performance model."""

import pytest

from repro.cachesim.perfmodel import (
    CacheBehavior,
    cycles_per_instruction,
    execute_step,
    hit_probability,
    solo_ipc,
)
from repro.hardware.latency import PAPER_LATENCIES


def behavior(**kwargs):
    defaults = dict(wss_lines=10_000, lapki=100.0, base_cpi=0.8)
    defaults.update(kwargs)
    return CacheBehavior(**defaults)


class TestValidation:
    def test_negative_wss_rejected(self):
        with pytest.raises(ValueError):
            behavior(wss_lines=-1)

    def test_negative_lapki_rejected(self):
        with pytest.raises(ValueError):
            behavior(lapki=-1)

    def test_zero_base_cpi_rejected(self):
        with pytest.raises(ValueError):
            behavior(base_cpi=0)

    def test_theta_range(self):
        with pytest.raises(ValueError):
            behavior(locality_theta=0)
        with pytest.raises(ValueError):
            behavior(locality_theta=5)

    def test_stream_fraction_range(self):
        with pytest.raises(ValueError):
            behavior(stream_fraction=1.5)

    def test_mlp_minimum(self):
        with pytest.raises(ValueError):
            behavior(mlp=0.5)

    def test_pollution_footprint_positive(self):
        with pytest.raises(ValueError):
            behavior(pollution_footprint_lines=0)

    def test_footprint_cap_defaults_to_wss(self):
        assert behavior().footprint_cap_lines == 10_000

    def test_footprint_cap_never_exceeds_wss(self):
        b = behavior(pollution_footprint_lines=50_000)
        assert b.footprint_cap_lines == 10_000

    def test_footprint_cap_applied(self):
        b = behavior(pollution_footprint_lines=5_000)
        assert b.footprint_cap_lines == 5_000


class TestHitProbability:
    def test_full_residency_full_hits(self):
        assert hit_probability(behavior(), 10_000) == 1.0

    def test_zero_residency_zero_hits(self):
        assert hit_probability(behavior(), 0) == 0.0

    def test_monotone_in_occupancy(self):
        b = behavior()
        probs = [hit_probability(b, occ) for occ in (0, 2500, 5000, 7500, 10000)]
        assert probs == sorted(probs)

    def test_linear_when_theta_one(self):
        assert hit_probability(behavior(locality_theta=1.0), 5_000) == 0.5

    def test_concave_when_theta_below_one(self):
        assert hit_probability(behavior(locality_theta=0.5), 2_500) == 0.5

    def test_cliff_when_theta_high(self):
        # theta=4: at half residency almost everything misses.
        assert hit_probability(behavior(locality_theta=4.0), 5_000) == 0.0625

    def test_streaming_bound(self):
        b = behavior(stream_fraction=0.9)
        assert hit_probability(b, 10_000) == pytest.approx(0.1)

    def test_zero_lapki_always_hits(self):
        assert hit_probability(behavior(lapki=0), 0) == 1.0

    def test_occupancy_above_wss_clamped(self):
        assert hit_probability(behavior(), 20_000) == 1.0


class TestCpi:
    def test_all_hits_cpi(self):
        b = behavior()
        cpi = cycles_per_instruction(b, 1.0, PAPER_LATENCIES)
        assert cpi == pytest.approx(0.8 + 0.1 * 45)

    def test_all_misses_cpi(self):
        b = behavior()
        cpi = cycles_per_instruction(b, 0.0, PAPER_LATENCIES)
        assert cpi == pytest.approx(0.8 + 0.1 * 180)

    def test_remote_memory_slower(self):
        b = behavior()
        local = cycles_per_instruction(b, 0.0, PAPER_LATENCIES)
        remote = cycles_per_instruction(b, 0.0, PAPER_LATENCIES, remote_memory=True)
        assert remote > local

    def test_mlp_hides_latency(self):
        slow = cycles_per_instruction(behavior(mlp=1.0), 0.0, PAPER_LATENCIES)
        fast = cycles_per_instruction(behavior(mlp=4.0), 0.0, PAPER_LATENCIES)
        assert fast < slow

    def test_solo_ipc_warm_vs_cold(self):
        b = behavior()
        assert solo_ipc(b, PAPER_LATENCIES, warm=True) > solo_ipc(
            b, PAPER_LATENCIES, warm=False
        )


class TestExecuteStep:
    def test_negative_cycles_rejected(self):
        with pytest.raises(ValueError):
            execute_step(behavior(), 0, -1, PAPER_LATENCIES)

    def test_zero_cycles_zero_everything(self):
        result = execute_step(behavior(), 0, 0, PAPER_LATENCIES)
        assert result.instructions == 0
        assert result.llc_misses == 0
        assert result.ipc == 0.0

    def test_instructions_scale_with_cycles(self):
        b = behavior()
        one = execute_step(b, 10_000, 1_000_000, PAPER_LATENCIES)
        two = execute_step(b, 10_000, 2_000_000, PAPER_LATENCIES)
        assert two.instructions == pytest.approx(2 * one.instructions)

    def test_access_volume_follows_lapki(self):
        result = execute_step(behavior(), 10_000, 1_000_000, PAPER_LATENCIES)
        assert result.llc_accesses == pytest.approx(
            result.instructions * 0.1
        )

    def test_misses_zero_when_fully_resident(self):
        result = execute_step(behavior(), 10_000, 1_000_000, PAPER_LATENCIES)
        assert result.llc_misses == pytest.approx(0.0)

    def test_misses_equal_accesses_when_cold(self):
        result = execute_step(behavior(), 0, 1_000_000, PAPER_LATENCIES)
        assert result.llc_misses == pytest.approx(result.llc_accesses)

    def test_cold_slower_than_warm(self):
        b = behavior()
        cold = execute_step(b, 0, 1_000_000, PAPER_LATENCIES)
        warm = execute_step(b, 10_000, 1_000_000, PAPER_LATENCIES)
        assert cold.instructions < warm.instructions

    def test_ipc_is_instructions_over_cycles(self):
        result = execute_step(behavior(), 5_000, 1_000_000, PAPER_LATENCIES)
        assert result.ipc == pytest.approx(result.instructions / 1_000_000)
