"""Scenario validation: collect-all errors with dotted paths."""

import pytest

from repro.scenario import (
    FaultSiteSpec,
    FaultsSpec,
    MachineSpecChoice,
    MigrationSpec,
    MonitorSpec,
    ProtocolSpec,
    ScenarioError,
    ScenarioSpec,
    SchedulerChoice,
    VmSpec,
    WorkloadSpec,
    from_dict,
)


def _vm(name="v", app="gcc", **kwargs):
    return VmSpec(name=name, workload=WorkloadSpec(app=app), **kwargs)


def _errors_of(spec):
    with pytest.raises(ScenarioError) as excinfo:
        spec.validate()
    return excinfo.value.errors


class TestCollectAll:
    def test_multiple_errors_reported_together(self):
        spec = ScenarioSpec(
            name="",
            machine=MachineSpecChoice(preset="laptop"),
            scheduler=SchedulerChoice(kind="fifo"),
            vms=(),
        )
        errors = _errors_of(spec)
        paths = [error.split(":")[0] for error in errors]
        assert "name" in paths
        assert "machine.preset" in paths
        assert "scheduler.kind" in paths
        assert "vms" in paths

    def test_error_lists_alternatives(self):
        (error,) = _errors_of(
            ScenarioSpec(name="x", vms=(_vm(),),
                         monitor=MonitorSpec(strategy="psychic"))
        )
        assert error.startswith("monitor.strategy:")
        assert "resilient" in error  # suggests the valid strategies


class TestVmValidation:
    def test_duplicate_names(self):
        errors = _errors_of(
            ScenarioSpec(name="x", vms=(_vm("a"), _vm("a")))
        )
        assert any("duplicate VM name 'a'" in error for error in errors)

    def test_counted_vm_needs_single_pinned_core(self):
        errors = _errors_of(
            ScenarioSpec(
                name="x", vms=(_vm(count=3, pinned_cores=(0, 1)),)
            )
        )
        assert any("vms[0].pinned_cores" in error for error in errors)

    def test_pinning_must_cover_every_vcpu(self):
        errors = _errors_of(
            ScenarioSpec(
                name="x", vms=(_vm(num_vcpus=2, pinned_cores=(0,)),)
            )
        )
        assert any("one core per vCPU" in error for error in errors)

    def test_micro_workload_needs_wss(self):
        errors = _errors_of(
            ScenarioSpec(
                name="x",
                vms=(VmSpec(name="m", workload=WorkloadSpec(kind="micro")),),
            )
        )
        assert any("vms[0].workload.wss_bytes" in error for error in errors)

    def test_application_workload_needs_app(self):
        errors = _errors_of(
            ScenarioSpec(name="x", vms=(VmSpec(name="m", workload=WorkloadSpec()),))
        )
        assert any("vms[0].workload.app" in error for error in errors)


class TestCrossFieldValidation:
    def test_quota_min_factor_is_ks4xen_only(self):
        errors = _errors_of(
            ScenarioSpec(
                name="x",
                scheduler=SchedulerChoice(kind="cfs", quota_min_factor=2.0),
                vms=(_vm(),),
            )
        )
        assert any("scheduler.quota_min_factor" in error for error in errors)

    def test_faults_uniform_rate_xor_sites(self):
        errors = _errors_of(
            ScenarioSpec(
                name="x",
                vms=(_vm(),),
                faults=FaultsSpec(
                    uniform_rate=0.5,
                    sites=(FaultSiteSpec(site="replay.unavailable"),),
                ),
            )
        )
        assert any("mutually exclusive" in error for error in errors)

    def test_migration_vm_must_exist(self):
        errors = _errors_of(
            ScenarioSpec(
                name="x",
                vms=(_vm(),),
                migration=MigrationSpec(vm="ghost"),
            )
        )
        assert any("migration.vm" in error for error in errors)

    def test_target_vm_must_be_an_expanded_name(self):
        errors = _errors_of(
            ScenarioSpec(
                name="x",
                vms=(_vm("a", count=2, pinned_cores=(0,)),),
                protocol=ProtocolSpec(target_vm="a"),
            )
        )
        # count=2 expands to a-0 / a-1; the bare name no longer exists.
        assert any("protocol.target_vm" in error for error in errors)


class TestTargetVmName:
    def test_defaults_to_first_vm(self):
        spec = ScenarioSpec(name="x", vms=(_vm("first"), _vm("second")))
        assert spec.target_vm_name() == "first"

    def test_counted_first_vm_targets_clone_zero(self):
        spec = ScenarioSpec(
            name="x", vms=(_vm("a", count=2, pinned_cores=(0,)),)
        )
        assert spec.target_vm_name() == "a-0"

    def test_explicit_target_wins(self):
        spec = ScenarioSpec(
            name="x",
            vms=(_vm("a"), _vm("b")),
            protocol=ProtocolSpec(target_vm="b"),
        )
        assert spec.target_vm_name() == "b"


class TestFromDictErrors:
    def test_unknown_keys_rejected(self):
        with pytest.raises(ScenarioError) as excinfo:
            from_dict(
                {
                    "schema": "repro.scenario/1",
                    "name": "x",
                    "vms": [{"name": "v", "workload": {"app": "gcc"}}],
                    "turbo": True,
                }
            )
        assert "turbo" in str(excinfo.value)

    def test_type_errors_carry_dotted_paths(self):
        with pytest.raises(ScenarioError) as excinfo:
            from_dict(
                {
                    "schema": "repro.scenario/1",
                    "name": "x",
                    "system": {"tick_usec": "fast"},
                    "vms": [{"name": "v", "workload": {"app": "gcc"}}],
                }
            )
        assert "system.tick_usec" in str(excinfo.value)

    def test_wrong_schema_rejected(self):
        with pytest.raises(ScenarioError) as excinfo:
            from_dict(
                {
                    "schema": "repro.scenario/9",
                    "name": "x",
                    "vms": [{"name": "v", "workload": {"app": "gcc"}}],
                }
            )
        assert "repro.scenario/1" in str(excinfo.value)
