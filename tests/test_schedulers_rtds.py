"""Tests for the RTDS scheduler and its Kyoto extension (KS4RTDS)."""

import pytest

from repro.core.ks4rtds import KS4RTDS
from repro.hypervisor.system import VirtualizedSystem
from repro.hypervisor.vm import VmConfig
from repro.schedulers.rtds import RtdsScheduler, RtServer
from repro.workloads.profiles import application_workload

from conftest import make_vm


def duty_cycle(system, vm, ticks=90):
    ran = [0]
    gid = vm.vcpus[0].gid
    system.add_tick_observer(
        lambda s, t: ran.__setitem__(0, ran[0] + (gid in s.last_tick_cycles))
    )
    system.run_ticks(ticks)
    return ran[0] / ticks


class TestServer:
    def test_validation(self):
        with pytest.raises(ValueError):
            RtServer(budget_ticks=0, period_ticks=3)
        with pytest.raises(ValueError):
            RtServer(budget_ticks=4, period_ticks=3)
        with pytest.raises(ValueError):
            RtServer(budget_ticks=1, period_ticks=0)

    def test_replenish(self):
        server = RtServer(budget_ticks=2, period_ticks=5)
        server.remaining_budget = 0
        server.replenish(now_tick=10)
        assert server.remaining_budget == 2
        assert server.deadline_tick == 15


class TestRtds:
    def test_default_server_is_full_utilisation(self):
        system = VirtualizedSystem(RtdsScheduler())
        vm = make_vm(system, app="povray")
        assert duty_cycle(system, vm) == 1.0

    def test_budget_limits_duty_cycle(self):
        system = VirtualizedSystem(RtdsScheduler())
        vm = make_vm(system, app="povray")
        system.scheduler.set_server(vm.vcpus[0], budget_ticks=1, period_ticks=3)
        assert duty_cycle(system, vm) == pytest.approx(1 / 3, abs=0.05)

    def test_edf_prefers_earlier_deadline(self):
        system = VirtualizedSystem(RtdsScheduler())
        urgent = make_vm(system, "urgent", app="povray", core=0)
        lax = make_vm(system, "lax", app="povray", core=0)
        system.scheduler.set_server(urgent.vcpus[0], 1, 2)
        system.scheduler.set_server(lax.vcpus[0], 3, 9)
        share = duty_cycle(system, urgent, ticks=90)
        # The urgent server gets its 1-in-2 reservation despite sharing.
        assert share == pytest.approx(0.5, abs=0.1)

    def test_two_servers_share_by_utilisation(self):
        system = VirtualizedSystem(RtdsScheduler())
        a = make_vm(system, "a", app="povray", core=0)
        b = make_vm(system, "b", app="povray", core=0)
        system.scheduler.set_server(a.vcpus[0], 2, 3)
        system.scheduler.set_server(b.vcpus[0], 1, 3)
        assert duty_cycle(system, a, ticks=90) == pytest.approx(2 / 3, abs=0.1)

    def test_depleted_server_waits_for_period(self):
        system = VirtualizedSystem(RtdsScheduler())
        vm = make_vm(system, app="povray")
        system.scheduler.set_server(vm.vcpus[0], 1, 5)
        timeline = []
        gid = vm.vcpus[0].gid
        system.add_tick_observer(
            lambda s, t: timeline.append(gid in s.last_tick_cycles)
        )
        system.run_ticks(10)
        assert timeline[0] is True
        assert timeline[1] is False  # depleted until the next period


class TestKS4RTDS:
    def test_polluter_punished(self):
        system = VirtualizedSystem(KS4RTDS())
        make_vm(system, "sen", app="gcc", core=0, llc_cap=250_000.0)
        dis = make_vm(system, "dis", app="lbm", core=1, llc_cap=250_000.0)
        system.run_ticks(120)
        assert system.scheduler.kyoto.punishments(dis) > 5

    def test_compliant_vm_keeps_its_reservation(self):
        system = VirtualizedSystem(KS4RTDS())
        sen = make_vm(system, "sen", app="gcc", core=0, llc_cap=250_000.0)
        make_vm(system, "dis", app="lbm", core=1, llc_cap=250_000.0)
        assert duty_cycle(system, sen, ticks=120) > 0.95

    def test_victim_improves_over_plain_rtds(self):
        def victim_ipc(scheduler):
            system = VirtualizedSystem(scheduler)
            sen = make_vm(system, "sen", app="gcc", core=0, llc_cap=250_000.0)
            make_vm(system, "dis", app="lbm", core=1, llc_cap=250_000.0)
            system.run_ticks(30)
            sen.reset_metrics()
            system.run_ticks(120)
            return sen.vcpus[0].ipc

        assert victim_ipc(KS4RTDS()) > victim_ipc(RtdsScheduler()) * 1.03
