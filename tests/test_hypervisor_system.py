"""Tests for the virtualized system (hypervisor + machine simulation)."""

import pytest

from repro.cachesim.perfmodel import CacheBehavior
from repro.hardware.specs import numa_machine
from repro.hypervisor.system import HypervisorError, VirtualizedSystem
from repro.hypervisor.vm import VmConfig
from repro.pmc.counters import PmcEvent
from repro.schedulers.credit import CreditScheduler
from repro.workloads.phased import Phase, PhasedWorkload
from repro.workloads.profiles import application_workload

from conftest import make_vm


class TestVmLifecycle:
    def test_create_vm_assigns_ids(self, xcs_system):
        vm_a = make_vm(xcs_system, "a", core=0)
        vm_b = make_vm(xcs_system, "b", core=1)
        assert vm_a.vm_id == 0
        assert vm_b.vm_id == 1
        assert vm_a.vcpus[0].gid != vm_b.vcpus[0].gid

    def test_vm_by_name(self, xcs_system):
        make_vm(xcs_system, "target", core=0)
        assert xcs_system.vm_by_name("target").name == "target"

    def test_vm_by_name_missing(self, xcs_system):
        with pytest.raises(HypervisorError):
            xcs_system.vm_by_name("ghost")

    def test_invalid_pinning_rejected(self, xcs_system):
        with pytest.raises(ValueError):
            make_vm(xcs_system, "bad", core=99)

    def test_multi_vcpu_vm(self, xcs_system):
        vm = xcs_system.create_vm(
            VmConfig(
                name="smp",
                workload=application_workload("gcc"),
                num_vcpus=2,
                pinned_cores=[0, 1],
            )
        )
        assert len(vm.vcpus) == 2
        assert [v.index for v in vm.vcpus] == [0, 1]

    def test_unpinned_vcpus_balanced(self, xcs_system):
        for i in range(4):
            xcs_system.create_vm(
                VmConfig(name=f"u{i}", workload=application_workload("gcc"))
            )
        cores = [
            xcs_system.scheduler.assigned_core[vm.vcpus[0].gid]
            for vm in xcs_system.vms
        ]
        assert sorted(cores) == [0, 1, 2, 3]


class TestExecution:
    def test_vm_makes_progress(self, xcs_system):
        vm = make_vm(xcs_system)
        xcs_system.run_ticks(5)
        assert vm.instructions_retired > 0
        assert vm.cycles_run > 0

    def test_idle_machine_runs(self, xcs_system):
        xcs_system.run_ticks(3)
        assert xcs_system.tick_index == 3

    def test_negative_ticks_rejected(self, xcs_system):
        with pytest.raises(ValueError):
            xcs_system.run_ticks(-1)

    def test_run_msec(self, xcs_system):
        xcs_system.run_msec(50)
        assert xcs_system.tick_index == 5

    def test_clock_advances_with_ticks(self, xcs_system):
        xcs_system.run_ticks(2)
        assert xcs_system.engine.clock.now_usec == 2 * xcs_system.tick_usec

    def test_pmcs_track_execution(self, xcs_system):
        vm = make_vm(xcs_system)
        xcs_system.run_ticks(3)
        deltas = xcs_system.perfctr.sample(vm.vcpus[0].gid)
        assert deltas[PmcEvent.UNHALTED_CORE_CYCLES] > 0
        assert deltas[PmcEvent.INSTRUCTIONS_RETIRED] > 0

    def test_pmc_misses_match_truth_approximately(self, xcs_system):
        vm = make_vm(xcs_system, app="lbm")
        xcs_system.run_ticks(5)
        deltas = xcs_system.perfctr.sample(vm.vcpus[0].gid)
        truth = vm.vcpus[0].llc_misses
        # Integer carry: PMC within one count of the truth accumulator.
        assert deltas[PmcEvent.LLC_MISSES] == pytest.approx(truth, abs=1.5)

    def test_ipc_reasonable(self, xcs_system):
        vm = make_vm(xcs_system, app="povray")
        xcs_system.run_ticks(5)
        assert 1.5 < vm.ipc < 3.0

    def test_two_vms_contend_on_llc(self, xcs_system):
        victim = make_vm(xcs_system, "victim", app="omnetpp", core=0)
        xcs_system.run_ticks(40)
        solo_misses = xcs_system.last_tick_misses[victim.vcpus[0].gid]

        contended = VirtualizedSystem(CreditScheduler())
        victim2 = make_vm(contended, "victim", app="omnetpp", core=0)
        make_vm(contended, "aggressor", app="lbm", core=1)
        contended.run_ticks(40)
        contended_misses = contended.last_tick_misses[victim2.vcpus[0].gid]
        assert contended_misses > 2 * solo_misses

    def test_finite_workload_completes(self, xcs_system):
        vm = xcs_system.create_vm(
            VmConfig(
                name="finite",
                workload=application_workload("povray", total_instructions=1e7),
                pinned_cores=[0],
            )
        )
        ticks = xcs_system.run_until_finished()
        assert vm.finished
        assert vm.finish_time_usec is not None
        assert ticks >= 1

    def test_finished_vm_stops_consuming(self, xcs_system):
        vm = xcs_system.create_vm(
            VmConfig(
                name="finite",
                workload=application_workload("povray", total_instructions=1e6),
                pinned_cores=[0],
            )
        )
        xcs_system.run_until_finished()
        instructions = vm.instructions_retired
        xcs_system.run_ticks(5)
        assert vm.instructions_retired == pytest.approx(instructions)
        assert vm.instructions_retired <= 1e6 + 1

    def test_run_until_finished_needs_finite_vm(self, xcs_system):
        make_vm(xcs_system)
        with pytest.raises(HypervisorError):
            xcs_system.run_until_finished()

    def test_run_until_finished_guard(self, xcs_system):
        xcs_system.create_vm(
            VmConfig(
                name="huge",
                workload=application_workload("gcc", total_instructions=1e18),
                pinned_cores=[0],
            )
        )
        with pytest.raises(HypervisorError):
            xcs_system.run_until_finished(max_ticks=3)


class TestPmcReferences:
    def test_llc_references_converge_to_truth(self, xcs_system):
        """Per-vCPU virtualised LLC_REFERENCES tracks the truth accumulator
        to within the one outstanding carry fraction.

        Regression test: each sub-step's fractional access count used to
        be truncated independently, dropping up to one reference per
        sub-step and systematically undercounting over a window.
        """
        vms = [
            make_vm(xcs_system, f"v{i}", app="lbm", core=i % 2)
            for i in range(4)
        ]
        xcs_system.run_ticks(50)
        for vm in vms:
            vcpu = vm.vcpus[0]
            xcs_system.perfctr.flush_running(vcpu.gid)
            counted = xcs_system.perfctr.account(vcpu.gid).read(
                PmcEvent.LLC_REFERENCES
            )
            assert counted == pytest.approx(vcpu.llc_accesses, abs=1.0)

    def test_references_at_least_misses(self, xcs_system):
        vm = make_vm(xcs_system, app="lbm")
        xcs_system.run_ticks(10)
        vcpu = vm.vcpus[0]
        xcs_system.perfctr.flush_running(vcpu.gid)
        account = xcs_system.perfctr.account(vcpu.gid)
        assert (
            account.read(PmcEvent.LLC_REFERENCES)
            >= account.read(PmcEvent.LLC_MISSES)
        )


class TestFootprintCapSampling:
    def test_cap_comes_from_pre_execution_phase(self, xcs_system):
        """The cap handed to relax() must belong to the behavior that
        produced the sub-step's misses.

        Regression test: the cap used to be re-sampled after execution,
        so a phase transition inside a sub-step paired this phase's
        insertions with the next phase's (here much smaller) cap.  Also
        pins the behavior_at dedup: exactly one sample per sub-step.
        """
        big = CacheBehavior(wss_lines=100_000.0, lapki=30.0)
        small = CacheBehavior(
            wss_lines=100_000.0,
            lapki=30.0,
            pollution_footprint_lines=2_000.0,
        )
        workload = PhasedWorkload(
            "ab", [Phase(big, 2e7), Phase(small, 2e7)]
        )
        vm = xcs_system.create_vm(
            VmConfig(name="phased", workload=workload, pinned_cores=[0])
        )
        vcpu = vm.vcpus[0]
        domain = xcs_system.llc_domains[0]

        sampled = []
        real_behavior_at = workload.behavior_at

        def spy_behavior_at(done):
            sampled.append(done)
            return real_behavior_at(done)

        workload.behavior_at = spy_behavior_at

        relaxed = []
        real_relax = domain.relax

        def spy_relax(pressures, caps):
            # The behavior sample always precedes the relaxation within
            # a sub-step, so sampled[-1] is this sub-step's sample.
            relaxed.append((sampled[-1], dict(caps)))
            return real_relax(pressures, caps)

        domain.relax = spy_relax

        xcs_system.run_ticks(30)

        # Exactly one behavior sample per executed sub-step (the second,
        # post-execution call is gone).  Relax-call counts are not a
        # sub-step proxy: the batch engine elides provably no-op
        # relaxations.
        assert len(sampled) == 30 * xcs_system.substeps_per_tick
        assert 0 < len(relaxed) <= len(sampled)
        # Every relax cap equals the footprint of the pre-execution
        # sample of the same sub-step — including at phase crossings,
        # where the post-execution sample would disagree.
        for before, caps in relaxed:
            expected = real_behavior_at(before).footprint_cap_lines
            assert caps[vcpu.gid] == expected
        # The run actually exercised a phase transition, and relax was
        # invoked in both phases (a crossing sub-step always relaxes —
        # the behavior change defeats the elision).
        crossings = sum(
            1
            for a, b in zip(sampled, sampled[1:])
            if workload.phase_index_at(a) != workload.phase_index_at(b)
        )
        assert crossings > 0
        relaxed_phases = {
            workload.phase_index_at(before) for before, _ in relaxed
        }
        assert len(relaxed_phases) > 1


class TestObservers:
    def test_tick_observer_called_each_tick(self, xcs_system):
        seen = []
        xcs_system.add_tick_observer(lambda s, t: seen.append(t))
        xcs_system.run_ticks(4)
        assert seen == [0, 1, 2, 3]

    def test_last_tick_metrics_exposed(self, xcs_system):
        vm = make_vm(xcs_system, app="lbm")
        records = []
        xcs_system.add_tick_observer(
            lambda s, t: records.append(
                s.last_tick_misses.get(vm.vcpus[0].gid, 0.0)
            )
        )
        xcs_system.run_ticks(3)
        assert all(m > 0 for m in records)


class TestMigration:
    def test_migrate_changes_core(self):
        system = VirtualizedSystem(CreditScheduler(), numa_machine())
        vm = make_vm(system, core=0)
        system.run_ticks(2)
        system.migrate_vcpu(vm.vcpus[0], 4)
        system.run_ticks(2)
        assert vm.vcpus[0].current_core == 4

    def test_cross_socket_migration_flushes_llc(self):
        system = VirtualizedSystem(CreditScheduler(), numa_machine())
        vm = make_vm(system, core=0)
        system.run_ticks(10)
        assert system.llc_domains[0].occupancy_of(vm.vcpus[0].gid) > 0
        system.migrate_vcpu(vm.vcpus[0], 4)
        assert system.llc_domains[0].occupancy_of(vm.vcpus[0].gid) == 0

    def test_same_socket_migration_keeps_llc(self):
        system = VirtualizedSystem(CreditScheduler(), numa_machine())
        vm = make_vm(system, core=0)
        system.run_ticks(10)
        before = system.llc_domains[0].occupancy_of(vm.vcpus[0].gid)
        system.migrate_vcpu(vm.vcpus[0], 1)
        assert system.llc_domains[0].occupancy_of(vm.vcpus[0].gid) == before

    def test_remote_memory_detection(self):
        system = VirtualizedSystem(CreditScheduler(), numa_machine())
        vm = make_vm(system, core=0)  # memory_node defaults to 0
        assert system.is_memory_remote(vm.vcpus[0], 0) is False
        assert system.is_memory_remote(vm.vcpus[0], 4) is True

    def test_remote_execution_slower(self):
        def run(core):
            system = VirtualizedSystem(CreditScheduler(), numa_machine())
            vm = system.create_vm(
                VmConfig(
                    name="m",
                    workload=application_workload("milc"),
                    memory_node=0,
                    pinned_cores=[core],
                )
            )
            system.run_ticks(30)
            vm.reset_metrics()
            system.run_ticks(30)
            return vm.ipc

        assert run(4) < run(0)


class TestTruthMetrics:
    def test_truth_llc_cap_zero_before_running(self, xcs_system):
        vm = make_vm(xcs_system)
        assert xcs_system.truth_llc_cap(vm.vcpus[0]) == 0.0

    def test_truth_llc_cap_matches_profile_scale(self, xcs_system):
        vm = make_vm(xcs_system, app="lbm")
        xcs_system.run_ticks(30)
        vm.reset_metrics()
        xcs_system.run_ticks(30)
        rate = xcs_system.truth_llc_cap(vm.vcpus[0])
        assert 300_000 < rate < 550_000  # calibrated solo rate ~419k

    def test_context_switch_cost_charged(self):
        # Two CPU-bound VMs sharing a core: each context switch burns
        # cycles, so total instructions lag the zero-cost configuration.
        def total_instructions(cost):
            system = VirtualizedSystem(
                CreditScheduler(), context_switch_cost_cycles=cost
            )
            a = make_vm(system, "a", app="povray", core=0)
            b = make_vm(system, "b", app="povray", core=0)
            system.run_ticks(60)
            return a.instructions_retired + b.instructions_retired

        assert total_instructions(500_000) < total_instructions(0)
