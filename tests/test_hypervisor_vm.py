"""Tests for VM/vCPU configuration and metrics."""

import pytest

from repro.hypervisor.vcpu import VCpu
from repro.hypervisor.vm import VirtualMachine, VmConfig
from repro.workloads.profiles import application_workload

from conftest import make_vm


class TestVmConfig:
    def test_defaults(self):
        config = VmConfig(name="v", workload=application_workload("gcc"))
        assert config.num_vcpus == 1
        assert config.weight == 256
        assert config.cap_percent is None
        assert config.llc_cap is None
        assert config.memory_node == 0

    def test_zero_vcpus_rejected(self):
        with pytest.raises(ValueError):
            VmConfig(name="v", workload=application_workload("gcc"), num_vcpus=0)

    def test_zero_weight_rejected(self):
        with pytest.raises(ValueError):
            VmConfig(name="v", workload=application_workload("gcc"), weight=0)

    def test_cap_range_scales_with_vcpus(self):
        VmConfig(
            name="v",
            workload=application_workload("gcc"),
            num_vcpus=2,
            cap_percent=200,
        )
        with pytest.raises(ValueError):
            VmConfig(
                name="v",
                workload=application_workload("gcc"),
                num_vcpus=1,
                cap_percent=150,
            )

    def test_negative_llc_cap_rejected(self):
        with pytest.raises(ValueError):
            VmConfig(
                name="v", workload=application_workload("gcc"), llc_cap=-1
            )

    def test_pinning_length_must_match(self):
        with pytest.raises(ValueError):
            VmConfig(
                name="v",
                workload=application_workload("gcc"),
                num_vcpus=2,
                pinned_cores=[0],
            )


class TestVmMetrics:
    def test_aggregates_over_vcpus(self, xcs_system):
        vm = xcs_system.create_vm(
            VmConfig(
                name="smp",
                workload=application_workload("gcc"),
                num_vcpus=2,
                pinned_cores=[0, 1],
            )
        )
        xcs_system.run_ticks(5)
        assert vm.instructions_retired == pytest.approx(
            sum(v.instructions_retired for v in vm.vcpus)
        )
        assert vm.cycles_run == sum(v.cycles_run for v in vm.vcpus)

    def test_reset_metrics(self, xcs_system):
        vm = make_vm(xcs_system)
        xcs_system.run_ticks(5)
        vm.reset_metrics()
        assert vm.instructions_retired == 0
        assert vm.cycles_run == 0
        assert vm.ipc == 0.0

    def test_llc_cap_exposed(self, xcs_system):
        vm = make_vm(xcs_system, llc_cap=250_000.0)
        assert vm.llc_cap == 250_000.0

    def test_not_finished_without_finite_workload(self, xcs_system):
        vm = make_vm(xcs_system)
        xcs_system.run_ticks(3)
        assert vm.finished is False
        assert vm.finish_time_usec is None


class TestVCpu:
    def test_name_combines_vm_and_index(self, xcs_system):
        vm = make_vm(xcs_system, "web")
        assert vm.vcpus[0].name == "web.v0"

    def test_runnable_states(self, xcs_system):
        vcpu = make_vm(xcs_system).vcpus[0]
        assert vcpu.runnable
        vcpu.paused = True
        assert not vcpu.runnable

    def test_integer_miss_carry_conserves_counts(self, xcs_system):
        vcpu = make_vm(xcs_system).vcpus[0]
        total = 0
        for _ in range(1000):
            total += vcpu.take_integer_misses(0.3)
        assert total in (299, 300)

    def test_integer_instruction_carry(self, xcs_system):
        vcpu = make_vm(xcs_system).vcpus[0]
        total = sum(vcpu.take_integer_instructions(1.5) for _ in range(10))
        assert total == 15

    def test_record_execution_negative_rejected(self, xcs_system):
        vcpu = make_vm(xcs_system).vcpus[0]
        with pytest.raises(ValueError):
            vcpu.record_execution(100, -1, 0, 0)
