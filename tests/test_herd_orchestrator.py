"""Herd orchestrator: lifecycle semantics, retries, quarantine, resume."""

import io
import json
import os
import time

import pytest

from repro import herd
from repro.cli import main
from repro.experiments.registry import REGISTRY, ExperimentSpec
from repro.herd.journal import journal_path, replay_journal
from repro.herd.merge import normalized_for_comparison, summary_path

#: Fast deterministic backoff for tests: retries land in ~0.05s.
FAST_BACKOFF = herd.BackoffPolicy(
    base_delay_sec=0.05, multiplier=2.0, max_delay_sec=0.2, jitter_frac=0.1
)


def _poison():
    os._exit(7)


def _boom():
    raise RuntimeError("deterministic failure")


def _flaky():
    marker = os.environ["HERD_TEST_MARKER"]
    if not os.path.exists(marker):
        with open(marker, "w", encoding="utf-8"):
            pass
        os._exit(5)
    return "flaky report\n"


def _hang():
    time.sleep(600)
    return "never\n"


@pytest.fixture
def fixture_registry(monkeypatch, tmp_path):
    """Register the failure-mode zoo; children inherit via fork."""
    monkeypatch.setitem(
        REGISTRY, "poison", ExperimentSpec("poison", "always exits 7", _poison)
    )
    monkeypatch.setitem(
        REGISTRY, "boom", ExperimentSpec("boom", "raises every time", _boom)
    )
    monkeypatch.setitem(
        REGISTRY, "flaky", ExperimentSpec("flaky", "crashes once", _flaky)
    )
    monkeypatch.setitem(
        REGISTRY, "hang", ExperimentSpec("hang", "sleeps forever", _hang)
    )
    monkeypatch.setenv("HERD_TEST_MARKER", str(tmp_path / "flaky-marker"))


def _config(**overrides):
    defaults = dict(jobs=2, max_attempts=2, backoff=FAST_BACKOFF, seed=7)
    defaults.update(overrides)
    return herd.HerdConfig(**defaults)


def _summary(json_dir):
    with open(summary_path(str(json_dir)), "r", encoding="utf-8") as handle:
        return json.load(handle)


class TestRun:
    def test_all_done_exit_zero(self, tmp_path):
        out = io.StringIO()
        code = herd.run_herd(
            ["table1", "table2"], str(tmp_path), _config(), out=out
        )
        assert code == 0
        assert os.path.isfile(journal_path(str(tmp_path)))
        summary = _summary(tmp_path)
        assert summary["schema"] == "repro.campaign/1"
        assert summary["num_failed"] == 0
        assert summary["herd"]["quarantined"] == []
        assert summary["herd"]["counters"]["herd.done"] == 2.0
        state = replay_journal(journal_path(str(tmp_path)))
        assert state.counts()["done"] == 2

    def test_refuses_directory_with_existing_journal(self, tmp_path):
        herd.run_herd(["table1"], str(tmp_path), _config(), out=io.StringIO())
        with pytest.raises(herd.HerdError):
            herd.run_herd(
                ["table1"], str(tmp_path), _config(), out=io.StringIO()
            )

    def test_unknown_name_rejected_before_any_journal(self, tmp_path):
        with pytest.raises(herd.HerdError):
            herd.run_herd(["nope"], str(tmp_path), _config())
        assert not os.path.exists(journal_path(str(tmp_path)))


class TestFailureSemantics:
    def test_deterministic_failure_is_terminal_not_retried(
        self, fixture_registry, tmp_path
    ):
        code = herd.run_herd(
            ["boom"], str(tmp_path), _config(), out=io.StringIO()
        )
        assert code == 1
        summary = _summary(tmp_path)
        (point,) = summary["herd"]["points"]
        assert point["status"] == "failed"
        assert point["attempts"] == 1  # an exception replays identically
        assert "herd.retries" not in summary["herd"]["counters"]
        artifact = json.loads((tmp_path / "boom.json").read_text())
        assert "RuntimeError: deterministic failure" in artifact["error"]
        assert "Traceback" in artifact["traceback"]

    def test_transient_crash_retried_then_quarantined(
        self, fixture_registry, tmp_path
    ):
        out = io.StringIO()
        code = herd.run_herd(["poison"], str(tmp_path), _config(), out=out)
        assert code == 1
        summary = _summary(tmp_path)
        (point,) = summary["herd"]["points"]
        assert point["status"] == "quarantined"
        assert point["attempts"] == 2
        assert [h["outcome"] for h in point["history"]] == ["crash", "crash"]
        assert summary["herd"]["quarantined"] == ["poison"]
        assert summary["herd"]["counters"]["herd.retries"] == 1.0
        # The quarantine leaves a synthetic artifact so aggregation sees
        # the point; its error text is attempt-independent.
        artifact = json.loads((tmp_path / "poison.json").read_text())
        assert artifact["ok"] is False
        assert artifact["error"].startswith("quarantined: ChildCrash")
        assert "QUARANTINED" in out.getvalue()

    def test_flaky_point_recovers_on_retry(self, fixture_registry, tmp_path):
        code = herd.run_herd(
            ["flaky"], str(tmp_path), _config(), out=io.StringIO()
        )
        assert code == 0
        summary = _summary(tmp_path)
        (point,) = summary["herd"]["points"]
        assert point["status"] == "done"
        assert point["attempts"] == 2
        assert [h["outcome"] for h in point["history"]] == ["crash", "done"]
        artifact = json.loads((tmp_path / "flaky.json").read_text())
        assert artifact["ok"] is True
        assert artifact["report"] == "flaky report\n"

    def test_hang_times_out_and_quarantines(self, fixture_registry, tmp_path):
        code = herd.run_herd(
            ["hang"],
            str(tmp_path),
            _config(timeout_sec=0.3, grace_sec=0.3),
            out=io.StringIO(),
        )
        assert code == 1
        summary = _summary(tmp_path)
        (point,) = summary["herd"]["points"]
        assert point["status"] == "quarantined"
        assert [h["outcome"] for h in point["history"]] == [
            "timeout", "timeout",
        ]
        artifact = json.loads((tmp_path / "hang.json").read_text())
        assert "TimeoutError" in artifact["error"]

    def test_poison_does_not_wedge_the_rest(self, fixture_registry, tmp_path):
        code = herd.run_herd(
            ["poison", "table1", "flaky"],
            str(tmp_path),
            _config(),
            out=io.StringIO(),
        )
        assert code == 1
        summary = _summary(tmp_path)
        by_name = {p["name"]: p for p in summary["herd"]["points"]}
        assert by_name["table1"]["status"] == "done"
        assert by_name["flaky"]["status"] == "done"
        assert by_name["poison"]["status"] == "quarantined"


class TestResume:
    def test_resume_of_complete_run_skips_everything(self, tmp_path):
        herd.run_herd(
            ["table1", "table2"], str(tmp_path), _config(), out=io.StringIO()
        )
        before = _summary(tmp_path)
        out = io.StringIO()
        code = herd.resume_herd(str(tmp_path), out=out)
        assert code == 0
        assert "2 already done, 0 re-enqueued" in out.getvalue()
        after = _summary(tmp_path)
        assert after["herd"]["resumes"] == 1
        assert normalized_for_comparison(after) == normalized_for_comparison(
            before
        )

    def test_resume_missing_journal_raises(self, tmp_path):
        with pytest.raises(herd.JournalError):
            herd.resume_herd(str(tmp_path))

    def test_jobs_override_recorded(self, tmp_path):
        herd.run_herd(["table1"], str(tmp_path), _config(), out=io.StringIO())
        herd.resume_herd(str(tmp_path), jobs=4, out=io.StringIO())
        records, _clean = herd.scan_journal(journal_path(str(tmp_path)))
        resumed = [r for r in records if r["event"] == "resumed"]
        assert resumed and resumed[-1]["jobs"] == 4


class TestPointIdentity:
    def test_registry_ids_are_content_keyed_and_stable(self):
        point = herd.point_for("table1")
        assert point.name == "table1"
        assert point.point_id == herd.point_for("table1").point_id
        assert point.point_id != herd.point_for("table2").point_id

    def test_scenario_point_ids_key_on_expanded_spec(self):
        token = "examples/scenarios/colocation.toml"
        first = herd.point_for(token)
        assert first.point_id == herd.point_for(token).point_id
        assert first.name != token  # display name comes from the spec

    def test_unresolvable_token_still_gets_deterministic_id(self):
        point = herd.point_for("missing/file.toml")
        assert point.point_id == herd.point_for("missing/file.toml").point_id
        assert point.name == "missing/file.toml"

    def test_expand_points_rejects_unknown(self):
        with pytest.raises(herd.HerdError):
            herd.expand_points(["definitely-not-registered"])
        with pytest.raises(herd.HerdError):
            herd.expand_points([])


class TestConfigValidation:
    def test_invalid_configs_rejected(self):
        with pytest.raises(herd.HerdError):
            herd.HerdConfig(jobs=0)
        with pytest.raises(herd.HerdError):
            herd.HerdConfig(timeout_sec=0.0)
        with pytest.raises(herd.HerdError):
            herd.HerdConfig(max_attempts=0)
        with pytest.raises(herd.HerdError):
            herd.HerdConfig(grace_sec=0.0)


class TestCli:
    def test_run_status_resume_round_trip(self, tmp_path):
        json_dir = str(tmp_path / "camp")
        assert main(["herd", "run", "table1", "--json", json_dir]) == 0
        assert main(["herd", "status", json_dir]) == 0
        out = io.StringIO()
        assert herd.herd_status(json_dir, out=out) == 0
        assert "1 points" in out.getvalue()
        assert main(["herd", "resume", json_dir]) == 0

    def test_run_into_existing_campaign_is_a_usage_error(
        self, tmp_path, capsys
    ):
        json_dir = str(tmp_path / "camp")
        assert main(["herd", "run", "table1", "--json", json_dir]) == 0
        assert main(["herd", "run", "table1", "--json", json_dir]) == 2
        assert "resume" in capsys.readouterr().err

    def test_status_without_journal_is_an_error(self, tmp_path):
        assert main(["herd", "status", str(tmp_path)]) == 2

    def test_status_reports_quarantine(self, fixture_registry, tmp_path):
        json_dir = str(tmp_path / "camp")
        assert main(
            [
                "herd", "run", "poison", "--json", json_dir,
                "--max-attempts", "2", "--base-delay-sec", "0.05",
                "--max-delay-sec", "0.1",
            ]
        ) == 1
        out = io.StringIO()
        assert herd.herd_status(json_dir, out=out) == 0
        text = out.getvalue()
        assert "quarantined" in text
        assert "poison" in text
