"""Phase-1 fact extraction, the on-disk facts cache, and CLI plumbing."""

from __future__ import annotations

import ast
import json
import os
import pathlib
import subprocess
import sys

from repro.lint import Program, analyze_paths, extract_facts
from repro.lint.callgraph import CallGraph

REPO = pathlib.Path(__file__).resolve().parent.parent
FIXTURES = pathlib.Path(__file__).parent / "lint_fixtures"


def facts_of(source: str, path: str = "repro/demo.py"):
    return extract_facts(ast.parse(source), source, path)


# -- extraction ---------------------------------------------------------------


def test_module_identity_and_defines():
    facts = facts_of(
        "import json\n\n\ndef top():\n    return json.dumps({})\n\n\n"
        "class Thing:\n    def method(self):\n        return top()\n",
        path="repro/experiments/demo.py",
    )
    assert facts.module == "repro.experiments.demo"
    assert set(facts.defines) == {"top", "Thing"}
    assert facts.functions["top"]["nested"] is False
    assert facts.functions["Thing.method"]["name"] == "method"
    callers = {c["caller"] for c in facts.calls}
    assert "Thing.method" in callers


def test_rng_telemetry_schema_and_worker_sites():
    facts = facts_of(
        "import multiprocessing\n"
        'DEMO_SCHEMA = "repro.demofam/4"\n'
        "_REGISTRY = {}\n"
        "\n\n"
        "def work(host_rng, recorder, pool, seed):\n"
        '    host_rng.stream("perf")\n'
        '    recorder.inc("demo.count")\n'
        "    value = recorder.counters.get(\"demo.count\")\n"
        "    pool.imap(work, [seed])\n"
        "    _REGISTRY[seed] = value\n"
    )
    (rng_site,) = facts.rng_sites
    assert rng_site["name"] == "perf" and rng_site["dynamic"] is False
    (write,) = facts.telemetry_writes
    assert write == {**write, "kind": "counter", "name": "demo.count"}
    (read,) = facts.telemetry_reads
    assert read["kind"] == "counter" and read["name"] == "demo.count"
    (schema,) = facts.schema_sites
    assert schema["family"] == "repro.demofam" and schema["version"] == 4
    assert schema["scope"] == "<module>"
    (worker,) = facts.worker_sites
    assert worker["api"] == "imap" and worker["func_parts"] == ["work"]
    assert facts.str_constants["DEMO_SCHEMA"] == "repro.demofam/4"
    assert "_REGISTRY" in facts.mutable_globals
    assert facts.functions["work"]["mutates"] == ["_REGISTRY"]


def test_global_rebinding_recorded_per_function():
    facts = facts_of(
        "_current = None\n\n\ndef install(value):\n"
        "    global _current\n    _current = value\n"
    )
    assert facts.functions["install"]["global_writes"] == ["_current"]


def test_facts_round_trip_through_json():
    facts = facts_of(
        'def f(host_rng):\n    return host_rng.stream("x")\n'
    )
    from repro.lint import ModuleFacts

    clone = ModuleFacts.from_dict(
        json.loads(json.dumps(facts.to_dict()))
    )
    assert clone.to_dict() == facts.to_dict()


def test_callgraph_resolves_relative_from_imports():
    pkg_a = facts_of(
        "from .other import leaf\n\n\ndef entry():\n    return leaf()\n",
        path="repro/demo/main.py",
    )
    pkg_b = facts_of(
        "def leaf():\n    return 1\n", path="repro/demo/other.py"
    )
    graph = CallGraph(Program([pkg_a, pkg_b]))
    reached = graph.reachable("repro.demo.main:entry")
    assert "repro.demo.other:leaf" in reached


# -- on-disk facts cache ------------------------------------------------------


def _sentinel_record():
    return {
        "rule": "Z999",
        "path": "sentinel.py",
        "line": 1,
        "col": 0,
        "message": "served from the on-disk cache",
        "severity": "warning",
        "baselined": False,
        "line_hash": "",
        "end_line": 1,
    }


def test_disk_cache_hit_and_content_invalidation(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text("import random\nx = random.random()\n")
    cache = tmp_path / "cache.json"

    first = analyze_paths([str(tmp_path)], cache_path=str(cache))
    assert [f.rule_id for f in first] == ["D001"]
    payload = json.loads(cache.read_text())
    assert payload["schema"] == "kyotolint.facts-cache/1"

    # Plant a sentinel finding inside the cached entry: if the next run
    # reports it, the result came from the cache, not a re-analysis.
    (entry,) = payload["files"].values()
    entry["findings"].append(_sentinel_record())
    cache.write_text(json.dumps(payload))
    cached = analyze_paths([str(tmp_path)], cache_path=str(cache))
    assert "Z999" in [f.rule_id for f in cached]

    # Changing the file's content must invalidate its entry.
    target.write_text("import random\ny = random.random()\n")
    fresh = analyze_paths([str(tmp_path)], cache_path=str(cache))
    assert "Z999" not in [f.rule_id for f in fresh]
    assert [f.rule_id for f in fresh] == ["D001"]


def test_disk_cache_rules_version_bump_invalidates(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text("import random\nx = random.random()\n")
    cache = tmp_path / "cache.json"
    analyze_paths([str(tmp_path)], cache_path=str(cache))

    payload = json.loads(cache.read_text())
    (entry,) = payload["files"].values()
    entry["findings"].append(_sentinel_record())
    payload["rules_version"] = "0.0-stale"
    cache.write_text(json.dumps(payload))

    findings = analyze_paths([str(tmp_path)], cache_path=str(cache))
    assert "Z999" not in [f.rule_id for f in findings]
    # The cache file is rewritten under the current version.
    assert json.loads(cache.read_text())["rules_version"] != "0.0-stale"


def test_corrupt_cache_is_ignored(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text("import random\nx = random.random()\n")
    cache = tmp_path / "cache.json"
    cache.write_text("{not json")
    findings = analyze_paths([str(tmp_path)], cache_path=str(cache))
    assert [f.rule_id for f in findings] == ["D001"]


# -- CLI: determinism, rule listing, warn tier --------------------------------


def _run_lint_cli(*args: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro", "lint", *args],
        capture_output=True,
        text=True,
        env=env,
        cwd=str(REPO),
    )


def test_parallel_json_runs_are_byte_identical():
    args = (str(FIXTURES), "--jobs", "4", "--format", "json")
    first = _run_lint_cli(*args)
    second = _run_lint_cli(*args)
    assert first.stdout == second.stdout
    payload = json.loads(first.stdout)
    assert payload["summary"]["total"] > 0


def test_rules_listing_includes_program_families():
    result = _run_lint_cli("--rules")
    assert result.returncode == 0
    for rule_id in ("D001", "U003", "S001", "C002", "T001", "T002"):
        assert rule_id in result.stdout
    assert "whole-program rules (phase 2):" in result.stdout


def test_warn_only_demotes_everything():
    result = _run_lint_cli(str(FIXTURES / "s001"), "--warn-only")
    assert result.returncode == 0
    assert "S001 warning" in result.stdout
