"""Tests for XCS work stealing (SMP load balancing)."""

import pytest

from repro.hypervisor.system import VirtualizedSystem
from repro.hypervisor.vm import VmConfig
from repro.schedulers.credit import CreditScheduler
from repro.workloads.profiles import application_workload


def unpinned_vm(system, name, app="povray"):
    return system.create_vm(
        VmConfig(name=name, workload=application_workload(app))
    )


class TestWorkStealing:
    def test_idle_cores_steal_queued_work(self):
        """Five unpinned CPU hogs on four cores: stealing keeps every
        core busy, so aggregate throughput approaches 4 cores' worth."""
        system = VirtualizedSystem(CreditScheduler())
        vms = [unpinned_vm(system, f"v{i}") for i in range(5)]
        system.run_ticks(90)
        total = sum(vm.instructions_retired for vm in vms)

        solo = VirtualizedSystem(CreditScheduler())
        ref = unpinned_vm(solo, "ref")
        solo.run_ticks(90)
        one_core = ref.instructions_retired
        assert total > 3.7 * one_core

    def test_pinned_vcpus_never_stolen(self):
        system = VirtualizedSystem(CreditScheduler())
        pinned_a = system.create_vm(
            VmConfig(name="a", workload=application_workload("povray"),
                     pinned_cores=[0])
        )
        system.create_vm(
            VmConfig(name="b", workload=application_workload("povray"),
                     pinned_cores=[0])
        )
        system.run_ticks(60)
        # Both share core 0 at ~50% despite three idle cores.
        assert pinned_a.vcpus[0].current_core in (0, None)
        half_core = 0.5 * 60 * system.cycles_per_tick()
        assert pinned_a.cycles_run == pytest.approx(half_core, rel=0.2)

    def test_stolen_vcpu_reassigned(self):
        system = VirtualizedSystem(CreditScheduler())
        # Two unpinned VMs land on cores 0 and 1 at admission; a third
        # initially queues behind one of them, then gets stolen.
        vms = [unpinned_vm(system, f"v{i}") for i in range(3)]
        system.run_ticks(10)
        cores = {
            system.scheduler.assigned_core[vm.vcpus[0].gid] for vm in vms
        }
        assert len(cores) == 3  # all on distinct cores after stealing

    def test_stealing_prefers_same_socket(self):
        from repro.hardware.specs import numa_machine

        system = VirtualizedSystem(CreditScheduler(), numa_machine())
        # Fill socket 0's core 0 with two unpinned VMs; socket-0 cores
        # should pick up the spare before socket-1 cores do.
        vms = [unpinned_vm(system, f"v{i}") for i in range(2)]
        system.run_ticks(5)
        for vm in vms:
            core = vm.vcpus[0].current_core
            assert core is not None
            assert system.machine.core(core).socket_id == 0
