"""Tests for repro.hardware.specs (Table 1 of the paper)."""

import pytest

from repro.hardware.specs import (
    CacheSpec,
    KIB,
    MIB,
    MachineSpec,
    SocketSpec,
    numa_machine,
    paper_machine,
)


class TestCacheSpec:
    def test_num_lines(self):
        spec = CacheSpec("L1D", 32 * KIB, 8)
        assert spec.num_lines == 512

    def test_num_sets(self):
        spec = CacheSpec("L1D", 32 * KIB, 8)
        assert spec.num_sets == 64

    def test_llc_geometry(self):
        llc = CacheSpec("LLC", 10 * MIB, 20, shared=True)
        assert llc.num_lines == 163_840
        assert llc.num_sets == 8_192

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            CacheSpec("bad", 0, 8)

    def test_indivisible_geometry_rejected(self):
        with pytest.raises(ValueError):
            CacheSpec("bad", 1000, 8, line_bytes=64)


class TestPaperMachine:
    """The machine must match Table 1 exactly."""

    def test_memory(self):
        assert paper_machine().memory_bytes == 8_096 * MIB

    def test_one_socket_four_cores(self):
        machine = paper_machine()
        assert machine.num_sockets == 1
        assert machine.total_cores == 4

    def test_frequency(self):
        assert paper_machine().sockets[0].freq_ghz == pytest.approx(2.8)

    def test_l1(self):
        socket = paper_machine().sockets[0]
        assert socket.l1d.size_bytes == 32 * KIB
        assert socket.l1i.size_bytes == 32 * KIB
        assert socket.l1d.associativity == 8

    def test_l2(self):
        socket = paper_machine().sockets[0]
        assert socket.l2.size_bytes == 256 * KIB
        assert socket.l2.associativity == 8

    def test_llc(self):
        socket = paper_machine().sockets[0]
        assert socket.llc.size_bytes == 10 * MIB
        assert socket.llc.associativity == 20
        assert socket.llc.shared

    def test_latencies(self):
        latency = paper_machine().latency
        assert latency.l1_cycles == 4
        assert latency.l2_cycles == 12
        assert latency.llc_cycles == 45
        assert latency.memory_cycles == 180


class TestNumaMachine:
    def test_two_sockets(self):
        assert numa_machine().num_sockets == 2

    def test_eight_cores(self):
        assert numa_machine().total_cores == 8

    def test_double_memory(self):
        assert numa_machine().memory_bytes == 2 * paper_machine().memory_bytes


class TestCoreMapping:
    def test_socket_of_core(self):
        machine = numa_machine()
        assert machine.socket_of_core(0) == 0
        assert machine.socket_of_core(3) == 0
        assert machine.socket_of_core(4) == 1
        assert machine.socket_of_core(7) == 1

    def test_socket_of_core_out_of_range(self):
        with pytest.raises(ValueError):
            numa_machine().socket_of_core(8)

    def test_socket_of_core_negative(self):
        with pytest.raises(ValueError):
            numa_machine().socket_of_core(-1)

    def test_cores_of_socket(self):
        machine = numa_machine()
        assert machine.cores_of_socket(0) == (0, 1, 2, 3)
        assert machine.cores_of_socket(1) == (4, 5, 6, 7)

    def test_cores_of_socket_out_of_range(self):
        with pytest.raises(ValueError):
            numa_machine().cores_of_socket(2)


class TestValidation:
    def test_machine_needs_sockets(self):
        with pytest.raises(ValueError):
            MachineSpec(name="empty", sockets=(), memory_bytes=1)

    def test_socket_needs_cores(self):
        socket = paper_machine().sockets[0]
        with pytest.raises(ValueError):
            SocketSpec(
                cores=0,
                freq_khz=socket.freq_khz,
                l1d=socket.l1d,
                l1i=socket.l1i,
                l2=socket.l2,
                llc=socket.llc,
            )

    def test_llc_must_be_shared(self):
        socket = paper_machine().sockets[0]
        private_llc = CacheSpec("LLC", 10 * MIB, 20, shared=False)
        with pytest.raises(ValueError):
            SocketSpec(
                cores=4,
                freq_khz=socket.freq_khz,
                l1d=socket.l1d,
                l1i=socket.l1i,
                l2=socket.l2,
                llc=private_llc,
            )
