"""Tests for the periodic migrator (Fig 9 choreography)."""

import pytest

from repro.hardware.specs import numa_machine
from repro.hypervisor.migration import PeriodicMigrator
from repro.hypervisor.system import VirtualizedSystem
from repro.schedulers.credit import CreditScheduler

from conftest import make_vm


def numa_system():
    return VirtualizedSystem(CreditScheduler(), numa_machine())


class TestValidation:
    def test_same_socket_rejected(self):
        system = numa_system()
        vm = make_vm(system, core=0)
        with pytest.raises(ValueError):
            PeriodicMigrator(system, vm.vcpus[0], 0, 1, period_ticks=5)

    def test_invalid_period(self):
        system = numa_system()
        vm = make_vm(system, core=0)
        with pytest.raises(ValueError):
            PeriodicMigrator(system, vm.vcpus[0], 0, 4, period_ticks=0)

    def test_invalid_dwell(self):
        system = numa_system()
        vm = make_vm(system, core=0)
        with pytest.raises(ValueError):
            PeriodicMigrator(
                system, vm.vcpus[0], 0, 4, period_ticks=5,
                min_dwell_ticks=3, max_dwell_ticks=2,
            )


class TestBehaviour:
    def test_bounces_between_sockets(self):
        system = numa_system()
        vm = make_vm(system, core=0)
        migrator = PeriodicMigrator(
            system, vm.vcpus[0], 0, 4, period_ticks=5, seed=1
        )
        homes, aways = 0, 0
        def observer(s, t):
            nonlocal homes, aways
            core = vm.vcpus[0].current_core
            if core is not None:
                if s.machine.core(core).socket_id == 0:
                    homes += 1
                else:
                    aways += 1
        system.add_tick_observer(observer)
        system.run_ticks(60)
        assert homes > 0 and aways > 0
        assert migrator.migrations >= 10

    def test_migration_count_even_after_return(self):
        system = numa_system()
        vm = make_vm(system, core=0)
        migrator = PeriodicMigrator(
            system, vm.vcpus[0], 0, 4, period_ticks=5,
            min_dwell_ticks=1, max_dwell_ticks=1,
        )
        # 52 ticks: the last departure (tick 49) returns at tick 50.
        system.run_ticks(52)
        # Ends at home: every departure is paired with a return.
        assert vm.vcpus[0].pinned_core == 0
        assert migrator.migrations % 2 == 0

    def test_deterministic_with_seed(self):
        def run(seed):
            system = numa_system()
            vm = make_vm(system, core=0)
            PeriodicMigrator(system, vm.vcpus[0], 0, 4, period_ticks=5, seed=seed)
            system.run_ticks(60)
            return vm.instructions_retired

        assert run(3) == run(3)

    def test_migration_slows_memory_bound_vm(self):
        def run(migrate):
            system = numa_system()
            vm = make_vm(system, "m", app="milc", core=0)
            if migrate:
                PeriodicMigrator(system, vm.vcpus[0], 0, 4, period_ticks=5)
            system.run_ticks(80)
            return vm.instructions_retired

        assert run(True) < run(False) * 0.98
