"""Tests for multi-phase workloads."""

import pytest

from repro.cachesim.perfmodel import CacheBehavior
from repro.hypervisor.system import VirtualizedSystem
from repro.hypervisor.vm import VmConfig
from repro.schedulers.credit import CreditScheduler
from repro.workloads.phased import Phase, PhasedWorkload, bursty_workload
from repro.workloads.profiles import application_behavior


def quiet():
    return CacheBehavior(wss_lines=1000, lapki=1.0, base_cpi=0.5)


def noisy():
    return application_behavior("lbm")


class TestPhaseSelection:
    def test_needs_phases(self):
        with pytest.raises(ValueError):
            PhasedWorkload("empty", [])

    def test_phase_length_positive(self):
        with pytest.raises(ValueError):
            Phase(quiet(), 0)

    def test_single_phase_behaves_like_plain(self):
        w = PhasedWorkload("single", [Phase(quiet(), 100)])
        assert w.behavior_at(0) is w.behavior_at(1e9)

    def test_phase_boundaries(self):
        w = PhasedWorkload(
            "two", [Phase(quiet(), 100), Phase(noisy(), 50)], repeat=False
        )
        assert w.phase_index_at(0) == 0
        assert w.phase_index_at(99) == 0
        assert w.phase_index_at(100) == 1
        assert w.phase_index_at(149) == 1
        assert w.phase_index_at(1000) == 1  # stays in the last phase

    def test_repeat_cycles(self):
        w = PhasedWorkload("cyc", [Phase(quiet(), 100), Phase(noisy(), 50)])
        assert w.cycle_instructions == 150
        assert w.phase_index_at(150) == 0
        assert w.phase_index_at(250) == 1

    def test_negative_position_rejected(self):
        w = PhasedWorkload("w", [Phase(quiet(), 10)])
        with pytest.raises(ValueError):
            w.phase_index_at(-1)

    def test_bursty_helper(self):
        w = bursty_workload("b", quiet(), noisy(), 200, 100)
        assert w.phase_index_at(0) == 0
        assert w.phase_index_at(250) == 1


class TestPhasedExecution:
    def test_pollution_follows_phases(self):
        """A quiet→noisy workload's measured miss rate must jump when
        the noisy phase begins — the case for runtime monitoring."""
        # ~2 ticks of quiet phase at ipc~2 (28M cycles/tick).
        workload = PhasedWorkload(
            "bursty",
            [Phase(quiet(), 1.0e8), Phase(noisy(), 1.0e9)],
            repeat=False,
        )
        system = VirtualizedSystem(CreditScheduler())
        vm = system.create_vm(
            VmConfig(name="b", workload=workload, pinned_cores=[0])
        )
        rates = []
        gid = vm.vcpus[0].gid

        def observer(s, t):
            cycles = s.last_tick_cycles.get(gid, 0)
            misses = s.last_tick_misses.get(gid, 0.0)
            rates.append(misses / (cycles / s.freq_khz) if cycles else 0.0)

        system.add_tick_observer(observer)
        system.run_ticks(20)
        assert rates[0] < 10_000          # quiet phase
        assert max(rates) > 200_000       # noisy phase reached

    def test_phase_change_detected_by_monitor(self):
        from repro.core.ks4xen import KS4Xen

        # Quiet phase: ~1.5e9 instructions at IPC ~1.8 is ~30 ticks.
        workload = PhasedWorkload(
            "bursty",
            [Phase(quiet(), 1.5e9), Phase(noisy(), 2.0e10)],
            repeat=False,
        )
        system = VirtualizedSystem(KS4Xen())
        vm = system.create_vm(
            VmConfig(name="b", workload=workload, llc_cap=50_000.0,
                     pinned_cores=[0])
        )
        system.run_ticks(15)
        quiet_punishments = system.scheduler.kyoto.punishments(vm)
        system.run_ticks(150)
        # Punished only once the noisy phase starts.
        assert quiet_punishments == 0
        assert system.scheduler.kyoto.punishments(vm) > 0
