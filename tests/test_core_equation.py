"""Tests for equation 1 and the LLCM indicator."""

import pytest

from repro.core.equation import llc_cap_act, llcm_indicator


class TestEquation1:
    def test_basic_computation(self):
        # 1000 misses over 2.8M cycles at 2.8 GHz = 1 ms -> 1000 misses/ms.
        assert llc_cap_act(1000, 2_800_000, 2_800_000) == pytest.approx(1000)

    def test_faster_vm_pollutes_faster(self):
        slow = llc_cap_act(1000, 5_600_000, 2_800_000)
        fast = llc_cap_act(1000, 2_800_000, 2_800_000)
        assert fast == 2 * slow

    def test_zero_cycles_means_idle(self):
        assert llc_cap_act(0, 0, 2_800_000) == 0.0
        assert llc_cap_act(500, 0, 2_800_000) == 0.0

    def test_negative_readings_rejected(self):
        with pytest.raises(ValueError):
            llc_cap_act(-1, 100, 2_800_000)
        with pytest.raises(ValueError):
            llc_cap_act(1, -100, 2_800_000)

    def test_invalid_frequency_rejected(self):
        with pytest.raises(ValueError):
            llc_cap_act(1, 100, 0)

    def test_frequency_in_khz_is_cycles_per_msec(self):
        # With freq in kHz the formula is exactly misses / elapsed_ms.
        misses, cycles, freq = 4200, 8_400_000, 2_800_000
        elapsed_ms = cycles / freq
        assert llc_cap_act(misses, cycles, freq) == pytest.approx(
            misses / elapsed_ms
        )


class TestLlcmIndicator:
    def test_misses_per_kinst(self):
        assert llcm_indicator(50, 1000) == 50.0

    def test_zero_instructions(self):
        assert llcm_indicator(50, 0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            llcm_indicator(-1, 10)

    def test_independent_of_speed(self):
        # LLCM is a per-instruction quantity: no cycle term at all.
        assert llcm_indicator(100, 2000) == llcm_indicator(100, 2000)
