"""Tests for pollution permits and quota accounting."""

import pytest

from repro.core.pollution import PollutionAccount


class TestConstruction:
    def test_starts_at_quota_max(self):
        account = PollutionAccount(llc_cap=100.0)
        assert account.quota == account.quota_max == 300.0

    def test_negative_cap_rejected(self):
        with pytest.raises(ValueError):
            PollutionAccount(llc_cap=-1)

    def test_invalid_factor_rejected(self):
        with pytest.raises(ValueError):
            PollutionAccount(llc_cap=100, quota_max_factor=0)


class TestDebit:
    def test_debit_reduces_quota(self):
        account = PollutionAccount(llc_cap=100.0)
        account.debit(50.0)
        assert account.quota == 250.0

    def test_negative_debit_rejected(self):
        with pytest.raises(ValueError):
            PollutionAccount(llc_cap=100.0).debit(-1)

    def test_punishment_on_under_to_over_transition(self):
        account = PollutionAccount(llc_cap=100.0)
        assert account.debit(200.0) is False
        assert account.parked is False
        assert account.debit(150.0) is True  # quota goes negative
        assert account.parked is True
        assert account.punishments == 1

    def test_no_double_punishment_while_parked(self):
        account = PollutionAccount(llc_cap=100.0)
        account.debit(400.0)
        account.debit(50.0)
        assert account.punishments == 1

    def test_repeated_punishment_cycles(self):
        account = PollutionAccount(llc_cap=100.0)
        for _ in range(3):
            account.debit(400.0)  # park
            account.refill(ticks=20)  # recover
        assert account.punishments == 3

    def test_debit_statistics(self):
        account = PollutionAccount(llc_cap=100.0)
        account.debit(10.0)
        account.debit(30.0)
        assert account.samples == 2
        assert account.total_debited == 40.0
        assert account.mean_measured == 20.0

    def test_mean_of_no_samples(self):
        assert PollutionAccount(llc_cap=100.0).mean_measured == 0.0


class TestRefill:
    def test_refill_proportional_to_ticks(self):
        account = PollutionAccount(llc_cap=100.0)
        account.debit(250.0)  # quota 50
        account.refill(ticks=2)
        assert account.quota == 250.0

    def test_refill_clipped_at_quota_max(self):
        account = PollutionAccount(llc_cap=100.0)
        account.refill(ticks=100)
        assert account.quota == 300.0

    def test_negative_ticks_rejected(self):
        with pytest.raises(ValueError):
            PollutionAccount(llc_cap=100.0).refill(ticks=-1)

    def test_refill_recovers_parked_vm(self):
        account = PollutionAccount(llc_cap=100.0)
        account.debit(400.0)  # quota -100
        assert account.parked
        account.refill(ticks=2)
        assert not account.parked


class TestSteadyState:
    def test_vm_at_booked_rate_never_punished(self):
        """A VM polluting exactly at its booked level breaks even."""
        account = PollutionAccount(llc_cap=100.0)
        for _ in range(100):
            account.debit(100.0)
            account.refill(ticks=1)
        assert account.punishments == 0

    def test_vm_above_booked_rate_duty_cycled(self):
        """A VM polluting at 2x its booking runs about half the time."""
        account = PollutionAccount(llc_cap=100.0)
        ran = 0
        for _ in range(300):
            if not account.parked:
                account.debit(200.0)
                ran += 1
            account.refill(ticks=1)
        assert ran / 300 == pytest.approx(0.5, abs=0.05)
        assert account.punishments > 10

    def test_quiet_vm_banked_quota_bounded(self):
        account = PollutionAccount(llc_cap=100.0, quota_max_factor=3.0)
        for _ in range(50):
            account.refill(ticks=3)
        assert account.quota == 300.0
