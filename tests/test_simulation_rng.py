"""Tests for repro.simulation.rng."""

from repro.simulation.rng import RngRegistry, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a") == derive_seed(42, "a")

    def test_name_sensitivity(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_seed_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_64_bit_range(self):
        seed = derive_seed(0, "anything")
        assert 0 <= seed < 2 ** 64


class TestRegistry:
    def test_same_name_same_stream_object(self):
        registry = RngRegistry(7)
        assert registry.stream("x") is registry.stream("x")

    def test_streams_reproducible_across_registries(self):
        a = RngRegistry(7).stream("x")
        b = RngRegistry(7).stream("x")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_streams_independent_of_creation_order(self):
        reg1 = RngRegistry(7)
        reg1.stream("first")
        seq1 = [reg1.stream("second").random() for _ in range(3)]
        reg2 = RngRegistry(7)
        seq2 = [reg2.stream("second").random() for _ in range(3)]
        assert seq1 == seq2

    def test_different_names_differ(self):
        registry = RngRegistry(7)
        assert registry.stream("a").random() != registry.stream("b").random()

    def test_reset_restores_initial_state(self):
        registry = RngRegistry(7)
        first = [registry.stream("x").random() for _ in range(3)]
        registry.reset()
        second = [registry.stream("x").random() for _ in range(3)]
        assert first == second
