"""Tests for the campaign runner: registry, fan-out, artifacts, summary."""

import io
import json
import os

import pytest

from repro.experiments.campaign import (
    ARTIFACT_SCHEMA,
    CAMPAIGN_SCHEMA,
    CampaignError,
    aggregate_dir,
    load_artifacts,
    run_campaign,
    run_one,
    run_one_with_timeout,
    summarize_campaign,
)
from repro.experiments.registry import (
    REGISTRY,
    ExperimentSpec,
    expand_names,
    experiment_names,
)
from repro.cli import run_experiments

#: Cheap experiments for runner tests (sub-second each).
FAST = ["table1", "table2", "fig07"]


def _crash():
    raise RuntimeError("stub experiment crash")


def _hang():
    import time

    time.sleep(60)
    return "never reached"


def _die_hard():
    os._exit(3)


@pytest.fixture
def crashy(monkeypatch):
    """Temporarily register a deterministic crashing experiment."""
    monkeypatch.setitem(
        REGISTRY, "crashy", ExperimentSpec("crashy", "always fails", _crash)
    )
    return "crashy"


@pytest.fixture
def hangy(monkeypatch):
    """Temporarily register a hanging experiment (watchdog fodder).

    The watchdog forks its child, which inherits the patched registry.
    """
    monkeypatch.setitem(
        REGISTRY, "hangy", ExperimentSpec("hangy", "never returns", _hang)
    )
    return "hangy"


class TestExpandNames:
    def test_all_expands_in_registry_order(self):
        known, unknown = expand_names(["all"])
        assert known == experiment_names()
        assert unknown == []

    def test_duplicates_run_once_keeping_first_position(self):
        known, unknown = expand_names(["table2", "table1", "table2"])
        assert known == ["table2", "table1"]
        assert unknown == []

    def test_all_plus_explicit_name_is_deduplicated(self):
        known, __ = expand_names(["fig05", "all"])
        assert known.count("fig05") == 1
        assert known[0] == "fig05"

    def test_unknown_names_reported_in_order(self):
        known, unknown = expand_names(["nope", "table1", "wat"])
        assert known == ["table1"]
        assert unknown == ["nope", "wat"]


class TestRunOne:
    def test_success_artifact_shape(self):
        artifact = run_one("table1")
        assert artifact["schema"] == ARTIFACT_SCHEMA
        assert artifact["ok"] is True
        assert "8096 MB" in artifact["report"]
        assert artifact["error"] is None
        assert artifact["wall_time_sec"] >= 0.0
        assert artifact["telemetry"]["schema"] == "repro.telemetry/1"

    def test_failure_is_captured_not_raised(self, crashy):
        artifact = run_one(crashy)
        assert artifact["ok"] is False
        assert "RuntimeError: stub experiment crash" in artifact["error"]
        assert "Traceback" in artifact["traceback"]


class TestCrashResilience:
    def test_batch_continues_past_crash_and_exits_nonzero(self, crashy, tmp_path):
        out = io.StringIO()
        code = run_campaign(
            [crashy, "table1"], jobs=1, json_dir=str(tmp_path), out=out
        )
        text = out.getvalue()
        assert code == 1
        assert "!! crashy failed: RuntimeError: stub experiment crash" in text
        assert "8096 MB" in text  # table1 still ran
        assert "FAILED: crashy" in text
        # ... and the failure is diagnosable from the JSON artifact.
        artifact = json.loads((tmp_path / "crashy.json").read_text())
        assert artifact["ok"] is False
        assert "stub experiment crash" in artifact["error"]

    def test_cli_run_experiments_keeps_going(self, crashy):
        out = io.StringIO()
        assert run_experiments([crashy, "table2"], out=out) == 1
        assert "vdis2" in out.getvalue()

    def test_unknown_jobs_rejected(self):
        with pytest.raises(CampaignError):
            run_campaign(["table1"], jobs=0)

    def test_unexpanded_unknown_name_rejected(self):
        with pytest.raises(CampaignError):
            run_campaign(["not-an-experiment"])


class TestWatchdog:
    def test_hung_driver_killed_and_reported_like_a_crash(self, hangy):
        artifact = run_one_with_timeout(hangy, timeout_sec=0.5)
        assert artifact["schema"] == ARTIFACT_SCHEMA
        assert artifact["ok"] is False
        assert "TimeoutError" in artifact["error"]
        assert "watchdog killed 'hangy'" in artifact["error"]
        assert artifact["wall_time_sec"] >= 0.5

    def test_fast_experiment_unaffected_by_watchdog(self):
        artifact = run_one_with_timeout("table1", timeout_sec=30.0)
        assert artifact["ok"] is True
        assert "8096 MB" in artifact["report"]

    def test_worker_death_reported_not_raised(self, monkeypatch):
        monkeypatch.setitem(
            REGISTRY,
            "diehard",
            ExperimentSpec("diehard", "kills its worker", _die_hard),
        )
        artifact = run_one_with_timeout("diehard", timeout_sec=30.0)
        assert artifact["ok"] is False
        assert "ChildCrash" in artifact["error"]

    def test_batch_continues_past_timeout_and_exits_nonzero(
        self, hangy, tmp_path
    ):
        out = io.StringIO()
        code = run_campaign(
            [hangy, "table1"],
            json_dir=str(tmp_path),
            out=out,
            timeout_sec=0.5,
        )
        text = out.getvalue()
        assert code == 1
        assert "!! hangy failed: TimeoutError" in text
        assert "8096 MB" in text  # table1 still ran
        artifact = json.loads((tmp_path / "hangy.json").read_text())
        assert artifact["ok"] is False
        assert "watchdog killed" in artifact["error"]

    def test_cli_flag_threads_through(self, hangy):
        out = io.StringIO()
        assert run_experiments([hangy], out=out, timeout_sec=0.5) == 1
        assert "watchdog killed" in out.getvalue()

    def test_invalid_timeout_rejected(self):
        with pytest.raises(CampaignError):
            run_campaign(["table1"], timeout_sec=0.0)
        with pytest.raises(CampaignError):
            run_one_with_timeout("table1", timeout_sec=-1.0)


class TestParallelDeterminism:
    def test_parallel_reports_byte_identical_to_serial(self, tmp_path):
        serial_dir, parallel_dir = str(tmp_path / "s"), str(tmp_path / "p")
        serial_out, parallel_out = io.StringIO(), io.StringIO()
        assert run_campaign(FAST, jobs=1, json_dir=serial_dir, out=serial_out) == 0
        assert run_campaign(FAST, jobs=2, json_dir=parallel_dir, out=parallel_out) == 0
        for name in FAST:
            serial = json.loads(open(os.path.join(serial_dir, f"{name}.json")).read())
            parallel = json.loads(open(os.path.join(parallel_dir, f"{name}.json")).read())
            assert parallel["report"] == serial["report"]
            assert parallel["telemetry"] == serial["telemetry"]

    def test_parallel_stdout_streams_in_request_order(self):
        out = io.StringIO()
        assert run_campaign(FAST, jobs=2, out=out) == 0
        text = out.getvalue()
        positions = [text.index(f"== {name}:") for name in FAST]
        assert positions == sorted(positions)


class TestAggregation:
    def test_summary_shape(self, crashy, tmp_path):
        run_campaign(
            ["table1", crashy], jobs=1, json_dir=str(tmp_path), out=io.StringIO()
        )
        summary = aggregate_dir(str(tmp_path))
        assert summary["schema"] == CAMPAIGN_SCHEMA
        assert summary["num_experiments"] == 2
        assert summary["num_failed"] == 1
        assert summary["failed"] == ["crashy"]
        by_name = {e["name"]: e for e in summary["experiments"]}
        assert by_name["table1"]["ok"] is True
        assert len(by_name["table1"]["report_sha256"]) == 64
        assert by_name["crashy"]["error"] is not None

    def test_summarize_writes_output_file_and_skips_it_on_reload(self, tmp_path):
        run_campaign(["table1"], jobs=1, json_dir=str(tmp_path), out=io.StringIO())
        output = str(tmp_path / "campaign.json")
        out = io.StringIO()
        assert summarize_campaign(str(tmp_path), output=output, out=out) == 0
        assert "campaign summary written" in out.getvalue()
        summary = json.loads(open(output).read())
        assert summary["num_experiments"] == 1
        # The summary in the same directory is not mistaken for an artifact.
        assert len(load_artifacts(str(tmp_path))) == 1

    def test_empty_directory_is_an_error(self, tmp_path):
        with pytest.raises(CampaignError):
            aggregate_dir(str(tmp_path))
        assert summarize_campaign(str(tmp_path), out=io.StringIO()) == 2

    def test_missing_directory_is_an_error(self):
        with pytest.raises(CampaignError):
            aggregate_dir("/definitely/not/here")
