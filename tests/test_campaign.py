"""Tests for the campaign runner: registry, fan-out, artifacts, summary."""

import io
import json
import os
import signal

import pytest

from repro.experiments.campaign import (
    ARTIFACT_SCHEMA,
    CAMPAIGN_SCHEMA,
    CampaignError,
    aggregate_dir,
    artifact_filename,
    experiment_stream_dir,
    load_artifacts,
    run_campaign,
    run_one,
    run_one_with_timeout,
    scan_artifacts,
    summarize_campaign,
    write_artifact,
)
from repro.experiments.registry import (
    REGISTRY,
    ExperimentSpec,
    expand_names,
    experiment_names,
)
from repro.cli import run_experiments

#: Cheap experiments for runner tests (sub-second each).
FAST = ["table1", "table2", "fig07"]


def _crash():
    raise RuntimeError("stub experiment crash")


def _hang():
    import time

    time.sleep(60)
    return "never reached"


#: Nap long enough that serialized watchdog execution is unambiguous.
NAP_SEC = 0.4


def _nap():
    import time

    time.sleep(NAP_SEC)
    return "napped\n"


def _die_hard():
    os._exit(3)


def _ignore_sigterm_and_hang():
    import time

    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    time.sleep(600)
    return "never reached"


@pytest.fixture
def crashy(monkeypatch):
    """Temporarily register a deterministic crashing experiment."""
    monkeypatch.setitem(
        REGISTRY, "crashy", ExperimentSpec("crashy", "always fails", _crash)
    )
    return "crashy"


@pytest.fixture
def hangy(monkeypatch):
    """Temporarily register a hanging experiment (watchdog fodder).

    The watchdog forks its child, which inherits the patched registry.
    """
    monkeypatch.setitem(
        REGISTRY, "hangy", ExperimentSpec("hangy", "never returns", _hang)
    )
    return "hangy"


class TestExpandNames:
    def test_all_expands_in_registry_order(self):
        known, unknown = expand_names(["all"])
        assert known == experiment_names()
        assert unknown == []

    def test_duplicates_run_once_keeping_first_position(self):
        known, unknown = expand_names(["table2", "table1", "table2"])
        assert known == ["table2", "table1"]
        assert unknown == []

    def test_all_plus_explicit_name_is_deduplicated(self):
        known, __ = expand_names(["fig05", "all"])
        assert known.count("fig05") == 1
        assert known[0] == "fig05"

    def test_unknown_names_reported_in_order(self):
        known, unknown = expand_names(["nope", "table1", "wat"])
        assert known == ["table1"]
        assert unknown == ["nope", "wat"]


class TestRunOne:
    def test_success_artifact_shape(self):
        artifact = run_one("table1")
        assert artifact["schema"] == ARTIFACT_SCHEMA
        assert artifact["ok"] is True
        assert "8096 MB" in artifact["report"]
        assert artifact["error"] is None
        assert artifact["wall_time_sec"] >= 0.0
        assert artifact["telemetry"]["schema"] == "repro.telemetry/1"

    def test_failure_is_captured_not_raised(self, crashy):
        artifact = run_one(crashy)
        assert artifact["ok"] is False
        assert "RuntimeError: stub experiment crash" in artifact["error"]
        assert "Traceback" in artifact["traceback"]


class TestCrashResilience:
    def test_batch_continues_past_crash_and_exits_nonzero(self, crashy, tmp_path):
        out = io.StringIO()
        code = run_campaign(
            [crashy, "table1"], jobs=1, json_dir=str(tmp_path), out=out
        )
        text = out.getvalue()
        assert code == 1
        assert "!! crashy failed: RuntimeError: stub experiment crash" in text
        assert "8096 MB" in text  # table1 still ran
        assert "FAILED: crashy" in text
        # ... and the failure is diagnosable from the JSON artifact.
        artifact = json.loads((tmp_path / "crashy.json").read_text())
        assert artifact["ok"] is False
        assert "stub experiment crash" in artifact["error"]

    def test_cli_run_experiments_keeps_going(self, crashy):
        out = io.StringIO()
        assert run_experiments([crashy, "table2"], out=out) == 1
        assert "vdis2" in out.getvalue()

    def test_unknown_jobs_rejected(self):
        with pytest.raises(CampaignError):
            run_campaign(["table1"], jobs=0)

    def test_unexpanded_unknown_name_rejected(self):
        with pytest.raises(CampaignError):
            run_campaign(["not-an-experiment"])


class TestWatchdog:
    def test_hung_driver_killed_and_reported_like_a_crash(self, hangy):
        artifact = run_one_with_timeout(hangy, timeout_sec=0.5)
        assert artifact["schema"] == ARTIFACT_SCHEMA
        assert artifact["ok"] is False
        assert "TimeoutError" in artifact["error"]
        assert "watchdog killed 'hangy'" in artifact["error"]
        assert artifact["wall_time_sec"] >= 0.5

    def test_fast_experiment_unaffected_by_watchdog(self):
        artifact = run_one_with_timeout("table1", timeout_sec=30.0)
        assert artifact["ok"] is True
        assert "8096 MB" in artifact["report"]

    def test_worker_death_reported_not_raised(self, monkeypatch):
        monkeypatch.setitem(
            REGISTRY,
            "diehard",
            ExperimentSpec("diehard", "kills its worker", _die_hard),
        )
        artifact = run_one_with_timeout("diehard", timeout_sec=30.0)
        assert artifact["ok"] is False
        assert "ChildCrash" in artifact["error"]

    def test_batch_continues_past_timeout_and_exits_nonzero(
        self, hangy, tmp_path
    ):
        out = io.StringIO()
        code = run_campaign(
            [hangy, "table1"],
            json_dir=str(tmp_path),
            out=out,
            timeout_sec=0.5,
        )
        text = out.getvalue()
        assert code == 1
        assert "!! hangy failed: TimeoutError" in text
        assert "8096 MB" in text  # table1 still ran
        artifact = json.loads((tmp_path / "hangy.json").read_text())
        assert artifact["ok"] is False
        assert "watchdog killed" in artifact["error"]

    def test_cli_flag_threads_through(self, hangy):
        out = io.StringIO()
        assert run_experiments([hangy], out=out, timeout_sec=0.5) == 1
        assert "watchdog killed" in out.getvalue()

    def test_invalid_timeout_rejected(self):
        with pytest.raises(CampaignError):
            run_campaign(["table1"], timeout_sec=0.0)
        with pytest.raises(CampaignError):
            run_one_with_timeout("table1", timeout_sec=-1.0)
        with pytest.raises(CampaignError):
            run_one_with_timeout("table1", timeout_sec=1.0, grace_sec=0.0)

    def test_sigterm_ignoring_child_is_escalated_to_sigkill(
        self, monkeypatch
    ):
        """terminate() alone used to hang the campaign forever here."""
        monkeypatch.setitem(
            REGISTRY,
            "stubborn",
            ExperimentSpec(
                "stubborn", "ignores SIGTERM", _ignore_sigterm_and_hang
            ),
        )
        artifact = run_one_with_timeout(
            "stubborn", timeout_sec=0.5, grace_sec=0.4
        )
        assert artifact["ok"] is False
        assert "TimeoutError" in artifact["error"]
        # The whole escalation (timeout + grace + SIGKILL) stayed
        # bounded — nowhere near the child's 600s sleep.
        assert artifact["wall_time_sec"] < 10.0

    def test_watchdog_workers_run_concurrently(self, monkeypatch, tmp_path):
        """--jobs N with --timeout-sec is no longer serialized."""
        import time as _time

        from repro.util import elapsed_since, wall_clock

        monkeypatch.setitem(
            REGISTRY, "nap1", ExperimentSpec("nap1", "naps", _nap)
        )
        monkeypatch.setitem(
            REGISTRY, "nap2", ExperimentSpec("nap2", "naps", _nap)
        )
        start = wall_clock()
        out = io.StringIO()
        code = run_campaign(
            ["nap1", "nap2"],
            jobs=2,
            json_dir=str(tmp_path),
            out=out,
            timeout_sec=30.0,
        )
        elapsed = elapsed_since(start)
        assert code == 0
        assert elapsed < 2 * NAP_SEC * 0.9, (
            f"watchdog workers ran serially ({elapsed:.2f}s)"
        )
        # Request order is preserved in the streamed output.
        text = out.getvalue()
        assert text.index("== nap1:") < text.index("== nap2:")

    def test_parallel_watchdog_artifacts_match_serial(self, tmp_path):
        serial_dir, parallel_dir = str(tmp_path / "s"), str(tmp_path / "p")
        assert run_campaign(
            FAST, jobs=1, json_dir=serial_dir, out=io.StringIO(),
            timeout_sec=30.0,
        ) == 0
        assert run_campaign(
            FAST, jobs=3, json_dir=parallel_dir, out=io.StringIO(),
            timeout_sec=30.0,
        ) == 0
        for name in FAST:
            serial = json.loads(
                open(os.path.join(serial_dir, f"{name}.json")).read()
            )
            parallel = json.loads(
                open(os.path.join(parallel_dir, f"{name}.json")).read()
            )
            assert parallel["report"] == serial["report"]
            assert parallel["telemetry"] == serial["telemetry"]

    def test_parallel_watchdog_crash_and_timeout_reported(
        self, hangy, monkeypatch, tmp_path
    ):
        monkeypatch.setitem(
            REGISTRY,
            "diehard",
            ExperimentSpec("diehard", "kills its worker", _die_hard),
        )
        out = io.StringIO()
        # hangy sleeps forever, so the timeout arm fires regardless;
        # the budget is generous so table1 never times out under load.
        code = run_campaign(
            ["diehard", "table1", hangy],
            jobs=2,
            json_dir=str(tmp_path),
            out=out,
            timeout_sec=5.0,
        )
        assert code == 1
        text = out.getvalue()
        assert "ChildCrash" in text
        assert "watchdog killed 'hangy'" in text
        assert "8096 MB" in text  # table1 still ran


class TestParallelDeterminism:
    def test_parallel_reports_byte_identical_to_serial(self, tmp_path):
        serial_dir, parallel_dir = str(tmp_path / "s"), str(tmp_path / "p")
        serial_out, parallel_out = io.StringIO(), io.StringIO()
        assert run_campaign(FAST, jobs=1, json_dir=serial_dir, out=serial_out) == 0
        assert run_campaign(FAST, jobs=2, json_dir=parallel_dir, out=parallel_out) == 0
        for name in FAST:
            serial = json.loads(open(os.path.join(serial_dir, f"{name}.json")).read())
            parallel = json.loads(open(os.path.join(parallel_dir, f"{name}.json")).read())
            assert parallel["report"] == serial["report"]
            assert parallel["telemetry"] == serial["telemetry"]

    def test_parallel_stdout_streams_in_request_order(self):
        out = io.StringIO()
        assert run_campaign(FAST, jobs=2, out=out) == 0
        text = out.getvalue()
        positions = [text.index(f"== {name}:") for name in FAST]
        assert positions == sorted(positions)


class TestAggregation:
    def test_summary_shape(self, crashy, tmp_path):
        run_campaign(
            ["table1", crashy], jobs=1, json_dir=str(tmp_path), out=io.StringIO()
        )
        summary = aggregate_dir(str(tmp_path))
        assert summary["schema"] == CAMPAIGN_SCHEMA
        assert summary["num_experiments"] == 2
        assert summary["num_failed"] == 1
        assert summary["failed"] == ["crashy"]
        by_name = {e["name"]: e for e in summary["experiments"]}
        assert by_name["table1"]["ok"] is True
        assert len(by_name["table1"]["report_sha256"]) == 64
        assert by_name["crashy"]["error"] is not None

    def test_summarize_writes_output_file_and_skips_it_on_reload(self, tmp_path):
        run_campaign(["table1"], jobs=1, json_dir=str(tmp_path), out=io.StringIO())
        output = str(tmp_path / "campaign.json")
        out = io.StringIO()
        assert summarize_campaign(str(tmp_path), output=output, out=out) == 0
        assert "campaign summary written" in out.getvalue()
        summary = json.loads(open(output).read())
        assert summary["num_experiments"] == 1
        # The summary in the same directory is not mistaken for an artifact.
        assert len(load_artifacts(str(tmp_path))) == 1

    def test_empty_directory_is_an_error(self, tmp_path):
        with pytest.raises(CampaignError):
            aggregate_dir(str(tmp_path))
        assert summarize_campaign(str(tmp_path), out=io.StringIO()) == 2

    def test_missing_directory_is_an_error(self):
        with pytest.raises(CampaignError):
            aggregate_dir("/definitely/not/here")


class TestArtifactFilenames:
    def test_clean_names_keep_plain_filenames(self):
        assert artifact_filename("table1") == "table1.json"
        assert (
            artifact_filename("chaos@faults.uniform_rate=0.5")
            == "chaos@faults.uniform_rate=0.5.json"
        )

    def test_sanitized_names_cannot_collide(self):
        """Regression: 'a/b' and 'a_b' used to map to the same file."""
        assert artifact_filename("a/b") != artifact_filename("a_b")
        assert artifact_filename("a/b") != artifact_filename("a:b")
        assert artifact_filename("").startswith("experiment-")

    def test_sanitized_filename_is_deterministic(self):
        assert artifact_filename("a/b") == artifact_filename("a/b")

    def test_colliding_artifacts_both_survive_on_disk(self, tmp_path):
        for name in ("a/b", "a_b"):
            write_artifact(
                str(tmp_path),
                {
                    "schema": ARTIFACT_SCHEMA,
                    "name": name,
                    "ok": True,
                    "report": name,
                    "error": None,
                    "wall_time_sec": 0.0,
                    "telemetry": {},
                },
            )
        artifacts, corrupt = scan_artifacts(str(tmp_path))
        assert corrupt == []
        assert sorted(a["name"] for a in artifacts) == ["a/b", "a_b"]


def _chatty():
    from repro.telemetry.recorder import current_recorder

    recorder = current_recorder()
    for tick in range(40):
        recorder.record("sys.llc_misses_per_tick", tick, float(tick) * 2.0)
    recorder.inc("kyoto.samples", 40)
    return "chatty ran\n"


@pytest.fixture
def chatty(monkeypatch):
    """Stub experiment that records a 40-point series."""
    monkeypatch.setitem(
        REGISTRY, "chatty", ExperimentSpec("chatty", "records points", _chatty)
    )
    return "chatty"


class TestStreamingCampaign:
    def test_run_one_streams_full_resolution(self, chatty, tmp_path):
        from repro.telemetry.stream import read_stream

        stream_dir = str(tmp_path / "streams")
        artifact = run_one(chatty, stream_dir=stream_dir)
        assert artifact["ok"] is True
        stanza = artifact["stream"]
        assert stanza["points_streamed"] == 40
        assert stanza["chunks"] >= 1
        assert stanza["directory"] == "chatty"
        data = read_stream(experiment_stream_dir(stream_dir, chatty))
        assert data.clean and data.finalized
        series = data.series["sys.llc_misses_per_tick"]
        assert series.ticks == list(range(40))
        assert series.values == [float(t) * 2.0 for t in range(40)]
        assert data.counters["kyoto.samples"] == 40.0

    def test_stream_survives_recorder_reservoir(self, chatty, tmp_path):
        # The artifact's telemetry copy is reservoir-bounded; the stream
        # must not be.
        from repro.telemetry.stream import read_stream

        stream_dir = str(tmp_path / "streams")
        artifact = run_one(chatty, stream_dir=stream_dir)
        artifact_series = artifact["telemetry"]["series"][
            "sys.llc_misses_per_tick"
        ]
        stream_series = read_stream(
            experiment_stream_dir(stream_dir, chatty)
        ).series["sys.llc_misses_per_tick"]
        assert artifact_series["offered"] == 40
        assert len(stream_series.ticks) == 40

    def test_reused_stream_dir_fails_gracefully(self, chatty, tmp_path):
        stream_dir = str(tmp_path / "streams")
        assert run_one(chatty, stream_dir=stream_dir)["ok"] is True
        again = run_one(chatty, stream_dir=stream_dir)
        assert again["ok"] is False
        assert "StreamError" in again["error"]

    def test_campaign_stream_dir_threads_through(self, chatty, tmp_path):
        json_dir = str(tmp_path / "json")
        stream_dir = str(tmp_path / "streams")
        code = run_campaign(
            [chatty, "table1"],
            jobs=1,
            json_dir=json_dir,
            stream_dir=stream_dir,
            out=io.StringIO(),
        )
        assert code == 0
        assert sorted(os.listdir(stream_dir)) == ["chatty", "table1"]
        artifact = json.loads(
            open(os.path.join(json_dir, "chatty.json")).read()
        )
        assert artifact["stream"]["points_streamed"] == 40

    def test_parallel_streams_match_serial(self, chatty, tmp_path):
        from repro.telemetry.stream import read_stream

        def run(jobs, tag):
            stream_dir = str(tmp_path / tag)
            assert run_campaign(
                [chatty], jobs=jobs, stream_dir=stream_dir, out=io.StringIO()
            ) == 0
            return read_stream(experiment_stream_dir(stream_dir, chatty))

        serial = run(1, "s")
        parallel = run(2, "p")
        assert serial.series.keys() == parallel.series.keys()
        for name in serial.series:
            assert serial.series[name].ticks == parallel.series[name].ticks
            assert serial.series[name].values == parallel.series[name].values

    def test_watchdog_path_streams_too(self, chatty, tmp_path):
        from repro.telemetry.stream import read_stream

        stream_dir = str(tmp_path / "streams")
        artifact = run_one_with_timeout(
            chatty, timeout_sec=30.0, stream_dir=stream_dir
        )
        assert artifact["ok"] is True
        assert artifact["stream"]["points_streamed"] == 40
        data = read_stream(experiment_stream_dir(stream_dir, chatty))
        assert data.finalized


class TestAtomicArtifacts:
    def test_write_leaves_no_temp_files(self, tmp_path):
        path = write_artifact(
            str(tmp_path), run_one("table1")
        )
        assert os.path.basename(path) == "table1.json"
        assert sorted(os.listdir(str(tmp_path))) == ["table1.json"]

    def test_corrupt_artifact_reported_not_fatal(self, tmp_path):
        run_campaign(
            ["table1"], jobs=1, json_dir=str(tmp_path), out=io.StringIO()
        )
        (tmp_path / "torn.json").write_text('{"schema": "repro.artifact/1", ')
        # load_artifacts no longer aborts the whole directory...
        assert len(load_artifacts(str(tmp_path))) == 1
        # ...scan reports the damage...
        artifacts, corrupt = scan_artifacts(str(tmp_path))
        assert [a["name"] for a in artifacts] == ["table1"]
        assert corrupt == ["torn.json"]
        # ...and aggregation surfaces it in the summary + exit code.
        summary = aggregate_dir(str(tmp_path))
        assert summary["corrupt_artifacts"] == ["torn.json"]
        assert summary["num_experiments"] == 1
        assert summarize_campaign(str(tmp_path), out=io.StringIO()) == 1

    def test_directory_of_only_corrupt_files_is_an_error(self, tmp_path):
        (tmp_path / "torn.json").write_text("{")
        with pytest.raises(CampaignError):
            load_artifacts(str(tmp_path))
        with pytest.raises(CampaignError):
            aggregate_dir(str(tmp_path))
