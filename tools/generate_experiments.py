#!/usr/bin/env python3
"""Regenerate EXPERIMENTS.md by running every experiment driver.

Usage::

    python tools/generate_experiments.py [output_path]

Runs all table/figure reproductions at the benchmark parameters and
writes the paper-vs-measured record.  Takes a few minutes.
"""

from __future__ import annotations

import sys
import time

from repro.analysis.calibration import format_calibration, run_calibration
from repro.experiments import (
    fig01, fig02, fig03, fig04, fig05, fig06,
    fig07, fig08, fig09, fig10, fig11, fig12, tables,
)

HEADER = """# EXPERIMENTS — paper vs. measured

Every table and figure of *"Mitigating performance unpredictability in
the IaaS using the Kyoto principle"* (Tchana et al., Middleware 2016),
reproduced on the simulation substrate described in DESIGN.md.

Absolute numbers are simulator units and are **not** expected to match
the authors' testbed; the *shape* claims (who wins, orderings, linearity,
crossovers, near-zero overheads) are the reproduction targets and each
section states whether they hold.  Regenerate this file with
`python tools/generate_experiments.py`.
"""


def section(title: str, paper: str, measured: str, verdict: str) -> str:
    return (
        f"\n## {title}\n\n"
        f"**Paper:** {paper}\n\n"
        f"**Measured:**\n\n```\n{measured}\n```\n\n"
        f"**Verdict:** {verdict}\n"
    )


def main() -> None:
    out_path = sys.argv[1] if len(sys.argv) > 1 else "EXPERIMENTS.md"
    parts = [HEADER]
    start = time.time()

    parts.append(section(
        "Table 1 — experimental machine",
        "Dell / Xeon E5-1603 v3: 8096 MB RAM, L1 32K+32K 8-way, L2 256K "
        "8-way, LLC 10 MB 20-way, 1 socket x 4 cores.",
        tables.format_table1(tables.run_table1()),
        "Exact match (the machine model encodes Table 1 verbatim).",
    ))

    parts.append(section(
        "Table 2 — experimental VMs",
        "vsen1..3 = gcc, omnetpp, soplex; vdis1..3 = lbm, blockie, mcf.",
        tables.format_table2(tables.run_table2()),
        "Exact match.",
    ))

    r1 = fig01.run(warmup_ticks=25, measure_ticks=90)
    parts.append(section(
        "Fig 1 — LLC contention impact matrix",
        "C1 representatives agnostic to everything; C2/C3 severely hurt "
        "by C2/C3 disruptors; parallel execution far worse (up to ~70%) "
        "than alternative (~13%).",
        fig01.format_report(r1),
        f"Shape holds: C1 rows/columns ~0; C2-parallel "
        f"{r1.of(2, 2, 'parallel'):.0f}% vs C2-alternative "
        f"{r1.of(2, 2, 'alternative'):.0f}%; combined >= parallel.",
    ))

    r2 = fig02.run(num_ticks=21)
    parts.append(section(
        "Fig 2 — LLC misses per tick (v2_rep)",
        "Alone: misses only in the first tick (data loading). "
        "Alternative: zigzag — first tick of each slice reloads evicted "
        "data. Parallel: persistently high miss rate.",
        fig02.format_report(r2),
        "Shape holds exactly (loading spike, slice-aligned zigzag, "
        "sustained parallel misses).",
    ))

    r3 = fig03.run(caps=(0, 20, 40, 60, 80, 100), warmup_ticks=25,
                   measure_ticks=90)
    worst = max(series[-1] for series in r3.degradation.values())
    parts.append(section(
        "Fig 3 — the processor is a good lever",
        "Each vsen's degradation increases linearly with vdis1's "
        "computing capacity, reaching ~15-23% at full power.",
        fig03.format_report(r3),
        f"Shape holds: monotone, near-linear growth per VM; max "
        f"degradation at full power {worst:.0f}%.",
    ))

    r4 = fig04.run()
    parts.append(section(
        "Fig 4 — equation 1 vs LLCM",
        "o1=(blockie,lbm,mcf,soplex,milc,omnetpp,gcc,xalan,astar,bzip); "
        "o2=(milc,lbm,soplex,mcf,blockie,gcc,...); "
        "o3=(lbm,blockie,milc,mcf,soplex,gcc,...); o3 closer to o1 "
        "(Kendall tau).",
        fig04.format_report(r4),
        f"All three orderings match the paper exactly; "
        f"tau(o1,o2)={r4.comparison.tau_llcm:.3f} < "
        f"tau(o1,o3)={r4.comparison.tau_equation1:.3f} — equation 1 wins, "
        f"as in the paper.",
    ))

    r5 = fig05.run(warmup_ticks=30, measure_ticks=200)
    parts.append(section(
        "Fig 5 — KS4Xen effectiveness (booked llc_cap 250k)",
        "vsen1's performance almost kept against each disruptor; "
        "disruptors receive far more punishments; vdis1's quota "
        "oscillates and its CPU is taken away for long periods.",
        fig05.format_report(r5),
        f"Shape holds: normalized perf "
        f"{min(r5.normalized_perf.values()):.2f}-"
        f"{max(r5.normalized_perf.values()):.2f} under KS4Xen (XCS: "
        f"{min(r5.normalized_perf_xcs.values()):.2f}-"
        f"{max(r5.normalized_perf_xcs.values()):.2f}); zero punishments "
        f"for vsen1; quota zigzag reproduced. Residual gap to the "
        f"paper's ~1.0 comes from pollution the disruptor is still "
        f"*allowed* to emit at 250k.",
    ))

    r6 = fig06.run(warmup_ticks=25, measure_ticks=120)
    parts.append(section(
        "Fig 6 — KS4Xen scalability (1..15 disturbers @50k)",
        "vsen1's performance kept (~1.0) whatever the number of "
        "colocated disturbers.",
        fig06.format_report(r6),
        f"Shape holds: perf stays in "
        f"[{min(r6.normalized_perf):.2f}, {max(r6.normalized_perf):.2f}] "
        f"with no collapse; mild droop at 13+ disturbers reflects their "
        f"aggregate 50k permits.",
    ))

    r7 = fig07.run(num_ticks=60)
    parts.append(section(
        "Fig 7 — Pisces architecture",
        "Structural diagram: enclaves own disjoint cores/memory, no "
        "hypervisor multiplexing; the LLC remains shared.",
        fig07.format_report(r7),
        "Structural properties verified: disjoint dedicated cores, 100% "
        "duty cycles, shared LLC occupancy across enclaves.",
    ))

    r8 = fig08.run()
    parts.append(section(
        "Fig 8 — comparison with Pisces",
        "Pisces colocated ~24% slower than alone; with Kyoto "
        "(KS4Pisces) predictability restored.",
        fig08.format_report(r8),
        f"Shape holds: Pisces interference "
        f"{r8.pisces_interference_percent:.1f}% (paper ~24%), KS4Pisces "
        f"{r8.ks4pisces_interference_percent:.1f}%.",
    ))

    r9 = fig09.run()
    parts.append(section(
        "Fig 9 — vCPU migration cost",
        "Periodic socket migration degrades apps unequally; "
        "memory-intensive ones (milc, omnetpp, lbm) worst, up to ~12%.",
        fig09.format_report(r9),
        f"Shape holds: memory-bound apps worst "
        f"(milc {r9.degradation['milc']:.1f}%, lbm "
        f"{r9.degradation['lbm']:.1f}%), bzip least "
        f"({r9.degradation['bzip']:.1f}%).",
    ))

    r10 = fig10.run(warmup_ticks=30, sample_ticks=6)
    parts.append(section(
        "Fig 10 — when isolation can be skipped",
        "hmmer isolated vs not: almost nil difference; bzip among hmmer "
        "co-runners likewise.",
        fig10.format_report(r10),
        f"Shape holds: hmmer gap {r10.case('hmmer').absolute_gap:,.0f} "
        f"miss/ms and quiet-corunner bzip gap "
        f"{r10.case('bzip').absolute_gap:,.0f} are negligible on the "
        f"figure's scale, while bzip among disruptors diverges by "
        f"{r10.case('bzip-vs-disruptors').relative_gap_percent:.0f}%.",
    ))

    r11 = fig11.run(warmup_ticks=25, measure_ticks=90)
    parts.append(section(
        "Fig 11 — socket dedication can be avoided",
        "Equation-1 values with and without dedication track closely; "
        "the aggressiveness ordering is preserved.",
        fig11.format_report(r11),
        f"Shape holds: ordering agreement Kendall tau = {r11.tau:.3f}; "
        f"quiet apps identical, sensitive apps inflate without "
        f"dedication (the paper's residual caveat).",
    ))

    r12 = fig12.run()
    parts.append(section(
        "Fig 12 — KS4Xen overhead",
        "XCS and KS4Xen execution-time curves coincide across time "
        "slices: the monitoring overhead is near zero.",
        fig12.format_report(r12),
        f"Shape holds: max overhead {r12.max_overhead_percent:.2f}% "
        f"across 1-30 ms scheduling periods.",
    ))

    calibration = run_calibration()
    parts.append(section(
        "Calibration audit — workload profiles",
        "(not a paper artefact) the synthetic SPEC CPU2006 profiles must "
        "hit their documented solo LLCM/equation-1 targets, which encode "
        "the paper's o2/o3 orderings.",
        format_calibration(calibration),
        f"Max target error {calibration.max_error_percent:.1f}%; both "
        f"solo orderings reproduced.",
    ))

    parts.append(
        "\n## Ablations (beyond the paper)\n\n"
        "Run `pytest benchmarks/ --benchmark-only -s -k ablation` for the "
        "design-choice studies: pollution-quota bank size, monitoring "
        "period, replacement-policy scan resistance, occupancy-model vs "
        "set-associative cross-validation, and the enforcement shoot-out "
        "(XCS / page coloring / UCP / MemGuard / Kyoto).\n"
    )

    elapsed = time.time() - start
    parts.append(
        f"\n---\n\nGenerated in {elapsed:.0f}s by "
        f"`tools/generate_experiments.py`.\n"
    )
    with open(out_path, "w") as handle:
        handle.write("".join(parts))
    print(f"wrote {out_path} in {elapsed:.0f}s")


if __name__ == "__main__":
    main()
