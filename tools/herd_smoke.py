#!/usr/bin/env python3
"""CI smoke test for the herd: kill a campaign mid-run, resume, compare.

Usage::

    PYTHONPATH=src python tools/herd_smoke.py [scratch_dir]

Runs the herd's central guarantee end-to-end against the real CLI:

1. an uninterrupted **reference** run of a small mixed campaign
   (fast registry experiments + the ``chaos_sweep.toml`` sweep grid),
2. the same campaign in a subprocess, SIGKILLed right after its first
   point completes,
3. ``repro herd resume`` on the killed campaign,
4. a byte-for-byte comparison of the two merged summaries after
   :func:`repro.herd.normalized_for_comparison` strips wall times and
   attempt bookkeeping.

Exits non-zero on any mismatch.  Journals and summaries are left in
``scratch_dir`` (default ``herd-smoke-artifacts/``) for CI upload.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time

from repro.herd import normalized_for_comparison, summary_path
from repro.herd.journal import journal_path, replay_journal
from repro.util import wall_clock

#: Fast wins first (quick kill trigger), the ~6s-per-point sweep after.
GRID = ["table1", "table2", "examples/scenarios/chaos_sweep.toml"]
JOBS = "2"
SEED = "20160101"

FIRST_DONE_TIMEOUT_SEC = 120.0
RUN_TIMEOUT_SEC = 600.0


def _herd(*args: str) -> list:
    return [sys.executable, "-m", "repro", "herd", *args]


def _run_args(json_dir: str) -> list:
    return _herd(
        "run", *GRID, "--json", json_dir, "--jobs", JOBS, "--seed", SEED,
        "--timeout-sec", "300",
    )


def _load_summary(json_dir: str) -> dict:
    with open(summary_path(json_dir), "r", encoding="utf-8") as handle:
        return json.load(handle)


def _wait_for_first_done(json_dir: str) -> None:
    path = journal_path(json_dir)
    deadline = wall_clock() + FIRST_DONE_TIMEOUT_SEC
    while wall_clock() < deadline:
        if os.path.isfile(path):
            with open(path, "r", encoding="utf-8") as handle:
                if '"event":"done"' in handle.read():
                    return
        time.sleep(0.05)
    raise SystemExit("herd-smoke: campaign never completed a first point")


def main() -> int:
    scratch = sys.argv[1] if len(sys.argv) > 1 else "herd-smoke-artifacts"
    ref_dir = os.path.join(scratch, "reference")
    chaos_dir = os.path.join(scratch, "chaos")
    os.makedirs(scratch, exist_ok=True)

    print("herd-smoke: reference run (uninterrupted)")
    subprocess.run(_run_args(ref_dir), check=True, timeout=RUN_TIMEOUT_SEC)
    reference = _load_summary(ref_dir)

    print("herd-smoke: chaos run (SIGKILL after first completed point)")
    orchestrator = subprocess.Popen(_run_args(chaos_dir))
    try:
        _wait_for_first_done(chaos_dir)
    finally:
        if orchestrator.poll() is None:
            os.kill(orchestrator.pid, signal.SIGKILL)
        orchestrator.wait(timeout=60)
    if orchestrator.returncode != -signal.SIGKILL:
        raise SystemExit(
            "herd-smoke: orchestrator was not killed mid-run "
            f"(exit {orchestrator.returncode}); grid too small?"
        )

    state = replay_journal(journal_path(chaos_dir))
    counts = state.counts()
    terminal = counts["done"] + counts["failed"] + counts["quarantined"]
    print(
        f"herd-smoke: journal at kill time: {counts['done']} done, "
        f"{terminal}/{len(state.points)} terminal"
    )
    if counts["done"] < 1 or terminal >= len(state.points):
        raise SystemExit("herd-smoke: kill did not land mid-campaign")

    print("herd-smoke: resuming the killed campaign")
    subprocess.run(
        _herd("resume", chaos_dir), check=True, timeout=RUN_TIMEOUT_SEC
    )
    resumed = _load_summary(chaos_dir)

    if normalized_for_comparison(resumed) != normalized_for_comparison(
        reference
    ):
        print("herd-smoke: FAIL — resumed summary diverges from reference")
        return 1
    print(
        "herd-smoke: OK — resumed summary matches the uninterrupted "
        f"reference across {len(resumed['herd']['points'])} points "
        f"(resumes={resumed['herd']['resumes']})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
