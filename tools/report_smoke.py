#!/usr/bin/env python3
"""CI smoke test for the reporting pipeline: sweep → stream → report.

Usage::

    PYTHONPATH=src python tools/report_smoke.py [scratch_dir]

Runs the reporting story end-to-end against the real CLI:

1. a small sweep campaign (``chaos_sweep.toml``) with ``--json`` and
   ``--stream``, producing artifacts plus full-resolution streams,
2. ``repro report`` over the output directory, twice,
3. checks that the report contains a figure-class comparison table
   pivoted on the sweep axis, that series rows came from the streams
   at full resolution, and that the two renders are **byte-identical**
   (the report is a pure function of the artifacts).

Exits non-zero on any failure.  Artifacts and reports are left in
``scratch_dir`` (default ``report-smoke-artifacts/``) for CI upload.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

SWEEP = "examples/scenarios/chaos_sweep.toml"
RUN_TIMEOUT_SEC = 600.0


def _repro(*args: str) -> list:
    return [sys.executable, "-m", "repro", *args]


def _report(out_dir: str, *extra: str) -> "subprocess.CompletedProcess":
    return subprocess.run(
        _repro("report", out_dir, *extra),
        capture_output=True,
        text=True,
        timeout=RUN_TIMEOUT_SEC,
    )


def main() -> int:
    scratch = sys.argv[1] if len(sys.argv) > 1 else "report-smoke-artifacts"
    out_dir = os.path.join(scratch, "out")
    stream_dir = os.path.join(out_dir, "streams")
    os.makedirs(scratch, exist_ok=True)

    print("report-smoke: running the sweep campaign with --stream")
    subprocess.run(
        _repro(
            "run", SWEEP, "--jobs", "2",
            "--json", out_dir, "--stream", stream_dir,
        ),
        check=True,
        timeout=RUN_TIMEOUT_SEC,
    )

    print("report-smoke: rendering the report twice (text)")
    first, second = _report(out_dir), _report(out_dir)
    for result in (first, second):
        if result.returncode != 0:
            sys.stderr.write(result.stderr)
            raise SystemExit(
                f"report-smoke: repro report exited {result.returncode}"
            )
    with open(os.path.join(scratch, "report.txt"), "w") as handle:
        handle.write(first.stdout)
    if first.stdout != second.stdout:
        raise SystemExit(
            "report-smoke: FAIL — two renders of the same artifacts differ"
        )
    if "comparison: chaos-sweep" not in first.stdout:
        raise SystemExit(
            "report-smoke: FAIL — no comparison table for the sweep:\n"
            + first.stdout
        )

    print("report-smoke: checking the JSON document")
    as_json = _report(out_dir, "--format", "json")
    if as_json.returncode != 0:
        raise SystemExit("report-smoke: JSON render failed")
    with open(os.path.join(scratch, "report.json"), "w") as handle:
        handle.write(as_json.stdout)
    document = json.loads(as_json.stdout)
    if document["schema"] != "repro.report/1":
        raise SystemExit(f"report-smoke: bad schema {document['schema']!r}")
    comparisons = [
        c for c in document["comparisons"] if c["base"] == "chaos-sweep"
    ]
    if not comparisons or len(comparisons[0]["rows"]) < 2:
        raise SystemExit("report-smoke: comparison table missing rows")
    if not comparisons[0]["metrics"]:
        raise SystemExit("report-smoke: no metric columns were selected")
    stream_rows = [
        s for s in document["series"] if s["kind"] == "stream"
    ]
    if not stream_rows:
        raise SystemExit("report-smoke: no full-resolution stream series")
    for row in stream_rows:
        if row["resolution"] != "full" or not row["clean"]:
            raise SystemExit(f"report-smoke: damaged stream series: {row}")

    axis_values = [
        row["axes"]["faults.uniform_rate"] for row in comparisons[0]["rows"]
    ]
    print(
        "report-smoke: OK — comparison over faults.uniform_rate="
        f"{axis_values} with {len(comparisons[0]['metrics'])} metrics, "
        f"{len(stream_rows)} full-resolution series, byte-identical renders"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
