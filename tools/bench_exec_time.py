#!/usr/bin/env python3
"""Micro-benchmark: chunked vs tick-by-tick execution-time protocol.

The execution-time protocol used to advance the simulation with one
``system.run_ticks(1)`` call per tick so it could check ``vm.finished``
between ticks.  The chunked protocol
(:func:`repro.scenario.protocol.execution_time_sec`) instead calls
``run_ticks_until`` once per chunk with the finish check inside the
tick loop — same stop tick, same ``finish_usec``, far fewer Python
call round-trips.

This tool measures both on the Fig 12 workload shape (two povray VMs
sharing a core) and writes ``BENCH_pr4_exec_time.json``::

    PYTHONPATH=src python tools/bench_exec_time.py [--output FILE]
"""

import argparse
import json
import sys
import time

from repro.scenario import (
    ProtocolSpec,
    ScenarioSpec,
    VmSpec,
    WorkloadSpec,
    budget_exhausted_message,
    execution_time_sec,
    materialize,
)

WORK_INSTRUCTIONS = 1.5e11
REPEATS = 3


def _spec():
    workload = WorkloadSpec(app="povray", total_instructions=WORK_INSTRUCTIONS)
    return ScenarioSpec(
        name="bench-exec-time",
        vms=(
            VmSpec(name="povray-a", workload=workload, pinned_cores=(0,)),
            VmSpec(name="povray-b", workload=workload, pinned_cores=(0,)),
        ),
        protocol=ProtocolSpec(mode="execution_time", target_vm="povray-a"),
    )


def _tick_by_tick(system, vm, max_ticks=200_000):
    while not vm.finished:
        if system.tick_index >= max_ticks:
            raise RuntimeError(budget_exhausted_message(system, vm, max_ticks))
        system.run_ticks(1)
    return vm.finish_time_usec / 1e6


def _time(fn):
    best = None
    result = None
    for _ in range(REPEATS):
        built = materialize(_spec())
        start = time.perf_counter()
        result = fn(built.system, built.vm("povray-a"))
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default="BENCH_pr4_exec_time.json")
    args = parser.parse_args(argv)

    baseline_sec, baseline_result = _time(_tick_by_tick)
    chunked_sec, chunked_result = _time(execution_time_sec)
    if baseline_result != chunked_result:
        sys.stderr.write(
            f"MISMATCH: tick-by-tick {baseline_result} != "
            f"chunked {chunked_result}\n"
        )
        return 1
    doc = {
        "schema": "repro.bench/1",
        "benchmark": "execution_time_protocol",
        "workload": f"fig12 shape: 2x povray sharing core 0, {WORK_INSTRUCTIONS:g} instructions",
        "repeats": REPEATS,
        "simulated_execution_time_sec": chunked_result,
        "tick_by_tick_wall_sec": round(baseline_sec, 4),
        "chunked_wall_sec": round(chunked_sec, 4),
        "speedup": round(baseline_sec / chunked_sec, 2),
    }
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(json.dumps(doc, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main())
