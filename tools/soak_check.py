#!/usr/bin/env python3
"""Soak acceptance check: streaming must not cost memory or drop points.

Usage::

    PYTHONPATH=src python tools/soak_check.py [scratch_dir] [--ticks N]

Runs the committed churn scenario twice through the real CLI — once
sink-less, once with ``--stream`` — and enforces the streaming sink's
two contracts on a long soak:

1. **Bounded memory**: the streaming run's peak RSS stays within 1.2x
   of the sink-less run (the sink holds one batch + one chunk, never
   the run's full series).
2. **Zero drop**: every point the sink reports streaming is read back
   from the chunk files, the stream is clean and finalized, and series
   the in-memory reservoir decimated survive on disk at full
   resolution.

Exits non-zero on any violation.  Summaries and streams are left in
``scratch_dir`` (default ``soak-check-artifacts/``) for CI upload.
"""

from __future__ import annotations

import argparse
import json
import os
import resource
import subprocess
import sys

SCENARIO = "examples/scenarios/vm_churn.toml"
RSS_BUDGET_RATIO = 1.2
RUN_TIMEOUT_SEC = 1800.0


def _serve(ticks: int, json_dir: str, stream_dir=None) -> list:
    cmd = [
        sys.executable, "-m", "repro", "serve", SCENARIO,
        "--ticks", str(ticks), "--json", json_dir,
    ]
    if stream_dir is not None:
        cmd += ["--stream", stream_dir]
    return cmd


def _run_measuring_rss(cmd: list) -> int:
    """Run ``cmd`` to completion and return its peak RSS in KiB."""
    child = subprocess.Popen(cmd)
    __, status, rusage = os.wait4(child.pid, 0)
    # Popen still expects a wait; feed it the reaped status.
    child.returncode = os.waitstatus_to_exitcode(status)
    if child.returncode != 0:
        raise SystemExit(
            f"soak-check: {' '.join(cmd)} exited {child.returncode}"
        )
    return rusage.ru_maxrss


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "scratch", nargs="?", default="soak-check-artifacts"
    )
    parser.add_argument("--ticks", type=int, default=100_000)
    args = parser.parse_args()

    from repro.telemetry import read_stream

    base_dir = os.path.join(args.scratch, "baseline")
    stream_json = os.path.join(args.scratch, "streamed")
    stream_dir = os.path.join(args.scratch, "stream")
    os.makedirs(args.scratch, exist_ok=True)

    print(f"soak-check: sink-less {args.ticks}-tick serve (baseline RSS)")
    base_rss = _run_measuring_rss(_serve(args.ticks, base_dir))

    print(f"soak-check: streaming {args.ticks}-tick serve")
    stream_rss = _run_measuring_rss(
        _serve(args.ticks, stream_json, stream_dir)
    )

    ratio = stream_rss / base_rss
    print(
        f"soak-check: peak RSS {base_rss} KiB sink-less, "
        f"{stream_rss} KiB streaming ({ratio:.3f}x)"
    )
    if ratio > RSS_BUDGET_RATIO:
        raise SystemExit(
            f"soak-check: FAIL — streaming RSS {ratio:.3f}x exceeds the "
            f"{RSS_BUDGET_RATIO}x budget"
        )

    summary_file = next(
        os.path.join(stream_json, f)
        for f in os.listdir(stream_json)
        if f.endswith(".service.json")
    )
    with open(summary_file, "r", encoding="utf-8") as handle:
        summary = json.load(handle)
    claimed = summary["stream"]["points_streamed"]

    data = read_stream(stream_dir)
    if not (data.clean and data.finalized):
        raise SystemExit(
            f"soak-check: FAIL — stream not intact "
            f"(clean={data.clean}, finalized={data.finalized})"
        )
    on_disk = sum(len(s.ticks) for s in data.series.values())
    if on_disk != claimed:
        raise SystemExit(
            f"soak-check: FAIL — sink streamed {claimed} points but "
            f"{on_disk} were read back"
        )
    if claimed == 0:
        raise SystemExit("soak-check: FAIL — the soak streamed nothing")
    for name, series in sorted(data.series.items()):
        if series.ticks != sorted(series.ticks):
            raise SystemExit(
                f"soak-check: FAIL — series {name!r} ticks not monotone"
            )

    print(
        f"soak-check: OK — {claimed} points across "
        f"{len(data.series)} series read back losslessly, "
        f"RSS {ratio:.3f}x <= {RSS_BUDGET_RATIO}x"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
