"""Kyoto: pollution permits for the shared last-level cache.

A full reproduction of *"Mitigating performance unpredictability in the
IaaS using the Kyoto principle"* (Tchana et al., Middleware 2016) as a
simulation-backed Python library:

* :mod:`repro.core` — the Kyoto contribution: pollution permits
  (``llc_cap``), equation 1, monitoring, and the KS4Xen / KS4Linux
  scheduler extensions;
* :mod:`repro.pisces` — the Pisces co-kernel substrate and KS4Pisces;
* :mod:`repro.hypervisor`, :mod:`repro.schedulers` — VMs, vCPUs, the
  virtualized machine simulation, XCS and CFS;
* :mod:`repro.cachesim`, :mod:`repro.hardware`, :mod:`repro.pmc` — the
  cache/contention substrate, machine specs and performance counters;
* :mod:`repro.workloads` — calibrated SPEC CPU2006 / blockie profiles and
  the pointer-chase micro-benchmark;
* :mod:`repro.mcsim` — the pin + McSimA+-style replay service;
* :mod:`repro.faults` — deterministic fault injection for the
  monitoring path, paired with :class:`repro.core.ResilientMonitor`
  (docs/faults.md);
* :mod:`repro.analysis`, :mod:`repro.experiments` — metrics, Kendall's
  tau, and one driver per paper figure/table.

Quickstart::

    from repro import KS4Xen, VirtualizedSystem, VmConfig, application_workload

    system = VirtualizedSystem(KS4Xen())
    sensitive = system.create_vm(VmConfig(
        name="vsen1", workload=application_workload("gcc"),
        llc_cap=250_000, pinned_cores=[0]))
    disruptor = system.create_vm(VmConfig(
        name="vdis1", workload=application_workload("lbm"),
        llc_cap=250_000, pinned_cores=[1]))
    system.run_msec(1_000)
    print(sensitive.ipc, system.scheduler.kyoto.punishments(disruptor))
"""

from .analysis import (
    degradation_percent,
    kendall_tau,
    normalized_performance,
    slowdown_percent,
)
from .core import (
    DirectPmcMonitor,
    KS4Linux,
    KS4Xen,
    KyotoEngine,
    McSimReplayMonitor,
    MonitorError,
    PollutionAccount,
    ResilientMonitor,
    SocketDedicationSampler,
    llc_cap_act,
)
from .faults import FaultPlan, FaultSpec
from .hardware import MachineSpec, numa_machine, paper_machine
from .hypervisor import VCpu, VirtualMachine, VirtualizedSystem, VmConfig
from .pisces import KS4Pisces, PiscesCoKernel
from .schedulers import CfsScheduler, CreditScheduler
from .workloads import application_workload, micro_workload, vm_workload

__version__ = "1.0.0"

__all__ = [
    "CfsScheduler",
    "CreditScheduler",
    "DirectPmcMonitor",
    "FaultPlan",
    "FaultSpec",
    "KS4Linux",
    "KS4Pisces",
    "KS4Xen",
    "KyotoEngine",
    "MachineSpec",
    "McSimReplayMonitor",
    "MonitorError",
    "PiscesCoKernel",
    "PollutionAccount",
    "ResilientMonitor",
    "SocketDedicationSampler",
    "VCpu",
    "VirtualMachine",
    "VirtualizedSystem",
    "VmConfig",
    "application_workload",
    "degradation_percent",
    "kendall_tau",
    "llc_cap_act",
    "micro_workload",
    "normalized_performance",
    "numa_machine",
    "paper_machine",
    "slowdown_percent",
    "vm_workload",
    "__version__",
]
