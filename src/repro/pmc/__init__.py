"""Hardware performance counters and perfctr-style per-vCPU virtualisation."""

from .counters import (
    COUNTER_BITS,
    COUNTER_MASK,
    CoreCounters,
    HardwareCounter,
    PmcEvent,
    delta,
)
from .perfctr import PerfctrError, PerfctrVirtualizer, VcpuPmcAccount

__all__ = [
    "COUNTER_BITS",
    "COUNTER_MASK",
    "CoreCounters",
    "HardwareCounter",
    "PerfctrError",
    "PerfctrVirtualizer",
    "PmcEvent",
    "VcpuPmcAccount",
    "delta",
]
