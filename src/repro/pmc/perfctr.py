"""perfctr-xen-style counter virtualisation.

The physical PMCs of a core count whatever runs there; to attribute events
to a *vCPU*, the hypervisor must sample the counters at every context
switch and accumulate the deltas into per-vCPU accounts.  That is what
perfctr-xen [18] does and what KS4Xen builds upon; this module reproduces
the mechanism, including wrap-aware deltas.

Usage from the hypervisor::

    virt = PerfctrVirtualizer(core_counters_by_id)
    virt.context_switch_in(vcpu_id, core_id)      # remember baseline
    ... core counters advance while the vCPU runs ...
    virt.context_switch_out(vcpu_id, core_id)     # bank the deltas

``account(vcpu_id)`` then exposes cumulative per-vCPU counts, and
``sample(vcpu_id)`` returns deltas since the previous sample — exactly the
quantities equation 1 needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from .counters import CoreCounters, PmcEvent, delta


@dataclass
class VcpuPmcAccount:
    """Cumulative virtualised counters of one vCPU."""

    vcpu_id: int
    totals: Dict[PmcEvent, int] = field(
        default_factory=lambda: {event: 0 for event in PmcEvent}
    )
    #: Values of ``totals`` at the previous monitoring sample.
    last_sample: Dict[PmcEvent, int] = field(
        default_factory=lambda: {event: 0 for event in PmcEvent}
    )

    def read(self, event: PmcEvent) -> int:
        return self.totals[event]


class PerfctrError(Exception):
    """Raised on context-switch protocol violations."""


class PerfctrVirtualizer:
    """Per-vCPU virtualisation of per-core hardware counters."""

    def __init__(self, core_counters: Dict[int, CoreCounters]) -> None:
        self._cores = core_counters
        self._accounts: Dict[int, VcpuPmcAccount] = {}
        # vcpu_id -> (core_id, {event: baseline_raw})
        self._active: Dict[int, tuple] = {}

    def account(self, vcpu_id: int) -> VcpuPmcAccount:
        """The cumulative account of ``vcpu_id`` (created on first use)."""
        if vcpu_id not in self._accounts:
            self._accounts[vcpu_id] = VcpuPmcAccount(vcpu_id)
        return self._accounts[vcpu_id]

    def retire_account(self, vcpu_id: int) -> None:
        """Drop a retired vCPU's cumulative account.

        The vCPU must already be switched out (the hypervisor deschedules
        it before retiring): retiring a still-active vCPU would silently
        lose its un-banked deltas.
        """
        if vcpu_id in self._active:
            raise PerfctrError(
                f"vCPU {vcpu_id} is still switched in; deschedule it "
                f"before retiring its account"
            )
        self._accounts.pop(vcpu_id, None)

    def context_switch_in(self, vcpu_id: int, core_id: int) -> None:
        """Record counter baselines when ``vcpu_id`` starts on ``core_id``."""
        if vcpu_id in self._active:
            raise PerfctrError(
                f"vCPU {vcpu_id} switched in twice without switching out"
            )
        baselines = self._cores[core_id].read_all()
        self._active[vcpu_id] = (core_id, baselines)

    def context_switch_out(self, vcpu_id: int) -> Dict[PmcEvent, int]:
        """Bank counter deltas when ``vcpu_id`` leaves its core."""
        try:
            core_id, baselines = self._active.pop(vcpu_id)
        except KeyError:
            raise PerfctrError(
                f"vCPU {vcpu_id} switched out but was never switched in"
            ) from None
        current = self._cores[core_id].read_all()
        account = self.account(vcpu_id)
        deltas: Dict[PmcEvent, int] = {}
        for event in PmcEvent:
            d = delta(baselines[event], current[event])
            deltas[event] = d
            account.totals[event] += d
        return deltas

    def is_running(self, vcpu_id: int) -> bool:
        """True if the vCPU is currently switched in."""
        return vcpu_id in self._active

    def flush_running(self, vcpu_id: int) -> None:
        """Bank deltas for a running vCPU without switching it out.

        Equivalent to an out+in pair; used by the periodic monitor so it
        can sample a vCPU mid-quantum.
        """
        if vcpu_id not in self._active:
            return
        core_id, __ = self._active[vcpu_id]
        self.context_switch_out(vcpu_id)
        self.context_switch_in(vcpu_id, core_id)

    def sample(self, vcpu_id: int) -> Dict[PmcEvent, int]:
        """Deltas of the cumulative account since the previous sample.

        This is the monitoring primitive: KS4Xen calls it once per
        monitoring period and feeds ``LLC_MISSES`` and
        ``UNHALTED_CORE_CYCLES`` into equation 1.
        """
        self.flush_running(vcpu_id)
        account = self.account(vcpu_id)
        deltas = {
            event: account.totals[event] - account.last_sample[event]
            for event in PmcEvent
        }
        account.last_sample = dict(account.totals)
        return deltas
