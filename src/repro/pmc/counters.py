"""Hardware performance-monitoring counters (PMCs).

Models the per-core counters Kyoto reads: ``LLC_MISSES``,
``UNHALTED_CORE_CYCLES`` and ``INSTRUCTIONS_RETIRED``.  Real counters are
fixed-width MSRs that wrap; we model 48-bit counters (the common width on
Intel parts) so that overflow handling — something perfctr-xen has to deal
with — can be exercised by tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict


class PmcEvent(Enum):
    """Counter events used by the Kyoto monitoring system."""

    LLC_MISSES = "llc_misses"
    UNHALTED_CORE_CYCLES = "unhalted_core_cycles"
    INSTRUCTIONS_RETIRED = "instructions_retired"
    LLC_REFERENCES = "llc_references"


#: Width of the modelled counters, in bits (Intel architectural PMCs).
COUNTER_BITS = 48
COUNTER_MASK = (1 << COUNTER_BITS) - 1


@dataclass
class HardwareCounter:
    """One wrapping hardware counter."""

    event: PmcEvent
    raw: int = 0

    def add(self, amount: int) -> None:
        """Increment the counter, wrapping at 2**48.

        Contract relied on by the batched tick engine: integer addition
        modulo ``2**48`` is associative, so ``add(a); add(b)`` and
        ``add(a + b)`` leave the same raw value.  Per-sub-step deltas may
        therefore be coalesced into one flush — but only between reads:
        any code that can observe ``raw`` mid-batch (a context switch
        virtualising the bank, a sampling window) must be preceded by a
        flush of the pending deltas.
        """
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        self.raw = (self.raw + amount) & COUNTER_MASK

    def read(self) -> int:
        """Current raw value."""
        return self.raw

    def write(self, value: int) -> None:
        """Set the raw value (privileged operation, used on restore)."""
        self.raw = value & COUNTER_MASK


def delta(prev_raw: int, cur_raw: int) -> int:
    """Events counted between two raw readings, wrap-aware.

    ``prev_raw`` is the earlier reading, ``cur_raw`` the later one — the
    order the sampling loop produces them.  A single wrap between the two
    samples is handled correctly; more than one wrap is indistinguishable
    from fewer events (as on real hardware).  Wrap handling lives here and
    only here; callers must never subtract raw readings directly.
    """
    return (cur_raw - prev_raw) & COUNTER_MASK


class CoreCounters:
    """The PMC bank of one physical core."""

    def __init__(self, core_id: int) -> None:
        self.core_id = core_id
        self._counters: Dict[PmcEvent, HardwareCounter] = {
            event: HardwareCounter(event) for event in PmcEvent
        }

    def add(self, event: PmcEvent, amount: int) -> None:
        """Count ``amount`` occurrences of ``event`` on this core."""
        self._counters[event].add(amount)

    def counter(self, event: PmcEvent) -> HardwareCounter:
        """The live counter object for ``event``.

        Counter objects are created once per bank and mutated in place
        (``write`` included), so hot paths may hold the reference and
        call :meth:`HardwareCounter.add` directly.
        """
        return self._counters[event]

    def read(self, event: PmcEvent) -> int:
        """Raw value of ``event``'s counter."""
        return self._counters[event].read()

    def write(self, event: PmcEvent, value: int) -> None:
        """Overwrite ``event``'s counter (context-switch restore)."""
        self._counters[event].write(value)

    def read_all(self) -> Dict[PmcEvent, int]:
        """Snapshot all counters."""
        return {event: counter.read() for event, counter in self._counters.items()}
