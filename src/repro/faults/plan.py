"""Fault plans: declarative, deterministic fault schedules.

A :class:`FaultPlan` answers one question at every registered fault
site: *does the fault fire for this decision?*  Three triggers compose,
checked in this order:

1. **burst** — once a probabilistic trigger fires, the next
   ``burst - 1`` decisions at the same site fire too (correlated
   failures: a flapping replay service, a migration storm),
2. **scheduled windows** — ``(start_tick, end_tick)`` half-open tick
   ranges in which the site always fires (reproducing one exact outage),
3. **probability** — an independent draw per decision from the plan's
   injected RNG stream.

Every draw comes from the single injected ``random.Random`` stream
(kyotolint D001/D002: no global RNG, no raw construction), so a plan
replays bit-identically given the same seed and the same decision
sequence.  Every fired fault is counted per site in :attr:`injected`
and mirrored to the ambient telemetry recorder as
``faults.injected.<site>`` — which is what lets tests reconcile the
telemetry fault counters against the plan's own ledger.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.telemetry import MetricsRecorder, current_recorder

#: Monitor read returns a stale / wrapped / garbage llc_cap_act value.
SITE_PMC_READ = "pmc.read"
#: A vCPU migration (socket dedication choreography) fails.
SITE_MIGRATION = "hypervisor.migration"
#: The replay service refuses the request outright.
SITE_REPLAY_UNAVAILABLE = "replay.unavailable"
#: The replay service answers after the monitoring deadline.
SITE_REPLAY_SLOW = "replay.slow"
#: The replay service serves a stale cached report.
SITE_REPLAY_STALE = "replay.stale"
#: The monitor raises a transient exception mid-sample.
SITE_MONITOR_EXCEPTION = "monitor.exception"

#: Every fault site the injectors know how to drive.
KNOWN_SITES: Tuple[str, ...] = (
    SITE_PMC_READ,
    SITE_MIGRATION,
    SITE_REPLAY_UNAVAILABLE,
    SITE_REPLAY_SLOW,
    SITE_REPLAY_STALE,
    SITE_MONITOR_EXCEPTION,
)


class FaultPlanError(ValueError):
    """Raised on invalid fault-plan configuration or unknown sites."""


@dataclass(frozen=True)
class FaultSpec:
    """Fault behaviour of one site."""

    site: str
    #: Per-decision firing probability (independent draws).
    probability: float = 0.0
    #: Decisions that keep firing after a probabilistic trigger.
    burst: int = 1
    #: Half-open ``[start_tick, end_tick)`` windows that always fire.
    windows: Tuple[Tuple[int, int], ...] = ()

    def __post_init__(self) -> None:
        if self.site not in KNOWN_SITES:
            raise FaultPlanError(
                f"unknown fault site {self.site!r}; known sites: "
                f"{', '.join(KNOWN_SITES)}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise FaultPlanError(
                f"probability must be in [0, 1], got {self.probability}"
            )
        if self.burst < 1:
            raise FaultPlanError(f"burst must be >= 1, got {self.burst}")
        for window in self.windows:
            if len(window) != 2 or window[0] < 0 or window[1] <= window[0]:
                raise FaultPlanError(
                    f"window must be (start_tick, end_tick) with "
                    f"0 <= start < end, got {window!r}"
                )


class FaultPlan:
    """A deterministic schedule of faults across registered sites.

    ``rng`` is the injected stream all probabilistic draws come from
    (e.g. ``system.rng.stream("faults.plan")``); it may be omitted only
    for plans with no probabilistic specs.  Decisions are made through
    :meth:`should_fire`, which the injectors call once per fault
    opportunity — the (seed, decision-sequence) pair fully determines
    the run.
    """

    def __init__(
        self,
        specs: Sequence[FaultSpec] = (),
        rng: Optional[random.Random] = None,
        recorder: Optional[MetricsRecorder] = None,
    ) -> None:
        self._specs: Dict[str, FaultSpec] = {}
        for spec in specs:
            if spec.site in self._specs:
                raise FaultPlanError(f"duplicate spec for site {spec.site!r}")
            self._specs[spec.site] = spec
        needs_rng = any(spec.probability > 0.0 for spec in self._specs.values())
        if needs_rng and rng is None:
            raise FaultPlanError(
                "a plan with probabilistic specs needs an injected rng "
                "stream (repro.simulation.rng)"
            )
        self._rng = rng
        self.recorder = recorder if recorder is not None else current_recorder()
        self._burst_left: Dict[str, int] = {}
        #: site -> number of faults fired so far (the plan's own ledger).
        self.injected: Dict[str, int] = {}
        #: Total :meth:`should_fire` decisions taken (fired or not).
        self.decisions = 0

    @classmethod
    def disabled(cls) -> "FaultPlan":
        """A plan with no sites: every decision is a no-fault."""
        return cls(())

    @property
    def enabled(self) -> bool:
        """True when any site can ever fire."""
        return any(
            spec.probability > 0.0 or spec.windows
            for spec in self._specs.values()
        )

    def spec_of(self, site: str) -> Optional[FaultSpec]:
        """The spec registered for ``site`` (None when unregistered)."""
        if site not in KNOWN_SITES:
            raise FaultPlanError(f"unknown fault site {site!r}")
        return self._specs.get(site)

    def should_fire(self, site: str, tick: int) -> bool:
        """One fault decision at ``site`` during simulated ``tick``."""
        if site not in KNOWN_SITES:
            raise FaultPlanError(f"unknown fault site {site!r}")
        self.decisions += 1
        spec = self._specs.get(site)
        if spec is None:
            return False
        fired = False
        if self._burst_left.get(site, 0) > 0:
            self._burst_left[site] -= 1
            fired = True
        elif any(start <= tick < end for start, end in spec.windows):
            fired = True
        elif spec.probability > 0.0:
            assert self._rng is not None  # enforced at construction
            if self._rng.random() < spec.probability:
                fired = True
                if spec.burst > 1:
                    self._burst_left[site] = spec.burst - 1
        if fired:
            self.injected[site] = self.injected.get(site, 0) + 1
            self.recorder.inc(f"faults.injected.{site}")
        return fired

    def injected_total(self) -> int:
        """Total faults fired across all sites."""
        return sum(self.injected.values())


def uniform_plan(
    probability: float,
    rng: Optional[random.Random],
    sites: Sequence[str] = KNOWN_SITES,
    burst: int = 1,
    recorder: Optional[MetricsRecorder] = None,
) -> FaultPlan:
    """A plan firing every listed site at the same probability.

    The chaos experiment's sweep primitive: one failure rate applied to
    the whole monitoring path.
    """
    specs = [
        FaultSpec(site=site, probability=probability, burst=burst)
        for site in sites
    ]
    return FaultPlan(specs, rng=rng, recorder=recorder)
