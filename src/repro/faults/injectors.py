"""Fault injectors: install a :class:`~repro.faults.plan.FaultPlan`
at each registered site of the monitoring path.

Each injector wraps one real component and consults the plan once per
fault opportunity, so the injected-fault ledger reconciles exactly with
what the wrapped component experienced:

* :class:`FaultyMonitor` — wraps any :class:`PollutionMonitor`;
  ``monitor.exception`` raises a transient :class:`MonitorFault`,
  ``pmc.read`` corrupts the returned llc_cap_act (cycling
  stale → wrapped → garbage, deterministically),
* :class:`FaultyReplayService` — wraps a
  :class:`~repro.mcsim.service.ReplayService`; ``replay.unavailable``
  refuses, ``replay.slow`` misses the monitoring deadline (simulated
  latency > deadline), ``replay.stale`` serves the cached report no
  matter how old,
* :class:`MigrationFaultInjector` — installs itself as the system's
  migration interceptor; ``hypervisor.migration`` makes
  ``migrate_vcpu`` raise mid-choreography (the socket-dedication
  failure mode of Fig 9).
"""

from __future__ import annotations

from typing import Dict, TYPE_CHECKING, Tuple

from repro.core.monitor import MonitorError, PollutionMonitor
from repro.hypervisor.system import HypervisorError, VirtualizedSystem
from repro.pmc.counters import COUNTER_MASK

from .plan import (
    SITE_MIGRATION,
    SITE_MONITOR_EXCEPTION,
    SITE_PMC_READ,
    SITE_REPLAY_SLOW,
    SITE_REPLAY_STALE,
    SITE_REPLAY_UNAVAILABLE,
    FaultPlan,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.hypervisor.vcpu import VCpu
    from repro.hypervisor.vm import VirtualMachine
    from repro.mcsim.replay import ReplayReport
    from repro.mcsim.service import ReplayService, ServiceStats


class MonitorFault(MonitorError):
    """Injected transient monitor failure (site ``monitor.exception``)."""


class ReplayUnavailableError(MonitorError):
    """The replay service refused the request (site ``replay.unavailable``)."""


class ReplayTimeoutError(MonitorError):
    """The replay answer missed the monitoring deadline (site ``replay.slow``)."""


class InjectedMigrationError(HypervisorError):
    """Injected vCPU migration failure (site ``hypervisor.migration``)."""


#: Corruption modes ``pmc.read`` cycles through, in order.
CORRUPTION_MODES: Tuple[str, ...] = ("stale", "wrapped", "garbage")


class FaultyMonitor(PollutionMonitor):
    """Wrap a monitor with plan-driven read corruption and exceptions.

    Corruption cycles deterministically through three flavours real
    counter plumbing produces:

    * ``stale`` — the previous period's value is served again (a missed
      refresh; plausible, so guards cannot catch it — only bounded harm),
    * ``wrapped`` — a counter-wrap artifact: a rate around 2**48,
      astronomically past :func:`repro.core.equation.max_plausible_rate`,
    * ``garbage`` — NaN (a torn read), which every arithmetic guard must
      reject before it poisons quota accounting.
    """

    name = "faulty"

    def __init__(self, inner: PollutionMonitor, plan: FaultPlan) -> None:
        super().__init__(inner.system)
        self.inner = inner
        self.plan = plan
        self._last_value: Dict[int, float] = {}
        self._fires = 0

    def sample(self, vm: "VirtualMachine") -> float:
        tick = self.system.tick_index
        if self.plan.should_fire(SITE_MONITOR_EXCEPTION, tick):
            raise MonitorFault(
                f"injected transient monitor failure at tick {tick}"
            )
        value = self.inner.sample(vm)
        if self.plan.should_fire(SITE_PMC_READ, tick):
            mode = CORRUPTION_MODES[self._fires % len(CORRUPTION_MODES)]
            self._fires += 1
            if mode == "stale":
                return self._last_value.get(vm.vm_id, 0.0)
            if mode == "wrapped":
                return float(COUNTER_MASK)
            return float("nan")
        self._last_value[vm.vm_id] = value
        return value


class FaultyReplayService:
    """Wrap a :class:`ReplayService` with availability/latency/staleness
    faults.

    ``latency_ticks`` is the simulated answer latency a ``replay.slow``
    fault imposes; when it exceeds ``deadline_ticks`` (the monitoring
    period budget), the request is reported as timed out — the caller
    never blocks, matching how KS4Xen would drop a late answer.
    """

    def __init__(
        self,
        inner: "ReplayService",
        plan: FaultPlan,
        system: VirtualizedSystem,
        latency_ticks: int = 3,
        deadline_ticks: int = 1,
    ) -> None:
        if latency_ticks <= 0:
            raise ValueError(f"latency_ticks must be positive, got {latency_ticks}")
        if deadline_ticks <= 0:
            raise ValueError(
                f"deadline_ticks must be positive, got {deadline_ticks}"
            )
        self.inner = inner
        self.plan = plan
        self.system = system
        self.latency_ticks = latency_ticks
        self.deadline_ticks = deadline_ticks

    @property
    def stats(self) -> "ServiceStats":
        return self.inner.stats

    def replay_vm(self, vm: "VirtualMachine") -> "ReplayReport":
        tick = self.system.tick_index
        if self.plan.should_fire(SITE_REPLAY_UNAVAILABLE, tick):
            raise ReplayUnavailableError(
                f"replay service unavailable at tick {tick}"
            )
        if self.plan.should_fire(SITE_REPLAY_SLOW, tick):
            if self.latency_ticks > self.deadline_ticks:
                raise ReplayTimeoutError(
                    f"replay answer took {self.latency_ticks} ticks, "
                    f"deadline {self.deadline_ticks}"
                )
        if self.plan.should_fire(SITE_REPLAY_STALE, tick):
            cached = self.inner.cached_report(vm)
            if cached is not None:
                report, __ = cached
                self.inner.stats.stale_hits += 1
                return report
            # Nothing cached to be stale about: fall through to a real
            # replay (the fault still counted in the plan's ledger).
        return self.inner.replay_vm(vm)

    def invalidate(self, vm: "VirtualMachine") -> None:
        self.inner.invalidate(vm)


class MigrationFaultInjector:
    """Installs plan-driven migration failures on a system.

    Replaces the system's ``migration_interceptor``; :meth:`uninstall`
    restores whatever interceptor was there before.
    """

    def __init__(self, system: VirtualizedSystem, plan: FaultPlan) -> None:
        self.system = system
        self.plan = plan
        self._previous = system.migration_interceptor
        # Keep the one bound-method object we installed: attribute access
        # creates a fresh bound method each time, so uninstall() must
        # compare against this exact object.
        self._installed = self._intercept
        system.migration_interceptor = self._installed

    def _intercept(self, vcpu: "VCpu", new_core_id: int) -> None:
        if self._previous is not None:
            self._previous(vcpu, new_core_id)
        tick = self.system.tick_index
        if self.plan.should_fire(SITE_MIGRATION, tick):
            raise InjectedMigrationError(
                f"injected migration failure: {vcpu.name} -> core "
                f"{new_core_id} at tick {tick}"
            )

    def uninstall(self) -> None:
        """Remove this injector, restoring the previous interceptor."""
        if self.system.migration_interceptor is self._installed:
            self.system.migration_interceptor = self._previous
