"""Deterministic fault injection (docs/faults.md).

Kyoto's enforcement is only as trustworthy as its measurement path, and
the measurement path is fragile machinery: vCPU migration choreography
for socket dedication (Fig 9) and an off-box replay service
(Section 3.3).  This package makes those failure modes *first-class and
reproducible*:

* :class:`FaultPlan` / :class:`FaultSpec` — a declarative plan of fault
  sites with per-site probability, burst length and scheduled windows,
  driven entirely by an injected :mod:`repro.simulation.rng` stream, so
  a chaos run replays bit-identically from its seed,
* :mod:`repro.faults.injectors` — wrappers that install a plan at each
  site: PMC reads returning stale/wrapped/garbage values, socket
  dedication failing mid-window, the replay service being unavailable,
  slow or stale, and transient monitor exceptions.

The resilience layer that survives these faults lives in
:mod:`repro.core.resilient`; the ``chaos`` experiment sweeps
monitor-failure rates over the Fig 5 colocation.
"""

from .plan import (
    KNOWN_SITES,
    SITE_MIGRATION,
    SITE_MONITOR_EXCEPTION,
    SITE_PMC_READ,
    SITE_REPLAY_SLOW,
    SITE_REPLAY_STALE,
    SITE_REPLAY_UNAVAILABLE,
    FaultPlan,
    FaultPlanError,
    FaultSpec,
    uniform_plan,
)
from .injectors import (
    FaultyMonitor,
    FaultyReplayService,
    InjectedMigrationError,
    MigrationFaultInjector,
    MonitorFault,
    ReplayTimeoutError,
    ReplayUnavailableError,
)

__all__ = [
    "FaultPlan",
    "FaultPlanError",
    "FaultSpec",
    "FaultyMonitor",
    "FaultyReplayService",
    "InjectedMigrationError",
    "KNOWN_SITES",
    "MigrationFaultInjector",
    "MonitorFault",
    "ReplayTimeoutError",
    "ReplayUnavailableError",
    "SITE_MIGRATION",
    "SITE_MONITOR_EXCEPTION",
    "SITE_PMC_READ",
    "SITE_REPLAY_SLOW",
    "SITE_REPLAY_STALE",
    "SITE_REPLAY_UNAVAILABLE",
    "uniform_plan",
]
