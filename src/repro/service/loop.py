"""The service loop: a soak run over a churning fleet.

Drives a :class:`~repro.hypervisor.system.VirtualizedSystem` tick by
tick, performing all lifecycle operations *between* ticks (the admit /
retire contract): expired and finished VMs retire, the churn generator
draws arrivals, the admission controller gates them, and admitted VMs
are stamped from the template pool.  Fleet telemetry goes through the
system's bounded recorder, so memory stays bounded over million-tick
runs; the loop's own counters feed the ``repro.service/1`` summary.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, TYPE_CHECKING

from repro.hypervisor.vm import VmConfig
from repro.telemetry import RETIRED_SERIES_COUNTER

from .admission import AdmissionController
from .churn import ChurnGenerator

if TYPE_CHECKING:  # pragma: no cover
    from repro.hypervisor.system import VirtualizedSystem
    from repro.hypervisor.vm import VirtualMachine
    from repro.workloads.base import Workload

#: Schema identifier of a service-run summary document.
SERVICE_SCHEMA = "repro.service/1"

#: Default tick period of the fleet-size snapshot series.
DEFAULT_SNAPSHOT_PERIOD_TICKS = 64


@dataclass
class VmTemplate:
    """One stampable entry of the service's VM pool.

    ``make_workload`` is a factory, not an instance: every admitted VM
    gets a fresh workload object, so per-VM progress state can never be
    shared across admissions.
    """

    name: str
    make_workload: Callable[[], "Workload"]
    num_vcpus: int = 1
    weight: int = 256
    cap_percent: Optional[float] = None
    llc_cap: Optional[float] = None
    memory_node: int = 0

    def config(self, vm_name: str) -> VmConfig:
        return VmConfig(
            name=vm_name,
            workload=self.make_workload(),
            num_vcpus=self.num_vcpus,
            weight=self.weight,
            cap_percent=self.cap_percent,
            llc_cap=self.llc_cap,
            memory_node=self.memory_node,
        )


class ServiceLoop:
    """Admit, run, retire — the IaaS-shaped open-system driver.

    Terminate policy: the loop runs a fixed tick budget (never
    ``run_until_finished`` — an open system has no "all done").  With
    ``stop_when_idle`` it ends early once the fleet is empty *and* the
    generator can produce no further arrivals; ``drain_at_end`` retires
    every remaining VM when the loop ends, settling all accounts.
    """

    def __init__(
        self,
        system: "VirtualizedSystem",
        churn: ChurnGenerator,
        admission: AdmissionController,
        templates: List[VmTemplate],
        template_rng: random.Random,
        *,
        drain_at_end: bool = True,
        stop_when_idle: bool = False,
        snapshot_period_ticks: int = DEFAULT_SNAPSHOT_PERIOD_TICKS,
    ) -> None:
        if not templates:
            raise ValueError("the service needs at least one VM template")
        if snapshot_period_ticks <= 0:
            raise ValueError(
                f"snapshot_period_ticks must be positive, got "
                f"{snapshot_period_ticks}"
            )
        self.system = system
        self.churn = churn
        self.admission = admission
        self.templates = templates
        self._template_rng = template_rng
        self.drain_at_end = drain_at_end
        self.stop_when_idle = stop_when_idle
        self.snapshot_period_ticks = snapshot_period_ticks
        #: vm_id -> tick index at which the VM's lifetime expires.
        self._expiry: Dict[int, int] = {}
        self._seq = 0
        self.ticks_run = 0
        self.admitted = 0
        self.rejected = 0
        self.retired = 0
        self.drained = 0
        self.peak_live_vms = len(system.vms)

    # -- lifecycle steps -------------------------------------------------------

    def _retire_due(self) -> None:
        """Retire every VM whose lifetime expired or workload finished."""
        system = self.system
        now = system.tick_index
        due = [
            vm
            for vm in system.vms
            if self._expiry.get(vm.vm_id, now + 1) <= now or vm.finished
        ]
        for vm in due:
            system.retire_vm(vm)
            self._expiry.pop(vm.vm_id, None)
            self.retired += 1

    def _admit_arrivals(self) -> None:
        system = self.system
        count = self.churn.arrivals_at(system.tick_index)
        for _ in range(count):
            template = (
                self.templates[0]
                if len(self.templates) == 1
                else self._template_rng.choice(self.templates)
            )
            self._seq += 1
            config = template.config(f"{template.name}-s{self._seq}")
            if not self.admission.admits(system, config):
                self.rejected += 1
                system.recorder.inc("service.vms_rejected")
                continue
            vm = system.admit_vm(config)
            self.admitted += 1
            lifetime = self.churn.draw_lifetime_ticks()
            self._expiry[vm.vm_id] = system.tick_index + lifetime

    def _snapshot(self) -> None:
        system = self.system
        recorder = system.recorder
        if not recorder.enabled:
            return
        tick = system.tick_index
        recorder.record("service.live_vms", tick, float(len(system.vms)))
        recorder.record("service.live_vcpus", tick, float(len(system.vcpus)))

    @property
    def _quiescent(self) -> bool:
        """True when the generator can never produce another arrival."""
        churn = self.churn
        return churn.rate_per_tick == 0.0 and (
            churn.process != "bursty" or churn.burst_probability == 0.0
        )

    # -- driving ---------------------------------------------------------------

    def run(self, num_ticks: int) -> Dict[str, object]:
        """Soak for up to ``num_ticks`` ticks; returns the summary dict."""
        if num_ticks < 0:
            raise ValueError(f"num_ticks must be >= 0, got {num_ticks}")
        system = self.system
        for _ in range(num_ticks):
            self._retire_due()
            self._admit_arrivals()
            if len(system.vms) > self.peak_live_vms:
                self.peak_live_vms = len(system.vms)
            if system.tick_index % self.snapshot_period_ticks == 0:
                self._snapshot()
            if (
                self.stop_when_idle
                and not system.vms
                and self._quiescent
            ):
                break
            system.run_ticks(1)
            self.ticks_run += 1
        if self.drain_at_end:
            self._drain()
        return self.summary()

    def _drain(self) -> None:
        """Retire every remaining VM, settling all pollution accounts."""
        system = self.system
        for vm in list(system.vms):
            system.retire_vm(vm)
            self._expiry.pop(vm.vm_id, None)
            self.drained += 1

    # -- reporting -------------------------------------------------------------

    def summary(self) -> Dict[str, object]:
        """The ``repro.service/1`` summary of the run so far."""
        system = self.system
        recorder = system.recorder
        live_vm_names = sorted(vm.name for vm in system.vms)
        return {
            "schema": SERVICE_SCHEMA,
            "ticks_run": self.ticks_run,
            "final_tick": system.tick_index,
            "arrival_process": self.churn.process,
            "admission_policy": self.admission.name,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "retired": self.retired,
            "drained": self.drained,
            "peak_live_vms": self.peak_live_vms,
            "final_live_vms": len(system.vms),
            "final_live_vcpus": len(system.vcpus),
            "final_live_vm_names": live_vm_names,
            "retired_series_compactions": recorder.counters.get(
                RETIRED_SERIES_COUNTER, 0.0
            ),
            "context_switches": recorder.counters.get(
                "sys.context_switches", 0.0
            ),
        }
