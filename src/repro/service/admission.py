"""Admission control: which arriving VMs get in.

VUPIC-style usage-based admission only makes sense once VMs have
lifecycles; these controllers gate :meth:`VirtualizedSystem.admit_vm`
calls in the service loop.  Each one answers a single question — *does
this machine take this VM right now?* — against the live fleet, and
records its verdicts so a soak run's rejection rate is observable.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.hypervisor.system import VirtualizedSystem
    from repro.hypervisor.vm import VmConfig


class AdmissionController(ABC):
    """Base class of all admission policies."""

    name = "abstract"

    @abstractmethod
    def admits(self, system: "VirtualizedSystem", config: "VmConfig") -> bool:
        """True when the system should take the VM."""


class NaiveAdmission(AdmissionController):
    """Admit everything — the paper's unmanaged IaaS baseline."""

    name = "naive"

    def admits(self, system: "VirtualizedSystem", config: "VmConfig") -> bool:
        return True


class CapacityCapAdmission(AdmissionController):
    """Cap the number of live vCPUs (a fixed consolidation ratio)."""

    name = "capacity"

    def __init__(self, max_vcpus: int) -> None:
        if max_vcpus < 1:
            raise ValueError(f"max_vcpus must be >= 1, got {max_vcpus}")
        self.max_vcpus = max_vcpus

    def admits(self, system: "VirtualizedSystem", config: "VmConfig") -> bool:
        return len(system.vcpus) + config.num_vcpus <= self.max_vcpus


class PermitBudgetAdmission(AdmissionController):
    """Cap the summed booked ``llc_cap`` of live VMs.

    The Kyoto principle turned into an admission currency: the machine
    sells pollution permits up to ``llc_budget`` (misses/ms) and refuses
    VMs once they are sold out.  VMs without a booked cap consume no
    budget — they are the unmanaged best-effort tier.
    """

    name = "permit_budget"

    def __init__(self, llc_budget: float) -> None:
        if llc_budget <= 0:
            raise ValueError(f"llc_budget must be positive, got {llc_budget}")
        self.llc_budget = llc_budget

    def admits(self, system: "VirtualizedSystem", config: "VmConfig") -> bool:
        booked = sum(
            vm.llc_cap for vm in system.vms if vm.llc_cap is not None
        )
        asking = config.llc_cap if config.llc_cap is not None else 0.0
        return booked + asking <= self.llc_budget
