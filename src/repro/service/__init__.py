"""Churn-driven IaaS service mode (docs/service.md).

Everything else in the repo runs a *closed* system: a fleet frozen
before tick 0, measured, then thrown away.  This package models the
open system the paper's claims are actually about — an IaaS where VMs
arrive, run and depart continuously:

* :class:`~repro.service.churn.ChurnGenerator` — Poisson/bursty VM
  arrivals with optional diurnal modulation, plus lifetime draws, all
  from injected :mod:`repro.simulation.rng` streams;
* :class:`~repro.service.admission.AdmissionController` — pluggable
  admission policies (naive, capacity-capped, permit-budget);
* :class:`~repro.service.loop.ServiceLoop` — drives a
  :class:`~repro.hypervisor.system.VirtualizedSystem` through a soak
  run, admitting and retiring VMs between ticks and emitting a
  ``repro.service/1`` summary.

Exposed on the command line as ``repro serve SPEC --ticks N``.
"""

from .admission import (
    AdmissionController,
    CapacityCapAdmission,
    NaiveAdmission,
    PermitBudgetAdmission,
)
from .churn import ChurnGenerator
from .loop import SERVICE_SCHEMA, ServiceLoop, VmTemplate

__all__ = [
    "AdmissionController",
    "CapacityCapAdmission",
    "ChurnGenerator",
    "NaiveAdmission",
    "PermitBudgetAdmission",
    "SERVICE_SCHEMA",
    "ServiceLoop",
    "VmTemplate",
]
