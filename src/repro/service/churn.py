"""VM churn: arrival processes and lifetime distributions.

The generator is pure draw logic — it never touches the system.  Both
random sources are *injected* streams (kyotolint D001/D002): the service
loop derives them from the scenario seed (``service.arrivals`` and
``service.lifetimes``), so a soak run is bit-reproducible end to end.
"""

from __future__ import annotations

import math
import random

#: Arrival processes this generator implements.
PROCESSES = ("poisson", "bursty")

#: Lifetime distributions this generator implements.
LIFETIME_KINDS = ("exponential", "lognormal", "fixed")


def _poisson_draw(rng: random.Random, lam: float) -> int:
    """One Poisson(``lam``) draw via Knuth's product method.

    Exact for the per-tick rates the service mode uses (``lam`` well
    below the ~700 where ``exp(-lam)`` underflows); one uniform draw per
    unit of intensity, all from the injected stream.
    """
    if lam <= 0.0:
        return 0
    threshold = math.exp(-lam)
    count = 0
    product = rng.random()
    while product > threshold:
        count += 1
        product *= rng.random()
    return count


class ChurnGenerator:
    """Draws per-tick VM arrival counts and per-VM lifetimes."""

    def __init__(
        self,
        arrivals_rng: random.Random,
        lifetimes_rng: random.Random,
        *,
        process: str = "poisson",
        rate_per_tick: float = 0.01,
        burst_probability: float = 0.0,
        burst_size: int = 3,
        diurnal_amplitude: float = 0.0,
        diurnal_period_ticks: int = 0,
        lifetime_kind: str = "exponential",
        lifetime_mean_ticks: float = 1_000.0,
        lifetime_sigma: float = 0.5,
    ) -> None:
        if process not in PROCESSES:
            raise ValueError(
                f"unknown arrival process {process!r}; "
                f"expected one of {', '.join(PROCESSES)}"
            )
        if lifetime_kind not in LIFETIME_KINDS:
            raise ValueError(
                f"unknown lifetime kind {lifetime_kind!r}; "
                f"expected one of {', '.join(LIFETIME_KINDS)}"
            )
        if rate_per_tick < 0:
            raise ValueError(f"rate_per_tick must be >= 0, got {rate_per_tick}")
        if not 0.0 <= burst_probability <= 1.0:
            raise ValueError(
                f"burst_probability must be in [0, 1], got {burst_probability}"
            )
        if burst_size < 1:
            raise ValueError(f"burst_size must be >= 1, got {burst_size}")
        if not 0.0 <= diurnal_amplitude <= 1.0:
            raise ValueError(
                f"diurnal_amplitude must be in [0, 1], got {diurnal_amplitude}"
            )
        if diurnal_amplitude > 0.0 and diurnal_period_ticks <= 0:
            raise ValueError(
                "diurnal_period_ticks must be positive when "
                f"diurnal_amplitude is set, got {diurnal_period_ticks}"
            )
        if lifetime_mean_ticks <= 0:
            raise ValueError(
                f"lifetime_mean_ticks must be positive, got {lifetime_mean_ticks}"
            )
        if lifetime_kind == "lognormal" and lifetime_sigma <= 0:
            raise ValueError(
                f"lifetime_sigma must be positive, got {lifetime_sigma}"
            )
        self._arrivals_rng = arrivals_rng
        self._lifetimes_rng = lifetimes_rng
        self.process = process
        self.rate_per_tick = rate_per_tick
        self.burst_probability = burst_probability
        self.burst_size = burst_size
        self.diurnal_amplitude = diurnal_amplitude
        self.diurnal_period_ticks = diurnal_period_ticks
        self.lifetime_kind = lifetime_kind
        self.lifetime_mean_ticks = lifetime_mean_ticks
        self.lifetime_sigma = lifetime_sigma
        # exp(mu + sigma^2/2) is the lognormal mean: solve mu so the
        # distribution's mean equals lifetime_mean_ticks.
        self._lognormal_mu = (
            math.log(lifetime_mean_ticks) - 0.5 * lifetime_sigma**2
            if lifetime_kind == "lognormal"
            else 0.0
        )

    def rate_at(self, tick_index: int) -> float:
        """The (possibly diurnally modulated) arrival rate at a tick."""
        rate = self.rate_per_tick
        if self.diurnal_amplitude > 0.0:
            phase = 2.0 * math.pi * tick_index / self.diurnal_period_ticks
            rate *= 1.0 + self.diurnal_amplitude * math.sin(phase)
        return rate

    def arrivals_at(self, tick_index: int) -> int:
        """How many VMs arrive during this tick."""
        count = _poisson_draw(self._arrivals_rng, self.rate_at(tick_index))
        if (
            self.process == "bursty"
            and self.burst_probability > 0.0
            # The burst draw is unconditional so the stream advances
            # identically whether or not a burst fires.
            and self._arrivals_rng.random() < self.burst_probability
        ):
            count += self.burst_size
        return count

    def draw_lifetime_ticks(self) -> int:
        """One VM lifetime draw, floored at a single tick."""
        rng = self._lifetimes_rng
        if self.lifetime_kind == "exponential":
            drawn = rng.expovariate(1.0 / self.lifetime_mean_ticks)
        elif self.lifetime_kind == "lognormal":
            drawn = rng.lognormvariate(self._lognormal_mu, self.lifetime_sigma)
        else:  # fixed
            drawn = self.lifetime_mean_ticks
        return max(1, int(round(drawn)))
