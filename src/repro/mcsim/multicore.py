"""Faithful multi-core co-simulation.

McSimA+ is a *manycore* simulator: it can replay several applications'
streams against one shared LLC.  This module adds that mode to the replay
substrate: each workload gets private L1/L2 hierarchies, all share one
set-associative LLC, and their trace records are interleaved in
round-robin execution order.  It serves two purposes:

* a second, independent check of the analytical occupancy model's
  contention predictions (see the cross-validation ablation benchmark);
* "what-if colocation" queries a provider could run off-host before
  placing VMs together — the McSimA+ use-case the paper's monitoring
  protocol hints at.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.cachesim.hierarchy import CacheHierarchy
from repro.cachesim.replacement import make_policy
from repro.cachesim.setassoc import SetAssociativeCache
from repro.hardware.specs import MachineSpec, paper_machine
from repro.workloads.base import Workload

from .pin import CaptureConfig, PinTool, TraceRecord


@dataclass
class CoRunReport:
    """Per-workload outcome of a shared-LLC co-simulation."""

    name: str
    instructions: int = 0
    cycles: float = 0.0
    llc_accesses: int = 0
    llc_misses: int = 0
    llc_occupancy_lines: int = 0

    @property
    def ipc(self) -> float:
        if self.cycles == 0:
            return 0.0
        return self.instructions / self.cycles

    @property
    def miss_ratio(self) -> float:
        if self.llc_accesses == 0:
            return 0.0
        return self.llc_misses / self.llc_accesses

    @property
    def misses_per_kinst(self) -> float:
        if self.instructions == 0:
            return 0.0
        return self.llc_misses * 1000.0 / self.instructions


class MultiCoreReplayer:
    """Replays several captures against one shared LLC."""

    def __init__(
        self,
        machine_spec: Optional[MachineSpec] = None,
        llc_policy: str = "lru",
        base_cpi: float = 0.8,
        warmup_fraction: float = 0.5,
    ) -> None:
        if not 0.0 <= warmup_fraction < 1.0:
            raise ValueError(
                f"warmup_fraction must be in [0,1), got {warmup_fraction}"
            )
        self.spec = machine_spec if machine_spec is not None else paper_machine()
        self.llc_policy = llc_policy
        self.base_cpi = base_cpi
        self.warmup_fraction = warmup_fraction

    def co_run(
        self, captures: Dict[str, List[TraceRecord]]
    ) -> Dict[str, CoRunReport]:
        """Interleave the captures record-by-record through a shared LLC.

        Each workload runs on its own "core" (private L1/L2); records are
        scheduled round-robin, which approximates concurrent execution at
        record (kilo-instruction) granularity.
        """
        if not captures:
            raise ValueError("co_run needs at least one capture")
        socket = self.spec.sockets[0]
        if len(captures) > socket.cores:
            raise ValueError(
                f"{len(captures)} workloads exceed the socket's "
                f"{socket.cores} cores"
            )
        llc = SetAssociativeCache(socket.llc, make_policy(self.llc_policy))
        hierarchies = {
            name: CacheHierarchy(socket, self.spec.latency, llc=llc)
            for name in captures
        }
        owner_ids = {name: index for index, name in enumerate(captures)}
        reports = {name: CoRunReport(name=name) for name in captures}
        cursors = {name: 0 for name in captures}
        warmup_counts = {
            name: int(len(records) * self.warmup_fraction)
            for name, records in captures.items()
        }

        progressed = True
        while progressed:
            progressed = False
            for name, records in captures.items():
                cursor = cursors[name]
                if cursor >= len(records):
                    continue
                progressed = True
                record = records[cursor]
                cursors[name] = cursor + 1
                measuring = cursor >= warmup_counts[name]
                hierarchy = hierarchies[name]
                report = reports[name]
                record_cycles = record.instructions * self.base_cpi
                for address in record.addresses:
                    outcome = hierarchy.access(address, owner=owner_ids[name])
                    record_cycles += outcome.cycles
                    if measuring and outcome.level.value in ("LLC", "MEMORY"):
                        report.llc_accesses += 1
                        if outcome.llc_miss:
                            report.llc_misses += 1
                if measuring:
                    report.instructions += record.instructions
                    report.cycles += record_cycles
        for name, report in reports.items():
            report.llc_occupancy_lines = llc.occupancy_of(owner_ids[name])
        return reports


def co_run_workloads(
    workloads: Sequence[Workload],
    capture_config: Optional[CaptureConfig] = None,
    replayer: Optional[MultiCoreReplayer] = None,
) -> Dict[str, CoRunReport]:
    """Capture each workload with the pin tool and co-run them.

    Workload names must be unique (they key the reports).
    """
    names = [w.name for w in workloads]
    if len(set(names)) != len(names):
        raise ValueError(f"workload names must be unique, got {names}")
    pin = PinTool(capture_config)
    captures = {w.name: pin.capture(w) for w in workloads}
    if replayer is None:
        replayer = MultiCoreReplayer()
    return replayer.co_run(captures)
