"""Pin-style trace capture and McSimA+-style replay (Section 3.3's second
monitoring solution)."""

from .advisor import ColocationAdvisor, ColocationAssessment
from .multicore import CoRunReport, MultiCoreReplayer, co_run_workloads
from .pin import CaptureConfig, PinTool, TraceRecord
from .replay import McSimReplayer, ReplayReport
from .service import ReplayService, ServiceStats

__all__ = [
    "CaptureConfig",
    "CoRunReport",
    "ColocationAdvisor",
    "ColocationAssessment",
    "McSimReplayer",
    "MultiCoreReplayer",
    "PinTool",
    "ReplayReport",
    "ReplayService",
    "ServiceStats",
    "TraceRecord",
    "co_run_workloads",
]
