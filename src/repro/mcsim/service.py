"""The replay service: McSimA+ on a "dedicated machine".

Section 3.3's protocol:

1. KS4Xen asks the simulator to start the pin tool for a sampling period,
2. the simulator replays instructions and sends PMCs back to KS4Xen,
3. KS4Xen computes llc_cap_act from the collected PMCs.

:class:`ReplayService` models that dedicated side machine: it owns a pin
tool and a replayer, caches reports per VM (a sampling period is about a
billion cycles, so reports are reused between refreshes), and keeps
simple request accounting so the zero-overhead claim — all replay cost is
off the production machine — can be audited in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, TYPE_CHECKING, Tuple

from .pin import CaptureConfig, PinTool
from .replay import McSimReplayer, ReplayReport

if TYPE_CHECKING:  # pragma: no cover
    from repro.hypervisor.vm import VirtualMachine


@dataclass
class ServiceStats:
    """Request accounting of the replay service."""

    requests: int = 0
    replays: int = 0
    cache_hits: int = 0
    #: Requests whose cached report exceeded the staleness bound: forced
    #: refreshes on the normal path, stale reports actually *served* when
    #: fault injection bypasses the bound (repro.faults.injectors).
    stale_hits: int = 0


class ReplayService:
    """McSimA+-style replay running off-host.

    Report freshness is bounded two ways: ``refresh_every`` re-replays
    after that many served requests (the sampling cadence), and
    ``max_report_age`` — when set — is a hard staleness bound: a cached
    report older than that many requests is never served, no matter what
    ``refresh_every`` would allow.  Every bound trigger counts a
    ``stale_hits``.
    """

    def __init__(
        self,
        replayer: Optional[McSimReplayer] = None,
        capture_config: Optional[CaptureConfig] = None,
        refresh_every: int = 50,
        max_report_age: Optional[int] = None,
    ) -> None:
        if refresh_every <= 0:
            raise ValueError(f"refresh_every must be positive, got {refresh_every}")
        if max_report_age is not None and max_report_age <= 0:
            raise ValueError(
                f"max_report_age must be positive, got {max_report_age}"
            )
        self.pin = PinTool(capture_config)
        self.replayer = replayer if replayer is not None else McSimReplayer()
        self.refresh_every = refresh_every
        self.max_report_age = max_report_age
        self.stats = ServiceStats()
        self._cache: Dict[int, ReplayReport] = {}
        self._age: Dict[int, int] = {}

    def report_age(self, vm: "VirtualMachine") -> Optional[int]:
        """Requests served since ``vm``'s report was produced (None if
        uncached)."""
        if vm.vm_id not in self._cache:
            return None
        return self._age.get(vm.vm_id, 0)

    def cached_report(
        self, vm: "VirtualMachine"
    ) -> Optional[Tuple[ReplayReport, int]]:
        """The cached ``(report, age)`` of ``vm``, bypassing all freshness
        checks — inspection and fault injection only, no accounting."""
        report = self._cache.get(vm.vm_id)
        if report is None:
            return None
        return report, self._age.get(vm.vm_id, 0)

    def replay_vm(self, vm: "VirtualMachine") -> ReplayReport:
        """Return (possibly cached) replay PMCs for ``vm``."""
        self.stats.requests += 1
        age = self._age.get(vm.vm_id, self.refresh_every)
        fresh_enough = vm.vm_id in self._cache and age + 1 < self.refresh_every
        if (
            vm.vm_id in self._cache
            and self.max_report_age is not None
            and age + 1 > self.max_report_age
        ):
            # The staleness bound overrides the request-count cadence.
            self.stats.stale_hits += 1
            fresh_enough = False
        if fresh_enough:
            self._age[vm.vm_id] = age + 1
            self.stats.cache_hits += 1
            return self._cache[vm.vm_id]
        records = self.pin.capture(vm.config.workload)
        report = self.replayer.replay(records)
        self._cache[vm.vm_id] = report
        self._age[vm.vm_id] = 0
        self.stats.replays += 1
        return report

    def invalidate(self, vm: "VirtualMachine") -> None:
        """Drop the cached report of a VM (e.g. after a phase change)."""
        self._cache.pop(vm.vm_id, None)
        self._age.pop(vm.vm_id, None)
