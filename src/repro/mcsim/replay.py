"""McSimA+-style micro-architectural replay.

Replays a captured trace through a faithful cache hierarchy configured to
"reflect a specific hardware" (Section 3.3) — here the machine spec of
Table 1 — and returns the PMC values the simulated hardware would report:
instructions, cycles, LLC accesses and misses.  From those, KS4Xen can
compute ``llc_cap_act`` without touching the production machine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.cachesim.hierarchy import CacheHierarchy
from repro.cachesim.replacement import make_policy
from repro.cachesim.setassoc import SetAssociativeCache
from repro.hardware.specs import MachineSpec, paper_machine

from .pin import TraceRecord


@dataclass
class ReplayReport:
    """PMCs produced by one replay run."""

    instructions: int
    cycles: float
    llc_accesses: int
    llc_misses: int

    @property
    def miss_ratio(self) -> float:
        """LLC misses / LLC accesses (0.0 when there were no accesses)."""
        if self.llc_accesses == 0:
            return 0.0
        return self.llc_misses / self.llc_accesses

    @property
    def ipc(self) -> float:
        if self.cycles == 0:
            return 0.0
        return self.instructions / self.cycles

    @property
    def misses_per_kinst(self) -> float:
        """LLC misses per kilo-instruction (0.0 with no instructions)."""
        if self.instructions == 0:
            return 0.0
        return self.llc_misses * 1000.0 / self.instructions


class McSimReplayer:
    """Replays traces through a configurable simulated hierarchy."""

    def __init__(
        self,
        machine_spec: Optional[MachineSpec] = None,
        llc_policy: str = "lru",
        base_cpi: float = 0.8,
        warmup_fraction: float = 0.5,
    ) -> None:
        if not 0.0 <= warmup_fraction < 1.0:
            raise ValueError(
                f"warmup_fraction must be in [0,1), got {warmup_fraction}"
            )
        self.spec = machine_spec if machine_spec is not None else paper_machine()
        self.llc_policy = llc_policy
        self.base_cpi = base_cpi
        self.warmup_fraction = warmup_fraction

    def replay(self, records: Iterable[TraceRecord]) -> ReplayReport:
        """Replay a capture and report the PMCs of the measured portion.

        The first ``warmup_fraction`` of the records only warms the
        simulated caches (their events are not counted), mimicking how a
        sampling simulator discards cold-start transients.
        """
        records = list(records)
        socket = self.spec.sockets[0]
        hierarchy = CacheHierarchy(
            socket,
            self.spec.latency,
            llc=SetAssociativeCache(socket.llc, make_policy(self.llc_policy)),
        )
        warmup_count = int(len(records) * self.warmup_fraction)

        instructions = 0
        cycles = 0.0
        llc_accesses = 0
        llc_misses = 0
        for index, record in enumerate(records):
            measuring = index >= warmup_count
            record_cycles = record.instructions * self.base_cpi
            for address in record.addresses:
                outcome = hierarchy.access(address)
                record_cycles += outcome.cycles
                if measuring and outcome.level.value in ("LLC", "MEMORY"):
                    llc_accesses += 1
                    if outcome.llc_miss:
                        llc_misses += 1
            if measuring:
                instructions += record.instructions
                cycles += record_cycles
        return ReplayReport(
            instructions=instructions,
            cycles=cycles,
            llc_accesses=llc_accesses,
            llc_misses=llc_misses,
        )
