"""What-if colocation advisor.

Before placing a VM next to others, a provider wants to know: *how much
will they hurt each other?*  The advisor answers offline, in two tiers:

1. **Analytical prediction** (:meth:`ColocationAdvisor.assess`): solve
   the shared-LLC mean-field equilibrium — the same waterfilled
   occupancy model the machine simulation runs on, and which the
   cross-validation ablation checks against the faithful simulator —
   directly for the candidate set.  Microseconds per query.
2. **Faithful cross-check** (:meth:`ColocationAdvisor.cross_check`):
   co-run the workloads' pin-captured traces through the line-accurate
   shared LLC (McSimA+'s manycore mode), optionally set-sampled for
   speed, to confirm the predicted miss-pressure ordering on real
   replacement behaviour.

Admission control (:meth:`ColocationAdvisor.admit`) uses tier 1.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.cachesim.occupancy import waterfill_allocation
from repro.cachesim.perfmodel import (
    cycles_per_instruction,
    hit_probability,
)
from repro.hardware.specs import CacheSpec, MachineSpec, paper_machine
from repro.workloads.base import Workload

from .multicore import CoRunReport, MultiCoreReplayer
from .pin import CaptureConfig, PinTool


def set_sampled_machine(machine: MachineSpec, factor: int) -> MachineSpec:
    """Shrink the LLC by ``factor`` (the *set sampling* of real sampling
    simulators: simulate 1/factor of the sets; with set-uniform address
    streams, a cache with 1/factor of the sets and a 1/factor working set
    behaves like the full system)."""
    socket = machine.sockets[0]
    llc = socket.llc
    sampled_sets = llc.num_sets // factor
    if sampled_sets < 1:
        raise ValueError(
            f"sampling factor {factor} leaves no sets "
            f"(LLC has {llc.num_sets})"
        )
    sampled = CacheSpec(
        llc.name,
        sampled_sets * llc.associativity * llc.line_bytes,
        llc.associativity,
        line_bytes=llc.line_bytes,
        shared=True,
    )
    return dataclasses.replace(
        machine,
        sockets=tuple(
            dataclasses.replace(s, llc=sampled) for s in machine.sockets
        ),
    )


def set_sampled_workload(workload: Workload, factor: int) -> Workload:
    """The trace-side half of set sampling: shrink the working set (and
    pollution footprint) by the sampling factor."""
    behavior = workload.behavior
    scaled = dataclasses.replace(
        behavior,
        wss_lines=max(1.0, behavior.wss_lines / factor),
        pollution_footprint_lines=(
            max(1.0, behavior.pollution_footprint_lines / factor)
            if behavior.pollution_footprint_lines is not None
            else None
        ),
    )
    return Workload(
        name=workload.name,
        behavior=scaled,
        description=f"{workload.description} (1/{factor} set sample)",
    )


@dataclass
class ColocationAssessment:
    """Predicted outcome of colocating a set of workloads."""

    #: workload name -> predicted IPC degradation (%) vs running solo.
    predicted_degradation: Dict[str, float] = field(default_factory=dict)
    #: workload name -> predicted LLC occupancy (lines) at equilibrium.
    predicted_occupancy: Dict[str, float] = field(default_factory=dict)
    #: workload name -> predicted pollution rate (misses/ms) contended.
    predicted_pollution: Dict[str, float] = field(default_factory=dict)

    @property
    def worst_degradation(self) -> float:
        if not self.predicted_degradation:
            return 0.0
        return max(self.predicted_degradation.values())

    def acceptable(self, degradation_budget_percent: float) -> bool:
        """True if every workload stays within the degradation budget."""
        return self.worst_degradation <= degradation_budget_percent


class ColocationAdvisor:
    """Predicts colocation interference before any VM feels it."""

    def __init__(
        self,
        machine: Optional[MachineSpec] = None,
        capture_config: Optional[CaptureConfig] = None,
        sampling_factor: int = 16,
        iterations: int = 200,
    ) -> None:
        if sampling_factor < 1:
            raise ValueError(
                f"sampling_factor must be >= 1, got {sampling_factor}"
            )
        if iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {iterations}")
        self.machine = machine if machine is not None else paper_machine()
        self.capture_config = capture_config
        self.sampling_factor = sampling_factor
        self.iterations = iterations
        self._pin = PinTool(capture_config)

    # -- tier 1: analytical equilibrium ---------------------------------------

    def assess(self, workloads: Sequence[Workload]) -> ColocationAssessment:
        """Solve the contention equilibrium for ``workloads`` together."""
        names = [w.name for w in workloads]
        if len(set(names)) != len(names):
            raise ValueError(f"workload names must be unique, got {names}")
        if not workloads:
            raise ValueError("assess needs at least one workload")
        socket = self.machine.sockets[0]
        capacity = float(socket.llc.num_lines)
        latency = self.machine.latency
        freq_khz = socket.freq_khz  # kHz is numerically cycles per ms

        behaviors = {w.name: w.behavior for w in workloads}
        caps = {
            name: behavior.footprint_cap_lines
            for name, behavior in behaviors.items()
        }
        # Fixed point: occupancy -> miss rates -> waterfilled occupancy.
        # Contention equilibria can be multi-stable (elastic reuse-heavy
        # workloads exhibit hysteresis); seed from the warm state — every
        # working set resident up to capacity — which is where a real
        # host arrives after admission, and damp the iteration.
        occupancy = {
            name: min(caps[name], capacity) for name in behaviors
        }
        pressures: Dict[str, float] = {}
        for _ in range(self.iterations):
            for name, behavior in behaviors.items():
                hit = hit_probability(behavior, occupancy[name])
                cpi = cycles_per_instruction(behavior, hit, latency)
                inst_per_ms = freq_khz / cpi
                pressures[name] = (
                    inst_per_ms * behavior.lapki / 1000.0 * (1.0 - hit)
                )
            equilibrium = waterfill_allocation(capacity, pressures, caps)
            occupancy = {
                name: 0.5 * occupancy[name]
                + 0.5 * equilibrium.get(name, occupancy[name])
                for name in behaviors
            }

        assessment = ColocationAssessment()
        for workload in workloads:
            behavior = behaviors[workload.name]
            solo_occ = min(behavior.wss_lines, capacity)
            solo_ipc = 1.0 / cycles_per_instruction(
                behavior, hit_probability(behavior, solo_occ), latency
            )
            hit = hit_probability(behavior, occupancy[workload.name])
            co_ipc = 1.0 / cycles_per_instruction(behavior, hit, latency)
            assessment.predicted_degradation[workload.name] = max(
                0.0, 100.0 * (1.0 - co_ipc / solo_ipc)
            )
            assessment.predicted_occupancy[workload.name] = occupancy[
                workload.name
            ]
            assessment.predicted_pollution[workload.name] = pressures[
                workload.name
            ]
        return assessment

    def admit(
        self,
        incumbent: Sequence[Workload],
        candidate: Workload,
        degradation_budget_percent: float = 15.0,
    ) -> bool:
        """Admission check: may ``candidate`` join ``incumbent``?

        Returns True when the predicted worst-case degradation across
        *everyone* (incumbents included — they have SLOs too) stays
        within the budget.
        """
        assessment = self.assess(list(incumbent) + [candidate])
        return assessment.acceptable(degradation_budget_percent)

    # -- tier 2: faithful cross-check ------------------------------------------

    def cross_check(
        self, workloads: Sequence[Workload]
    ) -> Dict[str, CoRunReport]:
        """Co-run set-sampled captures through the faithful shared LLC.

        Returns per-workload replay reports; useful to confirm the
        predicted miss-pressure ordering on real replacement behaviour.
        Captures are truncated to a common length so every workload stays
        active for the whole measured window.
        """
        machine = (
            set_sampled_machine(self.machine, self.sampling_factor)
            if self.sampling_factor > 1
            else self.machine
        )
        replayer = MultiCoreReplayer(machine)
        captures = {}
        for workload in workloads:
            scaled = (
                set_sampled_workload(workload, self.sampling_factor)
                if self.sampling_factor > 1
                else workload
            )
            captures[workload.name] = self._pin.capture(scaled)
        shortest = min(len(records) for records in captures.values())
        captures = {
            name: records[:shortest] for name, records in captures.items()
        }
        return replayer.co_run(captures)
