"""Pointer-chase micro-benchmark (Section 2.2.2 of the paper).

The paper's micro benchmark — from Drepper's "What every programmer should
know about memory" — builds a circular linked list of a given working-set
size whose elements are randomly chained, then walks it.  Every hop is a
dependent load: no memory-level parallelism, and the level that services
the hops is decided purely by where the working set fits.

The paper classifies VMs accordingly (Section 2.2.4):

* **C1** — working set fits in the intermediate-level caches (L1+L2);
* **C2** — working set fits in the LLC;
* **C3** — working set exceeds the LLC.

This module derives a :class:`~repro.cachesim.perfmodel.CacheBehavior`
from a working-set size and the machine's cache geometry, and provides the
representative/disruptive VM pairs of Figs 1-2.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Optional

from repro.cachesim.perfmodel import CacheBehavior
from repro.hardware.specs import MachineSpec, SocketSpec, paper_machine

from .base import LINE_BYTES, Workload, bytes_to_lines

#: Instructions per list hop (load + pointer arithmetic + loop overhead).
INSTRUCTIONS_PER_HOP = 8
#: Pointer chases are fully dependent loads: one outstanding miss.
POINTER_CHASE_MLP = 1.2
#: Disruptive micro VMs use an independent (prefetch-friendly) walk whose
#: misses overlap heavily — maximum eviction bandwidth, as intended by
#: the paper's purpose-built "disruptive" benchmarks.
DISRUPTIVE_WALK_MLP = 16.0
#: Loop body cost excluding the chased load.
POINTER_CHASE_BASE_CPI = 0.5
#: A cyclic chase exhibits the LRU cliff: a line must survive one full
#: lap to hit, so hit probability collapses quickly once the combined
#: working sets overflow the cache.  A high locality exponent models it.
POINTER_CHASE_THETA = 4.0


class CacheFitCategory(IntEnum):
    """The paper's C1/C2/C3 classification."""

    C1_FITS_ILC = 1
    C2_FITS_LLC = 2
    C3_EXCEEDS_LLC = 3


def classify_working_set(wss_bytes: int, socket: SocketSpec) -> CacheFitCategory:
    """Classify a working-set size against a socket's cache sizes."""
    if wss_bytes <= 0:
        raise ValueError(f"working set must be positive, got {wss_bytes}")
    ilc_bytes = socket.l1d.size_bytes + socket.l2.size_bytes
    if wss_bytes <= ilc_bytes:
        return CacheFitCategory.C1_FITS_ILC
    if wss_bytes <= socket.llc.size_bytes:
        return CacheFitCategory.C2_FITS_LLC
    return CacheFitCategory.C3_EXCEEDS_LLC


def pointer_chase_behavior(
    wss_bytes: int,
    socket: Optional[SocketSpec] = None,
    disruptive: bool = False,
) -> CacheBehavior:
    """Cache behaviour of a micro-benchmark walk over ``wss_bytes``.

    A C1 walk never leaves the private caches, so it produces no LLC
    traffic at all (``lapki = 0``); C2/C3 walks send every hop to the LLC
    level.  ``disruptive`` selects the paper's purpose-built disruptive
    variant: an independent-access walk whose misses overlap (high MLP),
    maximising eviction bandwidth, versus the dependent pointer chase of
    the representative VMs.
    """
    if socket is None:
        socket = paper_machine().sockets[0]
    category = classify_working_set(wss_bytes, socket)
    hops_per_kinst = 1000.0 / INSTRUCTIONS_PER_HOP
    if category is CacheFitCategory.C1_FITS_ILC:
        lapki = 0.0
    else:
        lapki = hops_per_kinst
    return CacheBehavior(
        wss_lines=bytes_to_lines(wss_bytes),
        lapki=lapki,
        base_cpi=POINTER_CHASE_BASE_CPI,
        locality_theta=POINTER_CHASE_THETA,
        stream_fraction=0.0,
        mlp=DISRUPTIVE_WALK_MLP if disruptive else POINTER_CHASE_MLP,
    )


def micro_workload(
    wss_bytes: int,
    socket: Optional[SocketSpec] = None,
    total_instructions: Optional[float] = None,
    disruptive: bool = False,
) -> Workload:
    """A micro-benchmark workload over ``wss_bytes`` of memory."""
    behavior = pointer_chase_behavior(wss_bytes, socket, disruptive=disruptive)
    size_mb = wss_bytes / (1024 * 1024)
    kind = "disruptive walk" if disruptive else "pointer chase"
    return Workload(
        name=f"micro-{size_mb:g}MB{'-dis' if disruptive else ''}",
        behavior=behavior,
        total_instructions=total_instructions,
        description=f"random circular {kind} (Drepper micro-benchmark)",
    )


@dataclass(frozen=True)
class MicroVmPair:
    """The representative/disruptive working sets of one category."""

    category: CacheFitCategory
    representative_bytes: int
    disruptive_bytes: int


def category_pairs(machine: Optional[MachineSpec] = None) -> dict:
    """Working-set sizes for v{1,2,3}_rep and v{1,2,3}_dis (Figs 1-2).

    Representatives sit comfortably inside their category; disruptors are
    sized at the aggressive end of it (a C2 disruptor nearly fills the
    LLC; a C3 disruptor is several times larger than it).
    """
    if machine is None:
        machine = paper_machine()
    socket = machine.sockets[0]
    ilc = socket.l1d.size_bytes + socket.l2.size_bytes
    llc = socket.llc.size_bytes
    return {
        CacheFitCategory.C1_FITS_ILC: MicroVmPair(
            CacheFitCategory.C1_FITS_ILC,
            representative_bytes=ilc // 2,
            disruptive_bytes=ilc,
        ),
        CacheFitCategory.C2_FITS_LLC: MicroVmPair(
            CacheFitCategory.C2_FITS_LLC,
            representative_bytes=int(llc * 0.25),
            disruptive_bytes=int(llc * 0.95),
        ),
        CacheFitCategory.C3_EXCEEDS_LLC: MicroVmPair(
            CacheFitCategory.C3_EXCEEDS_LLC,
            representative_bytes=int(llc * 1.2),
            disruptive_bytes=llc * 8,
        ),
    }
