"""Workloads: calibrated SPEC CPU2006 / blockie profiles, the pointer-chase
micro-benchmark and synthetic address-trace generation."""

from .base import LINE_BYTES, Workload, WorkloadProgress, bytes_to_lines
from .micro import (
    CacheFitCategory,
    MicroVmPair,
    category_pairs,
    classify_working_set,
    micro_workload,
    pointer_chase_behavior,
)
from .interactive import InteractiveWorkload, web_tier_workload
from .phased import Phase, PhasedWorkload, bursty_workload
from .profiles import (
    DISRUPTIVE_APPS,
    FIG4_APPLICATIONS,
    PAPER_ORDER_EQUATION1,
    PAPER_ORDER_LLCM,
    PAPER_ORDER_REAL,
    SENSITIVE_APPS,
    application_behavior,
    application_names,
    application_workload,
    vm_application,
    vm_workload,
)
from .tracegen import (
    TraceConfig,
    generate_trace,
    pointer_chain_addresses,
    walk_pointer_chain,
)

__all__ = [
    "CacheFitCategory",
    "DISRUPTIVE_APPS",
    "FIG4_APPLICATIONS",
    "InteractiveWorkload",
    "web_tier_workload",
    "LINE_BYTES",
    "MicroVmPair",
    "PAPER_ORDER_EQUATION1",
    "Phase",
    "PhasedWorkload",
    "bursty_workload",
    "PAPER_ORDER_LLCM",
    "PAPER_ORDER_REAL",
    "SENSITIVE_APPS",
    "TraceConfig",
    "Workload",
    "WorkloadProgress",
    "application_behavior",
    "application_names",
    "application_workload",
    "bytes_to_lines",
    "category_pairs",
    "classify_working_set",
    "generate_trace",
    "micro_workload",
    "pointer_chain_addresses",
    "pointer_chase_behavior",
    "vm_application",
    "vm_workload",
    "walk_pointer_chain",
]
