"""Synthetic address-trace generation.

The McSimA+ replay path (Section 3.3, second monitoring solution) needs an
instruction/address stream to replay through the faithful cache simulator.
On the real system the stream comes from a pin tool; here we synthesise
one from an application's :class:`~repro.cachesim.perfmodel.CacheBehavior`
so the replay exercises the same working set, locality skew and streaming
fraction that the analytical model encodes.

Traces are generated lazily (iterator of line addresses) so arbitrarily
long samples never materialise in memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.cachesim.perfmodel import CacheBehavior
from repro.simulation.rng import seeded_stream

from .base import LINE_BYTES


@dataclass(frozen=True)
class TraceConfig:
    """Knobs for synthetic trace generation.

    Attributes:
        hot_fraction: fraction of the working set considered "hot" when the
            behaviour's locality exponent is below 1.
        seed: RNG seed for reproducibility.
        base_address: first byte address of the working set.
    """

    hot_fraction: float = 0.2
    seed: int = 0
    base_address: int = 1 << 30

    def __post_init__(self) -> None:
        if not 0.0 < self.hot_fraction <= 1.0:
            raise ValueError(
                f"hot_fraction must be in (0,1], got {self.hot_fraction}"
            )


def _hot_access_probability(theta: float, hot_fraction: float) -> float:
    """Probability an access targets the hot subset.

    Chosen so the synthetic stream's concentration matches the analytical
    hit-probability curve: theta = 1 means uniform access (probability
    equals the hot fraction itself); smaller theta concentrates accesses.
    """
    if theta >= 1.0:
        return hot_fraction
    # Interpolate between fully-concentrated (theta→0) and uniform.
    return hot_fraction + (1.0 - hot_fraction) * (1.0 - theta)


def generate_trace(
    behavior: CacheBehavior,
    num_accesses: int,
    config: Optional[TraceConfig] = None,
) -> Iterator[int]:
    """Yield ``num_accesses`` byte addresses mimicking ``behavior``.

    * Streaming accesses sweep fresh lines sequentially (never reused).
    * Reuse accesses pick lines from the working set, preferring the hot
      subset according to the locality exponent.
    """
    if num_accesses < 0:
        raise ValueError(f"num_accesses must be >= 0, got {num_accesses}")
    if config is None:
        config = TraceConfig()
    # Nameless stream is deliberate: trace goldens pin sha256 digests of
    # traces generated from the seed-global stream.
    rng = seeded_stream(config.seed)  # kyotolint: disable=S002

    wss_lines = max(1, int(behavior.wss_lines))
    hot_lines = max(1, int(wss_lines * config.hot_fraction))
    hot_prob = _hot_access_probability(behavior.locality_theta, config.hot_fraction)
    base_line = config.base_address // LINE_BYTES
    # Streaming region sits far above the reuse region so they never alias.
    stream_line = base_line + 2 * wss_lines
    stream_cursor = 0

    for _ in range(num_accesses):
        if rng.random() < behavior.stream_fraction:
            line = stream_line + stream_cursor
            stream_cursor += 1
        elif rng.random() < hot_prob:
            line = base_line + rng.randrange(hot_lines)
        else:
            line = base_line + hot_lines + rng.randrange(
                max(1, wss_lines - hot_lines)
            )
        yield line * LINE_BYTES


def pointer_chain_addresses(
    wss_bytes: int, seed: int = 0, base_address: int = 1 << 30
) -> List[int]:
    """Materialise a random circular pointer chain over ``wss_bytes``.

    Returns the sequence of byte addresses one full walk visits — the
    exact structure of the paper's micro-benchmark: every line of the
    working set is visited exactly once per lap, in a fixed random order.
    """
    num_lines = max(1, wss_bytes // LINE_BYTES)
    order = list(range(num_lines))
    # Nameless stream is deliberate: golden-pinned, see generate_trace.
    seeded_stream(seed).shuffle(order)  # kyotolint: disable=S002
    base_line = base_address // LINE_BYTES
    return [(base_line + line) * LINE_BYTES for line in order]


def walk_pointer_chain(chain: List[int], laps: int) -> Iterator[int]:
    """Yield the addresses of ``laps`` complete walks of the chain."""
    if laps < 0:
        raise ValueError(f"laps must be >= 0, got {laps}")
    for _ in range(laps):
        for address in chain:
            yield address
