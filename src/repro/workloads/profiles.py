"""Calibrated application profiles.

The paper evaluates Kyoto with SPEC CPU2006 applications plus *blockie*
(the contention kernel of Mars & Soffa, WBIA 2009).  The binaries and
their traces are not available here, so each application is replaced by a
synthetic profile — a :class:`~repro.cachesim.perfmodel.CacheBehavior` —
calibrated to reproduce the cache-level characteristics that the paper's
evaluation actually depends on:

* the solo miss volume ranking ("LLCM" in Fig 4, o2):
  milc > lbm > soplex > mcf > blockie > gcc > omnetpp > xalan > astar > bzip
* the solo equation-1 ranking (Fig 4, o3):
  lbm > blockie > milc > mcf > soplex > gcc > omnetpp > xalan > astar > bzip
* the *real aggressiveness* ranking measured in co-execution (Fig 4, o1):
  blockie > lbm > mcf > soplex > milc > omnetpp > gcc > xalan > astar > bzip
* sensitivity of the paper's sensitive VMs (gcc, omnetpp, soplex) to
  co-located disruptors (Figs 3, 5, 6, 8).

The discriminating cases: *milc* produces the largest miss volume but is
mostly streaming, so its eviction pressure barely grows under contention
(real rank 5); *blockie* keeps a near-LLC-sized hot set that it re-walks
aggressively, so contention makes its miss (and insertion) rate explode —
the most contentious application in co-execution even though its solo miss
volume is modest (rank 5).

Calibration targets are expressed in the same units as the paper's
figures: equation-1 values of the big disruptors land in the hundreds of
thousands of misses per millisecond, so the paper's booked ``llc_cap``
values (250k in Fig 5, 50k in Fig 6) can be used verbatim.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.cachesim.perfmodel import CacheBehavior

from .base import Workload, bytes_to_lines

MB = 1024 * 1024


def _behavior(
    wss_mb: float,
    lapki: float,
    base_cpi: float,
    theta: float,
    stream_fraction: float,
    mlp: float,
    pollution_footprint_mb: Optional[float] = None,
) -> CacheBehavior:
    footprint = (
        bytes_to_lines(pollution_footprint_mb * MB)
        if pollution_footprint_mb is not None
        else None
    )
    return CacheBehavior(
        wss_lines=bytes_to_lines(wss_mb * MB),
        lapki=lapki,
        base_cpi=base_cpi,
        locality_theta=theta,
        stream_fraction=stream_fraction,
        mlp=mlp,
        pollution_footprint_lines=footprint,
    )


#: Calibrated profiles.  Columns: wss (MB), LLC accesses per kilo-instr,
#: base CPI, locality exponent, streaming fraction, memory-level parallelism.
_PROFILE_PARAMS: Dict[str, Tuple[float, float, float, float, float, float]] = {
    # -- disruptive applications (Table 2: vdis1..3) -------------------------
    # lbm: large streaming stencil; highest solo misses-per-ms.
    "lbm": (60.0, 304.0, 0.50, 1.0, 0.92, 36.0),
    # blockie: synthetic contention kernel; hot set sized just beyond the
    # LLC, so any co-runner makes its miss rate explode and no footprint
    # cap shelters its victims.
    "blockie": (12.0, 362.0, 0.90, 2.5, 0.25, 107.6),
    # mcf: pointer-heavy, big working set, strongly reuse-driven.
    "mcf": (28.0, 392.0, 0.90, 0.7, 0.15, 30.8),
    # -- sensitive applications (Table 2: vsen1..3) --------------------------
    # gcc: medium working set, a large streaming component.
    "gcc": (6.0, 240.0, 0.70, 0.8, 0.50, 14.3),
    # omnetpp: discrete-event simulator; reuse-heavy scattered heap.
    "omnetpp": (6.5, 450.0, 0.80, 1.8, 0.20, 26.6),
    # soplex: LP solver; large reusable matrices, very contention-elastic.
    "soplex": (16.0, 468.0, 0.80, 1.5, 0.10, 24.0),
    # -- the rest of the Fig 4 application set -------------------------------
    # milc: lattice QCD; enormous miss volume but mostly streaming, and its
    # scans are confined by adaptive replacement (pollution footprint 8 MB),
    # which is why its real aggressiveness trails its miss volume.
    "milc": (35.0, 345.0, 0.80, 1.0, 0.85, 22.7, 6.5),
    "xalan": (4.0, 171.0, 0.90, 0.9, 0.35, 10.5),
    "astar": (3.0, 117.0, 1.00, 0.8, 0.30, 6.9),
    "bzip": (2.5, 72.0, 1.81, 0.8, 0.25, 8.0),
    # -- applications used in the overhead experiments -----------------------
    # hmmer: tiny working set, almost no LLC traffic (Fig 10).
    "hmmer": (0.2, 2.0, 0.45, 1.0, 0.10, 1.0),
    # povray: CPU-bound ray tracer (Fig 12).
    "povray": (0.1, 0.5, 0.45, 1.0, 0.05, 1.0),
}

#: Table 2 of the paper: experiment VM name -> application.
SENSITIVE_APPS: Dict[str, str] = {
    "vsen1": "gcc",
    "vsen2": "omnetpp",
    "vsen3": "soplex",
}
DISRUPTIVE_APPS: Dict[str, str] = {
    "vdis1": "lbm",
    "vdis2": "blockie",
    "vdis3": "mcf",
}

#: The ten applications ranked in Fig 4, in alphabetical order.
FIG4_APPLICATIONS: List[str] = [
    "astar",
    "blockie",
    "bzip",
    "gcc",
    "lbm",
    "mcf",
    "milc",
    "omnetpp",
    "soplex",
    "xalan",
]

#: Fig 4's published orderings, most aggressive first.
PAPER_ORDER_REAL: List[str] = [
    "blockie", "lbm", "mcf", "soplex", "milc",
    "omnetpp", "gcc", "xalan", "astar", "bzip",
]
PAPER_ORDER_LLCM: List[str] = [
    "milc", "lbm", "soplex", "mcf", "blockie",
    "gcc", "omnetpp", "xalan", "astar", "bzip",
]
PAPER_ORDER_EQUATION1: List[str] = [
    "lbm", "blockie", "milc", "mcf", "soplex",
    "gcc", "omnetpp", "xalan", "astar", "bzip",
]


def application_names() -> List[str]:
    """All modelled applications."""
    return sorted(_PROFILE_PARAMS)


def application_behavior(name: str) -> CacheBehavior:
    """Cache behaviour of application ``name``."""
    try:
        params = _PROFILE_PARAMS[name]
    except KeyError:
        raise ValueError(
            f"unknown application '{name}'; known: {application_names()}"
        ) from None
    return _behavior(*params)


def application_workload(
    name: str, total_instructions: Optional[float] = None
) -> Workload:
    """Build a :class:`Workload` for application ``name``.

    ``total_instructions`` makes the workload finite (used by the
    execution-time experiments, Figs 8, 9, 12).
    """
    return Workload(
        name=name,
        behavior=application_behavior(name),
        total_instructions=total_instructions,
        description=f"calibrated synthetic profile of {name}",
    )


def vm_application(vm_name: str) -> str:
    """Resolve a Table 2 VM name (vsen1..3 / vdis1..3) to its application."""
    if vm_name in SENSITIVE_APPS:
        return SENSITIVE_APPS[vm_name]
    if vm_name in DISRUPTIVE_APPS:
        return DISRUPTIVE_APPS[vm_name]
    raise ValueError(
        f"unknown experiment VM '{vm_name}'; expected one of "
        f"{sorted(SENSITIVE_APPS) + sorted(DISRUPTIVE_APPS)}"
    )


def vm_workload(
    vm_name: str, total_instructions: Optional[float] = None
) -> Workload:
    """Workload for a Table 2 VM name."""
    return application_workload(vm_application(vm_name), total_instructions)
