"""Interactive (burst/think) workloads.

The paper's VMs are CPU-bound, but real consolidated hosts mix in
latency-sensitive, mostly-idle VMs (web tiers, interactive services).
These alternate *bursts* of computation with *think time* during which
the vCPU blocks — the case Xen's BOOST priority exists for, and a good
stress test for any scheduler extension (Kyoto must not break wake-up
latency for VMs that pollute next to nothing).

An :class:`InteractiveWorkload` runs ``burst_instructions``, then blocks
for ``think_usec`` of wall-clock time, repeatedly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cachesim.perfmodel import CacheBehavior

from .base import Workload


class InteractiveWorkload(Workload):
    """A workload alternating computation bursts and blocked think time."""

    def __init__(
        self,
        name: str,
        behavior: CacheBehavior,
        burst_instructions: float,
        think_usec: int,
        total_instructions: Optional[float] = None,
        description: str = "",
    ) -> None:
        if burst_instructions <= 0:
            raise ValueError(
                f"burst_instructions must be positive, got {burst_instructions}"
            )
        if think_usec < 0:
            raise ValueError(f"think_usec must be >= 0, got {think_usec}")
        super().__init__(
            name=name,
            behavior=behavior,
            total_instructions=total_instructions,
            description=description or "interactive burst/think workload",
        )
        self.burst_instructions = burst_instructions
        self.think_usec = think_usec

    def next_block_boundary(self, instructions_done: float) -> float:
        """Instruction count at which the current burst ends."""
        bursts_completed = int(instructions_done / self.burst_instructions)
        return (bursts_completed + 1) * self.burst_instructions


def web_tier_workload(
    burst_instructions: float = 5e6,
    think_usec: int = 20_000,
    behavior: Optional[CacheBehavior] = None,
    name: str = "web-tier",
) -> InteractiveWorkload:
    """A typical interactive service: short bursts, 20 ms think time."""
    if behavior is None:
        behavior = CacheBehavior(
            wss_lines=8_192, lapki=20.0, base_cpi=0.6, locality_theta=0.8,
            stream_fraction=0.1, mlp=4.0,
        )
    return InteractiveWorkload(
        name=name,
        behavior=behavior,
        burst_instructions=burst_instructions,
        think_usec=think_usec,
    )
