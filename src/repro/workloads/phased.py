"""Multi-phase workloads.

Real applications change cache behaviour over their lifetime (gcc
alternates parsing, optimisation and code-generation phases; solvers
alternate assembly and factorisation).  Phase changes are what make
Kyoto's *runtime* monitoring necessary — a statically profiled llc_cap
would mis-charge an application that streams for a minute and then
computes quietly for an hour.

:class:`PhasedWorkload` cycles through ``(behavior, instructions)``
phases; the machine simulation queries ``behavior_at`` with the vCPU's
retired-instruction count each sub-step, so phase boundaries take effect
mid-run exactly as they would under a real monitor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.cachesim.perfmodel import CacheBehavior

from .base import Workload


@dataclass(frozen=True)
class Phase:
    """One phase: a cache behaviour held for a number of instructions."""

    behavior: CacheBehavior
    instructions: float

    def __post_init__(self) -> None:
        if self.instructions <= 0:
            raise ValueError(
                f"phase length must be positive, got {self.instructions}"
            )


class PhasedWorkload(Workload):
    """A workload cycling through phases (repeating after the last).

    ``total_instructions`` still controls completion; phases only select
    the behaviour active at each point of the execution.
    """

    def __init__(
        self,
        name: str,
        phases: Sequence[Phase],
        total_instructions: Optional[float] = None,
        description: str = "",
        repeat: bool = True,
    ) -> None:
        if not phases:
            raise ValueError("a phased workload needs at least one phase")
        super().__init__(
            name=name,
            behavior=phases[0].behavior,
            total_instructions=total_instructions,
            description=description or "multi-phase synthetic workload",
        )
        self.phases: List[Phase] = list(phases)
        self.repeat = repeat
        self._cycle_instructions = sum(p.instructions for p in self.phases)

    @property
    def cycle_instructions(self) -> float:
        """Instructions in one full pass over all phases."""
        return self._cycle_instructions

    def phase_index_at(self, instructions_done: float) -> int:
        """Index of the phase active after ``instructions_done``."""
        if instructions_done < 0:
            raise ValueError(
                f"instructions_done must be >= 0, got {instructions_done}"
            )
        position = instructions_done
        if self.repeat:
            position = position % self._cycle_instructions
        for index, phase in enumerate(self.phases):
            if position < phase.instructions:
                return index
            position -= phase.instructions
        return len(self.phases) - 1  # non-repeating: stay in the last phase

    def behavior_at(self, instructions_done: float) -> CacheBehavior:
        return self.phases[self.phase_index_at(instructions_done)].behavior


def bursty_workload(
    name: str,
    quiet: CacheBehavior,
    noisy: CacheBehavior,
    quiet_instructions: float = 2e8,
    noisy_instructions: float = 1e8,
    total_instructions: Optional[float] = None,
) -> PhasedWorkload:
    """Convenience: a workload alternating quiet and polluting phases.

    This is the adversarial pattern for static permit sizing: its
    *average* pollution may sit below a permit that its noisy bursts
    individually exceed.
    """
    return PhasedWorkload(
        name=name,
        phases=[
            Phase(quiet, quiet_instructions),
            Phase(noisy, noisy_instructions),
        ],
        total_instructions=total_instructions,
        description="alternating quiet/noisy phases",
    )
