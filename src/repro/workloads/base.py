"""Workload abstractions.

A :class:`Workload` is what a VM runs: a cache behaviour (how it exercises
the memory hierarchy) plus an optional amount of work (total instructions)
after which it completes.  Workloads with ``total_instructions=None`` run
forever — the usual setup for the contention experiments, where metrics
are rates (IPC, misses per millisecond) rather than completion times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cachesim.perfmodel import CacheBehavior

#: Bytes per LLC line used when converting working-set sizes.
LINE_BYTES = 64


def bytes_to_lines(size_bytes: float) -> float:
    """Convert a working-set size in bytes to LLC lines."""
    return size_bytes / LINE_BYTES


@dataclass
class Workload:
    """An application a VM executes.

    Attributes:
        name: application name (e.g. ``"gcc"``, ``"lbm"``, ``"micro-6MB"``).
        behavior: cache-level characterisation driving the perf model.
        total_instructions: amount of work; None means run forever.
        description: free-text provenance note.
    """

    name: str
    behavior: CacheBehavior
    total_instructions: Optional[float] = None
    description: str = ""

    def __post_init__(self) -> None:
        if self.total_instructions is not None and self.total_instructions <= 0:
            raise ValueError(
                f"total_instructions must be positive or None, "
                f"got {self.total_instructions}"
            )

    def behavior_at(self, instructions_done: float) -> CacheBehavior:
        """Cache behaviour after ``instructions_done`` instructions.

        The base workload is single-phase; :class:`PhasedWorkload`
        overrides this to model applications whose cache behaviour
        changes over their execution.
        """
        return self.behavior

    def finite(self, total_instructions: float) -> "Workload":
        """Copy of this workload with a fixed amount of work."""
        return Workload(
            name=self.name,
            behavior=self.behavior,
            total_instructions=total_instructions,
            description=self.description,
        )

    @property
    def is_finite(self) -> bool:
        return self.total_instructions is not None


@dataclass
class WorkloadProgress:
    """Mutable execution state of one workload instance on a vCPU."""

    workload: Workload
    instructions_done: float = 0.0
    finished_at_usec: Optional[int] = None

    @property
    def done(self) -> bool:
        """True once the (finite) workload has retired all instructions."""
        if self.workload.total_instructions is None:
            return False
        return self.instructions_done >= self.workload.total_instructions

    def advance(self, instructions: float) -> None:
        if instructions < 0:
            raise ValueError(f"cannot retire {instructions} instructions")
        self.instructions_done += instructions

    @property
    def remaining_instructions(self) -> float:
        """Instructions left (infinity for endless workloads)."""
        if self.workload.total_instructions is None:
            return float("inf")
        return max(0.0, self.workload.total_instructions - self.instructions_done)
