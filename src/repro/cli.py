"""Command-line interface.

Run any of the paper's reproduced experiments from a shell::

    python -m repro list
    python -m repro run fig05
    python -m repro run table1 fig02
    python -m repro run all --jobs 4 --json out/
    python -m repro campaign out/ --output BENCH.json

Each experiment prints the same rows/series the paper's figure or table
reports (see EXPERIMENTS.md for the paper-vs-measured record).
``--jobs N`` fans experiments out over worker processes (reports stay
byte-identical to a serial run), ``--json DIR`` writes one JSON artifact
per experiment, and ``campaign`` aggregates an artifact directory into a
single summary (see docs/telemetry.md).

The repo's own static-analysis gate (docs/static_analysis.md) runs as::

    python -m repro lint [paths ...] [--format json] [--baseline FILE]
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import Callable, Dict, List, Optional, Tuple

from repro.experiments import campaign as campaign_mod
from repro.experiments.registry import REGISTRY, expand_names

#: name -> (description, runner) — kept as the CLI's legacy public
#: surface; the canonical table is repro.experiments.registry.REGISTRY.
EXPERIMENTS: Dict[str, Tuple[str, Callable[[], str]]] = {
    spec.name: (spec.description, spec.runner) for spec in REGISTRY.values()
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Mitigating performance unpredictability in "
            "the IaaS using the Kyoto principle' (Middleware 2016)."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    subparsers.add_parser("list", help="list the available experiments")
    run_parser = subparsers.add_parser("run", help="run experiments")
    run_parser.add_argument(
        "experiments",
        nargs="+",
        help="experiment names (see 'list'), or 'all'",
    )
    run_parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes (default 1 = serial; output is identical)",
    )
    run_parser.add_argument(
        "--json",
        dest="json_dir",
        metavar="DIR",
        help="write one {name}.json artifact per experiment into DIR",
    )
    run_parser.add_argument(
        "--timeout-sec",
        dest="timeout_sec",
        type=float,
        default=None,
        metavar="SEC",
        help=(
            "per-experiment watchdog: run each experiment in a supervised "
            "subprocess killed after SEC seconds (a hang is reported like "
            "a crash and the batch continues; implies serial execution)"
        ),
    )
    campaign_parser = subparsers.add_parser(
        "campaign",
        help="aggregate a --json artifact directory into one summary",
    )
    campaign_parser.add_argument(
        "artifact_dir",
        help="directory of {name}.json artifacts from 'run --json'",
    )
    campaign_parser.add_argument(
        "--output",
        metavar="FILE",
        help="write the campaign summary JSON to FILE instead of stdout",
    )
    lint_parser = subparsers.add_parser(
        "lint", help="run kyotolint over the source tree"
    )
    lint_parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the repro package)",
    )
    lint_parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    lint_parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="baseline file; matching findings warn instead of failing",
    )
    lint_parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the --baseline file from the current findings",
    )
    lint_parser.add_argument(
        "--rules",
        action="store_true",
        help="list the known rules and exit",
    )
    return parser


def list_experiments() -> str:
    lines = ["available experiments:"]
    for name, (description, __) in EXPERIMENTS.items():
        lines.append(f"  {name:8s} {description}")
    lines.append("  all      run everything")
    return "\n".join(lines)


def run_experiments(
    names: List[str],
    out=sys.stdout,
    jobs: int = 1,
    json_dir: Optional[str] = None,
    timeout_sec: Optional[float] = None,
) -> int:
    """Run experiments (the ``repro run`` subcommand).

    ``all`` expands deterministically to the registry order and repeated
    names run once; a crashing experiment is reported and the batch
    continues (nonzero exit code).  ``jobs > 1`` fans out over worker
    processes without changing the report text; ``timeout_sec`` arms the
    per-experiment watchdog.
    """
    known, unknown = expand_names(names)
    if unknown:
        out.write(
            f"unknown experiment(s): {', '.join(unknown)}\n{list_experiments()}\n"
        )
        return 2
    return campaign_mod.run_campaign(
        known, jobs=jobs, json_dir=json_dir, out=out, timeout_sec=timeout_sec
    )


def run_lint(args, out=sys.stdout) -> int:
    """The ``repro lint`` subcommand (see repro.lint)."""
    from repro import lint as kyotolint

    if args.rules:
        for rule in kyotolint.ALL_RULES:
            out.write(f"{rule.rule_id}  {rule.description}\n")
        return 0
    paths = args.paths or [str(pathlib.Path(__file__).parent)]
    missing = [p for p in paths if not pathlib.Path(p).exists()]
    if missing:
        sys.stderr.write(f"repro lint: error: no such path: {', '.join(missing)}\n")
        return 2
    findings = kyotolint.lint_paths(paths)
    if args.baseline:
        if args.update_baseline:
            kyotolint.Baseline.from_findings(findings).save(args.baseline)
            out.write(
                f"baseline {args.baseline} updated "
                f"({len(findings)} entries)\n"
            )
            return 0
        try:
            baseline = kyotolint.Baseline.load(args.baseline)
        except kyotolint.BaselineError as exc:
            sys.stderr.write(f"repro lint: error: {exc}\n")
            return 2
        baseline.apply(findings)
    formatter = (
        kyotolint.format_json if args.format == "json" else kyotolint.format_text
    )
    out.write(formatter(findings) + "\n")
    return kyotolint.exit_code(findings)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        print(list_experiments())
        return 0
    if args.command == "lint":
        return run_lint(args)
    if args.command == "campaign":
        return campaign_mod.summarize_campaign(args.artifact_dir, output=args.output)
    return run_experiments(
        args.experiments,
        jobs=args.jobs,
        json_dir=args.json_dir,
        timeout_sec=args.timeout_sec,
    )


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
