"""Command-line interface.

Run any of the paper's reproduced experiments from a shell::

    python -m repro list
    python -m repro run fig05
    python -m repro run table1 fig02
    python -m repro run all --jobs 4 --json out/
    python -m repro run examples/scenarios/colocation.toml
    python -m repro campaign out/ --output BENCH.json
    python -m repro scenario validate examples/scenarios/*.toml
    python -m repro serve examples/scenarios/vm_churn.toml --ticks 100000
    python -m repro herd run all --jobs 4 --json herd-out/
    python -m repro herd resume herd-out/

``herd`` is the crash-resilient campaign driver (docs/herd.md): every
point's lifecycle is journalled, transient failures retry under
deterministic backoff, poison points are quarantined, and a killed
campaign resumes from its journal without re-running completed points.

Each experiment prints the same rows/series the paper's figure or table
reports (see EXPERIMENTS.md for the paper-vs-measured record).
``--jobs N`` fans experiments out over worker processes (reports stay
byte-identical to a serial run), ``--json DIR`` writes one JSON artifact
per experiment, and ``campaign`` aggregates an artifact directory into a
single summary (see docs/telemetry.md).

``run`` accepts scenario files (docs/scenarios.md) alongside registry
names; a file with a ``[sweep]`` table expands into one experiment per
grid point.  The ``scenario`` subcommand works with the files
themselves: ``list`` a directory, ``validate`` files, ``show`` the
canonical form of one point, ``run`` files (same engine as ``run``).

``--stream DIR`` (on ``run``, ``scenario run`` and ``serve``) spools
every telemetry series point to a full-resolution on-disk stream
(schema ``repro.telemetry.stream/1``, docs/telemetry.md) so long soaks
keep bounded memory with zero resolution loss, and ``report`` turns
artifact/stream/journal directories back into comparison tables and
series summaries (docs/reporting.md)::

    python -m repro serve examples/scenarios/vm_churn.toml --stream stream/
    python -m repro run chaos-sweep.toml --json out/ --stream out/streams/
    python -m repro report out/ stream/ --format json

The repo's own static-analysis gate (docs/static_analysis.md) runs as::

    python -m repro lint [paths ...] [--format json] [--baseline FILE]
                         [--jobs N] [--cache FILE] [--warn-only]
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import Callable, Dict, List, Optional, Tuple

from repro.experiments import campaign as campaign_mod
from repro.experiments.registry import (
    REGISTRY,
    SCENARIO_SUFFIXES,
    expand_names,
    scenario_points,
    scenario_spec_of,
)
from repro.scenario import ScenarioError, dumps_json, dumps_toml

#: Directory ``repro scenario list`` scans when none is given.
DEFAULT_SCENARIO_DIR = "examples/scenarios"

#: name -> (description, runner) — kept as the CLI's legacy public
#: surface; the canonical table is repro.experiments.registry.REGISTRY.
EXPERIMENTS: Dict[str, Tuple[str, Callable[[], str]]] = {
    spec.name: (spec.description, spec.runner) for spec in REGISTRY.values()
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Mitigating performance unpredictability in "
            "the IaaS using the Kyoto principle' (Middleware 2016)."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    subparsers.add_parser("list", help="list the available experiments")
    run_parser = subparsers.add_parser("run", help="run experiments")
    run_parser.add_argument(
        "experiments",
        nargs="+",
        help="experiment names (see 'list'), or 'all'",
    )
    run_parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes (default 1 = serial; output is identical)",
    )
    run_parser.add_argument(
        "--json",
        dest="json_dir",
        metavar="DIR",
        help="write one {name}.json artifact per experiment into DIR",
    )
    run_parser.add_argument(
        "--timeout-sec",
        dest="timeout_sec",
        type=float,
        default=None,
        metavar="SEC",
        help=(
            "per-experiment watchdog: run each experiment in a supervised "
            "subprocess killed after SEC seconds (a hang is reported like "
            "a crash and the batch continues; combines with --jobs N for "
            "concurrent supervised workers)"
        ),
    )
    run_parser.add_argument(
        "--stream",
        dest="stream_dir",
        metavar="DIR",
        help=(
            "spool each experiment's full-resolution telemetry series "
            "into DIR/<name>/ (repro.telemetry.stream/1, docs/telemetry.md)"
        ),
    )
    herd_parser = subparsers.add_parser(
        "herd",
        help="crash-resilient resumable campaigns (docs/herd.md)",
    )
    herd_sub = herd_parser.add_subparsers(dest="herd_command", required=True)
    herd_run = herd_sub.add_parser(
        "run", help="start a journalled campaign into a fresh directory"
    )
    herd_run.add_argument(
        "experiments",
        nargs="+",
        help="experiment names, scenario/sweep files, or 'all'",
    )
    herd_run.add_argument(
        "--json",
        dest="json_dir",
        required=True,
        metavar="DIR",
        help="campaign directory: artifacts, journal.jsonl, herd-summary.json",
    )
    herd_run.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="concurrently supervised watchdog workers (default 1)",
    )
    herd_run.add_argument(
        "--timeout-sec",
        dest="timeout_sec",
        type=float,
        default=None,
        metavar="SEC",
        help="per-attempt watchdog timeout (a hang retries, then quarantines)",
    )
    herd_run.add_argument(
        "--max-attempts",
        dest="max_attempts",
        type=int,
        default=3,
        metavar="K",
        help="attempt budget per point before quarantine (default 3)",
    )
    herd_run.add_argument(
        "--seed",
        type=int,
        default=0,
        help="master seed for deterministic retry jitter (default 0)",
    )
    herd_run.add_argument(
        "--base-delay-sec",
        dest="base_delay_sec",
        type=float,
        default=0.5,
        metavar="SEC",
        help="backoff base delay before the first retry (default 0.5)",
    )
    herd_run.add_argument(
        "--max-delay-sec",
        dest="max_delay_sec",
        type=float,
        default=30.0,
        metavar="SEC",
        help="backoff delay cap (default 30)",
    )
    herd_resume = herd_sub.add_parser(
        "resume", help="resume a killed/interrupted campaign from its journal"
    )
    herd_resume.add_argument(
        "json_dir", metavar="DIR", help="campaign directory holding journal.jsonl"
    )
    herd_resume.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="override the journalled worker count",
    )
    herd_status = herd_sub.add_parser(
        "status", help="replay a campaign journal and print queue state"
    )
    herd_status.add_argument(
        "json_dir", metavar="DIR", help="campaign directory holding journal.jsonl"
    )
    campaign_parser = subparsers.add_parser(
        "campaign",
        help="aggregate a --json artifact directory into one summary",
    )
    campaign_parser.add_argument(
        "artifact_dir",
        help="directory of {name}.json artifacts from 'run --json'",
    )
    campaign_parser.add_argument(
        "--output",
        metavar="FILE",
        help="write the campaign summary JSON to FILE instead of stdout",
    )
    scenario_parser = subparsers.add_parser(
        "scenario", help="work with scenario files (docs/scenarios.md)"
    )
    scenario_sub = scenario_parser.add_subparsers(
        dest="scenario_command", required=True
    )
    sc_list = scenario_sub.add_parser(
        "list", help="list scenario files in a directory"
    )
    sc_list.add_argument(
        "directory",
        nargs="?",
        default=DEFAULT_SCENARIO_DIR,
        help=f"directory to scan (default: {DEFAULT_SCENARIO_DIR})",
    )
    sc_validate = scenario_sub.add_parser(
        "validate", help="parse + validate scenario files (exit 2 on errors)"
    )
    sc_validate.add_argument(
        "files", nargs="+", help="scenario files (*.toml, *.json)"
    )
    sc_show = scenario_sub.add_parser(
        "show", help="print the canonical form of one scenario (or sweep point)"
    )
    sc_show.add_argument(
        "file", help="scenario file, optionally with a #index sweep point"
    )
    sc_show.add_argument(
        "--format",
        choices=("toml", "json"),
        default="toml",
        help="serialization to print (default: toml)",
    )
    sc_run = scenario_sub.add_parser(
        "run", help="run scenario files (same engine as 'repro run')"
    )
    sc_run.add_argument(
        "files", nargs="+", help="scenario files or file#index sweep points"
    )
    sc_run.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes (default 1 = serial; output is identical)",
    )
    sc_run.add_argument(
        "--json",
        dest="json_dir",
        metavar="DIR",
        help="write one JSON artifact per scenario point into DIR",
    )
    sc_run.add_argument(
        "--timeout-sec",
        dest="timeout_sec",
        type=float,
        default=None,
        metavar="SEC",
        help="per-scenario watchdog (see 'repro run --timeout-sec')",
    )
    sc_run.add_argument(
        "--stream",
        dest="stream_dir",
        metavar="DIR",
        help="full-resolution telemetry streams (see 'repro run --stream')",
    )
    serve_parser = subparsers.add_parser(
        "serve",
        help="run a churn-driven IaaS service soak (docs/service.md)",
    )
    serve_parser.add_argument(
        "spec",
        metavar="SPEC",
        help="scenario file with a [service] section (*.toml, *.json)",
    )
    serve_parser.add_argument(
        "--ticks",
        type=int,
        default=100_000,
        metavar="N",
        help="soak length in scheduler ticks (default: 100000)",
    )
    serve_parser.add_argument(
        "--json",
        dest="json_dir",
        metavar="DIR",
        help="write the repro.service/1 summary JSON into DIR",
    )
    serve_parser.add_argument(
        "--stop-when-idle",
        dest="stop_when_idle",
        action="store_true",
        help=(
            "end early once the fleet is empty and the arrival process "
            "can produce no further VMs"
        ),
    )
    serve_parser.add_argument(
        "--stream",
        dest="stream_dir",
        metavar="DIR",
        help=(
            "spool the soak's full-resolution telemetry series into DIR "
            "(repro.telemetry.stream/1; retired VMs' series survive on "
            "disk even after in-memory compaction)"
        ),
    )
    report_parser = subparsers.add_parser(
        "report",
        help=(
            "summarize artifact/stream/journal directories into "
            "comparison tables (docs/reporting.md)"
        ),
    )
    report_parser.add_argument(
        "dirs",
        nargs="+",
        metavar="DIR",
        help=(
            "directories to ingest: 'run --json' artifacts, herd "
            "campaigns, 'serve --json' summaries, '--stream' directories"
        ),
    )
    report_parser.add_argument(
        "--format",
        choices=("text", "json", "csv"),
        default="text",
        help="output format (default: text)",
    )
    report_parser.add_argument(
        "--output",
        metavar="FILE",
        help="write the report to FILE (atomically) instead of stdout",
    )
    report_parser.add_argument(
        "--counter",
        dest="counters",
        action="append",
        metavar="NAME",
        help=(
            "telemetry counter column for the comparison tables "
            "(repeatable; default: every counter that varies in a group)"
        ),
    )
    report_parser.add_argument(
        "--series",
        dest="series",
        action="append",
        metavar="NAME",
        help=(
            "only summarize series matching NAME exactly or dotted "
            "under it (repeatable; default: all)"
        ),
    )
    report_parser.add_argument(
        "--max-points",
        dest="max_points",
        type=int,
        default=256,
        metavar="N",
        help=(
            "downsampled points embedded per stream series in JSON "
            "output (default: 256)"
        ),
    )
    report_parser.add_argument(
        "--downsample",
        choices=("lttb", "stride-mean"),
        default="lttb",
        help=(
            "offline downsampler for stream series: lttb preserves "
            "visual extrema, stride-mean preserves bucket means "
            "(default: lttb)"
        ),
    )
    bench_parser = subparsers.add_parser(
        "bench", help="run the hot-path benchmark suite (docs/performance.md)"
    )
    bench_parser.add_argument(
        "benchmarks",
        nargs="*",
        metavar="NAME",
        help="benchmark names (default: the whole registry; see --list)",
    )
    bench_parser.add_argument(
        "--list",
        dest="list_benchmarks",
        action="store_true",
        help="list the registered benchmarks and exit",
    )
    bench_parser.add_argument(
        "--json",
        dest="json_path",
        metavar="PATH",
        help="write the repro.bench/2 results document to PATH",
    )
    bench_parser.add_argument(
        "--compare",
        metavar="BASELINE",
        help="compare against a repro.bench/2 baseline (e.g. BENCH_pr5.json)",
    )
    bench_parser.add_argument(
        "--tolerance",
        type=float,
        default=10.0,
        metavar="PCT",
        help=(
            "allowed median slowdown vs the baseline, in percent "
            "(default: 10; exit 1 beyond it)"
        ),
    )
    bench_parser.add_argument(
        "--repeats",
        type=int,
        default=None,
        metavar="N",
        help="timed samples per benchmark (default: 5)",
    )
    bench_parser.add_argument(
        "--warmup",
        type=int,
        default=None,
        metavar="N",
        help="untimed warmup runs per benchmark (default: 1)",
    )
    lint_parser = subparsers.add_parser(
        "lint", help="run kyotolint over the source tree"
    )
    lint_parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the repro package)",
    )
    lint_parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    lint_parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="baseline file; matching findings warn instead of failing",
    )
    lint_parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the --baseline file from the current findings",
    )
    lint_parser.add_argument(
        "--rules",
        action="store_true",
        help="list the known rules and exit",
    )
    lint_parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="analyze files with N worker processes (default: 1)",
    )
    lint_parser.add_argument(
        "--cache",
        metavar="FILE",
        help="on-disk facts cache; skips re-analysis of unchanged files",
    )
    lint_parser.add_argument(
        "--warn-only",
        action="store_true",
        help="demote every finding to the warn tier (report, never gate)",
    )
    return parser


def list_experiments() -> str:
    lines = ["available experiments:"]
    for name, (description, __) in EXPERIMENTS.items():
        lines.append(f"  {name:8s} {description}")
    lines.append("  all      run everything")
    return "\n".join(lines)


def run_experiments(
    names: List[str],
    out=sys.stdout,
    jobs: int = 1,
    json_dir: Optional[str] = None,
    timeout_sec: Optional[float] = None,
    stream_dir: Optional[str] = None,
) -> int:
    """Run experiments (the ``repro run`` subcommand).

    ``all`` expands deterministically to the registry order and repeated
    names run once; a crashing experiment is reported and the batch
    continues (nonzero exit code).  ``jobs > 1`` fans out over worker
    processes without changing the report text; ``timeout_sec`` arms the
    per-experiment watchdog; ``stream_dir`` spools full-resolution
    telemetry streams per experiment.
    """
    known, unknown = expand_names(names)
    if unknown:
        out.write(
            f"unknown experiment(s): {', '.join(unknown)}\n{list_experiments()}\n"
        )
        return 2
    return campaign_mod.run_campaign(
        known,
        jobs=jobs,
        json_dir=json_dir,
        out=out,
        timeout_sec=timeout_sec,
        stream_dir=stream_dir,
    )


def _scenario_files_in(directory: str) -> List[str]:
    root = pathlib.Path(directory)
    return sorted(
        str(path)
        for path in root.iterdir()
        if path.is_file() and path.suffix in SCENARIO_SUFFIXES
    )


def list_scenarios(directory: str, out=sys.stdout) -> int:
    """The ``repro scenario list`` subcommand."""
    if not pathlib.Path(directory).is_dir():
        sys.stderr.write(f"repro scenario: error: no such directory: {directory}\n")
        return 2
    files = _scenario_files_in(directory)
    if not files:
        out.write(f"no scenario files in {directory}\n")
        return 0
    for path in files:
        try:
            points = scenario_points(path)
        except ScenarioError as exc:
            first = str(exc).splitlines()[0]
            out.write(f"{path}: INVALID ({first})\n")
            continue
        spec = points[0][1]
        label = spec.description or spec.name
        suffix = f" [{len(points)} sweep points]" if len(points) > 1 else ""
        out.write(f"{path}: {label}{suffix}\n")
    return 0


def validate_scenarios(files: List[str], out=sys.stdout) -> int:
    """The ``repro scenario validate`` subcommand (exit 2 on any error)."""
    failed = False
    for path in files:
        try:
            points = scenario_points(path)
        except ScenarioError as exc:
            failed = True
            out.write(f"{path}: INVALID\n")
            for line in str(exc).splitlines():
                out.write(f"  {line}\n")
            continue
        names = ", ".join(spec.name for _, spec in points[:3])
        if len(points) > 3:
            names += ", ..."
        plural = "s" if len(points) != 1 else ""
        out.write(f"{path}: OK — {len(points)} point{plural} ({names})\n")
    return 2 if failed else 0


def show_scenario(token: str, fmt: str, out=sys.stdout) -> int:
    """The ``repro scenario show`` subcommand: canonical serialization."""
    try:
        spec = scenario_spec_of(token)
    except ScenarioError as exc:
        sys.stderr.write(f"repro scenario: error:\n{exc}\n")
        return 2
    out.write(dumps_json(spec) if fmt == "json" else dumps_toml(spec))
    return 0


def run_scenario_command(args, out=sys.stdout) -> int:
    """Dispatch ``repro scenario list | validate | show | run``."""
    if args.scenario_command == "list":
        return list_scenarios(args.directory, out=out)
    if args.scenario_command == "validate":
        return validate_scenarios(args.files, out=out)
    if args.scenario_command == "show":
        return show_scenario(args.file, args.format, out=out)
    return run_experiments(
        args.files,
        out=out,
        jobs=args.jobs,
        json_dir=args.json_dir,
        timeout_sec=args.timeout_sec,
        stream_dir=args.stream_dir,
    )


def run_herd_command(args, out=sys.stdout) -> int:
    """Dispatch ``repro herd run | resume | status`` (docs/herd.md)."""
    from repro import herd

    try:
        if args.herd_command == "run":
            config = herd.HerdConfig(
                jobs=args.jobs,
                timeout_sec=args.timeout_sec,
                max_attempts=args.max_attempts,
                backoff=herd.BackoffPolicy(
                    base_delay_sec=args.base_delay_sec,
                    max_delay_sec=args.max_delay_sec,
                ),
                seed=args.seed,
            )
            return herd.run_herd(
                args.experiments, args.json_dir, config, out=out
            )
        if args.herd_command == "resume":
            return herd.resume_herd(args.json_dir, jobs=args.jobs, out=out)
        return herd.herd_status(args.json_dir, out=out)
    except (herd.HerdError, herd.JournalError, herd.BackoffError) as exc:
        sys.stderr.write(f"repro herd: error: {exc}\n")
        return 2


def run_serve(args, out=sys.stdout) -> int:
    """The ``repro serve`` subcommand (docs/service.md).

    Materializes a ``[service]`` scenario and drives its
    :class:`~repro.service.loop.ServiceLoop` for ``--ticks`` ticks.
    ``--stream DIR`` spools every telemetry series point to a
    full-resolution stream directory (implies telemetry even when the
    scenario leaves it off).  Exit codes: 0 ok, 2 usage errors (bad
    file, no service section, unusable stream directory).
    """
    from repro.scenario import load_scenario
    from repro.scenario.materialize import materialize
    from repro.telemetry import (
        MetricsRecorder,
        StreamError,
        StreamingSink,
        recording,
    )
    from repro.util import atomic_write_json

    try:
        spec = load_scenario(args.spec)
    except ScenarioError as exc:
        sys.stderr.write(f"repro serve: error:\n{exc}\n")
        return 2
    if spec.service is None:
        sys.stderr.write(
            f"repro serve: error: {args.spec} has no [service] section; "
            "add one (docs/service.md) or use 'repro scenario run'\n"
        )
        return 2
    if args.ticks < 0:
        sys.stderr.write(
            f"repro serve: error: --ticks must be >= 0, got {args.ticks}\n"
        )
        return 2
    sink = None
    if args.stream_dir is not None:
        try:
            sink = StreamingSink(args.stream_dir)
        except StreamError as exc:
            sys.stderr.write(f"repro serve: error: {exc}\n")
            return 2
    if spec.telemetry.enabled or sink is not None:
        recorder = MetricsRecorder(
            max_series_points=spec.telemetry.series_capacity, sink=sink
        )
        with recording(recorder):
            built = materialize(spec)
    else:
        recorder = None
        built = materialize(spec)
    service = built.service
    assert service is not None  # spec.service checked above
    service.stop_when_idle = args.stop_when_idle or service.stop_when_idle
    out.write(
        f"serving {spec.name}: {args.ticks} ticks, "
        f"{service.churn.process} arrivals at "
        f"{service.churn.rate_per_tick:g}/tick, "
        f"{service.admission.name} admission\n"
    )
    summary = service.run(args.ticks)
    summary["scenario"] = spec.name
    if sink is not None:
        assert recorder is not None
        sink.close(recorder)
        summary["stream"] = {
            "points_streamed": sink.points_streamed,
            "chunks": sink.chunks_rolled,
        }
        out.write(
            f"streamed {sink.points_streamed} series points "
            f"({sink.chunks_rolled} chunks) to {args.stream_dir}\n"
        )
    out.write(
        f"ticks {summary['ticks_run']}  admitted {summary['admitted']}  "
        f"rejected {summary['rejected']}  retired {summary['retired']}  "
        f"drained {summary['drained']}  peak live {summary['peak_live_vms']}  "
        f"final live {summary['final_live_vms']}\n"
    )
    if args.json_dir is not None:
        artifact = pathlib.Path(args.json_dir) / f"{spec.name}.service.json"
        # Atomic: a kill mid-write must never leave a truncated summary
        # (the pre-fix plain open() could).
        atomic_write_json(str(artifact), summary)
        out.write(f"service summary written to {artifact}\n")
    return 0


def run_bench(args, out=sys.stdout) -> int:
    """The ``repro bench`` subcommand (see repro.bench, docs/performance.md).

    Exit codes: 0 ok, 1 at least one benchmark regressed beyond the
    ``--compare`` tolerance, 2 usage errors (unknown benchmark names,
    unreadable baselines, invalid repeat counts).
    """
    from repro import bench

    if args.list_benchmarks:
        for benchmark in bench.BENCHMARKS:
            out.write(f"{benchmark.name:22s} {benchmark.description}\n")
        return 0
    try:
        selected = (
            bench.benchmarks_named(args.benchmarks)
            if args.benchmarks
            else list(bench.BENCHMARKS)
        )
    except KeyError as exc:
        sys.stderr.write(f"repro bench: error: {exc.args[0]}\n")
        return 2
    baseline = None
    if args.compare is not None:
        try:
            baseline = bench.compare.load_baseline(args.compare)
        except bench.BenchCompareError as exc:
            sys.stderr.write(f"repro bench: error: {exc}\n")
            return 2
    warmup = args.warmup if args.warmup is not None else bench.runner.DEFAULT_WARMUP
    repeats = (
        args.repeats if args.repeats is not None else bench.runner.DEFAULT_REPEATS
    )

    def report_progress(result) -> None:
        out.write(
            f"{result.name:22s} median {result.median_sec * 1e3:9.2f} ms  "
            f"(min {result.min_sec * 1e3:.2f}, max {result.max_sec * 1e3:.2f}, "
            f"{result.repeats} repeats)\n"
        )

    try:
        results = bench.run_benchmarks(
            selected, warmup=warmup, repeats=repeats, progress=report_progress
        )
    except bench.runner.BenchmarkError as exc:
        sys.stderr.write(f"repro bench: error: {exc}\n")
        return 2
    document = bench.results_document(results, warmup=warmup, repeats=repeats)
    exit_code = 0
    if baseline is not None:
        try:
            comparisons = bench.compare_documents(
                document, baseline, args.tolerance
            )
        except bench.BenchCompareError as exc:
            sys.stderr.write(f"repro bench: error: {exc}\n")
            return 2
        bench.compare.annotate_document(document, comparisons, args.compare)
        out.write("\n" + bench.format_comparisons(comparisons, args.tolerance) + "\n")
        if any(comparison.regressed for comparison in comparisons):
            exit_code = 1
    if args.json_path is not None:
        from repro.util import atomic_write_json

        # Atomic: BENCH_*.json baselines gate CI, so a kill mid-write
        # must never leave a truncated document behind.
        atomic_write_json(args.json_path, document)
        out.write(f"benchmark results written to {args.json_path}\n")
    return exit_code


def run_report(args, out=sys.stdout) -> int:
    """The ``repro report`` subcommand (docs/reporting.md).

    Ingests artifact, herd, service and stream directories and emits
    comparison tables, service-run tables, herd status and per-series
    summaries as text, JSON or CSV.  The report is a pure function of
    the simulated contents (wall times are excluded), so two runs of the
    same campaign report byte-identically.  Exit codes: 0 ok, 1 report
    produced but sources carry damage (corrupt artifacts, torn streams,
    unclean journals), 2 unusable inputs.
    """
    # Late import: the report engine binds the experiments registry.
    from repro.analysis.report import run_report as report_main

    return report_main(
        args.dirs,
        fmt=args.format,
        output=args.output,
        counters=args.counters,
        series_filter=args.series,
        max_points=args.max_points,
        method=args.downsample,
        out=out,
    )


def run_lint(args, out=sys.stdout) -> int:
    """The ``repro lint`` subcommand (see repro.lint)."""
    from repro import lint as kyotolint

    if args.rules:
        out.write("per-file rules (phase 1):\n")
        for rule in kyotolint.ALL_RULES:
            out.write(
                f"  {rule.rule_id}  [{rule.severity:7s}] {rule.description}\n"
            )
        out.write("whole-program rules (phase 2):\n")
        for rule in kyotolint.ALL_PROGRAM_RULES:
            out.write(
                f"  {rule.rule_id}  [{rule.severity:7s}] {rule.description}\n"
            )
        return 0
    paths = args.paths or [str(pathlib.Path(__file__).parent)]
    missing = [p for p in paths if not pathlib.Path(p).exists()]
    if missing:
        sys.stderr.write(f"repro lint: error: no such path: {', '.join(missing)}\n")
        return 2
    findings = kyotolint.lint_paths(
        paths, jobs=args.jobs, cache_path=args.cache
    )
    if args.warn_only:
        for finding in findings:
            finding.severity = "warning"
    if args.baseline:
        if args.update_baseline:
            kyotolint.Baseline.from_findings(findings).save(args.baseline)
            out.write(
                f"baseline {args.baseline} updated "
                f"({len(findings)} entries)\n"
            )
            return 0
        try:
            baseline = kyotolint.Baseline.load(args.baseline)
        except kyotolint.BaselineError as exc:
            sys.stderr.write(f"repro lint: error: {exc}\n")
            return 2
        baseline.apply(findings)
    formatter = (
        kyotolint.format_json if args.format == "json" else kyotolint.format_text
    )
    out.write(formatter(findings) + "\n")
    return kyotolint.exit_code(findings)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        print(list_experiments())
        return 0
    if args.command == "lint":
        return run_lint(args)
    if args.command == "bench":
        return run_bench(args)
    if args.command == "serve":
        return run_serve(args)
    if args.command == "report":
        return run_report(args)
    if args.command == "scenario":
        return run_scenario_command(args)
    if args.command == "herd":
        return run_herd_command(args)
    if args.command == "campaign":
        return campaign_mod.summarize_campaign(args.artifact_dir, output=args.output)
    return run_experiments(
        args.experiments,
        jobs=args.jobs,
        json_dir=args.json_dir,
        timeout_sec=args.timeout_sec,
        stream_dir=args.stream_dir,
    )


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
