"""Command-line interface.

Run any of the paper's reproduced experiments from a shell::

    python -m repro list
    python -m repro run fig05
    python -m repro run table1 fig02
    python -m repro run all

Each experiment prints the same rows/series the paper's figure or table
reports (see EXPERIMENTS.md for the paper-vs-measured record).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, List, Tuple

from repro.experiments import (
    fig01, fig02, fig03, fig04, fig05, fig06,
    fig07, fig08, fig09, fig10, fig11, fig12, tables,
)

#: name -> (description, runner returning the printable report).
EXPERIMENTS: Dict[str, Tuple[str, Callable[[], str]]] = {
    "table1": (
        "experimental machine",
        lambda: tables.format_table1(tables.run_table1()),
    ),
    "table2": (
        "experimental VMs",
        lambda: tables.format_table2(tables.run_table2()),
    ),
    "fig01": (
        "LLC contention impact matrix",
        lambda: fig01.format_report(fig01.run()),
    ),
    "fig02": (
        "LLC misses per tick (v2_rep)",
        lambda: fig02.format_report(fig02.run()),
    ),
    "fig03": (
        "the processor is a good lever",
        lambda: fig03.format_report(fig03.run()),
    ),
    "fig04": (
        "equation 1 vs LLCM indicators",
        lambda: fig04.format_report(fig04.run()),
    ),
    "fig05": (
        "KS4Xen effectiveness",
        lambda: fig05.format_report(fig05.run()),
    ),
    "fig06": (
        "KS4Xen scalability",
        lambda: fig06.format_report(fig06.run()),
    ),
    "fig07": (
        "Pisces architecture audit",
        lambda: fig07.format_report(fig07.run()),
    ),
    "fig08": (
        "Kyoto vs Pisces",
        lambda: fig08.format_report(fig08.run()),
    ),
    "fig09": (
        "vCPU migration overhead",
        lambda: fig09.format_report(fig09.run()),
    ),
    "fig10": (
        "when isolation can be skipped",
        lambda: fig10.format_report(fig10.run()),
    ),
    "fig11": (
        "dedication vs no dedication",
        lambda: fig11.format_report(fig11.run()),
    ),
    "fig12": (
        "KS4Xen overhead",
        lambda: fig12.format_report(fig12.run()),
    ),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Mitigating performance unpredictability in "
            "the IaaS using the Kyoto principle' (Middleware 2016)."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    subparsers.add_parser("list", help="list the available experiments")
    run_parser = subparsers.add_parser("run", help="run experiments")
    run_parser.add_argument(
        "experiments",
        nargs="+",
        help="experiment names (see 'list'), or 'all'",
    )
    return parser


def list_experiments() -> str:
    lines = ["available experiments:"]
    for name, (description, __) in EXPERIMENTS.items():
        lines.append(f"  {name:8s} {description}")
    lines.append("  all      run everything")
    return "\n".join(lines)


def run_experiments(names: List[str], out=sys.stdout) -> int:
    if "all" in names:
        names = list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        out.write(
            f"unknown experiment(s): {', '.join(unknown)}\n{list_experiments()}\n"
        )
        return 2
    for name in names:
        description, runner = EXPERIMENTS[name]
        out.write(f"== {name}: {description} ==\n")
        start = time.time()
        out.write(runner())
        out.write(f"\n[{time.time() - start:.1f}s]\n\n")
    return 0


def main(argv: List[str] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        print(list_experiments())
        return 0
    return run_experiments(args.experiments)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
