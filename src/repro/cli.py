"""Command-line interface.

Run any of the paper's reproduced experiments from a shell::

    python -m repro list
    python -m repro run fig05
    python -m repro run table1 fig02
    python -m repro run all

Each experiment prints the same rows/series the paper's figure or table
reports (see EXPERIMENTS.md for the paper-vs-measured record).

The repo's own static-analysis gate (docs/static_analysis.md) runs as::

    python -m repro lint [paths ...] [--format json] [--baseline FILE]
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import Callable, Dict, List, Tuple

from repro.util import elapsed_since, wall_clock

from repro.experiments import (
    fig01, fig02, fig03, fig04, fig05, fig06,
    fig07, fig08, fig09, fig10, fig11, fig12, tables,
)

#: name -> (description, runner returning the printable report).
EXPERIMENTS: Dict[str, Tuple[str, Callable[[], str]]] = {
    "table1": (
        "experimental machine",
        lambda: tables.format_table1(tables.run_table1()),
    ),
    "table2": (
        "experimental VMs",
        lambda: tables.format_table2(tables.run_table2()),
    ),
    "fig01": (
        "LLC contention impact matrix",
        lambda: fig01.format_report(fig01.run()),
    ),
    "fig02": (
        "LLC misses per tick (v2_rep)",
        lambda: fig02.format_report(fig02.run()),
    ),
    "fig03": (
        "the processor is a good lever",
        lambda: fig03.format_report(fig03.run()),
    ),
    "fig04": (
        "equation 1 vs LLCM indicators",
        lambda: fig04.format_report(fig04.run()),
    ),
    "fig05": (
        "KS4Xen effectiveness",
        lambda: fig05.format_report(fig05.run()),
    ),
    "fig06": (
        "KS4Xen scalability",
        lambda: fig06.format_report(fig06.run()),
    ),
    "fig07": (
        "Pisces architecture audit",
        lambda: fig07.format_report(fig07.run()),
    ),
    "fig08": (
        "Kyoto vs Pisces",
        lambda: fig08.format_report(fig08.run()),
    ),
    "fig09": (
        "vCPU migration overhead",
        lambda: fig09.format_report(fig09.run()),
    ),
    "fig10": (
        "when isolation can be skipped",
        lambda: fig10.format_report(fig10.run()),
    ),
    "fig11": (
        "dedication vs no dedication",
        lambda: fig11.format_report(fig11.run()),
    ),
    "fig12": (
        "KS4Xen overhead",
        lambda: fig12.format_report(fig12.run()),
    ),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Mitigating performance unpredictability in "
            "the IaaS using the Kyoto principle' (Middleware 2016)."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    subparsers.add_parser("list", help="list the available experiments")
    run_parser = subparsers.add_parser("run", help="run experiments")
    run_parser.add_argument(
        "experiments",
        nargs="+",
        help="experiment names (see 'list'), or 'all'",
    )
    lint_parser = subparsers.add_parser(
        "lint", help="run kyotolint over the source tree"
    )
    lint_parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the repro package)",
    )
    lint_parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    lint_parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="baseline file; matching findings warn instead of failing",
    )
    lint_parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the --baseline file from the current findings",
    )
    lint_parser.add_argument(
        "--rules",
        action="store_true",
        help="list the known rules and exit",
    )
    return parser


def list_experiments() -> str:
    lines = ["available experiments:"]
    for name, (description, __) in EXPERIMENTS.items():
        lines.append(f"  {name:8s} {description}")
    lines.append("  all      run everything")
    return "\n".join(lines)


def run_experiments(names: List[str], out=sys.stdout) -> int:
    if "all" in names:
        names = list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        out.write(
            f"unknown experiment(s): {', '.join(unknown)}\n{list_experiments()}\n"
        )
        return 2
    for name in names:
        description, runner = EXPERIMENTS[name]
        out.write(f"== {name}: {description} ==\n")
        start = wall_clock()
        out.write(runner())
        out.write(f"\n[{elapsed_since(start):.1f}s]\n\n")
    return 0


def run_lint(args, out=sys.stdout) -> int:
    """The ``repro lint`` subcommand (see repro.lint)."""
    from repro import lint as kyotolint

    if args.rules:
        for rule in kyotolint.ALL_RULES:
            out.write(f"{rule.rule_id}  {rule.description}\n")
        return 0
    paths = args.paths or [str(pathlib.Path(__file__).parent)]
    missing = [p for p in paths if not pathlib.Path(p).exists()]
    if missing:
        sys.stderr.write(f"repro lint: error: no such path: {', '.join(missing)}\n")
        return 2
    findings = kyotolint.lint_paths(paths)
    if args.baseline:
        if args.update_baseline:
            kyotolint.Baseline.from_findings(findings).save(args.baseline)
            out.write(
                f"baseline {args.baseline} updated "
                f"({len(findings)} entries)\n"
            )
            return 0
        try:
            baseline = kyotolint.Baseline.load(args.baseline)
        except kyotolint.BaselineError as exc:
            sys.stderr.write(f"repro lint: error: {exc}\n")
            return 2
        baseline.apply(findings)
    formatter = (
        kyotolint.format_json if args.format == "json" else kyotolint.format_text
    )
    out.write(formatter(findings) + "\n")
    return kyotolint.exit_code(findings)


def main(argv: List[str] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        print(list_experiments())
        return 0
    if args.command == "lint":
        return run_lint(args)
    return run_experiments(args.experiments)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
