"""Baseline comparison: the regression gate behind ``repro bench --compare``.

A committed baseline (``BENCH_pr5.json``, schema ``repro.bench/2``) pins
the perf trajectory; comparing a fresh run against it answers two
questions per benchmark — *how much faster/slower is the tree now* and
*does the slowdown exceed the tolerance*.  Tolerances are percentages on
the median: with ``--tolerance 40``, a benchmark regresses when its
median exceeds the baseline median by more than 40% (loose by design in
CI, where runner noise is real; tighten locally).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence

from .runner import BENCH_SCHEMA


class BenchCompareError(ValueError):
    """Raised on unreadable or schema-mismatched baselines."""


@dataclass(frozen=True)
class Comparison:
    """One benchmark's current-vs-baseline verdict."""

    name: str
    median_sec: float
    baseline_median_sec: Optional[float]
    tolerance_pct: float

    @property
    def in_baseline(self) -> bool:
        return self.baseline_median_sec is not None

    @property
    def speedup(self) -> Optional[float]:
        """Baseline median over current median (>1 means faster now)."""
        if self.baseline_median_sec is None or self.median_sec <= 0:
            return None
        return self.baseline_median_sec / self.median_sec

    @property
    def regressed(self) -> bool:
        """True when the median slowed beyond the tolerance."""
        if self.baseline_median_sec is None:
            return False
        limit = self.baseline_median_sec * (1.0 + self.tolerance_pct / 100.0)
        return self.median_sec > limit


def load_baseline(path: str) -> Dict[str, Any]:
    """Load + schema-check a baseline document."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except OSError as exc:
        raise BenchCompareError(f"cannot read baseline {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise BenchCompareError(f"unparsable baseline {path}: {exc}") from exc
    if not isinstance(document, dict) or document.get("schema") != BENCH_SCHEMA:
        raise BenchCompareError(
            f"baseline {path} is not a {BENCH_SCHEMA} document"
        )
    return document


def baseline_medians(document: Mapping[str, Any]) -> Dict[str, float]:
    """name -> median_sec from a baseline document."""
    medians: Dict[str, float] = {}
    for entry in document.get("results", []):
        medians[str(entry["name"])] = float(entry["median_sec"])
    return medians


def compare_documents(
    current: Mapping[str, Any],
    baseline: Mapping[str, Any],
    tolerance_pct: float,
) -> List[Comparison]:
    """Compare two ``repro.bench/2`` documents, in current-result order.

    Benchmarks absent from the baseline are reported (``in_baseline``
    False) but can never regress; baseline entries absent from the
    current run (e.g. a filtered ``repro bench NAME`` invocation) are
    simply not compared.
    """
    if tolerance_pct < 0:
        raise BenchCompareError(
            f"tolerance must be >= 0 percent, got {tolerance_pct}"
        )
    medians = baseline_medians(baseline)
    comparisons: List[Comparison] = []
    for entry in current.get("results", []):
        name = str(entry["name"])
        comparisons.append(
            Comparison(
                name=name,
                median_sec=float(entry["median_sec"]),
                baseline_median_sec=medians.get(name),
                tolerance_pct=tolerance_pct,
            )
        )
    return comparisons


def annotate_document(
    document: Dict[str, Any],
    comparisons: Sequence[Comparison],
    baseline_path: str,
) -> None:
    """Embed before/after numbers into a results document, in place.

    This is what makes a committed ``BENCH_pr5.json`` self-documenting:
    each result carries the baseline median and the measured speedup of
    the run that produced it.
    """
    by_name = {comparison.name: comparison for comparison in comparisons}
    document["baseline"] = baseline_path
    for entry in document.get("results", []):
        comparison = by_name.get(str(entry["name"]))
        if comparison is None or not comparison.in_baseline:
            continue
        entry["baseline_median_sec"] = round(
            comparison.baseline_median_sec or 0.0, 6
        )
        if comparison.speedup is not None:
            entry["speedup"] = round(comparison.speedup, 3)


def format_comparisons(
    comparisons: Sequence[Comparison], tolerance_pct: float
) -> str:
    """Human-readable comparison table + verdict line."""
    lines = [
        f"{'benchmark':<24} {'median':>12} {'baseline':>12} "
        f"{'speedup':>8}  verdict"
    ]
    regressions = 0
    for comparison in comparisons:
        median = f"{comparison.median_sec * 1e3:.2f} ms"
        if not comparison.in_baseline:
            baseline = "-"
            speedup = "-"
            verdict = "new (no baseline)"
        else:
            baseline = f"{(comparison.baseline_median_sec or 0.0) * 1e3:.2f} ms"
            speedup = f"{comparison.speedup:.2f}x" if comparison.speedup else "-"
            if comparison.regressed:
                verdict = f"REGRESSED (> {tolerance_pct:g}% slower)"
                regressions += 1
            else:
                verdict = "ok"
        lines.append(
            f"{comparison.name:<24} {median:>12} {baseline:>12} "
            f"{speedup:>8}  {verdict}"
        )
    if regressions:
        lines.append(
            f"{regressions} benchmark(s) regressed beyond "
            f"{tolerance_pct:g}% tolerance"
        )
    else:
        lines.append(f"no regressions beyond {tolerance_pct:g}% tolerance")
    return "\n".join(lines)
