"""Benchmark runner: warmup + repeats + median, wall clock via repro.util.

A :class:`Benchmark` separates *setup* (building the system under test,
untimed) from *body* (the hot path, timed).  Every repeat gets a fresh
setup so state warmed by one sample never flatters the next; the body
returns a JSON-serializable *check* value that must be identical across
repeats — benchmarks are simulations, and simulations are deterministic
— so a timing run doubles as a semantics smoke test.

Timing uses :func:`repro.util.wall_clock` / :func:`repro.util.elapsed_since`,
the repo's one sanctioned wall-clock entry point (kyotolint D003).  Wall
time is *reported*, never fed back into simulated results.
"""

from __future__ import annotations

import platform
import statistics
import sys
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.util import elapsed_since, wall_clock

#: Schema identifier of the benchmark results document.  ``repro.bench/1``
#: was the ad-hoc single-benchmark artifact of tools/bench_exec_time.py
#: (retired into :data:`repro.bench.registry.BENCHMARKS`).
BENCH_SCHEMA = "repro.bench/2"

#: Default timing discipline (the CLI can override both).
DEFAULT_WARMUP = 1
DEFAULT_REPEATS = 5


class BenchmarkError(ValueError):
    """Raised on invalid benchmark configuration or nondeterministic checks."""


@dataclass(frozen=True)
class Benchmark:
    """One named benchmark: untimed setup, timed body.

    Attributes:
        name: registry key (``tick_loop_8vcpu``).
        description: one-line human description.
        setup: builds the system under test; its return value is passed
            to ``body``.  Excluded from timing.
        body: the timed hot path; must return a deterministic,
            JSON-serializable check value.
    """

    name: str
    description: str
    setup: Callable[[], Any]
    body: Callable[[Any], Any]


@dataclass
class BenchmarkResult:
    """Timing + check outcome of one benchmark."""

    name: str
    description: str
    warmup: int
    repeats: int
    samples_sec: List[float]
    check: Any

    @property
    def median_sec(self) -> float:
        return statistics.median(self.samples_sec)

    @property
    def min_sec(self) -> float:
        return min(self.samples_sec)

    @property
    def max_sec(self) -> float:
        return max(self.samples_sec)

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "description": self.description,
            "warmup": self.warmup,
            "repeats": self.repeats,
            "median_sec": round(self.median_sec, 6),
            "min_sec": round(self.min_sec, 6),
            "max_sec": round(self.max_sec, 6),
            "samples_sec": [round(sample, 6) for sample in self.samples_sec],
            "check": self.check,
        }


def run_benchmark(
    benchmark: Benchmark,
    warmup: int = DEFAULT_WARMUP,
    repeats: int = DEFAULT_REPEATS,
) -> BenchmarkResult:
    """Time one benchmark: ``warmup`` untimed runs, then ``repeats`` samples.

    Each run (warmup included) re-executes ``setup`` so the body always
    starts from identical state.  The body's check value must match
    across every run; a mismatch means the benchmark is nondeterministic
    (or the code under test is broken) and raises :class:`BenchmarkError`
    rather than reporting a timing for a computation that is not the
    same computation every time.
    """
    if warmup < 0:
        raise BenchmarkError(f"warmup must be >= 0, got {warmup}")
    if repeats < 1:
        raise BenchmarkError(f"repeats must be >= 1, got {repeats}")
    check: Any = None
    have_check = False
    for _ in range(warmup):
        payload = benchmark.setup()
        check = benchmark.body(payload)
        have_check = True
    samples: List[float] = []
    for _ in range(repeats):
        payload = benchmark.setup()
        start = wall_clock()
        value = benchmark.body(payload)
        samples.append(elapsed_since(start))
        if have_check and value != check:
            raise BenchmarkError(
                f"{benchmark.name}: nondeterministic check value "
                f"({value!r} != {check!r})"
            )
        check = value
        have_check = True
    return BenchmarkResult(
        name=benchmark.name,
        description=benchmark.description,
        warmup=warmup,
        repeats=repeats,
        samples_sec=samples,
        check=check,
    )


def run_benchmarks(
    benchmarks: Sequence[Benchmark],
    warmup: int = DEFAULT_WARMUP,
    repeats: int = DEFAULT_REPEATS,
    progress: Optional[Callable[[BenchmarkResult], None]] = None,
) -> List[BenchmarkResult]:
    """Run a batch of benchmarks; ``progress`` sees each result as it lands."""
    results: List[BenchmarkResult] = []
    for benchmark in benchmarks:
        result = run_benchmark(benchmark, warmup=warmup, repeats=repeats)
        results.append(result)
        if progress is not None:
            progress(result)
    return results


def machine_metadata() -> Dict[str, Any]:
    """Host/interpreter metadata embedded in every results document.

    Timings are only comparable on the same machine and interpreter;
    the metadata is what makes a committed baseline auditable.
    """
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "executable": sys.executable,
    }


def results_document(
    results: Sequence[BenchmarkResult],
    warmup: int,
    repeats: int,
) -> Dict[str, Any]:
    """Fold results into the ``repro.bench/2`` JSON document."""
    return {
        "schema": BENCH_SCHEMA,
        "config": {"warmup": warmup, "repeats": repeats},
        "machine": machine_metadata(),
        "results": [result.to_json_dict() for result in results],
    }
