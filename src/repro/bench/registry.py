"""The benchmark catalogue: every hot path the simulator funnels through.

Each benchmark builds its system-under-test from fixed seeds inside
``setup`` (untimed) and exercises exactly one hot path in ``body``
(timed), returning a deterministic check value.  The catalogue covers:

* ``tick_loop_{2,8,32}vcpu`` — the full tick loop (scheduler placement,
  sub-step execution, LLC relaxation, accounting) at three consolidation
  ratios on the paper's 4-core machine,
* ``vm_churn_soak`` — the service loop's dynamic lifecycle (admit,
  batched-slot rebuild, retire) on the 4x16-core machine,
* ``occupancy_relax`` — the per-substep shared-LLC relaxation alone,
* ``credit_pick_steal`` — credit-scheduler placement: ``_pick`` on a
  loaded core plus the ``_steal`` scan from idle cores,
* ``scenario_materialize`` — spec -> live-system construction,
* ``campaign_fanout`` — campaign plumbing (name expansion + artifact
  aggregation), no experiments executed,
* ``exec_time_protocol`` — the chunked execution-time protocol on the
  Fig 12 workload shape (the retired ``tools/bench_exec_time.py``).

Workload sizes target ~0.1-0.5 s per sample on a developer machine:
long enough for stable medians, short enough that the whole suite runs
in well under a minute.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.cachesim.occupancy import LlcOccupancyDomain
from repro.experiments.campaign import ARTIFACT_SCHEMA, aggregate_artifacts
from repro.experiments.registry import expand_names
from repro.hardware.latency import PAPER_LATENCIES
from repro.hardware.specs import (
    CacheSpec,
    KIB,
    MIB,
    MachineSpec,
    SocketSpec,
    paper_machine,
)
from repro.hypervisor.system import VirtualizedSystem
from repro.hypervisor.vm import VmConfig
from repro.schedulers.credit import CreditScheduler
from repro.service import (
    CapacityCapAdmission,
    ChurnGenerator,
    ServiceLoop,
    VmTemplate,
)
from repro.workloads.profiles import application_workload

from .runner import Benchmark

#: LLC lines of the paper machine (10 MiB / 64 B).
_PAPER_LLC_LINES = paper_machine().sockets[0].llc.num_lines


# -- tick loop ---------------------------------------------------------------


def _tick_loop_system(num_vcpus: int) -> VirtualizedSystem:
    """A fresh XCS system with ``num_vcpus`` single-vCPU gcc VMs.

    VMs are unpinned: the scheduler spreads them over the 4 cores, so
    under-committed sizes exercise the idle-core ``_steal`` scan and
    over-committed sizes exercise candidate filtering and rotation.
    """
    system = VirtualizedSystem(CreditScheduler(), paper_machine())
    for index in range(num_vcpus):
        system.create_vm(
            VmConfig(name=f"vm{index}", workload=application_workload("gcc"))
        )
    return system


def _run_tick_loop(system: VirtualizedSystem, ticks: int) -> List[Any]:
    system.run_ticks(ticks)
    total_instructions = sum(
        vcpu.instructions_retired for vcpu in system.vcpus
    )
    return [system.tick_index, round(total_instructions, 3)]


def _tick_loop_benchmark(num_vcpus: int, ticks: int) -> Benchmark:
    return Benchmark(
        name=f"tick_loop_{num_vcpus}vcpu",
        description=(
            f"full tick loop: {num_vcpus} gcc vCPUs on 4 cores, "
            f"{ticks} ticks"
        ),
        setup=lambda: _tick_loop_system(num_vcpus),
        body=lambda system: _run_tick_loop(system, ticks),
    )


def _wide_machine() -> MachineSpec:
    """4 sockets x 16 cores: the consolidation scale the batched engine
    targets (the scalar path is >2x slower per sample here, with the
    occupant churn of 4:1 overcommit working against the step memo)."""
    socket = SocketSpec(
        cores=16,
        freq_khz=2_800_000,
        l1d=CacheSpec("L1D", 32 * KIB, 8),
        l1i=CacheSpec("L1I", 32 * KIB, 8),
        l2=CacheSpec("L2", 256 * KIB, 8),
        llc=CacheSpec("LLC", 20 * MIB, 20, shared=True),
    )
    return MachineSpec(
        name="bench-4s64c",
        sockets=(socket,) * 4,
        memory_bytes=4 * 32_768 * MIB,
        latency=PAPER_LATENCIES,
    )


_WIDE_APPS = ("gcc", "lbm", "mcf", "povray")


def _tick_loop_wide_system(num_vcpus: int) -> VirtualizedSystem:
    """256 mixed-profile single-vCPU VMs spread over 4 memory nodes."""
    system = VirtualizedSystem(CreditScheduler(), _wide_machine())
    for index in range(num_vcpus):
        system.create_vm(
            VmConfig(
                name=f"vm{index}",
                workload=application_workload(_WIDE_APPS[index % 4]),
                memory_node=index % 4,
            )
        )
    return system


def _tick_loop_wide_benchmark(num_vcpus: int, ticks: int) -> Benchmark:
    return Benchmark(
        name=f"tick_loop_{num_vcpus}vcpu",
        description=(
            f"full tick loop: {num_vcpus} mixed vCPUs on 4x16 cores, "
            f"{ticks} ticks"
        ),
        setup=lambda: _tick_loop_wide_system(num_vcpus),
        body=lambda system: _run_tick_loop(system, ticks),
    )


# -- vm churn soak -----------------------------------------------------------

_CHURN_SOAK_TICKS = 150


def _churn_soak_setup() -> ServiceLoop:
    """A churning fleet on the 64-core machine: the dynamic-lifecycle
    hot path — admit, batched-slot rebuild, retire with occupancy flush
    and series compaction — at service-mode rates."""
    system = VirtualizedSystem(CreditScheduler(), _wide_machine())
    churn = ChurnGenerator(
        system.rng.stream("bench.churn.arrivals"),
        system.rng.stream("bench.churn.lifetimes"),
        rate_per_tick=0.25,
        lifetime_kind="exponential",
        lifetime_mean_ticks=200.0,
    )
    templates = [
        VmTemplate(
            name=app,
            make_workload=lambda app=app: application_workload(app),
            memory_node=node,
        )
        for node, app in enumerate(_WIDE_APPS)
    ]
    return ServiceLoop(
        system,
        churn,
        CapacityCapAdmission(max_vcpus=128),
        templates,
        system.rng.stream("bench.churn.templates"),
    )


def _churn_soak_body(loop: ServiceLoop) -> List[Any]:
    summary = loop.run(_CHURN_SOAK_TICKS)
    return [
        summary["admitted"],
        summary["retired"],
        summary["drained"],
        summary["peak_live_vms"],
        summary["context_switches"],
    ]


# -- occupancy relax ---------------------------------------------------------

_RELAX_ROUNDS = 8000


def _occupancy_setup() -> Tuple[LlcOccupancyDomain, List[Tuple[Dict[int, float], Dict[int, float]]]]:
    domain = LlcOccupancyDomain(_PAPER_LLC_LINES)
    # Two alternating active sets so descheduled owners' dead lines are
    # consumed every other round (both relax phases exercised).
    even = {gid: 400.0 + 25.0 * gid for gid in range(0, 8, 2)}
    odd = {gid: 400.0 + 25.0 * gid for gid in range(1, 8, 2)}
    caps = {gid: 30_000.0 + 2_000.0 * gid for gid in range(8)}
    return domain, [(even, caps), (odd, caps)]


def _occupancy_body(
    payload: Tuple[LlcOccupancyDomain, List[Tuple[Dict[int, float], Dict[int, float]]]]
) -> float:
    domain, rounds = payload
    for index in range(_RELAX_ROUNDS):
        pressures, caps = rounds[index % len(rounds)]
        domain.relax(pressures, caps)
    return round(domain.used_lines, 3)


# -- credit placement --------------------------------------------------------

_PICK_ROUNDS = 4000


def _credit_setup() -> VirtualizedSystem:
    """Eight vCPUs pinned to core 0: cores 1-3 are permanently idle.

    Every ``on_tick_start`` runs ``_pick`` over 8 candidates on core 0
    and a full (fruitless, pinned vCPUs are unstealable) ``_steal`` scan
    from each idle core — the worst-case placement pass.
    """
    system = VirtualizedSystem(CreditScheduler(), paper_machine())
    for index in range(8):
        system.create_vm(
            VmConfig(
                name=f"pinned{index}",
                workload=application_workload("gcc"),
                pinned_cores=[0],
            )
        )
    return system


def _credit_body(system: VirtualizedSystem) -> int:
    scheduler = system.scheduler
    for tick in range(_PICK_ROUNDS):
        scheduler.on_tick_start(tick)
    running = system.machine.core(0).running
    return -1 if running is None else running.gid


# -- scenario materialization ------------------------------------------------

_MATERIALIZE_ROUNDS = 300


def _materialize_spec():
    from repro.scenario import ScenarioSpec, VmSpec, WorkloadSpec

    return ScenarioSpec(
        name="bench-materialize",
        vms=(
            VmSpec(name="sen", workload=WorkloadSpec(app="gcc"), llc_cap=250_000),
            VmSpec(
                name="noisy",
                workload=WorkloadSpec(app="lbm"),
                llc_cap=250_000,
                count=4,
            ),
        ),
    )


def _materialize_body(spec) -> List[Any]:
    from repro.scenario import materialize

    built = None
    for _ in range(_MATERIALIZE_ROUNDS):
        built = materialize(spec)
    assert built is not None
    return [built.system.machine.total_cores, len(built.system.vcpus)]


# -- campaign fan-out plumbing ----------------------------------------------

_FANOUT_ROUNDS = 500


def _fanout_setup() -> List[Dict[str, Any]]:
    artifacts: List[Dict[str, Any]] = []
    for index in range(64):
        artifacts.append(
            {
                "schema": ARTIFACT_SCHEMA,
                "name": f"bench-artifact-{index:02d}",
                "description": "synthetic artifact for fan-out benchmarking",
                "ok": index % 16 != 7,
                "report": f"row {index}\n" * 40,
                "error": None if index % 16 != 7 else "BenchError: synthetic",
                "wall_time_sec": 0.25 + 0.001 * index,
                "telemetry": {"counters": {"bench.rows": 40}},
            }
        )
    return artifacts


def _fanout_body(artifacts: List[Dict[str, Any]]) -> List[int]:
    summary: Dict[str, Any] = {}
    known: List[str] = []
    for _ in range(_FANOUT_ROUNDS):
        known, unknown = expand_names(["all"])
        assert not unknown
        summary = aggregate_artifacts(artifacts)
    return [summary["num_experiments"], summary["num_failed"], len(known)]


# -- execution-time protocol -------------------------------------------------

_EXEC_TIME_INSTRUCTIONS = 4e10


def _exec_time_setup():
    from repro.scenario import (
        ProtocolSpec,
        ScenarioSpec,
        VmSpec,
        WorkloadSpec,
        materialize,
    )

    workload = WorkloadSpec(
        app="povray", total_instructions=_EXEC_TIME_INSTRUCTIONS
    )
    spec = ScenarioSpec(
        name="bench-exec-time",
        vms=(
            VmSpec(name="povray-a", workload=workload, pinned_cores=(0,)),
            VmSpec(name="povray-b", workload=workload, pinned_cores=(0,)),
        ),
        protocol=ProtocolSpec(mode="execution_time", target_vm="povray-a"),
    )
    return materialize(spec)


def _exec_time_body(built) -> float:
    from repro.scenario import execution_time_sec

    return round(execution_time_sec(built.system, built.vm("povray-a")), 6)


#: The catalogue, in canonical run order.
BENCHMARKS: Tuple[Benchmark, ...] = (
    _tick_loop_benchmark(2, 600),
    _tick_loop_benchmark(8, 500),
    _tick_loop_benchmark(32, 300),
    _tick_loop_wide_benchmark(256, 40),
    Benchmark(
        name="vm_churn_soak",
        description=(
            f"service loop churn: Poisson admits/retires on 4x16 cores, "
            f"{_CHURN_SOAK_TICKS} ticks with batched-slot rebuilds"
        ),
        setup=_churn_soak_setup,
        body=_churn_soak_body,
    ),
    Benchmark(
        name="occupancy_relax",
        description=(
            f"shared-LLC relaxation: 8 owners, alternating active sets, "
            f"{_RELAX_ROUNDS} rounds"
        ),
        setup=_occupancy_setup,
        body=_occupancy_body,
    ),
    Benchmark(
        name="credit_pick_steal",
        description=(
            f"credit placement: _pick over 8 candidates + _steal scans "
            f"from 3 idle cores, {_PICK_ROUNDS} rounds"
        ),
        setup=_credit_setup,
        body=_credit_body,
    ),
    Benchmark(
        name="scenario_materialize",
        description=(
            f"spec -> system materialization, 5 VMs with counted "
            f"expansion, {_MATERIALIZE_ROUNDS} rounds"
        ),
        setup=_materialize_spec,
        body=_materialize_body,
    ),
    Benchmark(
        name="campaign_fanout",
        description=(
            f"campaign plumbing: expand_names('all') + 64-artifact "
            f"aggregation, {_FANOUT_ROUNDS} rounds"
        ),
        setup=_fanout_setup,
        body=_fanout_body,
    ),
    Benchmark(
        name="exec_time_protocol",
        description=(
            "chunked execution-time protocol, fig12 shape: 2x povray "
            f"sharing core 0, {_EXEC_TIME_INSTRUCTIONS:g} instructions"
        ),
        setup=_exec_time_setup,
        body=_exec_time_body,
    ),
)


def benchmark_names() -> List[str]:
    """Benchmark names in canonical run order."""
    return [benchmark.name for benchmark in BENCHMARKS]


def benchmarks_named(names: List[str]) -> List[Benchmark]:
    """Resolve a user-supplied subset, preserving request order.

    Raises ``KeyError`` listing every unknown name at once.
    """
    by_name = {benchmark.name: benchmark for benchmark in BENCHMARKS}
    unknown = [name for name in names if name not in by_name]
    if unknown:
        raise KeyError(
            f"unknown benchmark(s): {', '.join(unknown)}; "
            f"known: {', '.join(benchmark_names())}"
        )
    return [by_name[name] for name in names]
