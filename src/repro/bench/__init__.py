"""Micro/macro benchmark harness for the simulator's hot paths.

The ROADMAP's north star demands a simulator that runs as fast as the
hardware allows; this package is how we *know* whether it does.  It is
dependency-free (stdlib only, wall clock strictly through
:func:`repro.util.wall_clock`) and has three parts:

* :mod:`repro.bench.runner` — warmup + repeats + median timing of named
  benchmarks, emitting schema ``repro.bench/2`` JSON documents with
  machine/python metadata and a deterministic per-benchmark ``check``
  value (so a benchmark run doubles as a semantics smoke test),
* :mod:`repro.bench.registry` — the benchmark catalogue: the tick loop
  at 2/8/32 vCPUs, occupancy ``relax``, credit ``_pick``/``_steal``,
  scenario materialization, campaign fan-out plumbing and the
  execution-time protocol (absorbing the old ``tools/bench_exec_time.py``),
* :mod:`repro.bench.compare` — regression gating against a committed
  baseline (``BENCH_pr5.json``): ``repro bench --compare BASELINE
  --tolerance PCT`` exits nonzero when any benchmark's median is slower
  than baseline by more than the tolerance.

See docs/performance.md for the hot-path map and workflow.
"""

from .compare import (
    BenchCompareError,
    Comparison,
    compare_documents,
    format_comparisons,
)
from .registry import BENCHMARKS, benchmark_names, benchmarks_named
from .runner import (
    BENCH_SCHEMA,
    Benchmark,
    BenchmarkResult,
    machine_metadata,
    results_document,
    run_benchmarks,
)

__all__ = [
    "BENCH_SCHEMA",
    "BENCHMARKS",
    "Benchmark",
    "BenchmarkResult",
    "BenchCompareError",
    "Comparison",
    "benchmark_names",
    "benchmarks_named",
    "compare_documents",
    "format_comparisons",
    "machine_metadata",
    "results_document",
    "run_benchmarks",
]
