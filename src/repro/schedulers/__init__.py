"""vCPU schedulers: the Xen credit scheduler (XCS) and a CFS-style fair
scheduler, both extensible by the Kyoto pollution-permit layer."""

from .base import Scheduler
from .cfs import CfsAccount, CfsScheduler, NICE0_WEIGHT
from .credit import CREDITS_PER_TICK, CreditAccount, CreditScheduler, Priority
from .rtds import RtServer, RtdsScheduler

__all__ = [
    "CREDITS_PER_TICK",
    "CfsAccount",
    "CfsScheduler",
    "CreditAccount",
    "CreditScheduler",
    "NICE0_WEIGHT",
    "Priority",
    "RtServer",
    "RtdsScheduler",
    "Scheduler",
]
