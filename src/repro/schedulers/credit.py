"""The Xen credit scheduler (XCS).

Reproduces the accounting structure described in Section 3.2 of the paper
and in Cherkasova et al. [16]:

* each vCPU holds ``remainCredit``; running burns
  :data:`CREDITS_PER_TICK` per 10 ms tick,
* every 30 ms time slice, the accounting pass hands out new credits —
  weight-proportional among the runnable vCPUs of each core, clipped by
  the domain's optional *cap*,
* a vCPU with positive credits has priority ``UNDER``; once its credits
  are exhausted it drops to ``OVER``,
* scheduling picks ``UNDER`` vCPUs round-robin; ``OVER`` vCPUs only run
  work-conservingly when no ``UNDER`` vCPU wants the core — except capped
  vCPUs, which are parked outright when out of credits (a cap is a hard
  limit even on an idle machine).

KS4Xen (:mod:`repro.core.ks4xen`) subclasses this and adds the pollution
permit, exactly as the paper layers it on XCS.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, TYPE_CHECKING

from .base import Scheduler

if TYPE_CHECKING:  # pragma: no cover
    from repro.hypervisor.vcpu import VCpu

#: Credits burned per tick of execution (Xen: 100).
CREDITS_PER_TICK = 100


class Priority(Enum):
    """XCS vCPU priorities."""

    UNDER = "UNDER"
    OVER = "OVER"


@dataclass
class CreditAccount:
    """Scheduling state of one vCPU under XCS."""

    credits: float
    weight: int
    cap_percent: Optional[float]

    @property
    def priority(self) -> Priority:
        return Priority.UNDER if self.credits > 0 else Priority.OVER


class CreditScheduler(Scheduler):
    """Xen's credit scheduler."""

    name = "xcs"

    def __init__(self) -> None:
        super().__init__()
        self.accounts: Dict[int, CreditAccount] = {}
        # Round-robin cursor per core: vCPU gids in service order.
        self._rr_order: Dict[int, List[int]] = {}
        # Consecutive ticks the current occupant has been running per
        # core, and whose stint it is; a vCPU keeps the core for a whole
        # time slice before rotating.  Tracking the owner matters: a
        # replacement occupant must start a fresh stint rather than
        # inherit (and be charged for) its predecessor's ticks.
        self._stint: Dict[int, int] = {}
        self._stint_gid: Dict[int, Optional[int]] = {}
        # Freshly woken UNDER vCPUs get BOOST: they preempt at the next
        # scheduling decision (Xen's latency optimisation for I/O VMs).
        self._boosted: set = set()

    # -- admission ---------------------------------------------------------------

    def on_vcpu_registered(self, vcpu: "VCpu", core_id: int) -> None:
        config = vcpu.vm.config
        per_vcpu_cap = (
            config.cap_percent / config.num_vcpus
            if config.cap_percent is not None
            else None
        )
        self.accounts[vcpu.gid] = CreditAccount(
            credits=float(CREDITS_PER_TICK * self.system.ticks_per_slice),
            weight=config.weight,
            cap_percent=per_vcpu_cap,
        )
        self._rr_order.setdefault(core_id, []).append(vcpu.gid)

    def account(self, vcpu: "VCpu") -> CreditAccount:
        return self.accounts[vcpu.gid]

    def on_vcpu_unregistered(self, vcpu: "VCpu", core_id: int) -> None:
        gid = vcpu.gid
        del self.accounts[gid]
        order = self._rr_order.get(core_id)
        if order is not None and gid in order:
            order.remove(gid)
        self._boosted.discard(gid)
        # A retired vCPU must not be charged to a successor's stint, nor
        # keep owning a core's slice.
        for stint_core, stint_gid in list(self._stint_gid.items()):
            if stint_gid == gid:
                self._stint[stint_core] = 0
                self._stint_gid[stint_core] = None

    def on_vcpu_reassigned(self, vcpu, old_core, new_core) -> None:
        if old_core is not None and vcpu.gid in self._rr_order.get(old_core, []):
            self._rr_order[old_core].remove(vcpu.gid)
        self._rr_order.setdefault(new_core, []).append(vcpu.gid)

    # -- placement ---------------------------------------------------------------

    def _candidates(self, core_id: int) -> List["VCpu"]:
        order = self._rr_order.get(core_id)
        if not order:
            return []
        by_gid = self._vcpu_by_gid
        return [
            vcpu
            for vcpu in (by_gid[gid] for gid in order)
            if vcpu.runnable and not self.is_parked(vcpu)
        ]

    def on_vcpu_wake(self, vcpu) -> None:
        if self.accounts[vcpu.gid].priority is Priority.UNDER:
            self._boosted.add(vcpu.gid)
            self.system.recorder.inc("credit.boosts")

    def _pick(self, core_id: int) -> Optional["VCpu"]:
        boosted = self._boosted
        if not boosted:
            # Fast path: with no boosted vCPU anywhere, the first UNDER
            # candidate in round-robin order wins outright, so the
            # candidate filter fuses into one early-exiting scan instead
            # of building the candidate list on every refill.
            order = self._rr_order.get(core_id)
            if not order:
                return self._steal(core_id)
            accounts = self.accounts
            by_gid = self._vcpu_by_gid
            fast_first_uncapped: Optional["VCpu"] = None
            for gid in order:
                vcpu = by_gid[gid]
                if not vcpu.runnable or self.is_parked(vcpu):
                    continue
                account = accounts[gid]
                if account.credits > 0:  # UNDER
                    return vcpu
                if (
                    fast_first_uncapped is None
                    and account.cap_percent is None
                ):
                    fast_first_uncapped = vcpu
            if fast_first_uncapped is not None:
                return fast_first_uncapped
            return self._steal(core_id)
        candidates = self._candidates(core_id)
        if not candidates:
            return self._steal(core_id)
        accounts = self.accounts
        boosted = self._boosted
        first_under: Optional["VCpu"] = None
        first_uncapped: Optional["VCpu"] = None
        for vcpu in candidates:
            account = accounts[vcpu.gid]
            if account.credits > 0:  # UNDER
                if boosted and vcpu.gid in boosted:
                    return vcpu
                if first_under is None:
                    first_under = vcpu
            if first_uncapped is None and account.cap_percent is None:
                first_uncapped = vcpu
        if first_under is not None:
            return first_under
        # Work-conserving: run an OVER vCPU, but never one that is capped —
        # a cap is a hard limit.  (first_uncapped can only be reached when
        # no UNDER candidate exists, so every remaining candidate is OVER.)
        if first_uncapped is not None:
            return first_uncapped
        return self._steal(core_id)

    def _steal(self, core_id: int) -> Optional["VCpu"]:
        """SMP load balancing: an idle core pulls a waiting, unpinned
        UNDER vCPU from another core's runqueue (Xen's work stealing).

        Stealing only crosses socket boundaries as a last resort — moving
        a vCPU away from its warm LLC is expensive (the Fig 9 lesson).
        """
        machine = self.system.machine
        my_socket = machine.core(core_id).socket_id
        accounts = self.accounts

        def steal_from(other_core_id: int) -> Optional["VCpu"]:
            for vcpu in self._candidates(other_core_id):
                if (
                    vcpu.pinned_core is None
                    and not vcpu.is_running
                    and accounts[vcpu.gid].credits > 0  # UNDER
                ):
                    self.reassign_vcpu(vcpu, core_id)
                    self.system.recorder.inc("credit.steals")
                    return vcpu
            return None

        # Same-socket cores first, remote sockets only as a fallback;
        # within a pass, cores are scanned in machine order and the first
        # stealable vCPU wins (matching Xen's runqueue walk).
        for want_same_socket in (True, False):
            for other in machine.cores:
                if other.core_id == core_id:
                    continue
                if (other.socket_id == my_socket) is not want_same_socket:
                    continue
                vcpu = steal_from(other.core_id)
                if vcpu is not None:
                    return vcpu
        return None

    def on_tick_start(self, tick_index: int) -> None:
        for core in self.system.machine.cores:
            choice = self._pick(core.core_id)
            if core.running is not choice:
                if core.running is not None:
                    self.system.context_switch(core, None)
                if choice is not None:
                    self.system.context_switch(core, choice)

    def refill_core(self, core) -> None:
        choice = self._pick(core.core_id)
        if choice is not None and core.running is not choice:
            if core.running is not None:
                self.system.context_switch(core, None)
            self.system.context_switch(core, choice)

    # -- accounting ----------------------------------------------------------------

    def on_tick_end(self, tick_index: int) -> None:
        for core in self.system.machine.cores:
            core_id = core.core_id
            vcpu = core.running
            if vcpu is None:
                self._stint[core_id] = 0
                self._stint_gid[core_id] = None
                continue
            account = self.accounts[vcpu.gid]
            account.credits -= CREDITS_PER_TICK
            self.system.recorder.inc("credit.credits_burned", CREDITS_PER_TICK)
            # BOOST lasts until the vCPU has been serviced once.
            self._boosted.discard(vcpu.gid)
            # A vCPU owns the core for a full time slice (Xen: 30 ms)
            # before the round-robin order rotates — unless its credits
            # ran out earlier.  The slice is per vCPU: when the occupant
            # changed since the last tick (block, preemption, steal), the
            # new occupant starts its stint at zero instead of being
            # charged the ticks its predecessor ran.
            if self._stint_gid.get(core_id) == vcpu.gid:
                stint = self._stint.get(core_id, 0) + 1
            else:
                stint = 1
            if stint >= self.system.ticks_per_slice or account.credits <= 0:
                order = self._rr_order[core_id]
                if vcpu.gid in order:
                    order.remove(vcpu.gid)
                    order.append(vcpu.gid)
                stint = 0
            self._stint[core_id] = stint
            self._stint_gid[core_id] = vcpu.gid

    def on_accounting(self, tick_index: int) -> None:
        self.system.recorder.inc("credit.accounting_passes")
        slice_credits = float(CREDITS_PER_TICK * self.system.ticks_per_slice)
        by_gid = self._vcpu_by_gid
        for core in self.system.machine.cores:
            # The per-core round-robin order holds exactly the vCPUs
            # assigned to the core; iterating it beats scanning every
            # registered vCPU per core.  Refills are per-account and
            # weights are integers, so iteration order cannot change
            # the resulting credits.
            active = [
                v
                for v in (
                    by_gid[gid] for gid in self._rr_order.get(core.core_id, ())
                )
                if v.runnable
            ]
            if not active:
                continue
            total_weight = sum(self.accounts[v.gid].weight for v in active)
            for vcpu in active:
                account = self.accounts[vcpu.gid]
                share = slice_credits * account.weight / total_weight
                if account.cap_percent is not None:
                    share = min(share, slice_credits * account.cap_percent / 100.0)
                account.credits = min(account.credits + share, slice_credits)
                account.credits = max(account.credits, -slice_credits)
