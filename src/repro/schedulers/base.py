"""Scheduler interface.

A scheduler owns vCPU placement: at every tick start it decides, for each
core, which vCPU runs; at tick end it burns credits/accounts runtime; at
every accounting period (Xen's 30 ms time slice) it refills budgets.

The Kyoto extensions (KS4Xen, KS4Linux, KS4Pisces) subclass the concrete
schedulers and add pollution enforcement through the ``is_parked`` hook —
mirroring how the real KS4Xen is a ~110 LOC patch on top of the credit
scheduler rather than a new scheduler.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.hypervisor.system import VirtualizedSystem
    from repro.hypervisor.vcpu import VCpu
    from repro.hypervisor.vm import VirtualMachine


class Scheduler(ABC):
    """Base class of all vCPU schedulers."""

    name = "abstract"

    def __init__(self) -> None:
        self.system: Optional["VirtualizedSystem"] = None
        #: Static vCPU -> core assignment (pinning or balance-at-boot).
        self.assigned_core: Dict[int, int] = {}
        self._vcpus: List["VCpu"] = []
        #: gid -> vCPU lookup, maintained on admission.  Placement runs
        #: per core per tick; rebuilding this map there is the dominant
        #: scheduler cost, so subclasses read this cache instead.
        self._vcpu_by_gid: Dict[int, "VCpu"] = {}

    # -- wiring -----------------------------------------------------------------

    def attach(self, system: "VirtualizedSystem") -> None:
        """Called once by the system when it takes ownership."""
        self.system = system

    def register_vcpu(self, vcpu: "VCpu") -> None:
        """Admit a vCPU; assigns it a core (its pin, or least loaded)."""
        if self.system is None:
            raise RuntimeError("scheduler not attached to a system")
        self._vcpus.append(vcpu)
        self._vcpu_by_gid[vcpu.gid] = vcpu
        if vcpu.pinned_core is not None:
            core_id = vcpu.pinned_core
        else:
            core_id = self._least_loaded_core()
        self.assigned_core[vcpu.gid] = core_id
        self.on_vcpu_registered(vcpu, core_id)

    def _least_loaded_core(self) -> int:
        loads = {core.core_id: 0 for core in self.system.machine.cores}
        for __, core_id in self.assigned_core.items():
            loads[core_id] = loads.get(core_id, 0) + 1
        return min(loads, key=lambda cid: (loads[cid], cid))

    def unregister_vcpu(self, vcpu: "VCpu") -> None:
        """Retire a vCPU: drop it from the run state and all queues.

        The inverse of :meth:`register_vcpu`.  The system deschedules the
        vCPU before calling this, so no core is running it.
        """
        gid = vcpu.gid
        if gid not in self._vcpu_by_gid:
            raise RuntimeError(f"vCPU gid {gid} is not registered")
        self._vcpus.remove(vcpu)
        del self._vcpu_by_gid[gid]
        core_id = self.assigned_core.pop(gid)
        self.on_vcpu_unregistered(vcpu, core_id)

    def on_vm_retiring(self, vm: "VirtualMachine") -> None:
        """Called by the system at the start of :meth:`retire_vm`, while
        the VM's vCPUs are still schedulable and measurable.

        The default settles the VM's pollution account when a Kyoto
        engine is attached (every KS4* strategy exposes ``self.kyoto``),
        so all four Kyoto schedulers get settlement without overriding.
        """
        kyoto = getattr(self, "kyoto", None)
        if kyoto is not None:
            kyoto.retire_vm(vm)

    def reassign_vcpu(self, vcpu: "VCpu", core_id: int) -> None:
        """Move a vCPU's static assignment (used after migration)."""
        old_core = self.assigned_core.get(vcpu.gid)
        self.assigned_core[vcpu.gid] = core_id
        if old_core != core_id:
            self.on_vcpu_reassigned(vcpu, old_core, core_id)

    def on_vcpu_reassigned(
        self, vcpu: "VCpu", old_core: Optional[int], new_core: int
    ) -> None:
        """Per-scheduler bookkeeping after a migration (optional)."""

    def vcpus_on_core(self, core_id: int) -> List["VCpu"]:
        """vCPUs assigned to ``core_id``, in registration order."""
        return [v for v in self._vcpus if self.assigned_core[v.gid] == core_id]

    @property
    def vcpus(self) -> List["VCpu"]:
        return list(self._vcpus)

    # -- subclass hooks -----------------------------------------------------------

    def on_vcpu_registered(self, vcpu: "VCpu", core_id: int) -> None:
        """Per-scheduler admission bookkeeping (optional)."""

    def on_vcpu_unregistered(self, vcpu: "VCpu", core_id: int) -> None:
        """Per-scheduler retirement bookkeeping (optional).  ``core_id``
        is the core the vCPU was assigned to when it was retired."""

    def on_vcpu_wake(self, vcpu: "VCpu") -> None:
        """Called when a blocked vCPU becomes runnable again (optional;
        Xen's credit scheduler uses it for BOOST priority)."""

    def refill_core(self, core) -> None:
        """Called when a core's vCPU blocked mid-tick: place a runnable
        replacement immediately instead of idling until the next tick
        (real schedulers reschedule on block).  Default: leave idle."""

    def is_parked(self, vcpu: "VCpu") -> bool:
        """True if the vCPU is forbidden to run (cap / pollution permit).

        The Kyoto extensions override this: a VM whose pollution quota is
        negative is parked — the paper's "priority OVER, cannot use the
        processor any more".
        """
        return False

    @abstractmethod
    def on_tick_start(self, tick_index: int) -> None:
        """Place vCPUs on cores for this tick."""

    @abstractmethod
    def on_tick_end(self, tick_index: int) -> None:
        """Account the runtime consumed in this tick."""

    @abstractmethod
    def on_accounting(self, tick_index: int) -> None:
        """Refill budgets (every time slice)."""
