"""A CFS-style completely fair scheduler (the KVM/Linux substrate).

The paper's KS4Linux implements Kyoto inside Linux's CFS.  This module
provides the substrate: weighted-fair scheduling by virtual runtime, with
a per-core red-black-tree-equivalent (a sorted pick of the minimum
vruntime each tick).  Bandwidth-style throttling (``is_parked``) is the
hook KS4Linux uses for pollution enforcement, mirroring how CFS bandwidth
control throttles cgroups.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, TYPE_CHECKING

from .base import Scheduler

if TYPE_CHECKING:  # pragma: no cover
    from repro.hypervisor.vcpu import VCpu

#: The weight corresponding to a nice-0 task.
NICE0_WEIGHT = 1024


@dataclass
class CfsAccount:
    """Per-vCPU CFS state."""

    vruntime: float = 0.0
    weight: int = NICE0_WEIGHT


class CfsScheduler(Scheduler):
    """Weighted fair scheduler picking the minimum-vruntime vCPU per core."""

    name = "cfs"

    def __init__(self) -> None:
        super().__init__()
        self.accounts: Dict[int, CfsAccount] = {}

    def on_vcpu_registered(self, vcpu: "VCpu", core_id: int) -> None:
        # Map the VM's Xen-style weight (default 256) onto CFS weights.
        weight = vcpu.vm.config.weight * NICE0_WEIGHT // 256
        # Start at the core's minimum vruntime so latecomers don't starve
        # incumbents (CFS places new tasks at min_vruntime).
        incumbents = [
            self.accounts[v.gid].vruntime
            for v in self.vcpus_on_core(core_id)
            if v.gid in self.accounts
        ]
        start = min(incumbents) if incumbents else 0.0
        self.accounts[vcpu.gid] = CfsAccount(vruntime=start, weight=weight)

    def account(self, vcpu: "VCpu") -> CfsAccount:
        return self.accounts[vcpu.gid]

    def on_vcpu_unregistered(self, vcpu: "VCpu", core_id: int) -> None:
        del self.accounts[vcpu.gid]

    def _pick(self, core_id: int) -> Optional["VCpu"]:
        candidates = [
            v
            for v in self.vcpus_on_core(core_id)
            if v.runnable and not self.is_parked(v)
        ]
        if not candidates:
            return None
        return min(
            candidates, key=lambda v: (self.accounts[v.gid].vruntime, v.gid)
        )

    def on_tick_start(self, tick_index: int) -> None:
        for core in self.system.machine.cores:
            choice = self._pick(core.core_id)
            if core.running is not choice:
                if core.running is not None:
                    self.system.context_switch(core, None)
                if choice is not None:
                    self.system.context_switch(core, choice)

    def refill_core(self, core) -> None:
        choice = self._pick(core.core_id)
        if choice is not None and core.running is not choice:
            if core.running is not None:
                self.system.context_switch(core, None)
            self.system.context_switch(core, choice)

    def on_tick_end(self, tick_index: int) -> None:
        for core in self.system.machine.cores:
            vcpu = core.running
            if vcpu is None:
                continue
            account = self.accounts[vcpu.gid]
            account.vruntime += (
                self.system.tick_usec * NICE0_WEIGHT / account.weight
            )
            self.system.recorder.inc("cfs.vcpu_ticks_run")
        if self.system.recorder.enabled and self.accounts:
            self.system.recorder.gauge(
                "cfs.min_vruntime",
                min(account.vruntime for account in self.accounts.values()),
            )

    def on_accounting(self, tick_index: int) -> None:
        """CFS has no slice-based credit refill; nothing to do."""
