"""The Xen RTDS (real-time deferrable server) scheduler.

Xen's second maintained scheduler: each vCPU is a deferrable server with
a **budget** of execution time per **period**; runnable vCPUs with
remaining budget are dispatched earliest-deadline-first (the deadline is
the end of the current period), and a vCPU whose budget is exhausted is
depleted until its next replenishment.  HPC clouds with latency
guarantees use it instead of the credit scheduler — which makes it a
natural fourth port target for Kyoto (see
:class:`~repro.core.ks4rtds.KS4RTDS`).

Budgets and periods are expressed in ticks.  VMs declare them via two
optional attributes the scheduler reads from ``VmConfig`` duck-typed
``rt_budget_ticks`` / ``rt_period_ticks`` entries in the config's
``weight``-free world; absent a declaration, a vCPU gets a full-utilisation
server (budget == period), i.e. best-effort behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, TYPE_CHECKING

from .base import Scheduler

if TYPE_CHECKING:  # pragma: no cover
    from repro.hypervisor.vcpu import VCpu

#: Default server parameters (full utilisation: always eligible).
DEFAULT_PERIOD_TICKS = 3


@dataclass
class RtServer:
    """Deferrable-server state of one vCPU."""

    budget_ticks: int
    period_ticks: int
    remaining_budget: int = 0
    #: Tick index at which the current period ends (the EDF deadline).
    deadline_tick: int = 0

    def __post_init__(self) -> None:
        if self.period_ticks <= 0:
            raise ValueError(
                f"period must be positive, got {self.period_ticks}"
            )
        if not 0 < self.budget_ticks <= self.period_ticks:
            raise ValueError(
                f"budget must be in (0, period], got {self.budget_ticks}"
                f"/{self.period_ticks}"
            )
        self.remaining_budget = self.budget_ticks

    @property
    def depleted(self) -> bool:
        return self.remaining_budget <= 0

    def replenish(self, now_tick: int) -> None:
        """Start a new period at ``now_tick``."""
        self.remaining_budget = self.budget_ticks
        self.deadline_tick = now_tick + self.period_ticks


class RtdsScheduler(Scheduler):
    """EDF dispatch of deferrable servers (Xen's RTDS)."""

    name = "rtds"

    def __init__(self) -> None:
        super().__init__()
        self.servers: Dict[int, RtServer] = {}

    def on_vcpu_registered(self, vcpu: "VCpu", core_id: int) -> None:
        config = vcpu.vm.config
        budget = getattr(config, "rt_budget_ticks", None)
        period = getattr(config, "rt_period_ticks", None)
        if budget is None or period is None:
            budget = period = DEFAULT_PERIOD_TICKS
        server = RtServer(budget_ticks=budget, period_ticks=period)
        server.replenish(0)
        self.servers[vcpu.gid] = server

    def server_of(self, vcpu: "VCpu") -> RtServer:
        return self.servers[vcpu.gid]

    def on_vcpu_unregistered(self, vcpu: "VCpu", core_id: int) -> None:
        del self.servers[vcpu.gid]

    def set_server(self, vcpu: "VCpu", budget_ticks: int, period_ticks: int) -> None:
        """Reconfigure a vCPU's server (xl sched-rtds equivalent)."""
        server = RtServer(budget_ticks=budget_ticks, period_ticks=period_ticks)
        server.replenish(0)
        self.servers[vcpu.gid] = server

    def _pick(self, core_id: int) -> Optional["VCpu"]:
        candidates = [
            v
            for v in self.vcpus_on_core(core_id)
            if v.runnable
            and not self.is_parked(v)
            and not self.servers[v.gid].depleted
        ]
        if not candidates:
            return None
        # Earliest deadline first; gid breaks ties deterministically.
        return min(
            candidates,
            key=lambda v: (self.servers[v.gid].deadline_tick, v.gid),
        )

    def refill_core(self, core) -> None:
        choice = self._pick(core.core_id)
        if choice is not None and core.running is not choice:
            if core.running is not None:
                self.system.context_switch(core, None)
            self.system.context_switch(core, choice)

    def on_tick_start(self, tick_index: int) -> None:
        # Replenish every server whose period elapsed.
        for server in self.servers.values():
            if tick_index >= server.deadline_tick:
                server.replenish(tick_index)
        for core in self.system.machine.cores:
            choice = self._pick(core.core_id)
            if core.running is not choice:
                if core.running is not None:
                    self.system.context_switch(core, None)
                if choice is not None:
                    self.system.context_switch(core, choice)

    def on_tick_end(self, tick_index: int) -> None:
        for core in self.system.machine.cores:
            vcpu = core.running
            if vcpu is None:
                continue
            self.servers[vcpu.gid].remaining_budget -= 1

    def on_accounting(self, tick_index: int) -> None:
        """RTDS replenishes per-server periods, not per global slice."""
