"""Materialize a :class:`ScenarioSpec` into a runnable system.

This is the single place that knows how to turn declarative scenario
data into live objects: the machine preset, the scheduler (with its
Kyoto engine), the VM fleet, the monitoring strategy, the fault-plan
injectors and the optional periodic migrator.  Every figure driver and
every TOML scenario funnels through here, so the construction order —
scheduler, system, fault plan, injectors, monitor, VMs — is identical
no matter where the spec came from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.ks4linux import KS4Linux
from repro.core.ks4rtds import KS4RTDS
from repro.core.ks4xen import KS4Xen
from repro.core.monitor import (
    DirectPmcMonitor,
    McSimReplayMonitor,
    PollutionMonitor,
    SocketDedicationMonitor,
)
from repro.core.resilient import ResilientMonitor
from repro.faults.injectors import (
    FaultyMonitor,
    FaultyReplayService,
    MigrationFaultInjector,
)
from repro.faults.plan import FaultPlan, FaultSpec, uniform_plan
from repro.hardware.specs import MachineSpec, numa_machine, paper_machine
from repro.hypervisor.migration import PeriodicMigrator
from repro.hypervisor.system import VirtualizedSystem
from repro.hypervisor.vm import VirtualMachine, VmConfig
from repro.mcsim.service import ReplayService
from repro.schedulers.cfs import CfsScheduler
from repro.schedulers.credit import CreditScheduler
from repro.schedulers.rtds import RtdsScheduler
from repro.pisces.cokernel import PiscesCoKernel
from repro.pisces.ks4pisces import KS4Pisces
from repro.service import (
    AdmissionController,
    CapacityCapAdmission,
    ChurnGenerator,
    NaiveAdmission,
    PermitBudgetAdmission,
    ServiceLoop,
    VmTemplate,
)
from repro.workloads.base import Workload
from repro.workloads.micro import micro_workload
from repro.workloads.profiles import application_workload

from .spec import (
    AdmissionSpec,
    MonitorSpec,
    ScenarioError,
    ScenarioSpec,
    ServiceSpec,
    VmSpec,
    WorkloadSpec,
)


@dataclass
class Materialized:
    """A scenario brought to life: the system plus every attached part."""

    spec: ScenarioSpec
    system: VirtualizedSystem
    scheduler: object
    #: name -> VM, in creation order (count-expanded names included).
    vms: Dict[str, VirtualMachine] = field(default_factory=dict)
    fault_plan: Optional[FaultPlan] = None
    monitor: Optional[PollutionMonitor] = None
    migrator: Optional[PeriodicMigrator] = None
    #: The churn-driven service loop (only with a [service] section).
    service: Optional[ServiceLoop] = None
    #: Uninstall hooks for the fault injectors, in install order.
    _uninstallers: List[Callable[[], None]] = field(default_factory=list)

    @property
    def kyoto(self):
        """The scheduler's Kyoto engine (None for non-ks4* kinds)."""
        return getattr(self.scheduler, "kyoto", None)

    def vm(self, name: str) -> VirtualMachine:
        return self.vms[name]

    @property
    def target(self) -> VirtualMachine:
        """The VM the scenario's protocol measures."""
        return self.vms[self.spec.target_vm_name()]

    def uninstall_faults(self) -> None:
        """Remove every installed fault injector (reverse order)."""
        while self._uninstallers:
            self._uninstallers.pop()()


def machine_for(preset: str) -> MachineSpec:
    """Resolve a machine preset name to its :class:`MachineSpec`."""
    if preset == "paper":
        return paper_machine()
    if preset == "numa":
        return numa_machine()
    raise ScenarioError([f"machine.preset: unknown preset {preset!r}"])


def scheduler_for(spec: ScenarioSpec):
    """Construct the scheduler the spec asks for (monitor attached later)."""
    kind = spec.scheduler.kind
    if kind == "xcs":
        return CreditScheduler()
    if kind == "cfs":
        return CfsScheduler()
    if kind == "rtds":
        return RtdsScheduler()
    if kind == "pisces":
        return PiscesCoKernel()
    kwargs = dict(
        quota_max_factor=spec.scheduler.quota_max_factor,
        monitor_period_ticks=spec.scheduler.monitor_period_ticks,
    )
    if kind == "ks4xen":
        return KS4Xen(quota_min_factor=spec.scheduler.quota_min_factor, **kwargs)
    if kind == "ks4linux":
        return KS4Linux(**kwargs)
    if kind == "ks4rtds":
        return KS4RTDS(**kwargs)
    if kind == "ks4pisces":
        return KS4Pisces(**kwargs)
    raise ScenarioError([f"scheduler.kind: unknown kind {kind!r}"])


def workload_for(spec: WorkloadSpec) -> Workload:
    """Instantiate the workload a :class:`WorkloadSpec` describes."""
    if spec.kind == "application":
        assert spec.app is not None  # enforced by validate()
        return application_workload(
            spec.app, total_instructions=spec.total_instructions
        )
    assert spec.wss_bytes is not None
    return micro_workload(
        spec.wss_bytes,
        total_instructions=spec.total_instructions,
        disruptive=spec.disruptive,
    )


def vm_configs_for(spec: VmSpec, total_cores: int) -> List[VmConfig]:
    """Expand one :class:`VmSpec` into its (possibly counted) configs."""
    if spec.count == 1:
        return [
            VmConfig(
                name=spec.name,
                workload=workload_for(spec.workload),
                num_vcpus=spec.num_vcpus,
                weight=spec.weight,
                cap_percent=spec.cap_percent,
                llc_cap=spec.llc_cap,
                memory_node=spec.memory_node,
                pinned_cores=(
                    list(spec.pinned_cores) if spec.pinned_cores is not None else None
                ),
            )
        ]
    configs = []
    for i in range(spec.count):
        pinned = None
        if spec.pinned_cores is not None:
            pinned = [(spec.pinned_cores[0] + i) % total_cores]
        configs.append(
            VmConfig(
                name=f"{spec.name}-{i}",
                workload=workload_for(spec.workload),
                num_vcpus=spec.num_vcpus,
                weight=spec.weight,
                cap_percent=spec.cap_percent,
                llc_cap=spec.llc_cap,
                memory_node=spec.memory_node,
                pinned_cores=pinned,
            )
        )
    return configs


def admission_for(spec: AdmissionSpec) -> AdmissionController:
    """Construct the admission controller an :class:`AdmissionSpec` asks for."""
    if spec.policy == "naive":
        return NaiveAdmission()
    if spec.policy == "capacity":
        assert spec.max_vcpus is not None  # enforced by validate()
        return CapacityCapAdmission(spec.max_vcpus)
    if spec.policy == "permit_budget":
        assert spec.llc_budget is not None
        return PermitBudgetAdmission(spec.llc_budget)
    raise ScenarioError(
        [f"service.admission.policy: unknown policy {spec.policy!r}"]
    )


def service_loop_for(
    service: ServiceSpec, system: VirtualizedSystem
) -> ServiceLoop:
    """Build the churn generator, admission policy and service loop.

    All stochastic draws come from rng streams derived from the scenario
    seed (``service.arrivals``, ``service.lifetimes``,
    ``service.templates``), so a soak run is bit-reproducible.
    """
    arrivals = service.arrivals
    lifetime = service.lifetime
    churn = ChurnGenerator(
        system.rng.stream("service.arrivals"),
        system.rng.stream("service.lifetimes"),
        process=arrivals.process,
        rate_per_tick=arrivals.rate_per_tick,
        burst_probability=arrivals.burst_probability,
        burst_size=arrivals.burst_size,
        diurnal_amplitude=arrivals.diurnal_amplitude,
        diurnal_period_ticks=arrivals.diurnal_period_ticks,
        lifetime_kind=lifetime.kind,
        lifetime_mean_ticks=lifetime.mean_ticks,
        lifetime_sigma=lifetime.sigma,
    )
    templates = [
        VmTemplate(
            name=template.name,
            # Bound per template: every admission stamps a fresh workload.
            make_workload=lambda workload=template.workload: workload_for(
                workload
            ),
            num_vcpus=template.num_vcpus,
            weight=template.weight,
            cap_percent=template.cap_percent,
            llc_cap=template.llc_cap,
            memory_node=template.memory_node,
        )
        for template in service.templates
    ]
    return ServiceLoop(
        system,
        churn,
        admission_for(service.admission),
        templates,
        system.rng.stream("service.templates"),
        drain_at_end=service.drain_at_end,
    )


def _fault_plan_for(spec: ScenarioSpec, system: VirtualizedSystem) -> FaultPlan:
    assert spec.faults is not None
    faults = spec.faults
    # Dynamic by design: the stream name comes from the validated scenario
    # file, so collisions are the scenario author's explicit choice.
    rng = system.rng.stream(faults.stream)  # kyotolint: disable=S002
    if faults.uniform_rate is not None:
        return uniform_plan(faults.uniform_rate, rng, burst=faults.burst)
    specs = [
        FaultSpec(
            site=site.site,
            probability=site.probability,
            burst=site.burst,
            windows=site.windows,
        )
        for site in faults.sites
    ]
    return FaultPlan(specs, rng=rng)


def _chain_member(
    member: str,
    monitor_spec: MonitorSpec,
    system: VirtualizedSystem,
    plan: Optional[FaultPlan],
) -> PollutionMonitor:
    """One monitor of a chain, fault-wrapped when a plan is installed."""
    if member == "direct":
        direct = DirectPmcMonitor(system)
        if plan is not None:
            return FaultyMonitor(direct, plan)
        return direct
    if member == "dedication":
        # Migration faults reach dedication windows through the
        # hypervisor-level MigrationFaultInjector, not a wrapper.
        return SocketDedicationMonitor(
            system, sample_ticks=monitor_spec.sample_ticks
        )
    if member == "replay":
        service: object = ReplayService(
            refresh_every=monitor_spec.replay_refresh_every,
            max_report_age=monitor_spec.replay_max_report_age,
        )
        if plan is not None:
            service = FaultyReplayService(service, plan, system)
        return McSimReplayMonitor(system, service)
    raise ScenarioError([f"monitor.chain: unknown member {member!r}"])


def monitor_for(
    spec: ScenarioSpec,
    system: VirtualizedSystem,
    plan: Optional[FaultPlan] = None,
) -> Optional[PollutionMonitor]:
    """Build the monitoring strategy (None keeps the engine default)."""
    monitor_spec = spec.monitor
    if monitor_spec.strategy == "default":
        return None
    if monitor_spec.strategy == "resilient":
        chain = [
            _chain_member(member, monitor_spec, system, plan)
            for member in monitor_spec.chain
        ]
        return ResilientMonitor(
            system, chain=chain, retries=monitor_spec.retries
        )
    return _chain_member(monitor_spec.strategy, monitor_spec, system, plan)


def materialize(spec: ScenarioSpec) -> Materialized:
    """Turn a validated spec into a runnable :class:`Materialized`.

    Raises :class:`ScenarioError` for problems only visible against the
    concrete machine (e.g. a pinned core that does not exist on the
    chosen preset).
    """
    spec.validate()
    scheduler = scheduler_for(spec)
    machine = machine_for(spec.machine.preset)
    system = VirtualizedSystem(
        scheduler,
        machine,
        tick_usec=spec.system.tick_usec,
        ticks_per_slice=spec.system.ticks_per_slice,
        substeps_per_tick=spec.system.substeps_per_tick,
        context_switch_cost_cycles=spec.system.context_switch_cost_cycles,
        perf_jitter_fraction=spec.system.perf_jitter_fraction,
        seed=spec.system.seed,
    )
    built = Materialized(spec=spec, system=system, scheduler=scheduler)

    if spec.faults is not None:
        built.fault_plan = _fault_plan_for(spec, system)
        injector = MigrationFaultInjector(system, built.fault_plan)
        built._uninstallers.append(injector.uninstall)

    built.monitor = monitor_for(spec, system, built.fault_plan)
    if built.monitor is not None:
        kyoto = getattr(scheduler, "kyoto", None)
        if kyoto is None:
            raise ScenarioError(
                [
                    f"monitor.strategy: {spec.monitor.strategy!r} needs a "
                    f"Kyoto scheduler (ks4*), not {spec.scheduler.kind!r}"
                ]
            )
        kyoto.monitor = built.monitor

    total_cores = machine.total_cores
    for vm_spec in spec.vms:
        for config in vm_configs_for(vm_spec, total_cores):
            if config.pinned_cores is not None:
                for core in config.pinned_cores:
                    if core >= total_cores:
                        raise ScenarioError(
                            [
                                f"vms: {config.name!r} pins core {core} but "
                                f"machine preset {spec.machine.preset!r} has "
                                f"only {total_cores} cores"
                            ]
                        )
            built.vms[config.name] = system.create_vm(config)

    if spec.service is not None:
        built.service = service_loop_for(spec.service, system)

    if spec.migration is not None:
        migration = spec.migration
        target_name = (
            migration.vm if migration.vm is not None else spec.target_vm_name()
        )
        vm = built.vms[target_name]
        try:
            built.migrator = PeriodicMigrator(
                system,
                vm.vcpus[0],
                home_core=migration.home_core,
                remote_core=migration.remote_core,
                period_ticks=migration.period_ticks,
                min_dwell_ticks=migration.min_dwell_ticks,
                max_dwell_ticks=migration.max_dwell_ticks,
                seed=migration.seed,
            )
        except ValueError as exc:
            raise ScenarioError([f"migration: {exc}"]) from exc

    return built
