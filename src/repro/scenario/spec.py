"""The declarative scenario schema (``repro.scenario/1``).

A :class:`ScenarioSpec` captures everything needed to reproduce one
run of the simulated IaaS — machine, scheduler, VM fleet with workload
profiles and pinning, Kyoto/enforcement configuration including the
resilient-monitor strategy, an optional fault plan, telemetry toggles,
and a measurement protocol — as plain, validated, serializable
dataclasses.  The figure drivers under :mod:`repro.experiments` build
these specs programmatically; TOML/JSON files on disk build the exact
same objects through :mod:`repro.scenario.serialize`, so "a new
experiment" is a ~20-line TOML file, not a new Python driver.

Specs are *inert data*: nothing here imports the hypervisor.  Turning a
spec into a runnable system is :mod:`repro.scenario.materialize`'s job.

Every stochastic input of a scenario is the single ``system.seed``
integer — specs never touch ambient randomness (kyotolint D001/D002),
so one spec pins one bit-exact run.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.faults.plan import KNOWN_SITES

from .defaults import (
    DEFAULT_EXEC_MAX_TICKS,
    DEFAULT_MEASURE_TICKS,
    DEFAULT_WARMUP_TICKS,
)

#: Schema identifier of a serialized scenario document.
SCENARIO_SCHEMA = "repro.scenario/1"

#: Machine presets the materializer knows how to build.
MACHINE_PRESETS = ("paper", "numa")

#: Scheduler kinds (``ks4*`` kinds enable the Kyoto engine).
SCHEDULER_KINDS = (
    "xcs", "ks4xen", "cfs", "ks4linux", "rtds", "ks4rtds",
    "pisces", "ks4pisces",
)
KYOTO_SCHEDULER_KINDS = ("ks4xen", "ks4linux", "ks4rtds", "ks4pisces")

#: Monitoring strategies (``default`` lets the engine pick direct PMC).
MONITOR_STRATEGIES = ("default", "direct", "dedication", "replay", "resilient")

#: Members a resilient failover chain may list.
CHAIN_MEMBERS = ("replay", "dedication", "direct")

WORKLOAD_KINDS = ("application", "micro")

PROTOCOL_MODES = ("measure", "execution_time")

#: Arrival processes the service-mode churn generator implements.
ARRIVAL_PROCESSES = ("poisson", "bursty")

#: VM lifetime distributions.
LIFETIME_KINDS = ("exponential", "lognormal", "fixed")

#: Admission-control policies (docs/service.md).
ADMISSION_POLICIES = ("naive", "capacity", "permit_budget")


class ScenarioError(ValueError):
    """Invalid scenario definition; carries every collected error."""

    def __init__(self, errors: Sequence[str]) -> None:
        self.errors: List[str] = list(errors)
        super().__init__(
            "invalid scenario:\n  " + "\n  ".join(self.errors)
            if len(self.errors) != 1
            else f"invalid scenario: {self.errors[0]}"
        )


class _Errors:
    """Collects dotted-path validation errors."""

    def __init__(self) -> None:
        self.items: List[str] = []

    def add(self, path: str, message: str) -> None:
        self.items.append(f"{path}: {message}")

    def raise_if_any(self) -> None:
        if self.items:
            raise ScenarioError(self.items)


@dataclass(frozen=True)
class WorkloadSpec:
    """What one VM runs.

    ``kind="application"`` selects a calibrated SPEC CPU2006-style
    profile by name (:mod:`repro.workloads.profiles`);
    ``kind="micro"`` the Drepper pointer-chase micro-benchmark over
    ``wss_bytes`` of memory (:mod:`repro.workloads.micro`), with
    ``disruptive=True`` selecting its eviction-maximising variant.
    ``total_instructions`` makes the workload finite (execution-time
    protocols need one finite target).
    """

    kind: str = "application"
    app: Optional[str] = None
    wss_bytes: Optional[int] = None
    disruptive: bool = False
    total_instructions: Optional[float] = None

    def validate(self, path: str, errors: _Errors) -> None:
        if self.kind not in WORKLOAD_KINDS:
            errors.add(
                f"{path}.kind",
                f"unknown workload kind {self.kind!r}; "
                f"expected one of {', '.join(WORKLOAD_KINDS)}",
            )
            return
        if self.kind == "application":
            if not self.app:
                errors.add(
                    f"{path}.app",
                    "application workloads need an 'app' name "
                    "(e.g. \"gcc\", \"lbm\")",
                )
            if self.wss_bytes is not None:
                errors.add(
                    f"{path}.wss_bytes",
                    "wss_bytes only applies to kind=\"micro\"",
                )
        else:  # micro
            if self.app is not None:
                errors.add(
                    f"{path}.app", "app only applies to kind=\"application\""
                )
            if self.wss_bytes is None or self.wss_bytes <= 0:
                errors.add(
                    f"{path}.wss_bytes",
                    "micro workloads need a positive working-set size "
                    f"in bytes, got {self.wss_bytes}",
                )
        if self.total_instructions is not None and self.total_instructions <= 0:
            errors.add(
                f"{path}.total_instructions",
                f"must be positive when set, got {self.total_instructions}",
            )


@dataclass(frozen=True)
class VmSpec:
    """One VM of the fleet (or ``count`` clones of it).

    With ``count > 1`` the materializer creates ``count`` VMs named
    ``{name}-0 .. {name}-{count-1}``; when ``pinned_cores`` then holds a
    single entry ``[c]``, clone ``i`` is pinned to
    ``(c + i) % total_cores`` — the round-robin fill of the Fig 6
    consolidation sweep.
    """

    name: str
    workload: WorkloadSpec
    count: int = 1
    num_vcpus: int = 1
    weight: int = 256
    cap_percent: Optional[float] = None
    llc_cap: Optional[float] = None
    memory_node: int = 0
    pinned_cores: Optional[Tuple[int, ...]] = None

    def validate(self, path: str, errors: _Errors) -> None:
        if not self.name:
            errors.add(f"{path}.name", "VM name must be non-empty")
        self.workload.validate(f"{path}.workload", errors)
        if self.count < 1:
            errors.add(f"{path}.count", f"must be >= 1, got {self.count}")
        if self.num_vcpus < 1:
            errors.add(f"{path}.num_vcpus", f"must be >= 1, got {self.num_vcpus}")
        if self.weight <= 0:
            errors.add(f"{path}.weight", f"must be positive, got {self.weight}")
        if self.cap_percent is not None and not (
            0 <= self.cap_percent <= 100 * self.num_vcpus
        ):
            errors.add(
                f"{path}.cap_percent",
                f"must be in [0, {100 * self.num_vcpus}], got {self.cap_percent}",
            )
        if self.llc_cap is not None and self.llc_cap < 0:
            errors.add(f"{path}.llc_cap", f"must be >= 0, got {self.llc_cap}")
        if self.memory_node < 0:
            errors.add(f"{path}.memory_node", f"must be >= 0, got {self.memory_node}")
        if self.pinned_cores is not None:
            if self.count > 1 and len(self.pinned_cores) != 1:
                errors.add(
                    f"{path}.pinned_cores",
                    "a counted VM takes exactly one pinned core (clone i "
                    f"rotates from it), got {list(self.pinned_cores)}",
                )
            elif self.count == 1 and len(self.pinned_cores) != self.num_vcpus:
                errors.add(
                    f"{path}.pinned_cores",
                    f"must list one core per vCPU ({self.num_vcpus}), "
                    f"got {list(self.pinned_cores)}",
                )
            if any(core < 0 for core in self.pinned_cores):
                errors.add(
                    f"{path}.pinned_cores",
                    f"core ids must be >= 0, got {list(self.pinned_cores)}",
                )


@dataclass(frozen=True)
class MachineSpecChoice:
    """Which modelled physical machine the scenario runs on."""

    preset: str = "paper"

    def validate(self, path: str, errors: _Errors) -> None:
        if self.preset not in MACHINE_PRESETS:
            errors.add(
                f"{path}.preset",
                f"unknown machine preset {self.preset!r}; "
                f"expected one of {', '.join(MACHINE_PRESETS)}",
            )


@dataclass(frozen=True)
class SchedulerChoice:
    """Scheduler kind plus the Kyoto enforcement knobs.

    The quota factors only apply to the ``ks4*`` kinds;
    ``quota_min_factor`` (the bank bound of docs/faults.md) is only
    supported by ``ks4xen``.
    """

    kind: str = "xcs"
    quota_max_factor: float = 3.0
    monitor_period_ticks: int = 1
    quota_min_factor: Optional[float] = None

    def validate(self, path: str, errors: _Errors) -> None:
        if self.kind not in SCHEDULER_KINDS:
            errors.add(
                f"{path}.kind",
                f"unknown scheduler kind {self.kind!r}; "
                f"expected one of {', '.join(SCHEDULER_KINDS)}",
            )
            return
        if self.monitor_period_ticks <= 0:
            errors.add(
                f"{path}.monitor_period_ticks",
                f"must be positive, got {self.monitor_period_ticks}",
            )
        if self.quota_max_factor <= 0:
            errors.add(
                f"{path}.quota_max_factor",
                f"must be positive, got {self.quota_max_factor}",
            )
        if self.quota_min_factor is not None:
            if self.kind != "ks4xen":
                errors.add(
                    f"{path}.quota_min_factor",
                    f"only supported by kind=\"ks4xen\", not {self.kind!r}",
                )
            elif self.quota_min_factor <= 0:
                errors.add(
                    f"{path}.quota_min_factor",
                    f"must be positive when set, got {self.quota_min_factor}",
                )


@dataclass(frozen=True)
class MonitorSpec:
    """How the Kyoto engine measures ``llc_cap_act``.

    ``default`` keeps the engine's own choice (direct PMC reads);
    ``resilient`` builds the failover chain of
    :mod:`repro.core.resilient` from ``chain`` members.  When a fault
    plan is present, the materializer wires the injectors into the
    matching members (replay faults into replay members, PMC faults
    into direct members, migration faults into the hypervisor).
    """

    strategy: str = "default"
    sample_ticks: int = 1
    chain: Tuple[str, ...] = ("replay", "dedication", "direct")
    retries: int = 1
    replay_refresh_every: int = 50
    replay_max_report_age: Optional[int] = None

    def validate(self, path: str, errors: _Errors) -> None:
        if self.strategy not in MONITOR_STRATEGIES:
            errors.add(
                f"{path}.strategy",
                f"unknown monitor strategy {self.strategy!r}; "
                f"expected one of {', '.join(MONITOR_STRATEGIES)}",
            )
            return
        if self.sample_ticks <= 0:
            errors.add(
                f"{path}.sample_ticks",
                f"must be positive, got {self.sample_ticks}",
            )
        if self.retries < 0:
            errors.add(f"{path}.retries", f"must be >= 0, got {self.retries}")
        if self.strategy == "resilient":
            if not self.chain:
                errors.add(
                    f"{path}.chain", "a resilient chain needs at least one member"
                )
            for i, member in enumerate(self.chain):
                if member not in CHAIN_MEMBERS:
                    errors.add(
                        f"{path}.chain[{i}]",
                        f"unknown chain member {member!r}; "
                        f"expected one of {', '.join(CHAIN_MEMBERS)}",
                    )
        if self.replay_refresh_every <= 0:
            errors.add(
                f"{path}.replay_refresh_every",
                f"must be positive, got {self.replay_refresh_every}",
            )
        if self.replay_max_report_age is not None and self.replay_max_report_age <= 0:
            errors.add(
                f"{path}.replay_max_report_age",
                f"must be positive when set, got {self.replay_max_report_age}",
            )


@dataclass(frozen=True)
class FaultSiteSpec:
    """Fault behaviour of one site (mirrors repro.faults.FaultSpec)."""

    site: str
    probability: float = 0.0
    burst: int = 1
    windows: Tuple[Tuple[int, int], ...] = ()

    def validate(self, path: str, errors: _Errors) -> None:
        if self.site not in KNOWN_SITES:
            errors.add(
                f"{path}.site",
                f"unknown fault site {self.site!r}; known sites: "
                f"{', '.join(KNOWN_SITES)}",
            )
        if not 0.0 <= self.probability <= 1.0:
            errors.add(
                f"{path}.probability",
                f"must be in [0, 1], got {self.probability}",
            )
        if self.burst < 1:
            errors.add(f"{path}.burst", f"must be >= 1, got {self.burst}")
        for i, window in enumerate(self.windows):
            if len(window) != 2 or window[0] < 0 or window[1] <= window[0]:
                errors.add(
                    f"{path}.windows[{i}]",
                    "must be [start_tick, end_tick] with 0 <= start < end, "
                    f"got {list(window)}",
                )


@dataclass(frozen=True)
class FaultsSpec:
    """The scenario's deterministic fault plan.

    Either ``uniform_rate`` (every known site fires at that probability
    — the chaos sweep primitive) or an explicit ``sites`` list.  All
    probabilistic draws come from the injected rng stream named
    ``stream``, derived from the scenario seed.
    """

    uniform_rate: Optional[float] = None
    burst: int = 1
    sites: Tuple[FaultSiteSpec, ...] = ()
    stream: str = "faults.plan"

    def validate(self, path: str, errors: _Errors) -> None:
        if self.uniform_rate is not None and self.sites:
            errors.add(
                path, "uniform_rate and explicit sites are mutually exclusive"
            )
        if self.uniform_rate is not None and not 0.0 <= self.uniform_rate <= 1.0:
            errors.add(
                f"{path}.uniform_rate",
                f"must be in [0, 1], got {self.uniform_rate}",
            )
        if self.burst < 1:
            errors.add(f"{path}.burst", f"must be >= 1, got {self.burst}")
        if not self.stream:
            errors.add(f"{path}.stream", "stream name must be non-empty")
        seen = set()
        for i, site in enumerate(self.sites):
            site.validate(f"{path}.sites[{i}]", errors)
            if site.site in seen:
                errors.add(
                    f"{path}.sites[{i}]", f"duplicate spec for site {site.site!r}"
                )
            seen.add(site.site)


@dataclass(frozen=True)
class MigrationSpec:
    """Optional periodic vCPU migration (the Fig 9 dwell choreography)."""

    home_core: int = 0
    remote_core: int = 4
    period_ticks: int = 10
    min_dwell_ticks: int = 1
    max_dwell_ticks: int = 3
    seed: int = 0
    vm: Optional[str] = None

    def validate(self, path: str, errors: _Errors) -> None:
        if self.period_ticks <= 0:
            errors.add(
                f"{path}.period_ticks",
                f"must be positive, got {self.period_ticks}",
            )
        if not 1 <= self.min_dwell_ticks <= self.max_dwell_ticks:
            errors.add(
                path,
                "need 1 <= min_dwell_ticks <= max_dwell_ticks, got "
                f"{self.min_dwell_ticks}..{self.max_dwell_ticks}",
            )
        if self.home_core < 0 or self.remote_core < 0:
            errors.add(path, "core ids must be >= 0")


@dataclass(frozen=True)
class SystemSpec:
    """Simulation substrate knobs (defaults mirror VirtualizedSystem)."""

    tick_usec: int = 10_000
    ticks_per_slice: int = 3
    substeps_per_tick: int = 10
    context_switch_cost_cycles: int = 20_000
    perf_jitter_fraction: float = 0.0
    seed: int = 0

    def validate(self, path: str, errors: _Errors) -> None:
        if self.tick_usec <= 0:
            errors.add(f"{path}.tick_usec", f"must be positive, got {self.tick_usec}")
        if self.ticks_per_slice <= 0:
            errors.add(
                f"{path}.ticks_per_slice",
                f"must be positive, got {self.ticks_per_slice}",
            )
        if self.substeps_per_tick <= 0:
            errors.add(
                f"{path}.substeps_per_tick",
                f"must be positive, got {self.substeps_per_tick}",
            )
        if self.context_switch_cost_cycles < 0:
            errors.add(
                f"{path}.context_switch_cost_cycles",
                f"must be >= 0, got {self.context_switch_cost_cycles}",
            )
        if not 0.0 <= self.perf_jitter_fraction < 1.0:
            errors.add(
                f"{path}.perf_jitter_fraction",
                f"must be in [0, 1), got {self.perf_jitter_fraction}",
            )


@dataclass(frozen=True)
class ProtocolSpec:
    """What to measure once the system is built.

    ``measure`` warms up, resets the target's metrics and measures IPC
    over a window (optionally against a solo baseline on an otherwise
    idle clone of the machine); ``execution_time`` runs until the
    (finite) target workload completes and reports seconds.
    """

    mode: str = "measure"
    warmup_ticks: int = DEFAULT_WARMUP_TICKS
    measure_ticks: int = DEFAULT_MEASURE_TICKS
    max_ticks: int = DEFAULT_EXEC_MAX_TICKS
    target_vm: Optional[str] = None
    solo_baseline: bool = False

    def validate(self, path: str, errors: _Errors) -> None:
        if self.mode not in PROTOCOL_MODES:
            errors.add(
                f"{path}.mode",
                f"unknown protocol mode {self.mode!r}; "
                f"expected one of {', '.join(PROTOCOL_MODES)}",
            )
        if self.warmup_ticks < 0:
            errors.add(
                f"{path}.warmup_ticks", f"must be >= 0, got {self.warmup_ticks}"
            )
        if self.measure_ticks <= 0:
            errors.add(
                f"{path}.measure_ticks",
                f"must be positive, got {self.measure_ticks}",
            )
        if self.max_ticks <= 0:
            errors.add(f"{path}.max_ticks", f"must be positive, got {self.max_ticks}")


@dataclass(frozen=True)
class TelemetrySpec:
    """Telemetry toggles for the scenario run."""

    enabled: bool = True
    series_capacity: int = 512

    def validate(self, path: str, errors: _Errors) -> None:
        if self.series_capacity <= 0:
            errors.add(
                f"{path}.series_capacity",
                f"must be positive, got {self.series_capacity}",
            )


@dataclass(frozen=True)
class ArrivalSpec:
    """The service mode's VM arrival process.

    ``poisson`` draws per-tick arrival counts from a Poisson law at
    ``rate_per_tick``; ``bursty`` layers rare bursts of ``burst_size``
    simultaneous arrivals on top (cloud "thundering herd" admission).
    A nonzero ``diurnal_amplitude`` modulates the rate sinusoidally over
    ``diurnal_period_ticks`` (day/night load).
    """

    process: str = "poisson"
    rate_per_tick: float = 0.01
    burst_probability: float = 0.0
    burst_size: int = 3
    diurnal_amplitude: float = 0.0
    diurnal_period_ticks: int = 0

    def validate(self, path: str, errors: _Errors) -> None:
        if self.process not in ARRIVAL_PROCESSES:
            errors.add(
                f"{path}.process",
                f"unknown arrival process {self.process!r}; "
                f"expected one of {', '.join(ARRIVAL_PROCESSES)}",
            )
        if self.rate_per_tick < 0:
            errors.add(
                f"{path}.rate_per_tick",
                f"must be >= 0, got {self.rate_per_tick}",
            )
        if not 0.0 <= self.burst_probability <= 1.0:
            errors.add(
                f"{path}.burst_probability",
                f"must be in [0, 1], got {self.burst_probability}",
            )
        if self.burst_size < 1:
            errors.add(
                f"{path}.burst_size", f"must be >= 1, got {self.burst_size}"
            )
        if not 0.0 <= self.diurnal_amplitude <= 1.0:
            errors.add(
                f"{path}.diurnal_amplitude",
                f"must be in [0, 1], got {self.diurnal_amplitude}",
            )
        if self.diurnal_amplitude > 0.0 and self.diurnal_period_ticks <= 0:
            errors.add(
                f"{path}.diurnal_period_ticks",
                "must be positive when diurnal_amplitude is set, got "
                f"{self.diurnal_period_ticks}",
            )


@dataclass(frozen=True)
class LifetimeSpec:
    """How long an admitted VM lives before the service retires it."""

    kind: str = "exponential"
    mean_ticks: float = 1_000.0
    sigma: float = 0.5

    def validate(self, path: str, errors: _Errors) -> None:
        if self.kind not in LIFETIME_KINDS:
            errors.add(
                f"{path}.kind",
                f"unknown lifetime kind {self.kind!r}; "
                f"expected one of {', '.join(LIFETIME_KINDS)}",
            )
        if self.mean_ticks <= 0:
            errors.add(
                f"{path}.mean_ticks",
                f"must be positive, got {self.mean_ticks}",
            )
        if self.kind == "lognormal" and self.sigma <= 0:
            errors.add(
                f"{path}.sigma",
                f"must be positive for lognormal lifetimes, got {self.sigma}",
            )


@dataclass(frozen=True)
class AdmissionSpec:
    """Which admission controller gates arrivals.

    ``naive`` admits everything; ``capacity`` caps the number of live
    vCPUs at ``max_vcpus``; ``permit_budget`` caps the summed booked
    ``llc_cap`` of live VMs at ``llc_budget`` (the paper's permits as an
    admission currency).
    """

    policy: str = "naive"
    max_vcpus: Optional[int] = None
    llc_budget: Optional[float] = None

    def validate(self, path: str, errors: _Errors) -> None:
        if self.policy not in ADMISSION_POLICIES:
            errors.add(
                f"{path}.policy",
                f"unknown admission policy {self.policy!r}; "
                f"expected one of {', '.join(ADMISSION_POLICIES)}",
            )
            return
        if self.policy == "capacity":
            if self.max_vcpus is None or self.max_vcpus < 1:
                errors.add(
                    f"{path}.max_vcpus",
                    "capacity admission needs max_vcpus >= 1, got "
                    f"{self.max_vcpus}",
                )
        elif self.max_vcpus is not None:
            errors.add(
                f"{path}.max_vcpus",
                "only applies to policy=\"capacity\"",
            )
        if self.policy == "permit_budget":
            if self.llc_budget is None or self.llc_budget <= 0:
                errors.add(
                    f"{path}.llc_budget",
                    "permit_budget admission needs a positive llc_budget, "
                    f"got {self.llc_budget}",
                )
        elif self.llc_budget is not None:
            errors.add(
                f"{path}.llc_budget",
                "only applies to policy=\"permit_budget\"",
            )


@dataclass(frozen=True)
class ServiceTemplateSpec:
    """One entry of the service's VM template pool.

    Admitted VMs are stamped from a template (chosen round-robin by
    weight-free draw order) and named ``{name}-s{seq}`` with a global
    monotonic sequence number.  Templates carry no ``count`` and no
    pinning: placement is the scheduler's job in a churning fleet.
    """

    name: str
    workload: WorkloadSpec
    num_vcpus: int = 1
    weight: int = 256
    cap_percent: Optional[float] = None
    llc_cap: Optional[float] = None
    memory_node: int = 0

    def validate(self, path: str, errors: _Errors) -> None:
        if not self.name:
            errors.add(f"{path}.name", "template name must be non-empty")
        self.workload.validate(f"{path}.workload", errors)
        if self.num_vcpus < 1:
            errors.add(
                f"{path}.num_vcpus", f"must be >= 1, got {self.num_vcpus}"
            )
        if self.weight <= 0:
            errors.add(f"{path}.weight", f"must be positive, got {self.weight}")
        if self.cap_percent is not None and not (
            0 <= self.cap_percent <= 100 * self.num_vcpus
        ):
            errors.add(
                f"{path}.cap_percent",
                f"must be in [0, {100 * self.num_vcpus}], got {self.cap_percent}",
            )
        if self.llc_cap is not None and self.llc_cap < 0:
            errors.add(f"{path}.llc_cap", f"must be >= 0, got {self.llc_cap}")
        if self.memory_node < 0:
            errors.add(
                f"{path}.memory_node", f"must be >= 0, got {self.memory_node}"
            )


@dataclass(frozen=True)
class ServiceSpec:
    """The optional ``[service]`` section: churn-driven IaaS mode.

    Present, it turns the scenario into an open system — VMs from
    ``templates`` arrive under ``arrivals``, live for a ``lifetime``
    draw, and are gated by ``admission``.  Any static ``[[vms]]`` still
    materialize at tick 0 and churn alongside.  All stochastic draws
    come from the scenario seed via named rng streams
    (``service.arrivals``, ``service.lifetimes``, ``service.templates``).
    """

    arrivals: ArrivalSpec = field(default_factory=ArrivalSpec)
    lifetime: LifetimeSpec = field(default_factory=LifetimeSpec)
    admission: AdmissionSpec = field(default_factory=AdmissionSpec)
    templates: Tuple[ServiceTemplateSpec, ...] = ()
    #: Retire every live VM at the end of the soak (settles all accounts).
    drain_at_end: bool = True

    def validate(self, path: str, errors: _Errors) -> None:
        self.arrivals.validate(f"{path}.arrivals", errors)
        self.lifetime.validate(f"{path}.lifetime", errors)
        self.admission.validate(f"{path}.admission", errors)
        if not self.templates:
            errors.add(
                f"{path}.templates",
                "service mode needs at least one VM template",
            )
        names = set()
        for i, template in enumerate(self.templates):
            template.validate(f"{path}.templates[{i}]", errors)
            if template.name in names:
                errors.add(
                    f"{path}.templates[{i}].name",
                    f"duplicate template name {template.name!r}",
                )
            names.add(template.name)


@dataclass(frozen=True)
class ScenarioSpec:
    """One complete, self-contained experiment definition."""

    name: str
    description: str = ""
    schema: str = SCENARIO_SCHEMA
    machine: MachineSpecChoice = field(default_factory=MachineSpecChoice)
    scheduler: SchedulerChoice = field(default_factory=SchedulerChoice)
    system: SystemSpec = field(default_factory=SystemSpec)
    monitor: MonitorSpec = field(default_factory=MonitorSpec)
    vms: Tuple[VmSpec, ...] = ()
    faults: Optional[FaultsSpec] = None
    migration: Optional[MigrationSpec] = None
    protocol: ProtocolSpec = field(default_factory=ProtocolSpec)
    telemetry: TelemetrySpec = field(default_factory=TelemetrySpec)
    service: Optional[ServiceSpec] = None

    def validate(self) -> "ScenarioSpec":
        """Raise :class:`ScenarioError` listing every problem found."""
        errors = _Errors()
        if self.schema != SCENARIO_SCHEMA:
            errors.add(
                "schema",
                f"unsupported schema {self.schema!r}; "
                f"this build reads {SCENARIO_SCHEMA!r}",
            )
        if not self.name:
            errors.add("name", "scenario name must be non-empty")
        self.machine.validate("machine", errors)
        self.scheduler.validate("scheduler", errors)
        self.system.validate("system", errors)
        self.monitor.validate("monitor", errors)
        if not self.vms and self.service is None:
            errors.add(
                "vms",
                "a scenario needs at least one VM (or a [service] section)",
            )
        names = set()
        for i, vm in enumerate(self.vms):
            vm.validate(f"vms[{i}]", errors)
            if vm.name in names:
                errors.add(f"vms[{i}].name", f"duplicate VM name {vm.name!r}")
            names.add(vm.name)
        if self.faults is not None:
            self.faults.validate("faults", errors)
        if self.migration is not None:
            self.migration.validate("migration", errors)
            if not self.vms:
                errors.add(
                    "migration",
                    "periodic migration targets the static fleet; a "
                    "service-only scenario has no VM at tick 0 to migrate",
                )
            if self.migration.vm is not None and self.migration.vm not in names:
                errors.add(
                    "migration.vm",
                    f"no VM named {self.migration.vm!r} in the fleet",
                )
        self.protocol.validate("protocol", errors)
        self.telemetry.validate("telemetry", errors)
        if self.service is not None:
            self.service.validate("service", errors)
        if self.protocol.target_vm is not None and self.vms:
            expanded = set()
            for vm in self.vms:
                if vm.count == 1:
                    expanded.add(vm.name)
                else:
                    expanded.update(f"{vm.name}-{i}" for i in range(vm.count))
            if self.protocol.target_vm not in expanded:
                errors.add(
                    "protocol.target_vm",
                    f"no VM named {self.protocol.target_vm!r} in the fleet "
                    f"(have: {', '.join(sorted(expanded))})",
                )
        errors.raise_if_any()
        return self

    def target_vm_name(self) -> str:
        """The VM the protocol measures (defaults to the first VM)."""
        if self.protocol.target_vm is not None:
            return self.protocol.target_vm
        first = self.vms[0]
        return first.name if first.count == 1 else f"{first.name}-0"


def _scalar_fields(spec: Any) -> Dict[str, Any]:
    return {f.name: getattr(spec, f.name) for f in fields(spec)}
