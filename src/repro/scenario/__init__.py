"""Declarative scenarios: versioned, validated, serializable experiments.

One :class:`ScenarioSpec` describes everything a run needs — machine,
scheduler, VM fleet, monitoring strategy, fault plan, measurement
protocol — as inert data with a lossless TOML/JSON round-trip (schema
``repro.scenario/1``).  The package splits along that data/behaviour
line:

* :mod:`repro.scenario.defaults` — the paper's shared constants
* :mod:`repro.scenario.spec` — the dataclasses and their validation
* :mod:`repro.scenario.serialize` — dict/TOML/JSON round-trip
* :mod:`repro.scenario.sweep` — ``[sweep]`` grids over dotted paths
* :mod:`repro.scenario.materialize` — spec -> runnable system
* :mod:`repro.scenario.protocol` — shared measurement procedures
* :mod:`repro.scenario.runner` — run a spec, format its report
"""

from .defaults import (
    DEFAULT_EXEC_MAX_TICKS,
    DEFAULT_MEASURE_TICKS,
    DEFAULT_WARMUP_TICKS,
    EXEC_TIME_CHUNK_TICKS,
    PAPER_LLC_CAP,
    PAPER_SMALL_LLC_CAP,
)
from .materialize import Materialized, materialize
from .protocol import budget_exhausted_message, execution_time_sec, measured_ipc
from .runner import run_spec, solo_baseline_ipc
from .serialize import (
    dumps_json,
    dumps_toml,
    from_dict,
    load_scenario,
    loads_json,
    loads_toml,
    parse_scenario_file,
    to_dict,
)
from .spec import (
    SCENARIO_SCHEMA,
    AdmissionSpec,
    ArrivalSpec,
    FaultSiteSpec,
    FaultsSpec,
    LifetimeSpec,
    MachineSpecChoice,
    MigrationSpec,
    MonitorSpec,
    ProtocolSpec,
    ScenarioError,
    ScenarioSpec,
    SchedulerChoice,
    ServiceSpec,
    ServiceTemplateSpec,
    SystemSpec,
    TelemetrySpec,
    VmSpec,
    WorkloadSpec,
)
from .sweep import expand_document

__all__ = [
    "DEFAULT_EXEC_MAX_TICKS",
    "DEFAULT_MEASURE_TICKS",
    "DEFAULT_WARMUP_TICKS",
    "EXEC_TIME_CHUNK_TICKS",
    "PAPER_LLC_CAP",
    "PAPER_SMALL_LLC_CAP",
    "SCENARIO_SCHEMA",
    "AdmissionSpec",
    "ArrivalSpec",
    "FaultSiteSpec",
    "FaultsSpec",
    "LifetimeSpec",
    "MachineSpecChoice",
    "Materialized",
    "MigrationSpec",
    "MonitorSpec",
    "ProtocolSpec",
    "ScenarioError",
    "ScenarioSpec",
    "SchedulerChoice",
    "ServiceSpec",
    "ServiceTemplateSpec",
    "SystemSpec",
    "TelemetrySpec",
    "VmSpec",
    "WorkloadSpec",
    "budget_exhausted_message",
    "dumps_json",
    "dumps_toml",
    "execution_time_sec",
    "expand_document",
    "from_dict",
    "load_scenario",
    "loads_json",
    "loads_toml",
    "materialize",
    "measured_ipc",
    "parse_scenario_file",
    "run_spec",
    "solo_baseline_ipc",
    "to_dict",
]
