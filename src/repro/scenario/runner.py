"""Run a :class:`ScenarioSpec` end to end and format its report.

The runner is the generic counterpart of the hand-written figure
drivers: materialize the spec, apply its measurement protocol, and
render an aligned ASCII table — so a TOML file on disk is a complete,
runnable experiment with no new Python.  Reports are plain strings, the
same artifact payload the registry drivers produce, so scenario runs
flow through the campaign writer/aggregator unchanged.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Tuple

from repro.analysis.reporting import format_table
from repro.telemetry import NULL_RECORDER, MetricsRecorder, current_recorder

from .materialize import Materialized, materialize
from .protocol import execution_time_sec, measured_ipc
from .spec import ProtocolSpec, ScenarioError, ScenarioSpec, VmSpec


def solo_baseline_ipc(spec: ScenarioSpec) -> float:
    """Solo IPC of the target workload on an otherwise idle clone.

    The baseline machine keeps the scenario's preset and system knobs
    but swaps in the plain credit scheduler and a fleet of exactly one
    VM — the target's workload pinned to core 0 — mirroring
    ``solo_ipc_of`` from the imperative drivers.
    """
    target_name = spec.target_vm_name()
    target_spec: Optional[VmSpec] = None
    for vm in spec.vms:
        if vm.name == target_name or (
            vm.count > 1 and target_name.startswith(f"{vm.name}-")
        ):
            target_spec = vm
            break
    assert target_spec is not None  # validate() guarantees the target exists
    solo = replace(
        spec,
        name=f"{spec.name}.solo",
        scheduler=replace(spec.scheduler, kind="xcs", quota_min_factor=None),
        monitor=replace(spec.monitor, strategy="default"),
        vms=(
            replace(
                target_spec,
                name="solo",
                count=1,
                pinned_cores=(0,) * target_spec.num_vcpus,
            ),
        ),
        faults=None,
        migration=None,
        protocol=replace(spec.protocol, target_vm=None, solo_baseline=False),
    )
    built = materialize(solo)
    return measured_ipc(
        built.system,
        built.target,
        warmup_ticks=spec.protocol.warmup_ticks,
        measure_ticks=spec.protocol.measure_ticks,
    )


def _measure_report(spec: ScenarioSpec, built: Materialized) -> str:
    protocol = spec.protocol
    solo_ipc = solo_baseline_ipc(spec) if protocol.solo_baseline else None
    target = built.target
    measured_ipc(
        built.system,
        target,
        warmup_ticks=protocol.warmup_ticks,
        measure_ticks=protocol.measure_ticks,
    )
    recorder = _recorder_for(spec)
    kyoto = built.kyoto
    headers = ["vm", "ipc"]
    if kyoto is not None:
        headers += ["quota", "punishments"]
    rows: List[List[object]] = []
    for name, vm in built.vms.items():
        row: List[object] = [name, vm.vcpus[0].ipc]
        if kyoto is not None:
            quota = kyoto.quota(vm)
            row += [
                "-" if quota is None else quota,
                kyoto.punishments(vm),
            ]
        rows.append(row)
        recorder.gauge(f"scenario.ipc.{name}", vm.vcpus[0].ipc)
    lines = [format_table(headers, rows, title=_title(spec))]
    if solo_ipc is not None:
        normalized = target.vcpus[0].ipc / solo_ipc if solo_ipc > 0 else 0.0
        recorder.gauge("scenario.solo_ipc", solo_ipc)
        recorder.gauge("scenario.normalized_perf", normalized)
        recorder.inc("scenario.solo_baselines")
        lines.append(
            f"target {target.name}: solo ipc {solo_ipc:.3f}, "
            f"normalized perf {normalized:.3f}"
        )
    return "\n".join(lines) + "\n"


def _exec_time_report(spec: ScenarioSpec, built: Materialized) -> str:
    target = built.target
    seconds = execution_time_sec(
        built.system, target, max_ticks=spec.protocol.max_ticks
    )
    _recorder_for(spec).gauge("scenario.execution_time_sec", seconds)
    rows: List[Tuple[object, ...]] = [(target.name, seconds)]
    lines = [
        format_table(
            ["vm", "execution_time_sec"], rows, title=_title(spec)
        )
    ]
    if built.migrator is not None:
        lines.append(f"migrations: {built.migrator.migrations}")
    return "\n".join(lines) + "\n"


def _title(spec: ScenarioSpec) -> str:
    return spec.description or spec.name


def _recorder_for(spec: ScenarioSpec) -> MetricsRecorder:
    """The ambient recorder, or the no-op one when telemetry is off."""
    return current_recorder() if spec.telemetry.enabled else NULL_RECORDER


def run_spec(spec: ScenarioSpec) -> str:
    """Materialize and run one scenario; returns its formatted report."""
    if spec.protocol.mode == "execution_time":
        target_name = spec.target_vm_name()
        finite = any(
            vm.workload.total_instructions is not None
            for vm in spec.vms
            if vm.name == target_name
            or (vm.count > 1 and target_name.startswith(f"{vm.name}-"))
        )
        if not finite:
            raise ScenarioError(
                [
                    "protocol.mode: execution_time needs the target VM's "
                    "workload to set total_instructions (a finite workload)"
                ]
            )
    built = materialize(spec)
    try:
        if spec.protocol.mode == "execution_time":
            return _exec_time_report(spec, built)
        return _measure_report(spec, built)
    finally:
        built.uninstall_faults()
