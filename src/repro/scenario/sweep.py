"""Parameter sweeps: one document, a grid of scenario specs.

A scenario file may carry a ``[sweep]`` table mapping dotted spec paths
to lists of values::

    [sweep]
    "faults.uniform_rate" = [0.0, 0.1, 0.5]
    "system.seed" = [0, 1]

The grid is the cartesian product, expanded deterministically: axes in
document order, values in listed order, the *last* axis varying
fastest (:func:`itertools.product` order).  Each point applies its
overrides to the base document and validates into a full
:class:`ScenarioSpec` whose name gains an ``@axis=value,...`` suffix,
so a swept campaign's artifacts stay distinguishable and aggregatable.

List elements are addressed numerically (``"vms.1.llc_cap"``); missing
intermediate tables are created, so a sweep can add a section (e.g.
``faults``) the base document omits.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Mapping, Optional, Tuple

from .serialize import from_dict
from .spec import ScenarioError, ScenarioSpec


def apply_override(doc: Dict[str, Any], dotted: str, value: Any) -> None:
    """Set ``dotted`` path in ``doc`` (in place), creating tables as needed."""
    parts = dotted.split(".")
    if not all(parts):
        raise ScenarioError([f"sweep: invalid key {dotted!r}"])
    node: Any = doc
    for i, part in enumerate(parts[:-1]):
        key_path = ".".join(parts[: i + 1])
        if isinstance(node, list):
            index = _list_index(part, node, key_path)
            node = node[index]
        elif isinstance(node, dict):
            if part not in node:
                node[part] = {}
            node = node[part]
        else:
            raise ScenarioError(
                [f"sweep: {key_path!r} traverses a scalar, cannot descend"]
            )
        if not isinstance(node, (dict, list)):
            raise ScenarioError(
                [f"sweep: {'.'.join(parts[:i + 2])!r} traverses a scalar"]
            )
    last = parts[-1]
    if isinstance(node, list):
        index = _list_index(last, node, dotted)
        node[index] = value
    elif isinstance(node, dict):
        node[last] = value
    else:  # pragma: no cover - guarded above
        raise ScenarioError([f"sweep: cannot set {dotted!r}"])


def _list_index(part: str, node: list, key_path: str) -> int:
    try:
        index = int(part)
    except ValueError:
        raise ScenarioError(
            [f"sweep: {key_path!r} indexes a list; expected an integer segment"]
        ) from None
    if not 0 <= index < len(node):
        raise ScenarioError(
            [f"sweep: {key_path!r} out of range (list has {len(node)} items)"]
        )
    return index


def _format_value(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def _deep_copy_doc(doc: Mapping[str, Any]) -> Dict[str, Any]:
    """Copy nested dicts/lists (scenario documents hold only plain data)."""
    def copy_value(value: Any) -> Any:
        if isinstance(value, Mapping):
            return {k: copy_value(v) for k, v in value.items()}
        if isinstance(value, list):
            return [copy_value(v) for v in value]
        return value

    return {k: copy_value(v) for k, v in doc.items()}


def expand_document(
    doc: Mapping[str, Any],
) -> List[Tuple[Optional[str], ScenarioSpec]]:
    """Expand a (possibly swept) document into ``(label, spec)`` points.

    A sweep-free document yields one ``(None, spec)`` entry.  Labels
    name only the swept axes (``"system.seed=1"``), joined by commas in
    axis order; each point's spec name carries the ``@label`` suffix.
    """
    base = _deep_copy_doc(doc)
    sweep = base.pop("sweep", None)
    if sweep is None:
        return [(None, from_dict(base))]
    if not isinstance(sweep, Mapping) or not sweep:
        raise ScenarioError(
            ["sweep: expected a non-empty table of dotted-path -> value list"]
        )
    axes: List[Tuple[str, List[Any]]] = []
    for key, values in sweep.items():
        if not isinstance(values, list) or not values:
            raise ScenarioError(
                [f"sweep.{key}: expected a non-empty list of values"]
            )
        axes.append((key, values))
    points: List[Tuple[Optional[str], ScenarioSpec]] = []
    for combo in itertools.product(*(values for _, values in axes)):
        point = _deep_copy_doc(base)
        labels = []
        for (key, _), value in zip(axes, combo):
            apply_override(point, key, value)
            labels.append(f"{key}={_format_value(value)}")
        label = ",".join(labels)
        point["name"] = f"{point.get('name', 'scenario')}@{label}"
        points.append((label, from_dict(point)))
    return points
