"""Measurement protocols: warm-up/measure windows and execution time.

These are the procedures every experiment shares once its system is
built: warm up, reset, measure IPC over a window; or run a finite
workload to completion and report its finish time.  The figure drivers
(via :mod:`repro.experiments.common`) and the scenario runner both call
these, so the measurement semantics cannot drift between the imperative
and declarative paths.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .defaults import (
    DEFAULT_EXEC_MAX_TICKS,
    DEFAULT_MEASURE_TICKS,
    DEFAULT_WARMUP_TICKS,
    EXEC_TIME_CHUNK_TICKS,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.hypervisor.system import VirtualizedSystem
    from repro.hypervisor.vm import VirtualMachine


def measured_ipc(
    system: "VirtualizedSystem",
    vm: "VirtualMachine",
    warmup_ticks: int = DEFAULT_WARMUP_TICKS,
    measure_ticks: int = DEFAULT_MEASURE_TICKS,
) -> float:
    """Warm up, reset, measure: the VM's IPC over the window."""
    system.run_ticks(warmup_ticks)
    vm.reset_metrics()
    system.run_ticks(measure_ticks)
    return vm.vcpus[0].ipc


def execution_time_sec(
    system: "VirtualizedSystem",
    vm: "VirtualMachine",
    max_ticks: int = DEFAULT_EXEC_MAX_TICKS,
    chunk_ticks: int = EXEC_TIME_CHUNK_TICKS,
) -> float:
    """Run until ``vm`` finishes and return its completion time (seconds).

    Ticks advance in chunks of ``chunk_ticks`` through
    :meth:`~repro.hypervisor.system.VirtualizedSystem.run_ticks_until`
    with a per-tick finish check, so the simulation stops on exactly the
    tick the VM completes (identical ``finish_usec`` to a tick-by-tick
    loop) without paying a Python call round-trip per tick — see
    BENCH_pr4_exec_time.json for the measured speedup.
    """
    if chunk_ticks <= 0:
        raise ValueError(f"chunk_ticks must be positive, got {chunk_ticks}")
    while not vm.finished:
        remaining = max_ticks - system.tick_index
        if remaining <= 0:
            raise RuntimeError(budget_exhausted_message(system, vm, max_ticks))
        system.run_ticks_until(min(chunk_ticks, remaining), lambda: vm.finished)
    finish_usec = vm.finish_time_usec
    assert finish_usec is not None
    return finish_usec / 1e6


def budget_exhausted_message(
    system: "VirtualizedSystem", vm: "VirtualMachine", max_ticks: int
) -> str:
    """Diagnosable tick-budget failure: simulated time + VM progress.

    Campaign artifacts capture this text verbatim, so it must say *how
    far* the VM got, not just that the budget ran out.
    """
    elapsed_sim_sec = system.engine.clock.now_usec / 1e6
    done = sum(vcpu.progress.instructions_done for vcpu in vm.vcpus)
    total = sum(
        vcpu.progress.workload.total_instructions or 0.0 for vcpu in vm.vcpus
    )
    progress = f"{done:.4g}/{total:.4g} instructions"
    if total > 0:
        progress += f" ({100.0 * done / total:.1f}%)"
    return (
        f"{vm.name} did not finish within {max_ticks} ticks "
        f"({elapsed_sim_sec:.3f} simulated seconds); progress: {progress}"
    )
