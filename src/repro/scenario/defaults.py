"""Shared scenario defaults — the single source of truth for the
paper's experiment constants.

Both the imperative figure drivers (:mod:`repro.experiments`) and
declarative TOML/JSON scenarios (:mod:`repro.scenario`) read these, so
a figure spec and a hand-written scenario can never drift apart on the
booked permits or the measurement windows.
"""

from __future__ import annotations

#: The booked pollution permit used throughout Section 4.3 (Fig 5),
#: in misses per millisecond.
PAPER_LLC_CAP = 250_000.0

#: The small permit of the scalability experiment (Fig 6), misses/ms.
PAPER_SMALL_LLC_CAP = 50_000.0

#: Default warm-up before any measurement window (ticks).
DEFAULT_WARMUP_TICKS = 30

#: Default measurement window (ticks).
DEFAULT_MEASURE_TICKS = 120

#: Default tick budget of the execution-time protocol.
DEFAULT_EXEC_MAX_TICKS = 200_000

#: Ticks the execution-time protocol advances between finish checks of
#: co-runner bookkeeping (see repro.scenario.protocol).
EXEC_TIME_CHUNK_TICKS = 64
