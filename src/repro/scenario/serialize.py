"""Lossless scenario serialization: dict <-> dataclasses <-> TOML/JSON.

The on-disk document is a plain nested mapping carrying
``schema = "repro.scenario/1"``.  :func:`to_dict` emits the *minimal*
document — fields equal to their schema default are omitted — and
:func:`from_dict` restores the exact same :class:`ScenarioSpec`, so
``from_dict(to_dict(spec)) == spec`` for every valid spec (the
round-trip property test pins this for TOML and JSON).

TOML reading uses :mod:`tomllib` (Python 3.11+); on older interpreters
TOML entry points raise a clear :class:`ScenarioError` while the JSON
path keeps working.  TOML *writing* needs no third-party package — the
document shape is restricted enough (tables, arrays of tables, scalar
arrays) that a small emitter below covers it.
"""

from __future__ import annotations

import json
from dataclasses import MISSING, fields, is_dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

try:  # Python 3.11+
    import tomllib
except ImportError:  # pragma: no cover - exercised only on Python < 3.11
    tomllib = None  # type: ignore[assignment]

from .spec import (
    SCENARIO_SCHEMA,
    AdmissionSpec,
    ArrivalSpec,
    FaultSiteSpec,
    FaultsSpec,
    LifetimeSpec,
    MachineSpecChoice,
    MigrationSpec,
    MonitorSpec,
    ProtocolSpec,
    ScenarioError,
    ScenarioSpec,
    SchedulerChoice,
    ServiceSpec,
    ServiceTemplateSpec,
    SystemSpec,
    TelemetrySpec,
    VmSpec,
    WorkloadSpec,
)


# -- dict -> spec -------------------------------------------------------------


class _Reader:
    """Strict, path-annotated reader over one mapping."""

    def __init__(self, data: Mapping[str, Any], path: str, errors: List[str]) -> None:
        if not isinstance(data, Mapping):
            raise ScenarioError([f"{path}: expected a table, got {type(data).__name__}"])
        self.data = data
        self.path = path
        self.errors = errors
        self.seen: set = set()

    def _get(self, key: str, default: Any) -> Any:
        self.seen.add(key)
        return self.data.get(key, default)

    def _fail(self, key: str, message: str) -> None:
        self.errors.append(f"{self._at(key)}: {message}")

    def _at(self, key: str) -> str:
        return f"{self.path}.{key}" if self.path else key

    def str_(self, key: str, default: str = "") -> str:
        value = self._get(key, default)
        if not isinstance(value, str):
            self._fail(key, f"expected a string, got {value!r}")
            return default
        return value

    def opt_str(self, key: str) -> Optional[str]:
        value = self._get(key, None)
        if value is not None and not isinstance(value, str):
            self._fail(key, f"expected a string, got {value!r}")
            return None
        return value

    def bool_(self, key: str, default: bool) -> bool:
        value = self._get(key, default)
        if not isinstance(value, bool):
            self._fail(key, f"expected a boolean, got {value!r}")
            return default
        return value

    def int_(self, key: str, default: int) -> int:
        value = self._get(key, default)
        if isinstance(value, bool) or not isinstance(value, int):
            self._fail(key, f"expected an integer, got {value!r}")
            return default
        return value

    def opt_int(self, key: str) -> Optional[int]:
        value = self._get(key, None)
        if value is None:
            return None
        if isinstance(value, bool) or not isinstance(value, int):
            self._fail(key, f"expected an integer, got {value!r}")
            return None
        return value

    def float_(self, key: str, default: float) -> float:
        value = self._get(key, default)
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            self._fail(key, f"expected a number, got {value!r}")
            return default
        return float(value)

    def opt_float(self, key: str) -> Optional[float]:
        value = self._get(key, None)
        if value is None:
            return None
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            self._fail(key, f"expected a number, got {value!r}")
            return None
        return float(value)

    def opt_int_list(self, key: str) -> Optional[Tuple[int, ...]]:
        value = self._get(key, None)
        if value is None:
            return None
        if not isinstance(value, Sequence) or isinstance(value, str) or any(
            isinstance(v, bool) or not isinstance(v, int) for v in value
        ):
            self._fail(key, f"expected a list of integers, got {value!r}")
            return None
        return tuple(value)

    def str_list(self, key: str, default: Tuple[str, ...]) -> Tuple[str, ...]:
        value = self._get(key, default)
        if not isinstance(value, Sequence) or isinstance(value, str) or any(
            not isinstance(v, str) for v in value
        ):
            self._fail(key, f"expected a list of strings, got {value!r}")
            return default
        return tuple(value)

    def windows(self, key: str) -> Tuple[Tuple[int, int], ...]:
        value = self._get(key, ())
        ok = isinstance(value, Sequence) and not isinstance(value, str) and all(
            isinstance(w, Sequence)
            and not isinstance(w, str)
            and len(w) == 2
            and all(isinstance(x, int) and not isinstance(x, bool) for x in w)
            for w in value
        )
        if not ok:
            self._fail(
                key, f"expected a list of [start_tick, end_tick] pairs, got {value!r}"
            )
            return ()
        return tuple((w[0], w[1]) for w in value)

    def table(self, key: str) -> Optional["_Reader"]:
        value = self._get(key, None)
        if value is None:
            return None
        if not isinstance(value, Mapping):
            self._fail(key, f"expected a table, got {value!r}")
            return None
        return _Reader(value, self._at(key), self.errors)

    def tables(self, key: str) -> List["_Reader"]:
        value = self._get(key, ())
        if not isinstance(value, Sequence) or isinstance(value, str) or any(
            not isinstance(v, Mapping) for v in value
        ):
            self._fail(key, f"expected an array of tables, got {value!r}")
            return []
        return [
            _Reader(v, f"{self._at(key)}[{i}]", self.errors)
            for i, v in enumerate(value)
        ]

    def check_unknown(self) -> None:
        unknown = sorted(set(self.data) - self.seen)
        for key in unknown:
            self._fail(key, "unknown key")


def _read_workload(reader: _Reader) -> WorkloadSpec:
    spec = WorkloadSpec(
        kind=reader.str_("kind", "application"),
        app=reader.opt_str("app"),
        wss_bytes=reader.opt_int("wss_bytes"),
        disruptive=reader.bool_("disruptive", False),
        total_instructions=reader.opt_float("total_instructions"),
    )
    reader.check_unknown()
    return spec


def _read_vm(reader: _Reader) -> VmSpec:
    workload_reader = reader.table("workload")
    if workload_reader is None:
        reader.errors.append(f"{reader.path}.workload: missing required table")
        workload = WorkloadSpec()
    else:
        workload = _read_workload(workload_reader)
    spec = VmSpec(
        name=reader.str_("name"),
        workload=workload,
        count=reader.int_("count", 1),
        num_vcpus=reader.int_("num_vcpus", 1),
        weight=reader.int_("weight", 256),
        cap_percent=reader.opt_float("cap_percent"),
        llc_cap=reader.opt_float("llc_cap"),
        memory_node=reader.int_("memory_node", 0),
        pinned_cores=reader.opt_int_list("pinned_cores"),
    )
    reader.check_unknown()
    return spec


def _read_faults(reader: _Reader) -> FaultsSpec:
    sites = []
    for site_reader in reader.tables("sites"):
        sites.append(
            FaultSiteSpec(
                site=site_reader.str_("site"),
                probability=site_reader.float_("probability", 0.0),
                burst=site_reader.int_("burst", 1),
                windows=site_reader.windows("windows"),
            )
        )
        site_reader.check_unknown()
    spec = FaultsSpec(
        uniform_rate=reader.opt_float("uniform_rate"),
        burst=reader.int_("burst", 1),
        sites=tuple(sites),
        stream=reader.str_("stream", "faults.plan"),
    )
    reader.check_unknown()
    return spec


def _read_service(reader: _Reader) -> ServiceSpec:
    arrivals = ArrivalSpec()
    arrivals_reader = reader.table("arrivals")
    if arrivals_reader is not None:
        arrivals = ArrivalSpec(
            process=arrivals_reader.str_("process", "poisson"),
            rate_per_tick=arrivals_reader.float_("rate_per_tick", 0.01),
            burst_probability=arrivals_reader.float_("burst_probability", 0.0),
            burst_size=arrivals_reader.int_("burst_size", 3),
            diurnal_amplitude=arrivals_reader.float_("diurnal_amplitude", 0.0),
            diurnal_period_ticks=arrivals_reader.int_("diurnal_period_ticks", 0),
        )
        arrivals_reader.check_unknown()

    lifetime = LifetimeSpec()
    lifetime_reader = reader.table("lifetime")
    if lifetime_reader is not None:
        lifetime = LifetimeSpec(
            kind=lifetime_reader.str_("kind", "exponential"),
            mean_ticks=lifetime_reader.float_("mean_ticks", 1_000.0),
            sigma=lifetime_reader.float_("sigma", 0.5),
        )
        lifetime_reader.check_unknown()

    admission = AdmissionSpec()
    admission_reader = reader.table("admission")
    if admission_reader is not None:
        admission = AdmissionSpec(
            policy=admission_reader.str_("policy", "naive"),
            max_vcpus=admission_reader.opt_int("max_vcpus"),
            llc_budget=admission_reader.opt_float("llc_budget"),
        )
        admission_reader.check_unknown()

    templates = []
    for template_reader in reader.tables("templates"):
        workload_reader = template_reader.table("workload")
        if workload_reader is None:
            template_reader.errors.append(
                f"{template_reader.path}.workload: missing required table"
            )
            workload = WorkloadSpec()
        else:
            workload = _read_workload(workload_reader)
        templates.append(
            ServiceTemplateSpec(
                name=template_reader.str_("name"),
                workload=workload,
                num_vcpus=template_reader.int_("num_vcpus", 1),
                weight=template_reader.int_("weight", 256),
                cap_percent=template_reader.opt_float("cap_percent"),
                llc_cap=template_reader.opt_float("llc_cap"),
                memory_node=template_reader.int_("memory_node", 0),
            )
        )
        template_reader.check_unknown()

    spec = ServiceSpec(
        arrivals=arrivals,
        lifetime=lifetime,
        admission=admission,
        templates=tuple(templates),
        drain_at_end=reader.bool_("drain_at_end", True),
    )
    reader.check_unknown()
    return spec


def from_dict(data: Mapping[str, Any]) -> ScenarioSpec:
    """Build a validated :class:`ScenarioSpec` from a plain document.

    Unknown keys, wrong types and semantic violations are all collected
    and raised together as one :class:`ScenarioError` so a bad file
    reports every problem in a single pass.
    """
    errors: List[str] = []
    root = _Reader(data, "", errors)

    machine = MachineSpecChoice()
    machine_reader = root.table("machine")
    if machine_reader is not None:
        machine = MachineSpecChoice(preset=machine_reader.str_("preset", "paper"))
        machine_reader.check_unknown()

    scheduler = SchedulerChoice()
    scheduler_reader = root.table("scheduler")
    if scheduler_reader is not None:
        scheduler = SchedulerChoice(
            kind=scheduler_reader.str_("kind", "xcs"),
            quota_max_factor=scheduler_reader.float_("quota_max_factor", 3.0),
            monitor_period_ticks=scheduler_reader.int_("monitor_period_ticks", 1),
            quota_min_factor=scheduler_reader.opt_float("quota_min_factor"),
        )
        scheduler_reader.check_unknown()

    system = SystemSpec()
    system_reader = root.table("system")
    if system_reader is not None:
        system = SystemSpec(
            tick_usec=system_reader.int_("tick_usec", 10_000),
            ticks_per_slice=system_reader.int_("ticks_per_slice", 3),
            substeps_per_tick=system_reader.int_("substeps_per_tick", 10),
            context_switch_cost_cycles=system_reader.int_(
                "context_switch_cost_cycles", 20_000
            ),
            perf_jitter_fraction=system_reader.float_("perf_jitter_fraction", 0.0),
            seed=system_reader.int_("seed", 0),
        )
        system_reader.check_unknown()

    monitor = MonitorSpec()
    monitor_reader = root.table("monitor")
    if monitor_reader is not None:
        monitor = MonitorSpec(
            strategy=monitor_reader.str_("strategy", "default"),
            sample_ticks=monitor_reader.int_("sample_ticks", 1),
            chain=monitor_reader.str_list("chain", ("replay", "dedication", "direct")),
            retries=monitor_reader.int_("retries", 1),
            replay_refresh_every=monitor_reader.int_("replay_refresh_every", 50),
            replay_max_report_age=monitor_reader.opt_int("replay_max_report_age"),
        )
        monitor_reader.check_unknown()

    vms = tuple(_read_vm(vm_reader) for vm_reader in root.tables("vms"))

    faults = None
    faults_reader = root.table("faults")
    if faults_reader is not None:
        faults = _read_faults(faults_reader)

    migration = None
    migration_reader = root.table("migration")
    if migration_reader is not None:
        migration = MigrationSpec(
            home_core=migration_reader.int_("home_core", 0),
            remote_core=migration_reader.int_("remote_core", 4),
            period_ticks=migration_reader.int_("period_ticks", 10),
            min_dwell_ticks=migration_reader.int_("min_dwell_ticks", 1),
            max_dwell_ticks=migration_reader.int_("max_dwell_ticks", 3),
            seed=migration_reader.int_("seed", 0),
            vm=migration_reader.opt_str("vm"),
        )
        migration_reader.check_unknown()

    protocol = ProtocolSpec()
    protocol_reader = root.table("protocol")
    if protocol_reader is not None:
        protocol = ProtocolSpec(
            mode=protocol_reader.str_("mode", "measure"),
            warmup_ticks=protocol_reader.int_("warmup_ticks", ProtocolSpec.warmup_ticks),
            measure_ticks=protocol_reader.int_(
                "measure_ticks", ProtocolSpec.measure_ticks
            ),
            max_ticks=protocol_reader.int_("max_ticks", ProtocolSpec.max_ticks),
            target_vm=protocol_reader.opt_str("target_vm"),
            solo_baseline=protocol_reader.bool_("solo_baseline", False),
        )
        protocol_reader.check_unknown()

    telemetry = TelemetrySpec()
    telemetry_reader = root.table("telemetry")
    if telemetry_reader is not None:
        telemetry = TelemetrySpec(
            enabled=telemetry_reader.bool_("enabled", True),
            series_capacity=telemetry_reader.int_("series_capacity", 512),
        )
        telemetry_reader.check_unknown()

    service = None
    service_reader = root.table("service")
    if service_reader is not None:
        service = _read_service(service_reader)

    spec = ScenarioSpec(
        name=root.str_("name"),
        description=root.str_("description", ""),
        schema=root.str_("schema", SCENARIO_SCHEMA),
        machine=machine,
        scheduler=scheduler,
        system=system,
        monitor=monitor,
        vms=vms,
        faults=faults,
        migration=migration,
        protocol=protocol,
        telemetry=telemetry,
        service=service,
    )
    root.check_unknown()
    if errors:
        raise ScenarioError(errors)
    return spec.validate()


# -- spec -> dict -------------------------------------------------------------


def _value_to_plain(value: Any) -> Any:
    if is_dataclass(value) and not isinstance(value, type):
        return _dataclass_to_plain(value)
    if isinstance(value, tuple):
        return [_value_to_plain(v) for v in value]
    return value


def _dataclass_to_plain(obj: Any) -> Dict[str, Any]:
    """Minimal dict: fields equal to their schema default are omitted."""
    result: Dict[str, Any] = {}
    for f in fields(obj):
        value = getattr(obj, f.name)
        if f.default is not MISSING and value == f.default:
            continue
        if (
            f.default_factory is not MISSING  # type: ignore[misc]
            and value == f.default_factory()  # type: ignore[misc]
        ):
            continue
        if value is None:
            continue
        result[f.name] = _value_to_plain(value)
    return result


def to_dict(spec: ScenarioSpec) -> Dict[str, Any]:
    """Serialize a spec to its minimal plain document.

    ``schema`` and ``name`` are always present (they identify the
    document); everything else is omitted when it equals the default.
    """
    body = _dataclass_to_plain(spec)
    body.pop("schema", None)
    body.pop("name", None)
    doc: Dict[str, Any] = {"schema": spec.schema, "name": spec.name}
    doc.update(body)
    return doc


# -- JSON ---------------------------------------------------------------------


def dumps_json(spec: ScenarioSpec) -> str:
    return json.dumps(to_dict(spec), indent=2) + "\n"


def loads_json(text: str) -> ScenarioSpec:
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ScenarioError([f"invalid JSON: {exc}"]) from exc
    if not isinstance(data, dict):
        raise ScenarioError(["top-level JSON value must be an object"])
    return from_dict(data)


# -- TOML ---------------------------------------------------------------------


def _toml_scalar(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        # repr() is the shortest exact round-trip form and is valid TOML
        # for every finite float (validation forbids inf/nan).
        text = repr(value)
        return text
    if isinstance(value, str):
        return _toml_string(value)
    if isinstance(value, list):
        return "[" + ", ".join(_toml_scalar(v) for v in value) + "]"
    raise TypeError(f"cannot serialize {value!r} to TOML")


_TOML_ESCAPES = {
    '"': '\\"',
    "\\": "\\\\",
    "\b": "\\b",
    "\t": "\\t",
    "\n": "\\n",
    "\f": "\\f",
    "\r": "\\r",
}


def _toml_string(value: str) -> str:
    """A TOML basic string for ``value``.

    Not ``json.dumps``: JSON escapes astral-plane characters as UTF-16
    surrogate pairs, which TOML forbids.  TOML basic strings take any
    character verbatim except the quote, the backslash and control
    characters (U+0000–U+001F, U+007F), which use the shared escapes.
    """
    parts = ['"']
    for char in value:
        escape = _TOML_ESCAPES.get(char)
        if escape is not None:
            parts.append(escape)
        elif ord(char) < 0x20 or ord(char) == 0x7F:
            parts.append(f"\\u{ord(char):04X}")
        else:
            parts.append(char)
    parts.append('"')
    return "".join(parts)


def _is_table_array(value: Any) -> bool:
    return (
        isinstance(value, list)
        and bool(value)
        and all(isinstance(v, dict) for v in value)
    )


def _emit_table(prefix: str, table: Mapping[str, Any], lines: List[str]) -> None:
    for key, value in table.items():
        if isinstance(value, dict) or _is_table_array(value):
            continue
        lines.append(f"{key} = {_toml_scalar(value)}")
    for key, value in table.items():
        full = f"{prefix}.{key}" if prefix else key
        if isinstance(value, dict):
            lines.append("")
            lines.append(f"[{full}]")
            _emit_table(full, value, lines)
        elif _is_table_array(value):
            for element in value:
                lines.append("")
                lines.append(f"[[{full}]]")
                _emit_table(full, element, lines)


def dumps_toml(spec: ScenarioSpec) -> str:
    """Emit the spec as TOML (parseable back by :func:`loads_toml`)."""
    lines: List[str] = []
    _emit_table("", to_dict(spec), lines)
    return "\n".join(lines) + "\n"


def parse_toml(text: str) -> Dict[str, Any]:
    """Parse TOML text into a plain document (sweep table included)."""
    if tomllib is None:
        raise ScenarioError(
            ["TOML scenarios need Python 3.11+ (tomllib); use JSON instead"]
        )
    try:
        return tomllib.loads(text)
    except tomllib.TOMLDecodeError as exc:
        raise ScenarioError([f"invalid TOML: {exc}"]) from exc


def loads_toml(text: str) -> ScenarioSpec:
    return from_dict(parse_toml(text))


# -- files --------------------------------------------------------------------


def parse_scenario_file(path: str) -> Dict[str, Any]:
    """Read one scenario document (TOML or JSON by extension).

    The returned document may still carry a ``[sweep]`` table — use
    :func:`repro.scenario.sweep.expand_document` to resolve it, or
    :func:`load_scenario` when a single spec is expected.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        raise ScenarioError([f"cannot read scenario file {path}: {exc}"]) from exc
    if path.endswith(".json"):
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ScenarioError([f"{path}: invalid JSON: {exc}"]) from exc
        if not isinstance(data, dict):
            raise ScenarioError([f"{path}: top-level JSON value must be an object"])
        return data
    return parse_toml(text)


def load_scenario(path: str) -> ScenarioSpec:
    """Load and validate a single (sweep-free) scenario file."""
    data = dict(parse_scenario_file(path))
    if "sweep" in data:
        raise ScenarioError(
            [
                f"{path} defines a [sweep]; expand it with "
                "repro.scenario.sweep.expand_document (or run it through "
                "'repro scenario run' / 'repro run')"
            ]
        )
    return from_dict(data)
