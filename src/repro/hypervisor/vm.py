"""Virtual machines and their configuration.

A VM is configured like in the paper's IaaS model: a number of vCPUs, a
scheduling weight and optional CPU cap (the coarse-grained resources), and
— the paper's new parameter — an optional **pollution permit**
(``llc_cap``): the LLC pollution level, in misses per millisecond, the VM
booked.  ``llc_cap=None`` means the VM is not Kyoto-managed (plain XCS
behaviour even under KS4Xen, matching Xen's command-line parameter which
is optional per domain).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.workloads.base import Workload

from .vcpu import VCpu


@dataclass
class VmConfig:
    """Static configuration of a VM.

    Attributes:
        name: VM name (e.g. ``"vsen1"``).
        workload: what the VM runs.
        num_vcpus: vCPU count (the paper's experiments mostly use 1).
        weight: XCS proportional-share weight (Xen default 256).
        cap_percent: optional hard CPU cap, in percent of one core
            (Fig 3 sweeps this); None = uncapped.
        llc_cap: booked pollution permit in misses/ms; None = unmanaged.
        memory_node: NUMA node holding the VM's memory.
        pinned_cores: optional explicit core pinning, one entry per vCPU.
    """

    name: str
    workload: Workload
    num_vcpus: int = 1
    weight: int = 256
    cap_percent: Optional[float] = None
    llc_cap: Optional[float] = None
    memory_node: int = 0
    pinned_cores: Optional[List[int]] = None

    def __post_init__(self) -> None:
        if self.num_vcpus <= 0:
            raise ValueError(f"num_vcpus must be positive, got {self.num_vcpus}")
        if self.weight <= 0:
            raise ValueError(f"weight must be positive, got {self.weight}")
        if self.cap_percent is not None and not 0 <= self.cap_percent <= 100 * self.num_vcpus:
            raise ValueError(
                f"cap_percent must be in [0, {100 * self.num_vcpus}], "
                f"got {self.cap_percent}"
            )
        if self.llc_cap is not None and self.llc_cap < 0:
            raise ValueError(f"llc_cap must be >= 0, got {self.llc_cap}")
        if self.pinned_cores is not None and len(self.pinned_cores) != self.num_vcpus:
            raise ValueError(
                f"pinned_cores must list one core per vCPU "
                f"({self.num_vcpus}), got {self.pinned_cores}"
            )


class VirtualMachine:
    """A running VM: config plus its vCPUs and aggregate metrics."""

    def __init__(self, vm_id: int, config: VmConfig) -> None:
        self.vm_id = vm_id
        self.config = config
        self.vcpus: List[VCpu] = []

    @property
    def name(self) -> str:
        return self.config.name

    @property
    def llc_cap(self) -> Optional[float]:
        """The booked pollution permit (None if not Kyoto-managed)."""
        return self.config.llc_cap

    @property
    def finished(self) -> bool:
        """True when every vCPU's (finite) workload completed."""
        return all(vcpu.progress.done for vcpu in self.vcpus)

    @property
    def finish_time_usec(self) -> Optional[int]:
        """Completion time of the last vCPU, or None if still running."""
        times = [vcpu.progress.finished_at_usec for vcpu in self.vcpus]
        if any(t is None for t in times):
            return None
        return max(times)

    # -- aggregate metrics ----------------------------------------------------

    @property
    def instructions_retired(self) -> float:
        return sum(vcpu.instructions_retired for vcpu in self.vcpus)

    @property
    def cycles_run(self) -> int:
        return sum(vcpu.cycles_run for vcpu in self.vcpus)

    @property
    def llc_misses(self) -> float:
        return sum(vcpu.llc_misses for vcpu in self.vcpus)

    @property
    def ipc(self) -> float:
        """Instructions per cycle over all time the VM actually ran."""
        cycles = self.cycles_run
        if cycles == 0:
            return 0.0
        return self.instructions_retired / cycles

    def reset_metrics(self) -> None:
        """Zero per-vCPU metrics (start of a measurement window)."""
        for vcpu in self.vcpus:
            vcpu.reset_metrics()

    def __repr__(self) -> str:
        return f"VirtualMachine(id={self.vm_id}, name={self.name!r})"
