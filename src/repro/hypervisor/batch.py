"""Batched struct-of-arrays tick engine.

``BatchTickEngine`` replaces :meth:`VirtualizedSystem._execute_tick`'s
per-core calls into :func:`~repro.cachesim.perfmodel.execute_step` with a
struct-of-arrays pass over *core slots*: one persistent record per
physical core holding the occupant vCPU's cycle budget, pending
context-switch penalty, behavior sample, occupancy memo, truth-metric
mirrors, integer-carry state and PMC deltas.  The engine is **bit-exact**
with the scalar path — every float expression is kept
expression-identical and every accumulation runs in the same order — so
the experiment goldens (sha256-pinned reports) do not move.

Why it is faster than the scalar loop:

* **Exact fixed-point memoisation.**  At a steady periodic schedule the
  inputs of a sub-step — behavior sample, occupancy, cycle budget — are
  *bitwise identical* to the previous sub-step for the overwhelming
  majority of slot-steps (>93% on the tick-loop benchmarks).  Floats are
  deterministic functions of their inputs, so the step outputs are
  reused without recomputing ``resident ** theta`` and the CPI chain.
* **Deferred flushing.**  Truth metrics, workload progress, carry
  state and PMC counts accumulate in slot-local variables and are
  flushed to the vCPU / counter objects only at tick end or before any
  code that may observe them mid-tick (a context switch, a scheduler
  refill).  Integer PMC accumulation is associative modulo the 48-bit
  counter mask, so one flushed ``add`` equals the scalar per-sub-step
  sequence.
* **Relax elision.**  When every contributor on a socket produced a
  bitwise-identical (pressure, cap) pair to the previous sub-step and
  that sub-step's relaxation provably left the occupancy state
  untouched, this sub-step's relaxation is skipped outright — same
  deterministic inputs, same no-op result.

The flush discipline ("flush before escape") is the one invariant to
keep in mind when extending the engine: any call that can read vCPU
progress, PMC counters or the penalty map mid-tick must be preceded by
:meth:`BatchTickEngine._flush`.  See docs/performance.md for the field
map and how to add a per-step quantity without breaking goldens.

An optional numpy backend (``tick_engine="batch-numpy"``) vectorises the
perf-model arithmetic across memo-missing slots.  Elementwise float64
add/sub/mul/div/min/max in numpy are bitwise identical to CPython, but
``np.power`` is **not** (SIMD pow differs by 1 ulp on ~4% of inputs), so
the ``resident ** theta`` term is always computed with per-element
Python pow.  The kernel only pays off when many slots miss the memo at
once (cold starts, mass phase changes on wide machines); the pure-python
engine is the default.
"""

from __future__ import annotations

from typing import Dict, List, Optional, TYPE_CHECKING, Tuple

from repro.cachesim.occupancy import LlcOccupancyDomain
from repro.workloads.base import Workload

if TYPE_CHECKING:  # pragma: no cover
    from .system import VirtualizedSystem
    from .vcpu import VCpu

try:  # pragma: no cover - exercised indirectly via the numpy engine
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is optional
    _np = None

#: Minimum number of memo-missing slots in one sub-step before the numpy
#: kernel beats per-slot Python arithmetic (array setup is ~5 us).
NUMPY_MIN_BATCH = 12

#: Sentinel for "this slot did not execute the previous sub-step".
_NEVER = -10


class _OccupancyView:
    """dict-``get`` adapter over a duck-typed occupancy domain.

    Sockets normally carry a :class:`LlcOccupancyDomain`, whose private
    occupancy dict the hot loop reads directly.  Partitioning swaps in
    replacement domains (e.g. ``PartitionedLlcDomain``) that only expose
    ``occupancy_of``; this view gives them the same ``.get`` surface so
    the sub-step loop stays branch-free.
    """

    __slots__ = ("_domain",)

    def __init__(self, domain) -> None:
        self._domain = domain

    def get(self, owner: int, default: float = 0.0) -> float:
        return self._domain.occupancy_of(owner)


class _CoreSlot:
    """Struct-of-arrays record for one physical core.

    Groups everything the sub-step loop touches for the core's current
    occupant so the hot loop runs on slot locals instead of chasing
    vCPU / counter / dict attributes.  Mirrored state is written back by
    :meth:`BatchTickEngine._flush`.
    """

    __slots__ = (
        # immutable per machine
        "core", "core_id", "socket_id", "budget_cycles", "occ_map", "pmcs",
        # occupant
        "vcpu", "gid", "workload", "static_behavior", "boundary_fn",
        "finite_total", "memory_cycles", "stopped", "executed",
        # pending context-switch penalty mirror
        "pending_cycles", "pending_dirty",
        # behavior fields of m_behavior (reloaded when the sample changes)
        "b_wss", "b_lapki", "b_theta", "b_stream", "b_base_cpi", "b_mlp",
        "b_cap",
        # step memo: inputs (occupant, behavior identity, occupancy at a
        # full budget) -> raw step outputs
        "m_vcpu", "m_behavior", "m_occ", "r_instructions", "r_accesses",
        "r_misses",
        # truth-metric mirrors (same accumulation order as the vCPU's)
        "t_cycles", "t_instructions", "t_accesses", "t_misses",
        "done_instructions",
        # integer-carry mirrors
        "c_instr", "c_miss", "c_access",
        # last-tick accumulators
        "lt_cycles", "lt_instructions", "lt_misses",
        # pending (unflushed) integer PMC deltas
        "p_cycles", "p_instr", "p_miss", "p_ref",
        # relax-elision bookkeeping
        "last_exec_stamp", "sub_miss", "sub_cap",
    )

    def __init__(self, core, budget_cycles: int, occ_map, pmcs) -> None:
        self.core = core
        self.core_id = core.core_id
        self.socket_id = core.socket_id
        self.budget_cycles = budget_cycles
        self.occ_map = occ_map
        self.pmcs = pmcs
        self.vcpu = None
        self.gid = -1
        self.workload = None
        self.static_behavior = None
        self.boundary_fn = None
        self.finite_total = None
        self.memory_cycles = 0.0
        self.stopped = False
        self.executed = False
        self.pending_cycles = 0
        self.pending_dirty = False
        self.b_wss = 0.0
        self.b_lapki = 0.0
        self.b_theta = 1.0
        self.b_stream = 0.0
        self.b_base_cpi = 1.0
        self.b_mlp = 1.0
        self.b_cap = 0.0
        self.m_vcpu = None
        self.m_behavior = None
        self.m_occ = -1.0
        self.r_instructions = 0.0
        self.r_accesses = 0.0
        self.r_misses = 0.0
        self.t_cycles = 0
        self.t_instructions = 0.0
        self.t_accesses = 0.0
        self.t_misses = 0.0
        self.done_instructions = 0.0
        self.c_instr = 0.0
        self.c_miss = 0.0
        self.c_access = 0.0
        self.lt_cycles = 0
        self.lt_instructions = 0.0
        self.lt_misses = 0.0
        self.p_cycles = 0
        self.p_instr = 0
        self.p_miss = 0
        self.p_ref = 0
        self.last_exec_stamp = _NEVER
        self.sub_miss = 0.0
        self.sub_cap = 0.0


class BatchTickEngine:
    """Executes one scheduler tick over per-core slots, bit-exactly."""

    def __init__(
        self, system: "VirtualizedSystem", use_numpy: bool = False
    ) -> None:
        if use_numpy and _np is None:
            raise RuntimeError(
                "tick_engine='batch-numpy' requires numpy, which is not "
                "importable in this environment"
            )
        self.system = system
        self.use_numpy = use_numpy
        self.slots: List[_CoreSlot] = [
            _CoreSlot(
                core,
                system._substep_budget_cycles[core.core_id],
                None,
                system._substep_pmcs[core.core_id],
            )
            for core in system.machine.cores
        ]
        num_sockets = len(system.machine.sockets)
        self.socket_slots: List[List[_CoreSlot]] = [
            [slot for slot in self.slots if slot.socket_id == socket_id]
            for socket_id in range(num_sockets)
        ]
        self._llc_cycles = float(system.spec.latency.llc_cycles)
        # Monotone sub-step counter; never reset, so relax elision keeps
        # working across tick boundaries at a steady schedule.
        self._stamp = 0
        self._stopped_count = 0
        # Per-socket relax-elision state: was the previous relaxation a
        # provable no-op, and at which occupancy-state version.
        self._prev_nop: List[bool] = [False] * num_sockets
        self._ver_after: List[int] = [-1] * num_sockets
        self._dirty: List[bool] = [True] * num_sockets
        # Per-socket domain binding: the domain object each slot's
        # occupancy view currently reads, and whether it is a native
        # LlcOccupancyDomain (direct dict reads + relax elision) or a
        # duck-typed replacement (method reads, relax always called).
        self._bound_domains: List = [None] * num_sockets
        self._fast_domain: List[bool] = [True] * num_sockets
        self._rebind_domains()

    def _rebind_domains(self) -> None:
        """Re-check each socket's LLC domain identity and rebind views.

        Partitioning controllers replace ``system.llc_domains[socket_id]``
        wholesale (``apply_page_coloring``), potentially between any two
        ticks.  A native :class:`LlcOccupancyDomain` keeps the direct
        occupancy-dict read and relax elision; a duck-typed replacement
        (e.g. ``PartitionedLlcDomain``) reads through ``occupancy_of``
        and has its relaxation called unconditionally — it carries no
        ``_state_version``, so no-op relaxations cannot be proven.
        """
        domains = self.system.llc_domains
        bound = self._bound_domains
        for socket_id, domain in enumerate(domains):
            if domain is bound[socket_id]:
                continue
            bound[socket_id] = domain
            fast = isinstance(domain, LlcOccupancyDomain)
            self._fast_domain[socket_id] = fast
            occ_map = domain._occupancy if fast else _OccupancyView(domain)
            for slot in self.socket_slots[socket_id]:
                slot.occ_map = occ_map
            self._prev_nop[socket_id] = False
            self._ver_after[socket_id] = -1
            self._dirty[socket_id] = True

    # -- fleet lifecycle -----------------------------------------------------

    def invalidate_fleet(self) -> None:
        """Drop every slot's occupant mirror and step memo.

        Called by the system between ticks when the fleet changes
        (:meth:`~repro.hypervisor.system.VirtualizedSystem.admit_vm` /
        ``retire_vm``): retired vCPUs must not survive in slot mirrors or
        memo keys, and every socket's relax-elision proof is stale once
        occupancies changed under it.  ``execute_tick`` re-primes each
        slot from ``core.running``, so the next tick rebuilds exactly the
        state a freshly constructed engine would hold — bit-identical to
        the scalar path.
        """
        for slot in self.slots:
            slot.vcpu = None
            slot.gid = -1
            slot.m_vcpu = None
            slot.m_behavior = None
            slot.last_exec_stamp = _NEVER
            slot.executed = False
        num_sockets = len(self._prev_nop)
        for socket_id in range(num_sockets):
            self._prev_nop[socket_id] = False
            self._ver_after[socket_id] = -1
            self._dirty[socket_id] = True

    # -- occupant priming ----------------------------------------------------

    def _prime(self, slot: _CoreSlot, vcpu: "VCpu") -> None:
        """Load ``vcpu``'s state into ``slot`` (tick start or refill)."""
        system = self.system
        slot.vcpu = vcpu
        slot.gid = vcpu.gid
        stopped = not vcpu.runnable
        slot.stopped = stopped
        if stopped:
            self._stopped_count += 1
        progress = vcpu.progress
        workload = progress.workload
        slot.workload = workload
        # Only PhasedWorkload overrides behavior_at; a workload using the
        # base implementation has one constant behavior for its lifetime,
        # so the per-sub-step sample call is skipped entirely.
        slot.static_behavior = (
            workload.behavior
            if type(workload).behavior_at is Workload.behavior_at
            else None
        )
        slot.boundary_fn = vcpu._boundary_fn
        slot.finite_total = workload.total_instructions
        if vcpu is not slot.m_vcpu:
            # New occupant: the step memo belongs to the old one.
            slot.m_vcpu = vcpu
            slot.m_behavior = None
            slot.last_exec_stamp = _NEVER
            slot.memory_cycles = float(
                system.spec.latency.memory_cycles_for(
                    slot.socket_id != vcpu.vm.config.memory_node
                )
            )
        # Mirrors: monitors may have reset metrics between ticks, and the
        # scheduler may have charged a fresh switch-in penalty.
        (
            slot.t_cycles,
            slot.t_instructions,
            slot.t_accesses,
            slot.t_misses,
            slot.done_instructions,
            slot.c_instr,
            slot.c_miss,
            slot.c_access,
        ) = vcpu.batch_mirror()
        slot.pending_cycles = system._pending_penalty_cycles.get(
            slot.core_id, 0
        )
        slot.pending_dirty = False
        slot.lt_cycles = 0
        slot.lt_instructions = 0.0
        slot.lt_misses = 0.0
        slot.executed = False
        slot.p_cycles = 0
        slot.p_instr = 0
        slot.p_miss = 0
        slot.p_ref = 0

    # -- flushing ------------------------------------------------------------

    def _flush(self) -> None:
        """Write every slot's mirrored state back to the live objects.

        Idempotent and re-entrant: slots keep accumulating after a flush
        and later flushes overwrite with the larger totals.  Must run
        before any code that can observe vCPU progress, PMC counters or
        the penalty map mid-tick (context switches, scheduler refills),
        and at tick end.
        """
        system = self.system
        last_cycles = system.last_tick_cycles
        last_misses = system.last_tick_misses
        last_instructions = system.last_tick_instructions
        pending_map = system._pending_penalty_cycles
        for slot in self.slots:
            if not slot.executed:
                continue
            slot.vcpu.batch_writeback(
                slot.t_cycles,
                slot.t_instructions,
                slot.t_accesses,
                slot.t_misses,
                slot.done_instructions,
                slot.c_instr,
                slot.c_miss,
                slot.c_access,
            )
            gid = slot.gid
            last_cycles[gid] = slot.lt_cycles
            last_misses[gid] = slot.lt_misses
            last_instructions[gid] = slot.lt_instructions
            cycles_pmc, instr_pmc, miss_pmc, ref_pmc = slot.pmcs
            if slot.p_cycles:
                cycles_pmc.add(slot.p_cycles)
                slot.p_cycles = 0
            if slot.p_instr:
                instr_pmc.add(slot.p_instr)
                slot.p_instr = 0
            if slot.p_miss:
                miss_pmc.add(slot.p_miss)
                slot.p_miss = 0
            if slot.p_ref:
                ref_pmc.add(slot.p_ref)
                slot.p_ref = 0
            if slot.pending_dirty:
                pending_map[slot.core_id] = slot.pending_cycles

    # -- mid-tick vacate / refill --------------------------------------------

    def _vacate(self, slot: _CoreSlot) -> None:
        """Mirror the scalar path's mid-tick vacate-and-refill.

        The full flush first: the scheduler's refill may read any vCPU's
        progress (runnable checks) and the context switch virtualises the
        core's PMCs.
        """
        system = self.system
        self._flush()
        core = slot.core
        system.context_switch(core, None)
        system.scheduler.refill_core(core)
        if slot.stopped:
            slot.stopped = False
            self._stopped_count -= 1
        self._dirty[slot.socket_id] = True
        vcpu = core.running
        if vcpu is None:
            # Core goes idle: any pending switch penalty dies with the
            # departed occupant (see VirtualizedSystem._execute_tick).
            system._pending_penalty_cycles.pop(slot.core_id, None)
            slot.vcpu = None
            slot.executed = False
            return
        self._prime(slot, vcpu)
        if not vcpu.runnable:
            system._pending_penalty_cycles.pop(slot.core_id, None)
            slot.pending_cycles = 0
            slot.pending_dirty = False

    # -- the tick ------------------------------------------------------------

    def execute_tick(self) -> None:
        system = self.system
        system.last_tick_cycles = {}
        system.last_tick_misses = {}
        system.last_tick_instructions = {}
        now_usec = system.engine.clock.now_usec
        pending_map = system._pending_penalty_cycles
        slots = self.slots
        dirty = self._dirty
        self._rebind_domains()

        # Prime every slot against the placement on_tick_start produced.
        self._stopped_count = 0
        for slot in slots:
            occupant = slot.core.running
            if occupant is None:
                if slot.vcpu is not None:
                    slot.vcpu = None
                    dirty[slot.socket_id] = True
                slot.executed = False
                pending_map.pop(slot.core_id, None)
                continue
            if occupant is not slot.vcpu:
                dirty[slot.socket_id] = True
            self._prime(slot, occupant)

        jitter_fraction = system.perf_jitter_fraction
        jitter_stream = system._jitter_stream if jitter_fraction else None
        domains = system.llc_domains
        socket_slots = self.socket_slots
        prev_nop = self._prev_nop
        ver_after = self._ver_after
        fast_domain = self._fast_domain
        use_numpy = self.use_numpy

        for _ in range(system.substeps_per_tick):
            self._stamp += 1
            stamp = self._stamp
            prev_stamp = stamp - 1
            # Deferred memo-miss slots for the numpy kernel.  Safe only
            # when no vacate can interleave (a vacate flushes, and
            # deferred slots would flush stale mirrors) and jitter is off
            # (the RNG stream must advance in core order).
            defer: Optional[List[Tuple]] = (
                []
                if use_numpy
                and self._stopped_count == 0
                and jitter_stream is None
                else None
            )

            for slot in slots:
                vcpu = slot.vcpu
                if vcpu is None:
                    continue
                if slot.stopped:
                    # Finished or blocked mid-tick: vacate and let the
                    # scheduler place a replacement immediately.
                    self._vacate(slot)
                    vcpu = slot.vcpu
                    if vcpu is None or slot.stopped:
                        continue
                static = slot.static_behavior
                behavior = (
                    static
                    if static is not None
                    else slot.workload.behavior_at(slot.done_instructions)
                )
                occupancy = slot.occ_map.get(slot.gid, 0.0)
                if (
                    slot.pending_cycles == 0
                    and behavior is slot.m_behavior
                    and occupancy == slot.m_occ
                ):
                    # Memo hit: bitwise-identical step inputs, reuse the
                    # raw step outputs.
                    instructions = slot.r_instructions
                    if jitter_stream is None and slot.boundary_fn is None:
                        finite_total = slot.finite_total
                        if finite_total is None or instructions < max(
                            0.0, finite_total - slot.done_instructions
                        ):
                            # Unclipped: scale is exactly 1.0, outputs
                            # pass through unchanged.
                            accesses = slot.r_accesses
                            misses = slot.r_misses
                            budget_cycles = slot.budget_cycles
                            slot.t_cycles += budget_cycles
                            slot.t_instructions += instructions
                            slot.t_accesses += accesses
                            slot.t_misses += misses
                            slot.done_instructions += instructions
                            slot.lt_cycles += budget_cycles
                            slot.lt_instructions += instructions
                            slot.lt_misses += misses
                            slot.p_cycles += budget_cycles
                            carry = slot.c_instr + instructions
                            whole = int(carry)
                            slot.c_instr = carry - whole
                            slot.p_instr += whole
                            carry = slot.c_miss + misses
                            whole = int(carry)
                            slot.c_miss = carry - whole
                            slot.p_miss += whole
                            carry = slot.c_access + accesses
                            whole = int(carry)
                            slot.c_access = carry - whole
                            slot.p_ref += whole
                            if not slot.executed:
                                slot.executed = True
                            slot.sub_miss = misses
                            slot.sub_cap = slot.b_cap
                            if slot.last_exec_stamp != prev_stamp:
                                dirty[slot.socket_id] = True
                            slot.last_exec_stamp = stamp
                            if (
                                finite_total is not None
                                and slot.done_instructions >= finite_total
                            ):
                                self._mark_finished(slot, now_usec)
                            continue
                    self._finish_step(
                        slot,
                        slot.budget_cycles,
                        instructions,
                        slot.r_accesses,
                        slot.r_misses,
                        jitter_fraction,
                        jitter_stream,
                        now_usec,
                        stamp,
                    )
                    continue
                # Memo miss: pay any pending penalty, recompute the step.
                budget_cycles = slot.budget_cycles
                pending_cycles = slot.pending_cycles
                if pending_cycles:
                    penalty = min(budget_cycles, pending_cycles)
                    slot.pending_cycles = pending_cycles - penalty
                    slot.pending_dirty = True
                    work_cycles = budget_cycles - penalty
                else:
                    work_cycles = budget_cycles
                if defer is not None:
                    defer.append((slot, behavior, occupancy, work_cycles))
                    continue
                instructions, accesses, misses = self._step_floats(
                    slot, behavior, occupancy, work_cycles
                )
                if work_cycles == budget_cycles:
                    slot.m_behavior = behavior
                    slot.m_occ = occupancy
                    slot.r_instructions = instructions
                    slot.r_accesses = accesses
                    slot.r_misses = misses
                self._finish_step(
                    slot,
                    budget_cycles,
                    instructions,
                    accesses,
                    misses,
                    jitter_fraction,
                    jitter_stream,
                    now_usec,
                    stamp,
                )

            if defer:
                self._run_deferred(defer, now_usec, stamp)

            # Relaxation pass, one socket at a time, contributors in
            # core order (the scalar path builds its pressure dicts in
            # exactly this order; float summation order is pinned).
            for socket_id, domain in enumerate(domains):
                if (
                    not dirty[socket_id]
                    and prev_nop[socket_id]
                    and domain._state_version == ver_after[socket_id]
                ):
                    # Identical contributor set with bitwise-identical
                    # pressures and caps, against unchanged occupancy
                    # state, and the previous call provably changed
                    # nothing: relax is a deterministic function, so
                    # this call would be a no-op too.
                    continue
                pressures: Dict[int, float] = {}
                caps: Dict[int, float] = {}
                for slot in socket_slots[socket_id]:
                    if slot.last_exec_stamp == stamp:
                        pressures[slot.gid] = slot.sub_miss
                        caps[slot.gid] = slot.sub_cap
                if pressures:
                    if fast_domain[socket_id]:
                        version_before = domain._state_version
                        domain.relax(pressures, caps)
                        version_now = domain._state_version
                        prev_nop[socket_id] = version_now == version_before
                        ver_after[socket_id] = version_now
                    else:
                        # Duck-typed domain: no version counter, so a
                        # no-op relaxation can never be proven.
                        domain.relax(pressures, caps)
                        prev_nop[socket_id] = False
                else:
                    prev_nop[socket_id] = False
                dirty[socket_id] = False

        self._flush()

    # -- step arithmetic -----------------------------------------------------

    def _step_floats(
        self,
        slot: _CoreSlot,
        behavior,
        occupancy: float,
        work_cycles: int,
    ) -> Tuple[float, float, float]:
        """The perf-model step, expression-identical to ``execute_step``.

        Reloads the slot's behavior fields when the sample changed (the
        memo ties ``b_*`` to ``m_behavior``'s identity).
        """
        if behavior is not slot.m_behavior:
            # Invalidate the memo before reloading: the b_* fields must
            # always describe m_behavior, and a penalty-shortened step
            # (which never stores a memo) would otherwise leave them
            # describing a different sample than a surviving memo entry.
            slot.m_behavior = None
            slot.b_wss = behavior.wss_lines
            slot.b_lapki = behavior.lapki
            slot.b_theta = behavior.locality_theta
            slot.b_stream = behavior.stream_fraction
            slot.b_base_cpi = behavior.base_cpi
            slot.b_mlp = behavior.mlp
            slot.b_cap = behavior.footprint_cap_lines
        wss = slot.b_wss
        lapki = slot.b_lapki
        if wss <= 0 or lapki == 0:
            hit = 1.0
        else:
            resident = min(1.0, max(0.0, occupancy / wss))
            reuse_hit = resident ** slot.b_theta
            hit = (1.0 - slot.b_stream) * reuse_hit
        access_cost = (
            hit * self._llc_cycles + (1.0 - hit) * slot.memory_cycles
        )
        cpi = slot.b_base_cpi + (lapki / 1000.0) * access_cost / slot.b_mlp
        instructions = work_cycles / cpi
        llc_accesses = instructions * lapki / 1000.0
        llc_misses = llc_accesses * (1.0 - hit)
        return instructions, llc_accesses, llc_misses

    def _finish_step(
        self,
        slot: _CoreSlot,
        budget_cycles: int,
        raw_instructions: float,
        raw_accesses: float,
        raw_misses: float,
        jitter_fraction: float,
        jitter_stream,
        now_usec: int,
        stamp: int,
    ) -> None:
        """The post-step tail: jitter, clipping, blocking, accumulation.

        Mirrors ``_execute_substep`` line for line; used for every step
        that cannot take the unclipped fast path.
        """
        system = self.system
        jittered = raw_instructions
        if jitter_fraction:
            jittered *= 1.0 + jitter_stream.uniform(
                -jitter_fraction, jitter_fraction
            )
        finite_total = slot.finite_total
        if finite_total is None:
            instructions = jittered
        else:
            instructions = min(
                jittered, max(0.0, finite_total - slot.done_instructions)
            )
        boundary_fn = slot.boundary_fn
        if boundary_fn is not None:
            done = slot.done_instructions
            to_boundary = boundary_fn(done) - done
            if instructions >= to_boundary:
                instructions = to_boundary
                slot.vcpu.blocked_until_usec = (
                    now_usec + slot.workload.think_usec
                )
                system._sleeping_count += 1
                if not slot.stopped:
                    slot.stopped = True
                    self._stopped_count += 1
        scale = (
            instructions / raw_instructions if raw_instructions > 0 else 0.0
        )
        llc_accesses = raw_accesses * scale
        llc_misses = raw_misses * scale

        slot.t_cycles += budget_cycles
        slot.t_instructions += instructions
        slot.t_accesses += llc_accesses
        slot.t_misses += llc_misses
        slot.done_instructions += instructions
        slot.lt_cycles += budget_cycles
        slot.lt_instructions += instructions
        slot.lt_misses += llc_misses
        slot.p_cycles += budget_cycles
        carry = slot.c_instr + instructions
        whole = int(carry)
        slot.c_instr = carry - whole
        slot.p_instr += whole
        carry = slot.c_miss + llc_misses
        whole = int(carry)
        slot.c_miss = carry - whole
        slot.p_miss += whole
        carry = slot.c_access + llc_accesses
        whole = int(carry)
        slot.c_access = carry - whole
        slot.p_ref += whole
        if not slot.executed:
            slot.executed = True
        slot.sub_miss = llc_misses
        slot.sub_cap = slot.b_cap
        # Conservative: any slow-tail step invalidates relax elision on
        # its socket (its contribution may differ from last sub-step).
        self._dirty[slot.socket_id] = True
        slot.last_exec_stamp = stamp
        if (
            finite_total is not None
            and slot.done_instructions >= finite_total
        ):
            self._mark_finished(slot, now_usec)

    def _mark_finished(self, slot: _CoreSlot, now_usec: int) -> None:
        if not slot.stopped:
            slot.stopped = True
            self._stopped_count += 1
        progress = slot.vcpu.progress
        if progress.finished_at_usec is None:
            progress.finished_at_usec = now_usec

    # -- numpy kernel --------------------------------------------------------

    def _run_deferred(
        self, deferred: List[Tuple], now_usec: int, stamp: int
    ) -> None:
        """Finish memo-missing slots, vectorising when the batch is wide.

        Deferral is order-safe here: no vacate can interleave (checked at
        sub-step start) and the tail effects are per-slot independent, so
        running the tails after the scan leaves identical state.
        """
        count = len(deferred)
        if count < NUMPY_MIN_BATCH:
            for slot, behavior, occupancy, work_cycles in deferred:
                instructions, accesses, misses = self._step_floats(
                    slot, behavior, occupancy, work_cycles
                )
                self._store_memo_and_finish(
                    slot, behavior, occupancy, work_cycles,
                    instructions, accesses, misses, now_usec, stamp,
                )
            return
        wss = _np.empty(count)
        lapki = _np.empty(count)
        theta = _np.empty(count)
        stream = _np.empty(count)
        base_cpi = _np.empty(count)
        mlp = _np.empty(count)
        memory_cycles = _np.empty(count)
        occupancy_arr = _np.empty(count)
        work = _np.empty(count)
        for index, (slot, behavior, occupancy, work_cycles) in enumerate(
            deferred
        ):
            if behavior is not slot.m_behavior:
                slot.m_behavior = None  # b_* must describe m_behavior
                slot.b_wss = behavior.wss_lines
                slot.b_lapki = behavior.lapki
                slot.b_theta = behavior.locality_theta
                slot.b_stream = behavior.stream_fraction
                slot.b_base_cpi = behavior.base_cpi
                slot.b_mlp = behavior.mlp
                slot.b_cap = behavior.footprint_cap_lines
            wss[index] = slot.b_wss
            lapki[index] = slot.b_lapki
            theta[index] = slot.b_theta
            stream[index] = slot.b_stream
            base_cpi[index] = slot.b_base_cpi
            mlp[index] = slot.b_mlp
            memory_cycles[index] = slot.memory_cycles
            occupancy_arr[index] = occupancy
            work[index] = float(work_cycles)
        trivial = (wss <= 0.0) | (lapki == 0.0)
        safe_wss = _np.where(trivial, 1.0, wss)
        resident = _np.minimum(
            1.0, _np.maximum(0.0, occupancy_arr / safe_wss)
        )
        # np.power diverges from CPython pow by 1 ulp on ~4% of inputs
        # (SIMD pow); x ** 1.0 == x bitwise, so only theta != 1.0 needs
        # the per-element Python pow.
        reuse_hit = resident.copy()
        for index in _np.nonzero(theta != 1.0)[0]:
            reuse_hit[index] = float(resident[index]) ** float(theta[index])
        hit = (1.0 - stream) * reuse_hit
        hit[trivial] = 1.0
        access_cost = hit * self._llc_cycles + (1.0 - hit) * memory_cycles
        cpi = base_cpi + (lapki / 1000.0) * access_cost / mlp
        instructions_arr = work / cpi
        accesses_arr = instructions_arr * lapki / 1000.0
        misses_arr = accesses_arr * (1.0 - hit)
        for index, (slot, behavior, occupancy, work_cycles) in enumerate(
            deferred
        ):
            # float() strips the numpy scalar type: the values flow into
            # reports and json cannot serialise np.float64.
            self._store_memo_and_finish(
                slot, behavior, occupancy, work_cycles,
                float(instructions_arr[index]),
                float(accesses_arr[index]),
                float(misses_arr[index]),
                now_usec, stamp,
            )

    def _store_memo_and_finish(
        self,
        slot: _CoreSlot,
        behavior,
        occupancy: float,
        work_cycles: int,
        instructions: float,
        accesses: float,
        misses: float,
        now_usec: int,
        stamp: int,
    ) -> None:
        if work_cycles == slot.budget_cycles:
            slot.m_behavior = behavior
            slot.m_occ = occupancy
            slot.r_instructions = instructions
            slot.r_accesses = accesses
            slot.r_misses = misses
        # Deferred steps only exist with jitter off (checked at sub-step
        # start), so no jitter fraction or stream is threaded through.
        self._finish_step(
            slot,
            slot.budget_cycles,
            instructions,
            accesses,
            misses,
            0.0,
            None,
            now_usec,
            stamp,
        )
