"""vCPU migration policies.

The socket-dedication monitoring strategy (Section 3.3, first solution)
periodically migrates every vCPU except the one being sampled to the other
socket.  Fig 9 isolates the *cost* of that choreography: a single vCPU is
bounced between numa0 and numa1, paying remote-memory accesses (and a cold
LLC) while away from its memory node.

:class:`PeriodicMigrator` reproduces the Fig 9 setup: migrate to the
remote socket every ``period_ticks``; return after a randomized dwell time
mimicking "the time taken by KS4Xen to compute all vCPUs' llc_cap_act".
"""

from __future__ import annotations

import random
from typing import Optional

from repro.simulation.rng import seeded_stream
from repro.telemetry import current_recorder

from .system import HypervisorError, VirtualizedSystem
from .vcpu import VCpu


class PeriodicMigrator:
    """Bounce one vCPU between its home core and a remote-socket core."""

    def __init__(
        self,
        system: VirtualizedSystem,
        vcpu: VCpu,
        home_core: int,
        remote_core: int,
        period_ticks: int,
        min_dwell_ticks: int = 1,
        max_dwell_ticks: int = 3,
        seed: int = 0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if period_ticks <= 0:
            raise ValueError(f"period_ticks must be positive, got {period_ticks}")
        if not 1 <= min_dwell_ticks <= max_dwell_ticks:
            raise ValueError(
                f"need 1 <= min_dwell <= max_dwell, got "
                f"{min_dwell_ticks}..{max_dwell_ticks}"
            )
        home_socket = system.machine.core(home_core).socket_id
        remote_socket = system.machine.core(remote_core).socket_id
        if home_socket == remote_socket:
            raise ValueError(
                "home and remote cores must be on different sockets "
                f"(both on socket {home_socket})"
            )
        self.system = system
        self.vcpu = vcpu
        self.home_core = home_core
        self.remote_core = remote_core
        self.period_ticks = period_ticks
        self.min_dwell_ticks = min_dwell_ticks
        self.max_dwell_ticks = max_dwell_ticks
        # Nameless stream is deliberate: migration dwell draws are pinned
        # by the experiment goldens; naming the stream would reseed them.
        self._rng = rng if rng is not None else seeded_stream(seed)  # kyotolint: disable=S002
        self._away = False
        self._return_at_tick: Optional[int] = None
        self.migrations = 0
        #: Migrations refused by the hypervisor (fault injection or a
        #: genuinely unavailable core).  A failed outbound leg skips the
        #: period; a failed return leg retries every tick until it lands.
        self.migration_failures = 0
        system.add_tick_observer(self._on_tick)

    def _migrate(self, system: VirtualizedSystem, core_id: int) -> bool:
        """One migration attempt; False when the hypervisor refused it."""
        try:
            system.migrate_vcpu(self.vcpu, core_id)
        except HypervisorError:
            self.migration_failures += 1
            current_recorder().inc("migrator.failures")
            return False
        self.migrations += 1
        return True

    def _on_tick(self, system: VirtualizedSystem, tick_index: int) -> None:
        if self._away:
            assert self._return_at_tick is not None
            if tick_index >= self._return_at_tick:
                # On failure stay away and retry next tick: the dwell is
                # over either way, and home is where the memory node is.
                if self._migrate(system, self.home_core):
                    self._away = False
                    self._return_at_tick = None
        elif (tick_index + 1) % self.period_ticks == 0:
            # Draw the dwell *before* the attempt so a refused migration
            # consumes the same randomness as a successful one and the
            # rng stream stays aligned across fault-injection runs.
            dwell = self._rng.randint(self.min_dwell_ticks, self.max_dwell_ticks)
            if self._migrate(system, self.remote_core):
                self._away = True
                self._return_at_tick = tick_index + dwell
