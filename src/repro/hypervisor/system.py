"""The virtualized system: hypervisor + machine simulation.

``VirtualizedSystem`` ties together every substrate:

* the :class:`~repro.hardware.topology.Machine` (cores, sockets),
* one shared-LLC :class:`~repro.cachesim.occupancy.LlcOccupancyDomain`
  per socket,
* per-core :class:`~repro.pmc.counters.CoreCounters` virtualised per-vCPU
  by a :class:`~repro.pmc.perfctr.PerfctrVirtualizer`,
* a pluggable scheduler (XCS, KS4Xen, CFS, KS4Linux, Pisces, ...),
* the VMs and their workloads.

Time advances in scheduler ticks (Xen's 10 ms by default).  Each tick:

1. the scheduler places vCPUs on cores (context switches virtualise PMCs
   and charge a switch cost),
2. every running vCPU executes the tick in sub-steps: the perf model
   converts cycles + current LLC occupancy into instructions and misses,
   misses are inserted into the socket's shared occupancy domain (evicting
   competitors proportionally — this is the contention), PMCs advance,
3. the scheduler burns credits; every ``ticks_per_slice`` ticks the
   accounting period (credit + pollution-quota refill) runs.

Experiments attach per-tick observers to record timelines (Figs 2, 5).
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Optional, Tuple

from repro.cachesim.occupancy import LlcOccupancyDomain
from repro.cachesim.perfmodel import CacheBehavior, execute_step
from repro.hardware.specs import MachineSpec, paper_machine
from repro.hardware.topology import Core, Machine
from repro.pmc.counters import CoreCounters, HardwareCounter, PmcEvent
from repro.pmc.perfctr import PerfctrVirtualizer
from repro.simulation.clock import (
    XEN_TICK_USEC,
    usec_to_cycles,
)
from repro.simulation.engine import Engine
from repro.simulation.rng import RngRegistry
from repro.telemetry import MetricsRecorder, current_recorder

from .vcpu import VCpu
from .vm import VirtualMachine, VmConfig

#: Observers get (system, tick_index) after each tick completes.
TickObserver = Callable[["VirtualizedSystem", int], None]


class HypervisorError(Exception):
    """Raised on invalid hypervisor operations (bad pinning, etc.)."""


class VirtualizedSystem:
    """A simulated physical machine running VMs under a scheduler."""

    def __init__(
        self,
        scheduler,
        machine_spec: Optional[MachineSpec] = None,
        *,
        tick_usec: int = XEN_TICK_USEC,
        ticks_per_slice: int = 3,
        substeps_per_tick: int = 10,
        context_switch_cost_cycles: int = 20_000,
        perf_jitter_fraction: float = 0.0,
        seed: int = 0,
        recorder: Optional[MetricsRecorder] = None,
        tick_engine: Optional[str] = None,
    ) -> None:
        if tick_usec <= 0:
            raise ValueError(f"tick_usec must be positive, got {tick_usec}")
        if ticks_per_slice <= 0:
            raise ValueError(
                f"ticks_per_slice must be positive, got {ticks_per_slice}"
            )
        if substeps_per_tick <= 0:
            raise ValueError(
                f"substeps_per_tick must be positive, got {substeps_per_tick}"
            )
        if not 0.0 <= perf_jitter_fraction < 1.0:
            raise ValueError(
                f"perf_jitter_fraction must be in [0,1), got "
                f"{perf_jitter_fraction}"
            )
        self.spec = machine_spec if machine_spec is not None else paper_machine()
        self.machine = Machine(self.spec)
        self.tick_usec = tick_usec
        self.ticks_per_slice = ticks_per_slice
        self.substeps_per_tick = substeps_per_tick
        self.context_switch_cost_cycles = context_switch_cost_cycles
        #: Optional multiplicative noise on per-substep instruction
        #: throughput — models SMIs, frequency wiggle and measurement
        #: noise.  0.0 (the default) keeps runs bit-exact deterministic;
        #: with jitter, determinism is still guaranteed per seed.
        self.perf_jitter_fraction = perf_jitter_fraction
        self.rng = RngRegistry(seed)
        self._jitter_stream = self.rng.stream("perf-jitter")
        #: Telemetry hook (docs/telemetry.md).  Strictly an observer —
        #: nothing reads it back — so recording never changes results.
        self.recorder = recorder if recorder is not None else current_recorder()

        # Shared-LLC occupancy domain per socket.
        self.llc_domains: List[LlcOccupancyDomain] = []
        for socket in self.machine.sockets:
            domain = LlcOccupancyDomain(socket.spec.llc.num_lines)
            socket.llc_domain = domain
            self.llc_domains.append(domain)

        # PMC hardware + perfctr virtualisation.
        self.core_counters: Dict[int, CoreCounters] = {
            core.core_id: CoreCounters(core.core_id) for core in self.machine.cores
        }
        self.perfctr = PerfctrVirtualizer(self.core_counters)
        # Direct references to the four counters the execution loop feeds
        # (counter objects are mutated in place, never replaced, so the
        # references stay live across context switches).  Skips an
        # enum-keyed dict lookup per event per sub-step.
        self._substep_pmcs: Dict[int, Tuple[HardwareCounter, ...]] = {
            core_id: (
                bank.counter(PmcEvent.UNHALTED_CORE_CYCLES),
                bank.counter(PmcEvent.INSTRUCTIONS_RETIRED),
                bank.counter(PmcEvent.LLC_MISSES),
                bank.counter(PmcEvent.LLC_REFERENCES),
            )
            for core_id, bank in self.core_counters.items()
        }

        self.engine = Engine(recorder=self.recorder)
        self.vms: List[VirtualMachine] = []
        self.vcpus: List[VCpu] = []
        # Monotonic id counters: ids are never reused, so a retired VM's
        # vm_id/gids stay dead forever (stale references cannot alias a
        # later admission).  For a static fleet these produce exactly the
        # ids the old len()-based scheme did.
        self._next_vm_id = 0
        self._next_gid = 0
        self._vm_by_name: Dict[str, VirtualMachine] = {}
        self.tick_index = 0
        self._tick_observers: List[TickObserver] = []
        #: Optional pre-migration hook (fault injection): called with
        #: ``(vcpu, new_core_id)`` before every migration and may raise
        #: :class:`HypervisorError` to make the migration fail.  ``None``
        #: (the default) costs one attribute check per migration.
        self.migration_interceptor: Optional[Callable[[VCpu, int], None]] = None
        self._pending_penalty_cycles: Dict[int, int] = {}
        # vCPUs currently in think time (blocked_until_usec set).  Only
        # the sub-step boundary path ever blocks a vCPU, and only
        # _wake_sleepers unblocks, so this counter lets the per-tick wake
        # scan be skipped entirely while nothing is asleep (the common
        # case for the batch experiments).
        self._sleeping_count = 0
        # Per-core execution budget (cycles) of one sub-step.  tick_usec,
        # substeps_per_tick and core frequencies are all fixed at
        # construction, so the rounding below is hoisted out of the inner
        # execution loop; the expression matches what _execute_substep
        # used to compute per call, digit for digit.
        substep_usec = self.tick_usec / self.substeps_per_tick
        self._substep_budget_cycles: Dict[int, int] = {
            core.core_id: int(
                round(substep_usec * self.freq_khz_of_core(core.core_id) / 1000)
            )
            for core in self.machine.cores
        }
        #: Per-vCPU cycles actually executed during the last tick.
        self.last_tick_cycles: Dict[int, int] = {}
        #: Per-vCPU LLC misses produced during the last tick.
        self.last_tick_misses: Dict[int, float] = {}
        #: Per-vCPU instructions retired during the last tick.
        self.last_tick_instructions: Dict[int, float] = {}

        self.scheduler = scheduler
        scheduler.attach(self)

        #: Which inner tick-loop implementation executes sub-steps.
        #: ``batch`` (default) is the struct-of-arrays engine in
        #: :mod:`repro.hypervisor.batch`; ``batch-numpy`` adds its
        #: vectorised perf-model kernel; ``scalar`` is the reference
        #: per-core loop.  All three are bit-exact with each other
        #: (asserted by the equivalence property tests).  The
        #: ``REPRO_TICK_ENGINE`` environment variable supplies the
        #: default so experiments can be cross-checked without edits.
        if tick_engine is None:
            tick_engine = os.environ.get("REPRO_TICK_ENGINE", "batch")
        if tick_engine not in ("batch", "batch-numpy", "scalar"):
            raise ValueError(
                f"unknown tick_engine {tick_engine!r}; expected 'batch', "
                f"'batch-numpy' or 'scalar'"
            )
        self.tick_engine = tick_engine
        # The batch engine's per-core slots are built lazily on the
        # first tick: systems that are constructed but never run (spec
        # materialization, validation passes) pay nothing for it.
        self._batch_engine = None
        self._tick_executor: Optional[Callable[[], None]] = (
            self._execute_tick if tick_engine == "scalar" else None
        )

    # -- frequency helpers ----------------------------------------------------

    def freq_khz_of_core(self, core_id: int) -> int:
        return self.machine.socket_of(core_id).spec.freq_khz

    @property
    def freq_khz(self) -> int:
        """Frequency of socket 0 (all modelled machines are homogeneous)."""
        return self.machine.sockets[0].spec.freq_khz

    def cycles_per_tick(self, core_id: int = 0) -> int:
        return usec_to_cycles(self.tick_usec, self.freq_khz_of_core(core_id))

    def socket_id_of_vcpu(self, vcpu: VCpu) -> int:
        """Socket a vCPU's execution state lives on.

        The current core wins, then the pinned core; a vCPU that has
        never been placed anywhere falls back to its VM's memory node —
        that is the socket whose LLC it will populate once scheduled,
        so per-socket lookups (occupancy, frequency) stay coherent on
        multi-socket machines.
        """
        core_id = (
            vcpu.current_core
            if vcpu.current_core is not None
            else vcpu.pinned_core
        )
        if core_id is None:
            return vcpu.vm.config.memory_node
        return self.machine.core(core_id).socket_id

    def freq_khz_of_vcpu(self, vcpu: VCpu) -> int:
        """Frequency of the socket the vCPU runs (or would run) on."""
        return self.machine.sockets[self.socket_id_of_vcpu(vcpu)].spec.freq_khz

    # -- VM lifecycle -----------------------------------------------------------

    def create_vm(self, config: VmConfig) -> VirtualMachine:
        """Instantiate a VM, its vCPUs, and register with the scheduler."""
        if config.name in self._vm_by_name:
            raise HypervisorError(
                f"a VM named {config.name!r} already exists; VM names must "
                f"be unique while the VM is live"
            )
        vm = VirtualMachine(vm_id=self._next_vm_id, config=config)
        self._next_vm_id += 1
        for index in range(config.num_vcpus):
            pinned = (
                config.pinned_cores[index] if config.pinned_cores is not None else None
            )
            if pinned is not None:
                self.machine.core(pinned)  # validates the id
            vcpu = VCpu(
                gid=self._next_gid,
                vm=vm,
                index=index,
                workload=config.workload,
                pinned_core=pinned,
            )
            self._next_gid += 1
            vm.vcpus.append(vcpu)
            self.vcpus.append(vcpu)
            self.scheduler.register_vcpu(vcpu)
        self.vms.append(vm)
        self._vm_by_name[vm.name] = vm
        if self._batch_engine is not None:
            self._batch_engine.invalidate_fleet()
        return vm

    def admit_vm(self, config: VmConfig) -> VirtualMachine:
        """Admit a VM into a (possibly already running) system.

        Semantically :meth:`create_vm`; the separate name marks the
        service-mode entry point.  Admission happens *between* ticks —
        the new VM is schedulable from the next tick onward.
        """
        vm = self.create_vm(config)
        self.recorder.inc("service.vms_admitted")
        return vm

    def retire_vm(self, vm: VirtualMachine) -> None:
        """Remove a VM from the system mid-run.

        Runs between ticks.  Ordering matters:

        1. the scheduler's VM-retire hook runs first, while the vCPUs are
           still registered and measurable — Kyoto settlement samples the
           monitor, which needs live perfctr accounts;
        2. each vCPU is descheduled (its pending context-switch penalty
           dies with it), its LLC occupancy is flushed, its perfctr
           account retired, and the scheduler unregisters it;
        3. the VM leaves the fleet, and the batch engine's core slots are
           invalidated so no mirror retains a stale reference.
        """
        if self._vm_by_name.get(vm.name) is not vm:
            raise HypervisorError(
                f"VM {vm.name!r} (vm_id={vm.vm_id}) is not live in this system"
            )
        self.scheduler.on_vm_retiring(vm)
        for vcpu in vm.vcpus:
            if vcpu.current_core is not None:
                core = self.machine.core(vcpu.current_core)
                self.context_switch(core, None)
                self._pending_penalty_cycles.pop(core.core_id, None)
            if vcpu.blocked_until_usec is not None:
                vcpu.blocked_until_usec = None
                self._sleeping_count -= 1
            # A retired vCPU must never look runnable again, even to code
            # holding a stale reference.
            vcpu.paused = True
            for domain in self.llc_domains:
                domain.flush_owner(vcpu.gid)
            self.perfctr.retire_account(vcpu.gid)
            self.scheduler.unregister_vcpu(vcpu)
            self.last_tick_cycles.pop(vcpu.gid, None)
            self.last_tick_misses.pop(vcpu.gid, None)
            self.last_tick_instructions.pop(vcpu.gid, None)
        retired_gids = {vcpu.gid for vcpu in vm.vcpus}
        self.vcpus = [v for v in self.vcpus if v.gid not in retired_gids]
        self.vms.remove(vm)
        del self._vm_by_name[vm.name]
        if self._batch_engine is not None:
            self._batch_engine.invalidate_fleet()
        self.recorder.inc("service.vms_retired")
        self.recorder.compact_retired_series(f"kyoto.quota.{vm.name}")

    def vm_by_name(self, name: str) -> VirtualMachine:
        try:
            return self._vm_by_name[name]
        except KeyError:
            raise HypervisorError(f"no VM named {name!r}") from None

    # -- placement / context switching -----------------------------------------

    def context_switch(self, core: Core, vcpu: Optional[VCpu]) -> None:
        """Place ``vcpu`` (or idle) on ``core``, virtualising PMCs."""
        outgoing = core.running
        if outgoing is vcpu:
            return
        if outgoing is not None:
            self.perfctr.context_switch_out(outgoing.gid)
            outgoing.current_core = None
            core.running = None
        if vcpu is not None:
            if vcpu.current_core is not None:
                raise HypervisorError(
                    f"{vcpu.name} is already running on core {vcpu.current_core}"
                )
            if vcpu.pinned_core is not None and vcpu.pinned_core != core.core_id:
                raise HypervisorError(
                    f"{vcpu.name} is pinned to core {vcpu.pinned_core}, "
                    f"cannot run on {core.core_id}"
                )
            core.running = vcpu
            vcpu.current_core = core.core_id
            self.perfctr.context_switch_in(vcpu.gid, core.core_id)
            self._pending_penalty_cycles[core.core_id] = (
                self._pending_penalty_cycles.get(core.core_id, 0)
                + self.context_switch_cost_cycles
            )
            self.recorder.inc("sys.context_switches")

    def migrate_vcpu(self, vcpu: VCpu, new_core_id: int) -> None:
        """Re-pin a vCPU to another core (possibly on another socket).

        Crossing a socket boundary flushes the vCPU's LLC occupancy on the
        old socket — its cached lines are useless there — so it restarts
        cold, and (if its memory stays home) it pays remote accesses.

        A failed migration (interceptor veto) leaves the vCPU exactly
        where it was: the failure is raised before any state changes.
        """
        if self.migration_interceptor is not None:
            self.migration_interceptor(vcpu, new_core_id)
        new_core = self.machine.core(new_core_id)
        old_socket = (
            self.machine.core(vcpu.current_core).socket_id
            if vcpu.current_core is not None
            else (
                self.machine.core(vcpu.pinned_core).socket_id
                if vcpu.pinned_core is not None
                else None
            )
        )
        if vcpu.current_core is not None:
            self.context_switch(self.machine.core(vcpu.current_core), None)
        vcpu.pinned_core = new_core_id
        self.scheduler.reassign_vcpu(vcpu, new_core_id)
        if old_socket is not None and old_socket != new_core.socket_id:
            self.llc_domains[old_socket].flush_owner(vcpu.gid)
            self.recorder.inc("sys.cross_socket_migrations")
        self.recorder.inc("sys.vcpu_migrations")

    def is_memory_remote(self, vcpu: VCpu, core_id: int) -> bool:
        """True if running on ``core_id`` makes the vCPU's memory remote."""
        return self.machine.core(core_id).socket_id != vcpu.vm.config.memory_node

    # -- measurement -------------------------------------------------------------

    def truth_llc_cap(self, vcpu: VCpu) -> float:
        """Simulator-exact misses/ms over the vCPU's metric window.

        This is the ground truth Kyoto tries to estimate via PMCs.
        """
        if vcpu.cycles_run == 0:
            return 0.0
        # freq_khz == cycles/ms.  The frequency must be the socket the
        # vCPU actually ran on: socket 0's frequency would misconvert
        # cycles to milliseconds on heterogeneous multi-socket specs.
        ms_run = vcpu.cycles_run / (self.freq_khz_of_vcpu(vcpu))
        return vcpu.llc_misses / ms_run

    def occupancy_of(self, vcpu: VCpu) -> float:
        """LLC lines the vCPU holds on its (current or pinned) socket.

        An unplaced, unpinned vCPU reads its VM's memory-node socket —
        not socket 0 — so Kyoto sampling of a never-yet-scheduled vCPU
        homed on another socket doesn't consult the wrong LLC domain.
        """
        return self.llc_domains[self.socket_id_of_vcpu(vcpu)].occupancy_of(
            vcpu.gid
        )

    # -- the tick loop -------------------------------------------------------------

    def add_tick_observer(self, observer: TickObserver) -> None:
        """Register a callback invoked after every completed tick."""
        self._tick_observers.append(observer)

    def run_ticks(self, num_ticks: int) -> None:
        """Advance the machine by ``num_ticks`` scheduler ticks."""
        if num_ticks < 0:
            raise ValueError(f"num_ticks must be >= 0, got {num_ticks}")
        for _ in range(num_ticks):
            self._do_tick()

    def run_ticks_until(
        self, num_ticks: int, stop: Callable[[], bool]
    ) -> int:
        """Advance up to ``num_ticks`` ticks, stopping early once
        ``stop()`` is true after a completed tick; returns ticks run.

        This is the chunked inner loop of the execution-time protocol:
        one call runs a whole chunk without re-entering Python call
        setup per tick, while the per-tick finish check keeps the stop
        point exactly where a tick-by-tick loop would stop.
        """
        if num_ticks < 0:
            raise ValueError(f"num_ticks must be >= 0, got {num_ticks}")
        for ran in range(num_ticks):
            self._do_tick()
            if stop():
                return ran + 1
        return num_ticks

    def run_msec(self, msec: float) -> None:
        """Advance by (at least) ``msec`` milliseconds of machine time."""
        ticks = max(1, int(round(msec * 1000 / self.tick_usec)))
        self.run_ticks(ticks)

    def run_until_finished(self, max_ticks: int = 1_000_000) -> int:
        """Run until every finite workload completes; returns ticks used."""
        start = self.tick_index
        finite_vms = [vm for vm in self.vms if vm.config.workload.is_finite]
        if not finite_vms:
            offenders = ", ".join(
                f"{vm.name} ({type(vm.config.workload).__name__})"
                for vm in self.vms
            )
            raise HypervisorError(
                "run_until_finished needs at least one finite workload; "
                + (
                    f"every VM runs an infinite one: {offenders}"
                    if offenders
                    else "the system has no VMs (use run_ticks or the "
                    "service loop for open-ended runs)"
                )
            )
        while not all(vm.finished for vm in finite_vms):
            if self.tick_index - start >= max_ticks:
                unfinished = ", ".join(
                    f"{vm.name} ({type(vm.config.workload).__name__})"
                    for vm in finite_vms
                    if not vm.finished
                )
                raise HypervisorError(
                    f"workloads did not finish within {max_ticks} ticks; "
                    f"still running: {unfinished}"
                )
            self._do_tick()
        return self.tick_index - start

    def _do_tick(self) -> None:
        self._wake_sleepers()
        self.scheduler.on_tick_start(self.tick_index)
        executor = self._tick_executor
        if executor is None:
            from .batch import BatchTickEngine

            self._batch_engine = BatchTickEngine(
                self, use_numpy=self.tick_engine == "batch-numpy"
            )
            executor = self._tick_executor = self._batch_engine.execute_tick
        executor()
        self.scheduler.on_tick_end(self.tick_index)
        if (self.tick_index + 1) % self.ticks_per_slice == 0:
            self.scheduler.on_accounting(self.tick_index)
        self.engine.clock.advance(self.tick_usec)
        if self.recorder.enabled:
            # Per-tick aggregates; guarded so disabled telemetry skips
            # the summations entirely.
            self.recorder.record(
                "sys.llc_misses_per_tick",
                self.tick_index,
                sum(self.last_tick_misses.values()),
            )
            self.recorder.record(
                "sys.instructions_per_tick",
                self.tick_index,
                sum(self.last_tick_instructions.values()),
            )
            self.recorder.gauge("sys.final_tick", float(self.tick_index))
        for observer in self._tick_observers:
            observer(self, self.tick_index)
        self.tick_index += 1

    def _wake_sleepers(self) -> None:
        """Unblock vCPUs whose think time elapsed; notify the scheduler
        (Xen gives freshly woken vCPUs BOOST priority)."""
        if self._sleeping_count == 0:
            return
        now = self.engine.clock.now_usec
        for vcpu in self.vcpus:
            if vcpu.blocked_until_usec is not None and vcpu.blocked_until_usec <= now:
                vcpu.blocked_until_usec = None
                self._sleeping_count -= 1
                self.scheduler.on_vcpu_wake(vcpu)

    def _execute_tick(self) -> None:
        """Run all placed vCPUs through the tick, in sub-steps.

        Each sub-step first executes every running vCPU against the LLC
        occupancy frozen at the sub-step start, then relaxes each socket's
        occupancy domain under the collected insertion pressures (see
        :meth:`~repro.cachesim.occupancy.LlcOccupancyDomain.relax`).

        The footprint cap handed to ``relax`` is taken from the same
        pre-execution behavior sample that produced the sub-step's misses:
        the insertions and the cap they are bounded by must describe the
        same phase of the workload.  (Re-sampling after execution — the
        old behaviour — let a phase transition inside the sub-step pair
        this phase's misses with the next phase's cap.)
        """
        self.last_tick_cycles = {}
        self.last_tick_misses = {}
        self.last_tick_instructions = {}
        sockets = self.machine.sockets
        cores = self.machine.cores
        for _ in range(self.substeps_per_tick):
            pressures: List[Dict[int, float]] = [{} for _ in sockets]
            caps: List[Dict[int, float]] = [{} for _ in sockets]
            for core in cores:
                vcpu = core.running
                if vcpu is None:
                    # An idle core burns no cycles, so any pending
                    # context-switch penalty dies with the departed
                    # occupant rather than being charged to whichever
                    # vCPU lands here ticks later (which would owe only
                    # its own switch-in cost).
                    self._pending_penalty_cycles.pop(core.core_id, None)
                    continue
                if not vcpu.runnable:
                    # Finished or blocked mid-tick: vacate the core and
                    # let the scheduler place a replacement immediately.
                    self.context_switch(core, None)
                    self.scheduler.refill_core(core)
                    vcpu = core.running
                    if vcpu is None or not vcpu.runnable:
                        self._pending_penalty_cycles.pop(core.core_id, None)
                        continue
                misses, behavior = self._execute_substep(core, vcpu)
                socket = core.socket_id
                pressures[socket][vcpu.gid] = (
                    pressures[socket].get(vcpu.gid, 0.0) + misses
                )
                caps[socket][vcpu.gid] = behavior.footprint_cap_lines
            for socket_id, domain in enumerate(self.llc_domains):
                if pressures[socket_id]:
                    domain.relax(pressures[socket_id], caps[socket_id])

    def _execute_substep(self, core: Core, vcpu: VCpu) -> Tuple[float, "CacheBehavior"]:
        """Execute one vCPU for one sub-step.

        Returns the LLC misses produced and the (pre-execution) behavior
        the step ran under, so the caller can bound the relaxation with
        the cap belonging to the same workload phase.
        """
        core_id = core.core_id
        gid = vcpu.gid
        progress = vcpu.progress
        budget = self._substep_budget_cycles[core_id]
        # Pay any pending context-switch penalty out of the budget: the
        # cycles elapse (and count as unhalted) but retire nothing.
        penalty = min(budget, self._pending_penalty_cycles.get(core_id, 0))
        if penalty:
            self._pending_penalty_cycles[core_id] -= penalty
        work_cycles = budget - penalty

        domain = self.llc_domains[core.socket_id]
        behavior = progress.workload.behavior_at(progress.instructions_done)
        # is_memory_remote(vcpu, core_id), inlined: core.socket_id is the
        # socket of core_id and both operands are fixed at construction.
        remote = core.socket_id != vcpu.vm.config.memory_node
        result = execute_step(
            behavior,
            domain.occupancy_of(gid),
            work_cycles,
            self.spec.latency,
            remote_memory=remote,
        )
        jittered = result.instructions
        if self.perf_jitter_fraction:
            jittered *= 1.0 + self._jitter_stream.uniform(
                -self.perf_jitter_fraction, self.perf_jitter_fraction
            )
        # Clip to remaining work for finite workloads, and to the current
        # burst for interactive workloads (burst end -> think time).
        instructions = min(jittered, progress.remaining_instructions)
        boundary_fn = vcpu._boundary_fn
        if boundary_fn is not None:
            to_boundary = boundary_fn(progress.instructions_done) - (
                progress.instructions_done
            )
            if instructions >= to_boundary:
                instructions = to_boundary
                vcpu.blocked_until_usec = (
                    self.engine.clock.now_usec + progress.workload.think_usec
                )
                self._sleeping_count += 1
        scale = (
            instructions / result.instructions if result.instructions > 0 else 0.0
        )
        llc_accesses = result.llc_accesses * scale
        llc_misses = result.llc_misses * scale

        vcpu.record_execution(budget, instructions, llc_accesses, llc_misses)
        last_cycles = self.last_tick_cycles
        last_cycles[gid] = last_cycles.get(gid, 0) + budget
        last_misses = self.last_tick_misses
        last_misses[gid] = last_misses.get(gid, 0.0) + llc_misses
        last_instructions = self.last_tick_instructions
        last_instructions[gid] = last_instructions.get(gid, 0.0) + instructions

        cycles_pmc, instr_pmc, miss_pmc, ref_pmc = self._substep_pmcs[core_id]
        cycles_pmc.add(budget)
        instr_pmc.add(vcpu.take_integer_instructions(instructions))
        miss_pmc.add(vcpu.take_integer_misses(llc_misses))
        ref_pmc.add(vcpu.take_integer_accesses(llc_accesses))
        if progress.done and progress.finished_at_usec is None:
            progress.finished_at_usec = self.engine.clock.now_usec
        return llc_misses, behavior
