"""Virtual CPUs.

A vCPU is the schedulable entity: it executes its VM's workload when a
scheduler places it on a core, and accumulates both *truth* metrics (known
exactly by the simulator) and, separately, virtualised PMC readings via
:mod:`repro.pmc.perfctr` — the distinction matters because Kyoto only gets
to see the latter.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.workloads.base import Workload, WorkloadProgress

if TYPE_CHECKING:  # pragma: no cover
    from .vm import VirtualMachine


class VCpu:
    """One virtual CPU of a VM."""

    def __init__(
        self,
        gid: int,
        vm: "VirtualMachine",
        index: int,
        workload: Workload,
        pinned_core: Optional[int] = None,
    ) -> None:
        #: Globally unique vCPU id (the cache-owner tag).
        self.gid = gid
        self.vm = vm
        #: Index of this vCPU within its VM.
        self.index = index
        self.progress = WorkloadProgress(workload)
        # Interactive workloads expose next_block_boundary; the workload
        # never changes after construction, so the per-substep getattr is
        # paid once here instead of in the execution loop.
        self._boundary_fn = getattr(workload, "next_block_boundary", None)
        #: Core this vCPU is pinned to (None = scheduler's choice).
        self.pinned_core = pinned_core
        #: Core the vCPU currently occupies (None when descheduled).
        self.current_core: Optional[int] = None
        #: Set False by the hypervisor/scheduler to park the vCPU.
        self.paused = False
        #: Simulated time until which the vCPU is blocked (interactive
        #: think time); None when not blocked.  Managed by the system.
        self.blocked_until_usec: Optional[int] = None

        # Truth metrics (simulator-exact; reset at measurement windows).
        self.instructions_retired = 0.0
        self.cycles_run = 0
        self.llc_accesses = 0.0
        self.llc_misses = 0.0
        # Fractional miss counts carried over so integer PMCs stay exact.
        self._miss_carry = 0.0
        self._instr_carry = 0.0
        self._access_carry = 0.0

    @property
    def name(self) -> str:
        return f"{self.vm.name}.v{self.index}"

    @property
    def workload(self) -> Workload:
        return self.progress.workload

    @property
    def runnable(self) -> bool:
        """True if the vCPU wants CPU time right now."""
        return (
            not self.paused
            and not self.progress.done
            and self.blocked_until_usec is None
        )

    @property
    def is_running(self) -> bool:
        return self.current_core is not None

    @property
    def ipc(self) -> float:
        """Instructions per cycle over all cycles this vCPU ran."""
        if self.cycles_run == 0:
            return 0.0
        return self.instructions_retired / self.cycles_run

    def record_execution(
        self,
        cycles: int,
        instructions: float,
        llc_accesses: float,
        llc_misses: float,
    ) -> None:
        """Accumulate one execution step's truth metrics."""
        self.cycles_run += cycles
        self.instructions_retired += instructions
        self.llc_accesses += llc_accesses
        self.llc_misses += llc_misses
        self.progress.advance(instructions)

    def take_integer_misses(self, misses: float) -> int:
        """Convert fractional misses to an integer count, carrying remainder.

        Keeps the PMC counters integer-exact over time even though the
        analytical model produces fractional expected miss counts.
        """
        self._miss_carry += misses
        whole = int(self._miss_carry)
        self._miss_carry -= whole
        return whole

    def take_integer_instructions(self, instructions: float) -> int:
        """Same carry trick for the instruction counter."""
        self._instr_carry += instructions
        whole = int(self._instr_carry)
        self._instr_carry -= whole
        return whole

    def take_integer_accesses(self, accesses: float) -> int:
        """Same carry trick for the LLC-references counter.

        Truncating each sub-step's fractional access count separately
        (the old behaviour) dropped up to one access per sub-step, which
        systematically undercounted LLC_REFERENCES over a window.
        """
        self._access_carry += accesses
        whole = int(self._access_carry)
        self._access_carry -= whole
        return whole

    def batch_mirror(self):
        """Snapshot truth metrics, progress and carry state as a tuple.

        Consumed by the batched tick engine when it primes a core slot:
        the engine accumulates into slot-local copies of these values
        (in the same order as :meth:`record_execution` and the
        ``take_integer_*`` carries would) and writes them back with
        :meth:`batch_writeback`, keeping the carry fields private to
        this class.  Field order is the writeback argument order.
        """
        return (
            self.cycles_run,
            self.instructions_retired,
            self.llc_accesses,
            self.llc_misses,
            self.progress.instructions_done,
            self._instr_carry,
            self._miss_carry,
            self._access_carry,
        )

    def batch_writeback(
        self,
        cycles_run: int,
        instructions_retired: float,
        llc_accesses: float,
        llc_misses: float,
        instructions_done: float,
        instr_carry: float,
        miss_carry: float,
        access_carry: float,
    ) -> None:
        """Apply a batched engine's accumulated mirrors (see
        :meth:`batch_mirror`).  Idempotent: flushing twice with the same
        values is a no-op."""
        self.cycles_run = cycles_run
        self.instructions_retired = instructions_retired
        self.llc_accesses = llc_accesses
        self.llc_misses = llc_misses
        self.progress.instructions_done = instructions_done
        self._instr_carry = instr_carry
        self._miss_carry = miss_carry
        self._access_carry = access_carry

    def reset_metrics(self) -> None:
        """Zero truth metrics (start of a measurement window)."""
        self.instructions_retired = 0.0
        self.cycles_run = 0
        self.llc_accesses = 0.0
        self.llc_misses = 0.0

    def __repr__(self) -> str:
        return f"VCpu(gid={self.gid}, name={self.name!r})"
