"""Hypervisor layer: VMs, vCPUs, the virtualized machine simulation and
vCPU migration policies."""

from .migration import PeriodicMigrator
from .system import HypervisorError, TickObserver, VirtualizedSystem
from .vcpu import VCpu
from .vm import VirtualMachine, VmConfig

__all__ = [
    "HypervisorError",
    "PeriodicMigrator",
    "TickObserver",
    "VCpu",
    "VirtualMachine",
    "VirtualizedSystem",
    "VmConfig",
]
