"""Single-pass multi-rule AST walker with per-file caching.

One parse and one tree traversal per file regardless of how many rules
are active: rules declare the node types they care about and the walker
dispatches each node to the interested rules only.  The same parse feeds
phase-1 fact extraction (:mod:`repro.lint.facts`), so whole-program
analysis never re-parses a file.  Results are cached per
(path, content-hash, rules-version) so the pytest lint gate and a CLI
run in the same process never re-lint an unchanged file.

:func:`lint_paths` is the two-phase entry point (per-file rules plus the
S/C/T program rules); :func:`lint_source` / :func:`lint_file` are the
per-file half, used by rule unit tests and by anything that only has one
file's text.
"""

from __future__ import annotations

import ast
import dataclasses
import hashlib
import pathlib
from typing import Dict, Iterable, List, Optional, Tuple, Type

from .facts import ModuleFacts, extract_facts
from .pragmas import PragmaTable
from .rules import ALL_RULES, RULES_VERSION
from .rules.base import FileContext, Finding, Rule, source_line_hash

#: (posix path, sha256, rules version) -> (findings, facts).
#: Process-lifetime cache; findings are copied out so baseline/severity
#: mutations by one caller never leak into the next.
_CACHE: Dict[Tuple[str, str, str], Tuple[List[Finding], ModuleFacts]] = {}


def _collect_imports(tree: ast.Module, ctx: FileContext) -> None:
    """Record how ``random`` / ``time`` / ``datetime`` are reachable."""
    module_aliases = {
        "random": ctx.random_aliases,
        "time": ctx.time_aliases,
        "datetime": ctx.datetime_aliases,
    }
    from_imports = {
        "random": ctx.random_from_imports,
        "time": ctx.time_from_imports,
        "datetime": ctx.datetime_from_imports,
    }
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name in module_aliases:
                    module_aliases[alias.name].add(alias.asname or alias.name)
        elif isinstance(node, ast.ImportFrom) and node.module in from_imports:
            for alias in node.names:
                from_imports[node.module][alias.asname or alias.name] = (
                    alias.name
                )


def normalize_path(path: str) -> str:
    """Posix form of ``path``, relative to the repository when possible."""
    posix = pathlib.PurePath(path).as_posix()
    for anchor, skip in (
        ("src/repro/", len("src/")),
        ("repro/", 0),
        ("tests/", 0),
        ("tools/", 0),
    ):
        index = posix.rfind(anchor)
        if index >= 0:
            return posix[index + skip:]
    return posix


def content_hash(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _attach_source_hashes(findings: List[Finding], lines: List[str]) -> None:
    for finding in findings:
        if not finding.source_hash and 1 <= finding.line <= len(lines):
            finding.source_hash = source_line_hash(lines[finding.line - 1])


def analyze_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Iterable[Type[Rule]]] = None,
) -> Tuple[List[Finding], ModuleFacts]:
    """One parse of one file: per-file findings plus extracted facts."""
    rule_classes = list(ALL_RULES if rules is None else rules)
    ctx = FileContext(path=normalize_path(path))
    try:
        tree: Optional[ast.Module] = ast.parse(source)
    except SyntaxError as exc:
        finding = Finding(
            rule_id="E999",
            path=ctx.path,
            line=exc.lineno or 1,
            col=exc.offset or 0,
            message=f"syntax error: {exc.msg}",
        )
        _attach_source_hashes([finding], source.splitlines())
        return [finding], extract_facts(None, source, ctx.path)
    _collect_imports(tree, ctx)
    pragmas = PragmaTable(source)

    instances = [rule_class() for rule_class in rule_classes]
    dispatch: Dict[type, List[Rule]] = {}
    for rule in instances:
        for node_type in rule.node_types:
            dispatch.setdefault(node_type, []).append(rule)

    for node in ast.walk(tree):
        for rule in dispatch.get(type(node), ()):
            rule.visit(node, ctx)

    findings: List[Finding] = []
    for rule in instances:
        for finding in rule.findings:
            if not pragmas.is_suppressed(
                finding.rule_id, finding.line, finding.end_line
            ):
                findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    _attach_source_hashes(findings, source.splitlines())
    facts = extract_facts(tree, source, ctx.path, pragmas=pragmas.to_dict())
    return findings, facts


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Iterable[Type[Rule]]] = None,
) -> List[Finding]:
    """Lint one file's source text and return its per-file findings.

    ``path`` participates in rule allowlists (e.g. ``simulation/rng.py``
    may construct raw streams), so virtual paths in tests should mimic
    real repo layout when they want allowlist behaviour.  Whole-program
    (S/C/T) rules need the full fact base and only run via
    :func:`lint_paths`.
    """
    findings, _ = analyze_source(source, path=path, rules=rules)
    return findings


def analyze_file(
    path: str, rules: Optional[Iterable[Type[Rule]]] = None
) -> Tuple[List[Finding], ModuleFacts]:
    """Analyze one file from disk, with content-hash caching."""
    text = pathlib.Path(path).read_text(encoding="utf-8")
    key = (normalize_path(path), content_hash(text), RULES_VERSION)
    if rules is None and key in _CACHE:
        cached_findings, cached_facts = _CACHE[key]
        return [dataclasses.replace(f) for f in cached_findings], cached_facts
    findings, facts = analyze_source(text, path=path, rules=rules)
    if rules is None:
        _CACHE[key] = ([dataclasses.replace(f) for f in findings], facts)
    return findings, facts


def lint_file(
    path: str, rules: Optional[Iterable[Type[Rule]]] = None
) -> List[Finding]:
    """Lint one file from disk (per-file rules only), with caching."""
    findings, _ = analyze_file(path, rules=rules)
    return findings


def iter_python_files(paths: Iterable[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    result: List[str] = []
    for raw in paths:
        path = pathlib.Path(raw)
        if path.is_dir():
            result.extend(str(p) for p in path.rglob("*.py"))
        else:
            result.append(str(path))
    return sorted(set(result))


def lint_paths(
    paths: Iterable[str],
    rules: Optional[Iterable[Type[Rule]]] = None,
    jobs: int = 1,
    cache_path: Optional[str] = None,
) -> List[Finding]:
    """Two-phase lint of every ``.py`` file under ``paths``.

    Phase 1 runs the per-file AST rules and extracts module facts (one
    parse per file, optionally fanned out over ``jobs`` worker
    processes and memoized in the on-disk ``cache_path``); phase 2 joins
    the facts and runs the whole-program S/C/T rules.  Passing explicit
    ``rules`` restricts phase 1 and skips phase 2 (legacy single-rule
    testing mode).
    """
    from .analyzer import analyze_paths

    return analyze_paths(paths, rules=rules, jobs=jobs, cache_path=cache_path)


def clear_cache() -> None:
    """Drop the per-file findings/facts cache (tests)."""
    _CACHE.clear()
