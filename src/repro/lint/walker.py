"""Single-pass multi-rule AST walker with per-file caching.

One parse and one tree traversal per file regardless of how many rules
are active: rules declare the node types they care about and the walker
dispatches each node to the interested rules only.  Results are cached
per (path, content-hash) so the pytest lint gate and a CLI run in the
same process never re-lint an unchanged file.
"""

from __future__ import annotations

import ast
import hashlib
import pathlib
from typing import Dict, Iterable, List, Optional, Tuple, Type

from .pragmas import PragmaTable
from .rules import ALL_RULES
from .rules.base import FileContext, Finding, Rule

#: (posix path, sha256 of source) -> findings.  Process-lifetime cache.
_CACHE: Dict[Tuple[str, str], List[Finding]] = {}


def _collect_imports(tree: ast.Module, ctx: FileContext) -> None:
    """Record how ``random`` / ``time`` / ``datetime`` are reachable."""
    module_aliases = {
        "random": ctx.random_aliases,
        "time": ctx.time_aliases,
        "datetime": ctx.datetime_aliases,
    }
    from_imports = {
        "random": ctx.random_from_imports,
        "time": ctx.time_from_imports,
        "datetime": ctx.datetime_from_imports,
    }
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name in module_aliases:
                    module_aliases[alias.name].add(alias.asname or alias.name)
        elif isinstance(node, ast.ImportFrom) and node.module in from_imports:
            for alias in node.names:
                from_imports[node.module][alias.asname or alias.name] = (
                    alias.name
                )


def normalize_path(path: str) -> str:
    """Posix form of ``path``, relative to the repository when possible."""
    posix = pathlib.PurePath(path).as_posix()
    for anchor in ("src/repro/", "repro/"):
        index = posix.rfind(anchor)
        if index >= 0:
            return posix[index:]
    return posix


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Iterable[Type[Rule]]] = None,
) -> List[Finding]:
    """Lint one file's source text and return its findings.

    ``path`` participates in rule allowlists (e.g. ``simulation/rng.py``
    may construct raw streams), so virtual paths in tests should mimic
    real repo layout when they want allowlist behaviour.
    """
    rule_classes = list(ALL_RULES if rules is None else rules)
    ctx = FileContext(path=normalize_path(path))
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            Finding(
                rule_id="E999",
                path=ctx.path,
                line=exc.lineno or 1,
                col=exc.offset or 0,
                message=f"syntax error: {exc.msg}",
            )
        ]
    _collect_imports(tree, ctx)
    pragmas = PragmaTable(source)

    instances = [rule_class() for rule_class in rule_classes]
    dispatch: Dict[type, List[Rule]] = {}
    for rule in instances:
        for node_type in rule.node_types:
            dispatch.setdefault(node_type, []).append(rule)

    for node in ast.walk(tree):
        for rule in dispatch.get(type(node), ()):
            rule.visit(node, ctx)

    findings: List[Finding] = []
    for rule in instances:
        for finding in rule.findings:
            if not pragmas.is_suppressed(finding.rule_id, finding.line):
                findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return findings


def lint_file(
    path: str, rules: Optional[Iterable[Type[Rule]]] = None
) -> List[Finding]:
    """Lint one file from disk, with content-hash caching."""
    text = pathlib.Path(path).read_text(encoding="utf-8")
    key = (normalize_path(path), hashlib.sha256(text.encode("utf-8")).hexdigest())
    if rules is None and key in _CACHE:
        return list(_CACHE[key])
    findings = lint_source(text, path=path, rules=rules)
    if rules is None:
        _CACHE[key] = list(findings)
    return findings


def iter_python_files(paths: Iterable[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    result: List[str] = []
    for raw in paths:
        path = pathlib.Path(raw)
        if path.is_dir():
            result.extend(str(p) for p in path.rglob("*.py"))
        else:
            result.append(str(path))
    return sorted(set(result))


def lint_paths(
    paths: Iterable[str], rules: Optional[Iterable[Type[Rule]]] = None
) -> List[Finding]:
    """Lint every ``.py`` file under ``paths`` (files or directories)."""
    findings: List[Finding] = []
    for file_path in iter_python_files(paths):
        findings.extend(lint_file(file_path, rules=rules))
    return findings


def clear_cache() -> None:
    """Drop the per-file findings cache (tests)."""
    _CACHE.clear()
