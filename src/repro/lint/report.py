"""Finding reports: human text and machine JSON.

Text findings print one per line as ``path:line:col: RULE severity
message`` so editors and CI annotations can jump straight to the source;
JSON output is a stable envelope with a summary block for dashboards.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import List

from .rules.base import Finding


def failing_findings(findings: List[Finding]) -> List[Finding]:
    """Findings that should fail the run (error severity, not baselined)."""
    return [
        f for f in findings if f.severity == "error" and not f.baselined
    ]


def exit_code(findings: List[Finding]) -> int:
    """0 when nothing fails the gate, 1 otherwise."""
    return 1 if failing_findings(findings) else 0


def format_text(findings: List[Finding]) -> str:
    """Human-readable report, one finding per line plus a summary."""
    if not findings:
        return "kyotolint: clean (no findings)"
    lines = [
        f"{f.location()}: {f.rule_id} {f.severity}"
        f"{' (baselined)' if f.baselined else ''}: {f.message}"
        for f in findings
    ]
    by_rule = Counter(f.rule_id for f in findings)
    failing = len(failing_findings(findings))
    summary = ", ".join(
        f"{rule}={count}" for rule, count in sorted(by_rule.items())
    )
    lines.append(
        f"kyotolint: {len(findings)} finding(s) [{summary}], "
        f"{failing} failing"
    )
    return "\n".join(lines)


def format_json(findings: List[Finding]) -> str:
    """Machine-readable report (stable schema, sorted findings)."""
    payload = {
        "tool": "kyotolint",
        "version": 1,
        "summary": {
            "total": len(findings),
            "failing": len(failing_findings(findings)),
            "baselined": sum(1 for f in findings if f.baselined),
            "by_rule": dict(
                sorted(Counter(f.rule_id for f in findings).items())
            ),
        },
        "findings": [f.to_dict() for f in findings],
    }
    return json.dumps(payload, indent=2)
