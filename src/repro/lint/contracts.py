"""Runtime invariant contracts.

The static rules keep the *source* honest; this module keeps the *running
simulation* honest.  Components declare invariants — predicates over their
own state that must hold after every mutation — either with the
:func:`invariant` method decorator or by calling an
:class:`InvariantChecker` inline at mutation sites.

Checking is deliberately cheap to disable: every entry point consults
:func:`contracts_enabled` first, which resolves to

* ``KYOTO_CONTRACTS=1`` / ``KYOTO_CONTRACTS=0`` in the environment when
  set (force on / force off), otherwise
* **on** under pytest (so every test run doubles as an invariant sweep),
* **off** in production runs, where the engine's own validation already
  rejects malformed inputs and the per-tick predicate cost matters.

A violated invariant raises :class:`ContractViolation` — loudly, with the
invariant name and a detail string — rather than corrupting results
silently, which is exactly the failure mode (wrong units, negative debits,
occupancy oversubscription, time running backwards) that would poison the
paper's headline numbers.
"""

from __future__ import annotations

import functools
import os
import sys
from typing import Callable, Dict, List, Optional, Tuple

#: Environment variable that force-enables ("1") or force-disables ("0")
#: contract checking regardless of context.
ENV_VAR = "KYOTO_CONTRACTS"


class ContractViolation(AssertionError):
    """A runtime invariant did not hold."""

    def __init__(self, name: str, detail: str = "") -> None:
        self.name = name
        self.detail = detail
        message = f"invariant '{name}' violated"
        if detail:
            message += f": {detail}"
        super().__init__(message)


_forced: Optional[bool] = None


def set_contracts_enabled(enabled: Optional[bool]) -> None:
    """Programmatic override: True/False force, None returns to default."""
    global _forced
    _forced = enabled


def contracts_enabled() -> bool:
    """Whether invariant predicates should be evaluated right now."""
    if _forced is not None:
        return _forced
    env = os.environ.get(ENV_VAR)
    if env is not None:
        return env.strip() not in ("0", "false", "no", "off", "")
    # Default: on under pytest, off otherwise.
    return "pytest" in sys.modules


def check(condition: bool, name: str, detail: str = "") -> None:
    """Module-level one-shot check (for call sites without a checker)."""
    # The condition is already evaluated (it is an argument), so test it
    # first: the enabled lookup reads the environment and is the expensive
    # half on hot paths, and it only matters when the invariant failed.
    if not condition and contracts_enabled():
        raise ContractViolation(name, detail)


class InvariantChecker:
    """Named invariant bookkeeping for one component.

    Components create one checker, then call :meth:`require` at mutation
    sites.  The checker counts evaluations per invariant so tests (and
    Fig-12-style overhead studies) can assert the contracts actually ran.
    """

    def __init__(self, owner: str = "component") -> None:
        self.owner = owner
        self.evaluations: Dict[str, int] = {}
        self.violations: List[Tuple[str, str]] = []

    def require(self, condition: bool, name: str, detail: str = "") -> None:
        """Raise :class:`ContractViolation` if ``condition`` is false."""
        if not contracts_enabled():
            return
        self.evaluations[name] = self.evaluations.get(name, 0) + 1
        if not condition:
            self.violations.append((name, detail))
            raise ContractViolation(f"{self.owner}.{name}", detail)

    def evaluated(self, name: str) -> int:
        """How many times invariant ``name`` has been evaluated."""
        return self.evaluations.get(name, 0)


def invariant(
    predicate: Callable[..., bool], name: Optional[str] = None
) -> Callable:
    """Method decorator: ``predicate(self)`` must hold after the call.

    ::

        class Account:
            @invariant(lambda self: self.quota <= self.quota_max,
                       name="quota-cap")
            def refill(self, ticks):
                ...

    The predicate runs *after* the wrapped method returns (contracts are
    postconditions on the object's state) and only when contract checking
    is enabled, so the production-path overhead is one boolean test.
    """

    def decorate(method: Callable) -> Callable:
        contract_name = name or f"{method.__qualname__}.post"

        @functools.wraps(method)
        def wrapper(self, *args, **kwargs):
            result = method(self, *args, **kwargs)
            if contracts_enabled() and not predicate(self):
                raise ContractViolation(
                    contract_name, f"state after {method.__name__}()"
                )
            return result

        wrapper.__kyoto_invariant__ = contract_name
        return wrapper

    return decorate
