"""Phase-1 fact extraction for whole-program analysis.

Per-file AST rules (D/U/H families) can only see one module at a time;
the S/C/T rule families need to relate call sites *across* modules: two
modules deriving the same ``(seed, name)`` RNG stream, a worker entry
point reaching a module-global mutation three calls away, a telemetry
counter incremented under one name and read under another.

This module extracts, from the same single parse the per-file rules use,
a JSON-serializable :class:`ModuleFacts` record per file:

* defined top-level symbols and per-function metadata (nesting,
  ``global`` writes, mutations of module-level mutable state),
* import bindings resolved to absolute module names (so the call graph
  can follow ``from .registry import resolve`` and re-export chains),
* call edges (caller qualname -> dotted callee parts),
* RNG stream construction sites (``registry.stream("name")``,
  ``seeded_stream(seed, "name")``) with literal names when derivable,
* telemetry write/read sites (``recorder.inc/gauge/record`` vs
  ``recorder.counters[...]`` / ``.series("name")``),
* schema-identifier literals (``"repro.artifact/1"``),
* worker fan-out sites (``multiprocessing.Process(target=...)``,
  ``pool.imap(func, ...)``),
* the file's pragma table, so phase 2 can honour suppressions.

Everything is plain dicts/lists so the on-disk facts cache
(:mod:`repro.lint.analyzer`) can round-trip records without pickling.
Bump :data:`FACTS_VERSION` whenever the extracted shape changes — it is
part of the cache key.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from .rules.base import call_name, source_line_hash

#: Version of the extracted fact shape; part of the on-disk cache key.
FACTS_VERSION = 1

#: Method names that record telemetry, mapped to the metric kind.
_TELEMETRY_WRITERS = {"inc": "counter", "gauge": "gauge", "record": "series"}

#: Attribute names whose subscript/.get() reads a telemetry metric.
_TELEMETRY_STORES = {"counters": "counter", "gauges": "gauge"}

#: Pool/executor methods that ship a function to worker processes.
_POOL_METHODS = {
    "apply",
    "apply_async",
    "map",
    "map_async",
    "imap",
    "imap_unordered",
    "starmap",
    "starmap_async",
    "submit",
}

#: Constructors whose module-level result is shared mutable state.
_MUTABLE_CONSTRUCTORS = {
    "list",
    "dict",
    "set",
    "bytearray",
    "deque",
    "defaultdict",
    "Counter",
    "OrderedDict",
}

#: Schema identifiers look like ``repro.telemetry/1``.
_SCHEMA_RE = re.compile(r"repro\.[a-z_]+/\d+")


def module_name_of(path: str) -> str:
    """Dotted module name for a normalized posix path.

    ``repro/experiments/campaign.py`` -> ``repro.experiments.campaign``;
    package ``__init__.py`` files map to the package itself.
    """
    trimmed = path[:-3] if path.endswith(".py") else path
    parts = [part for part in trimmed.split("/") if part]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _package_of(module: str, is_package: bool) -> str:
    """The package a module's relative imports resolve against."""
    if is_package:
        return module
    return module.rpartition(".")[0]


@dataclass
class ModuleFacts:
    """Everything phase 2 knows about one module."""

    path: str
    module: str = ""
    defines: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    functions: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    calls: List[Dict[str, Any]] = field(default_factory=list)
    imports: Dict[str, str] = field(default_factory=dict)
    from_imports: Dict[str, List[str]] = field(default_factory=dict)
    rng_sites: List[Dict[str, Any]] = field(default_factory=list)
    telemetry_writes: List[Dict[str, Any]] = field(default_factory=list)
    telemetry_reads: List[Dict[str, Any]] = field(default_factory=list)
    schema_sites: List[Dict[str, Any]] = field(default_factory=list)
    worker_sites: List[Dict[str, Any]] = field(default_factory=list)
    str_constants: Dict[str, str] = field(default_factory=dict)
    mutable_globals: Dict[str, int] = field(default_factory=dict)
    pragmas: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "module": self.module,
            "defines": self.defines,
            "functions": self.functions,
            "calls": self.calls,
            "imports": self.imports,
            "from_imports": self.from_imports,
            "rng_sites": self.rng_sites,
            "telemetry_writes": self.telemetry_writes,
            "telemetry_reads": self.telemetry_reads,
            "schema_sites": self.schema_sites,
            "worker_sites": self.worker_sites,
            "str_constants": self.str_constants,
            "mutable_globals": self.mutable_globals,
            "pragmas": self.pragmas,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ModuleFacts":
        facts = cls(path=data["path"])
        for key, value in data.items():
            if key != "path" and hasattr(facts, key):
                setattr(facts, key, value)
        return facts


class _FactsVisitor:
    """One recursive walk collecting every fact family at once."""

    def __init__(self, facts: ModuleFacts, lines: List[str]) -> None:
        self.facts = facts
        self.lines = lines
        #: Stack of enclosing scopes: ("module"|"class"|"function", name).
        self.scope: List[Tuple[str, str]] = []
        self.package = _package_of(
            facts.module, facts.path.endswith("__init__.py")
        )

    # -- helpers ----------------------------------------------------------

    def _line_hash(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return source_line_hash(self.lines[lineno - 1])
        return ""

    def _site(self, node: ast.AST) -> Dict[str, Any]:
        line = getattr(node, "lineno", 1)
        return {
            "line": line,
            "col": getattr(node, "col_offset", 0),
            "end_line": getattr(node, "end_lineno", None) or line,
            "line_hash": self._line_hash(line),
        }

    def _qualname(self) -> str:
        names = [name for kind, name in self.scope]
        return ".".join(names) if names else "<module>"

    def _enclosing_function(self) -> Optional[str]:
        for kind, _ in self.scope:
            if kind == "function":
                return self._qualname()
        return None

    def _in_function(self) -> bool:
        return any(kind == "function" for kind, _ in self.scope)

    def _function_record(self) -> Optional[Dict[str, Any]]:
        qualname = self._enclosing_function()
        if qualname is None:
            return None
        return self.facts.functions.get(qualname)

    def _resolve_from_module(self, node: ast.ImportFrom) -> str:
        if node.level == 0:
            return node.module or ""
        base = self.package
        for _ in range(node.level - 1):
            base = base.rpartition(".")[0]
        if node.module:
            return f"{base}.{node.module}" if base else node.module
        return base

    def _string_value(self, node: ast.AST) -> Tuple[Optional[str], bool]:
        """(literal value or f-string prefix, is_dynamic)."""
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value, False
        if isinstance(node, ast.Name):
            constant = self.facts.str_constants.get(node.id)
            if constant is not None:
                return constant, False
            return None, True
        if isinstance(node, ast.JoinedStr):
            head = node.values[0] if node.values else None
            if isinstance(head, ast.Constant) and isinstance(head.value, str):
                return head.value, True
            return None, True
        return None, True

    # -- walk -------------------------------------------------------------

    def walk(self, tree: ast.Module) -> None:
        for stmt in self._body_without_docstring(tree):
            self.visit(stmt)

    @staticmethod
    def _body_without_docstring(node: ast.AST) -> List[ast.stmt]:
        body = list(getattr(node, "body", []))
        if (
            body
            and isinstance(body[0], ast.Expr)
            and isinstance(body[0].value, ast.Constant)
            and isinstance(body[0].value.value, str)
        ):
            body = body[1:]
        return body

    def visit(self, node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._visit_function(node)
            return
        if isinstance(node, ast.ClassDef):
            self._visit_class(node)
            return
        if isinstance(node, ast.Import):
            self._visit_import(node)
        elif isinstance(node, ast.ImportFrom):
            self._visit_import_from(node)
        elif isinstance(node, ast.Global):
            self._visit_global(node)
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            self._visit_assignment(node)
        elif isinstance(node, ast.Call):
            self._visit_call(node)
        elif isinstance(node, ast.Subscript):
            self._visit_subscript(node)
        elif isinstance(node, ast.Constant):
            self._visit_constant(node)
        elif isinstance(node, ast.Expr) and isinstance(node.value, ast.Constant):
            return  # stray string expression (docstring-like); skip
        for child in ast.iter_child_nodes(node):
            self.visit(child)

    def _visit_function(self, node: ast.AST) -> None:
        nested = self._in_function()
        self.scope.append(("function", node.name))
        qualname = self._qualname()
        self.facts.functions[qualname] = {
            "name": node.name,
            "line": node.lineno,
            "nested": nested,
            "global_writes": [],
            "mutates": [],
        }
        if len(self.scope) == 1:
            self.facts.defines[node.name] = {
                "kind": "func",
                "line": node.lineno,
            }
        for decorator in node.decorator_list:
            self.scope.pop()
            self.visit(decorator)
            self.scope.append(("function", node.name))
        for stmt in self._body_without_docstring(node):
            self.visit(stmt)
        self.scope.pop()

    def _visit_class(self, node: ast.ClassDef) -> None:
        if not self.scope:
            self.facts.defines[node.name] = {
                "kind": "class",
                "line": node.lineno,
            }
        self.scope.append(("class", node.name))
        for stmt in self._body_without_docstring(node):
            self.visit(stmt)
        self.scope.pop()

    def _visit_import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.facts.imports[alias.asname or alias.name.split(".")[0]] = (
                alias.name if alias.asname else alias.name.split(".")[0]
            )
            if alias.asname is None and "." in alias.name:
                # `import a.b.c` binds `a`; record the full path too so
                # `a.b.c.f()` calls resolve.
                self.facts.imports.setdefault(alias.name, alias.name)

    def _visit_import_from(self, node: ast.ImportFrom) -> None:
        target = self._resolve_from_module(node)
        for alias in node.names:
            if alias.name == "*":
                continue
            self.facts.from_imports[alias.asname or alias.name] = [
                target,
                alias.name,
            ]

    def _visit_global(self, node: ast.Global) -> None:
        record = self._function_record()
        if record is not None:
            for name in node.names:
                if name not in record["global_writes"]:
                    record["global_writes"].append(name)

    def _visit_assignment(self, node: ast.stmt) -> None:
        targets: List[ast.AST]
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        else:
            targets = [node.target]  # AnnAssign / AugAssign
        value = getattr(node, "value", None)
        if not self.scope and value is not None:
            self._record_module_assignment(targets, value)
        if self._in_function():
            self._record_global_mutation(targets)

    def _record_module_assignment(
        self, targets: List[ast.AST], value: ast.AST
    ) -> None:
        names = [t.id for t in targets if isinstance(t, ast.Name)]
        if not names:
            return
        if isinstance(value, ast.Constant) and isinstance(value.value, str):
            for name in names:
                self.facts.str_constants[name] = value.value
        if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                              ast.DictComp, ast.SetComp)) or (
            isinstance(value, ast.Call)
            and call_name(value.func)[-1:] in [(c,) for c in _MUTABLE_CONSTRUCTORS]
        ):
            for name in names:
                self.facts.mutable_globals[name] = value.lineno

    def _record_global_mutation(self, targets: List[ast.AST]) -> None:
        """A ``X[k] = v`` / ``X.attr = v`` store on a module-level mutable."""
        record = self._function_record()
        if record is None:
            return
        for target in targets:
            base = target
            while isinstance(base, (ast.Subscript, ast.Attribute)):
                base = base.value
            if (
                isinstance(base, ast.Name)
                and base is not target
                and base.id in self.facts.mutable_globals
                and base.id not in record["mutates"]
            ):
                record["mutates"].append(base.id)

    # -- calls ------------------------------------------------------------

    def _visit_call(self, node: ast.Call) -> None:
        parts = call_name(node.func)
        if parts:
            self.facts.calls.append(
                {
                    "caller": self._enclosing_function() or "<module>",
                    "parts": list(parts),
                    "line": node.lineno,
                }
            )
        self._match_rng_site(node, parts)
        self._match_telemetry_write(node, parts)
        self._match_telemetry_read_call(node, parts)
        self._match_worker_site(node, parts)
        self._match_mutating_method(node, parts)

    def _match_rng_site(self, node: ast.Call, parts: Tuple[str, ...]) -> None:
        """``*.stream(name)`` on an rng-ish receiver, or ``seeded_stream``."""
        api = None
        if parts and parts[-1] == "seeded_stream":
            api = "seeded_stream"
            name_arg = node.args[1] if len(node.args) > 1 else None
            for keyword in node.keywords:
                if keyword.arg == "name":
                    name_arg = keyword.value
        elif (
            len(parts) >= 2
            and parts[-1] == "stream"
            and "rng" in parts[-2].lower()
        ):
            api = "stream"
            name_arg = node.args[0] if node.args else None
            for keyword in node.keywords:
                if keyword.arg == "name":
                    name_arg = keyword.value
        if api is None:
            return
        site = self._site(node)
        if name_arg is None:
            site.update({"api": api, "name": None, "dynamic": False})
        else:
            literal, dynamic = self._string_value(name_arg)
            site.update(
                {"api": api, "name": literal, "dynamic": dynamic}
            )
        self.facts.rng_sites.append(site)

    @staticmethod
    def _receiver_is_recorder(parts: Tuple[str, ...], node: ast.Call) -> bool:
        if len(parts) >= 2:
            return "recorder" in parts[-2].lower()
        # current_recorder().inc(...) — receiver is itself a call.
        func = node.func
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Call):
            inner = call_name(func.value.func)
            return bool(inner) and "recorder" in inner[-1].lower()
        return False

    def _match_telemetry_write(
        self, node: ast.Call, parts: Tuple[str, ...]
    ) -> None:
        method = parts[-1] if parts else None
        if isinstance(node.func, ast.Attribute) and not parts:
            method = node.func.attr
        if method not in _TELEMETRY_WRITERS:
            return
        if not self._receiver_is_recorder(parts, node):
            return
        if not node.args:
            return
        literal, dynamic = self._string_value(node.args[0])
        site = self._site(node)
        site.update(
            {
                "kind": _TELEMETRY_WRITERS[method],
                "name": literal,
                "dynamic": dynamic,
            }
        )
        self.facts.telemetry_writes.append(site)

    def _match_telemetry_read_call(
        self, node: ast.Call, parts: Tuple[str, ...]
    ) -> None:
        """``recorder.series("x")`` and ``recorder.counters.get("x")``."""
        func = node.func
        if not isinstance(func, ast.Attribute) or not node.args:
            return
        literal, dynamic = self._string_value(node.args[0])
        if literal is None or dynamic:
            return
        if func.attr == "series" and self._receiver_is_recorder(parts, node):
            site = self._site(node)
            site.update({"kind": "series", "name": literal})
            self.facts.telemetry_reads.append(site)
            return
        if func.attr == "get" and isinstance(func.value, ast.Attribute):
            store = func.value.attr
            if store in _TELEMETRY_STORES:
                site = self._site(node)
                site.update({"kind": _TELEMETRY_STORES[store], "name": literal})
                self.facts.telemetry_reads.append(site)

    def _visit_subscript(self, node: ast.Subscript) -> None:
        """``recorder.counters["name"]`` style literal reads."""
        if not isinstance(node.value, ast.Attribute):
            return
        store = node.value.attr
        if store not in _TELEMETRY_STORES:
            return
        key = node.slice
        if isinstance(key, ast.Index):  # pragma: no cover - py<3.9 shape
            key = key.value
        if isinstance(key, ast.Constant) and isinstance(key.value, str):
            site = self._site(node)
            site.update({"kind": _TELEMETRY_STORES[store], "name": key.value})
            self.facts.telemetry_reads.append(site)

    def _visit_constant(self, node: ast.Constant) -> None:
        if not isinstance(node.value, str):
            return
        if _SCHEMA_RE.fullmatch(node.value) is None:
            return
        family, _, version = node.value.partition("/")
        site = self._site(node)
        site.update(
            {
                "literal": node.value,
                "family": family,
                "version": int(version),
                "scope": self._qualname(),
            }
        )
        self.facts.schema_sites.append(site)

    def _match_worker_site(
        self, node: ast.Call, parts: Tuple[str, ...]
    ) -> None:
        func_expr: Optional[ast.AST] = None
        api = None
        if parts and parts[-1] == "Process":
            api = "Process"
            for keyword in node.keywords:
                if keyword.arg == "target":
                    func_expr = keyword.value
            if func_expr is None and node.args:
                func_expr = node.args[0]
        elif (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _POOL_METHODS
        ):
            receiver = node.func.value
            receiver_name = ""
            if isinstance(receiver, ast.Name):
                receiver_name = receiver.id
            elif isinstance(receiver, ast.Attribute):
                receiver_name = receiver.attr
            lowered = receiver_name.lower()
            if (
                "pool" in lowered
                or "executor" in lowered
                or node.func.attr == "submit"
            ):
                api = node.func.attr
                if node.args:
                    func_expr = node.args[0]
        if api is None or func_expr is None:
            return
        site = self._site(node)
        if isinstance(func_expr, ast.Lambda):
            site.update({"api": api, "func_kind": "lambda", "func_parts": []})
        else:
            target_parts = call_name(func_expr)
            kind = "name" if target_parts else "other"
            site.update(
                {
                    "api": api,
                    "func_kind": kind,
                    "func_parts": list(target_parts),
                }
            )
        self.facts.worker_sites.append(site)

    def _match_mutating_method(
        self, node: ast.Call, parts: Tuple[str, ...]
    ) -> None:
        """``_CACHE.clear()`` style mutation of a module-level mutable."""
        if len(parts) != 2:
            return
        base, method = parts
        if method not in {
            "append",
            "add",
            "clear",
            "update",
            "pop",
            "popitem",
            "extend",
            "remove",
            "setdefault",
            "insert",
        }:
            return
        record = self._function_record()
        if (
            record is not None
            and base in self.facts.mutable_globals
            and base not in record["mutates"]
        ):
            record["mutates"].append(base)


def extract_facts(
    tree: Optional[ast.Module],
    source: str,
    path: str,
    pragmas: Optional[Dict[str, Any]] = None,
) -> ModuleFacts:
    """Extract one module's facts from its already-parsed AST.

    ``tree`` may be None (syntax error); the record then carries only
    the path/module identity so phase 2 skips it gracefully.
    """
    facts = ModuleFacts(path=path, module=module_name_of(path))
    if pragmas:
        facts.pragmas = pragmas
    if tree is None:
        return facts
    visitor = _FactsVisitor(facts, source.splitlines())
    visitor.walk(tree)
    return facts


class Program:
    """The joined fact base phase-2 rules run over."""

    def __init__(self, modules: List[ModuleFacts]) -> None:
        self.modules = sorted(modules, key=lambda facts: facts.path)
        self.by_module: Dict[str, ModuleFacts] = {
            facts.module: facts for facts in self.modules if facts.module
        }
        self.by_path: Dict[str, ModuleFacts] = {
            facts.path: facts for facts in self.modules
        }

    def iter_sites(self, attribute: str) -> Iterator[Tuple[ModuleFacts, Dict[str, Any]]]:
        """Yield ``(module_facts, site)`` for one site family program-wide."""
        for facts in self.modules:
            for site in getattr(facts, attribute):
                yield facts, site
